// parmac-bench regenerates the paper's tables and figures as text tables.
//
// Usage:
//
//	parmac-bench -exp fig10          # one experiment
//	parmac-bench -exp all            # everything (slow)
//	parmac-bench -list               # available experiment ids
//	parmac-bench -exp fig7 -quick    # reduced scale
//
// Each experiment id matches a table or figure of the paper; see DESIGN.md §4
// for the mapping and EXPERIMENTS.md for paper-vs-measured notes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (figN, tab1, tab-sift1b) or 'all'")
	quick := flag.Bool("quick", false, "run at reduced scale")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.RunConfig{Quick: *quick, Seed: *seed}
	if *exp == "all" {
		for _, e := range experiments.All() {
			if err := experiments.RunAndPrint(e.ID, cfg, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		return
	}
	if err := experiments.RunAndPrint(*exp, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
