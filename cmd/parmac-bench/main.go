// parmac-bench regenerates the paper's tables and figures as text tables,
// and doubles as the machine-readable perf harness.
//
// Usage:
//
//	parmac-bench -exp fig10          # one experiment
//	parmac-bench -exp all            # everything (slow)
//	parmac-bench -list               # available experiment ids
//	parmac-bench -exp fig7 -quick    # reduced scale
//	parmac-bench -json -label pr4    # write BENCH_pr4.json (hot-path
//	                                 # micro-benches + Z-step core sweep)
//
// Each experiment id matches a table or figure of the paper; see DESIGN.md §4
// for the mapping and EXPERIMENTS.md for paper-vs-measured notes. The -json
// mode records ns/op and allocs for every hot path plus a serial-vs-parallel
// Z-step sweep, so each perf-relevant PR can commit its trajectory point.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/experiments"
	"repro/internal/perf"
)

// gitRev best-effort resolves the current commit so BENCH_*.json files can be
// lined up against git history. Outside a git checkout it stays empty.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	exp := flag.String("exp", "", "experiment id (figN, tab1, tab-sift1b) or 'all'")
	quick := flag.Bool("quick", false, "run at reduced scale")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list available experiments")
	jsonMode := flag.Bool("json", false, "run the perf harness and write BENCH_<label>.json")
	label := flag.String("label", "local", "label for the -json report file")
	outDir := flag.String("outdir", ".", "directory for the -json report file")
	flag.Parse()

	if *jsonMode {
		rep := perf.Collect(*label, *quick)
		rep.GitRev = gitRev()
		path, err := rep.Write(*outDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, b := range rep.Benchmarks {
			fmt.Printf("%-34s %12.1f ns/op %6d allocs/op\n", b.Name, b.NsPerOp, b.AllocsPerOp)
		}
		for _, s := range rep.ZStepSweep {
			fmt.Printf("RunZStep workers=%-2d %16.0f ns/op  speedup %.2fx\n", s.Workers, s.NsPerOp, s.SpeedupVsSerial)
		}
		for _, s := range rep.WStepSweep {
			fmt.Printf("WStepFused workers=%-2d %14.0f ns/op  speedup %.2fx\n", s.Workers, s.NsPerOp, s.SpeedupVsSerial)
		}
		for _, s := range rep.RetrievalSweep {
			fmt.Printf("AllTopKHamming workers=%-2d %10.0f ns/op  speedup %.2fx\n", s.Workers, s.NsPerOp, s.SpeedupVsSerial)
		}
		for _, p := range rep.IndexSweep {
			fmt.Printf("index %-6s N=%-8d k=%-4d %12.0f ns/op  vs linear %.2fx\n",
				p.Index, p.N, p.K, p.NsPerOp, p.SpeedupVsLinear)
		}
		for _, sc := range rep.ServeScenarios {
			switch sc.Scenario {
			case "server":
				fmt.Printf("serve %-13s %-6s N=%-8d target %7.0f qps  p50/p90/p99 %6.2f/%6.2f/%6.2f ms  met(p99<%gms)=%v\n",
					sc.Scenario, sc.Index, sc.IndexN, sc.TargetQPS, sc.P50Ms, sc.P90Ms, sc.P99Ms, sc.P99Bound, sc.MetBound)
			default:
				fmt.Printf("serve %-13s %-6s N=%-8d %8.0f qps  p50/p90/p99 %6.2f/%6.2f/%6.2f ms  mean batch %.1f\n",
					sc.Scenario, sc.Index, sc.IndexN, sc.QPS, sc.P50Ms, sc.P90Ms, sc.P99Ms, sc.MeanBatch)
			}
		}
		fmt.Printf("report written to %s\n", path)
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.RunConfig{Quick: *quick, Seed: *seed}
	if *exp == "all" {
		for _, e := range experiments.All() {
			if err := experiments.RunAndPrint(e.ID, cfg, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		return
	}
	if err := experiments.RunAndPrint(*exp, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
