// parmac-speedup explores the closed-form parallel-speedup model of §5: given
// the workload and cost parameters it prints S(P) over a range of machine
// counts, the model constants ρ1/ρ2/ρ, and the predicted optimum P*.
//
// Usage:
//
//	parmac-speedup -n 1000000 -m 512 -e 1 -twr 1 -tzr 5 -twc 1000 -pmax 2000
//	parmac-speedup -bits 16 ...         # sets m = 2L per §5.4
//	parmac-speedup ... -sim             # add the discrete-event simulation
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/speedup"
)

func main() {
	n := flag.Int("n", 1000000, "training points N")
	m := flag.Int("m", 512, "independent submodels M")
	bits := flag.Int("bits", 0, "BA code length L; sets M = 2L when given")
	e := flag.Int("e", 1, "epochs per W step")
	twr := flag.Float64("twr", 1, "W-step compute per submodel per point")
	tzr := flag.Float64("tzr", 5, "Z-step compute per point per submodel")
	twc := flag.Float64("twc", 1000, "W-step communication per submodel hop")
	pmax := flag.Int("pmax", 2000, "largest machine count to evaluate")
	steps := flag.Int("steps", 20, "number of P samples")
	withSim := flag.Bool("sim", false, "also run the discrete-event simulator")
	flag.Parse()

	if *bits > 0 {
		*m = speedup.EffectiveSubmodels(*bits)
	}
	p := speedup.Params{N: *n, M: *m, E: *e, TWr: *twr, TZr: *tzr, TWc: *twc}
	fmt.Printf("model: N=%d M=%d e=%d tWr=%g tZr=%g tWc=%g\n", *n, *m, *e, *twr, *tzr, *twc)
	fmt.Printf("rho1=%.6f rho2=%.6f rho=%.6f rhoN=%.1f\n", p.Rho1(), p.Rho2(), p.Rho(), p.PerfectSpeedupBound())
	pStar, sStar := p.GlobalMax()
	fmt.Printf("global maximum: S*=%.1f at P*=%.0f\n\n", sStar, pStar)

	if *pmax < 2 || *steps < 2 {
		fmt.Fprintln(os.Stderr, "pmax and steps must be >= 2")
		os.Exit(2)
	}
	if *withSim {
		fmt.Printf("%8s %12s %12s\n", "P", "S theory", "S simulated")
	} else {
		fmt.Printf("%8s %12s\n", "P", "S theory")
	}
	for i := 0; i < *steps; i++ {
		pp := 1 + i*(*pmax-1)/(*steps-1)
		s := p.Speedup(float64(pp))
		if *withSim {
			c := sim.Config{P: pp, N: *n, M: *m, Epochs: *e, TWr: *twr, TWc: *twc, TZr: *tzr, Seed: 1}
			ss := sim.SerialTime(c) / sim.Run(c).T
			fmt.Printf("%8d %12.1f %12.1f\n", pp, s, ss)
		} else {
			fmt.Printf("%8d %12.1f\n", pp, s)
		}
	}
}
