package main

import (
	"bufio"
	"bytes"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSIGKILLWorkerMidTraining is the end-to-end fault drill: real OS
// processes over real sockets, one worker killed with SIGKILL (no signal
// handler runs, no bye frame is sent), and the coordinator must still finish
// training on the survivor and report the death in its run output.
func TestSIGKILLWorkerMidTraining(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("relies on unix process kill semantics")
	}
	if testing.Short() {
		t.Skip("builds and drives real processes")
	}

	bin := filepath.Join(t.TempDir(), "parmac-train")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Flags every process must agree on: they derive the dataset and shards
	// deterministically from these.
	const p = 2
	shared := []string{
		"-p", strconv.Itoa(p), "-n", "60", "-d", "6", "-clusters", "3",
		"-bits", "4", "-seed", "7", "-e", "1", "-cores", "1", "-queries", "4",
	}

	coordArgs := append([]string{
		"-coordinator", "-spawn=false", "-listen", "127.0.0.1:0",
		"-iters", "4", "-rescue-timeout", "5s",
	}, shared...)
	coord := exec.Command(bin, coordArgs...)
	var coordErr bytes.Buffer
	coord.Stderr = &coordErr
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// Stream coordinator stdout: the rendezvous address arrives first, then
	// one row per iteration.
	lines := make(chan string, 64)
	var coordOut bytes.Buffer
	var outMu sync.Mutex
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			outMu.Lock()
			coordOut.WriteString(sc.Text() + "\n")
			outMu.Unlock()
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitLine := func(what string, match func(string) bool) string {
		deadline := time.After(2 * time.Minute)
		for {
			select {
			case ln, ok := <-lines:
				if !ok {
					t.Fatalf("coordinator exited before %s\nstdout:\n%s\nstderr:\n%s",
						what, snapshot(&outMu, &coordOut), coordErr.String())
				}
				if match(ln) {
					return ln
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %s\nstdout:\n%s\nstderr:\n%s",
					what, snapshot(&outMu, &coordOut), coordErr.String())
			}
		}
	}

	addrLine := waitLine("rendezvous address", func(s string) bool {
		return strings.Contains(s, "rendezvous at ")
	})
	addr := strings.TrimSuffix(strings.Fields(addrLine)[3], ",")

	workers := make([]*exec.Cmd, p)
	for r := 0; r < p; r++ {
		args := append([]string{
			"-worker", "-connect", addr, "-rank", strconv.Itoa(r),
		}, shared...)
		workers[r] = exec.Command(bin, args...)
		workers[r].Stdout = io.Discard
		workers[r].Stderr = io.Discard
		if err := workers[r].Start(); err != nil {
			t.Fatal(err)
		}
		defer workers[r].Process.Kill()
	}

	// Let the cluster make real progress, then kill rank 1 dead — SIGKILL
	// gives it no chance to announce anything.
	waitLine("first iteration row", func(s string) bool {
		return len(strings.Fields(s)) > 0 && strings.Fields(s)[0] == "0"
	})
	if err := workers[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator failed after worker SIGKILL: %v\nstdout:\n%s\nstderr:\n%s",
				err, snapshot(&outMu, &coordOut), coordErr.String())
		}
	case <-time.After(2 * time.Minute):
		t.Fatalf("coordinator hung after worker SIGKILL\nstdout:\n%s\nstderr:\n%s",
			snapshot(&outMu, &coordOut), coordErr.String())
	}

	out := snapshot(&outMu, &coordOut)
	if !strings.Contains(coordErr.String(), "died (unannounced)") {
		t.Fatalf("coordinator did not report the unannounced death\nstdout:\n%s\nstderr:\n%s",
			out, coordErr.String())
	}
	if !strings.Contains(out, "retrieval precision") {
		t.Fatalf("training did not run to completion on the survivor\nstdout:\n%s", out)
	}

	// The survivor worker drains the shutdown and exits on its own.
	survivor := make(chan error, 1)
	go func() { survivor <- workers[0].Wait() }()
	select {
	case err := <-survivor:
		if err != nil {
			t.Fatalf("surviving worker exited with error: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("surviving worker did not exit after shutdown")
	}
}

func snapshot(mu *sync.Mutex, buf *bytes.Buffer) string {
	mu.Lock()
	defer mu.Unlock()
	return buf.String()
}
