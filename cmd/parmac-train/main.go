// parmac-train trains a binary autoencoder with ParMAC on a synthetic
// benchmark dataset, reports the learning curve and retrieval precision, and
// can save/load the model as JSON.
//
// The ParMAC machines can run on either cluster transport:
//
//	parmac-train -n 10000 -d 64 -bits 16 -p 8 -iters 12 -out model.json
//	parmac-train -transport tcp -p 4 -iters 8      # P worker OS processes, auto-spawned
//	parmac-train -load model.json -n 10000 -d 64   # evaluate a saved model
//
// Manual multi-host-style launch (all on one host). Workers rebuild the
// identical sharded problem from the flags, so every worker must receive the
// same data/model flags (-p -n -d -bits -seed ...) as the coordinator —
// the worker aborts if -p disagrees with the cluster size:
//
//	parmac-train -coordinator -listen 127.0.0.1:9377 -p 2 -spawn=false &
//	parmac-train -worker -connect 127.0.0.1:9377 -rank 0 -p 2 &
//	parmac-train -worker -connect 127.0.0.1:9377 -rank 1 -p 2 &
//
// A fixed-seed run produces the same model on both transports (with
// -shuffle=false, bit for bit).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/binauto"
	"repro/internal/cluster"
	"repro/internal/cluster/tcp"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/retrieval"
)

type options struct {
	n, d, clusters, bits, p int
	epochs, iters, queries  int
	cores                   int
	mu0, muFactor           float64
	shuffle, approxZ        bool
	seed                    int64
	rescueTimeout           time.Duration
	csvPath                 string
	out, load, saveCodes    string

	transport   string
	coordinator bool
	worker      bool
	listen      string
	connect     string
	rank        int
	spawn       bool
}

func parseFlags() *options {
	o := &options{}
	flag.IntVar(&o.n, "n", 5000, "training points")
	flag.IntVar(&o.d, "d", 64, "feature dimension")
	flag.IntVar(&o.clusters, "clusters", 16, "mixture components in the synthetic data")
	flag.IntVar(&o.bits, "bits", 16, "code length L")
	flag.IntVar(&o.p, "p", 4, "machines P")
	flag.IntVar(&o.epochs, "e", 1, "epochs per W step")
	flag.IntVar(&o.cores, "cores", 0, "Z-step goroutines per machine (0/1 serial, -1 all cores)")
	flag.IntVar(&o.iters, "iters", 10, "MAC iterations")
	flag.Float64Var(&o.mu0, "mu0", 1e-4, "initial penalty parameter")
	flag.Float64Var(&o.muFactor, "mufactor", 2, "penalty growth factor")
	flag.BoolVar(&o.shuffle, "shuffle", true, "shuffle ring and minibatches")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.DurationVar(&o.rescueTimeout, "rescue-timeout", 0,
		"bound on failure-detection and rescue waits after a machine dies (0 = engine default; keep above the slowest single training visit)")
	flag.IntVar(&o.queries, "queries", 100, "evaluation queries")
	flag.StringVar(&o.csvPath, "csv", "", "load training features from this CSV instead of generating synthetic data (queries are split off the tail)")
	flag.BoolVar(&o.approxZ, "approxz", true, "use the alternating Z step instead of exact enumeration")
	flag.StringVar(&o.out, "out", "", "write the trained model JSON here")
	flag.StringVar(&o.load, "load", "", "skip training; evaluate this model JSON")
	flag.StringVar(&o.saveCodes, "save-codes", "", "write the encoded training set here as a packed-code index (parmac-serve -index)")

	flag.StringVar(&o.transport, "transport", "inproc", "cluster transport: inproc (machine goroutines) or tcp (one OS process per machine)")
	flag.BoolVar(&o.coordinator, "coordinator", false, "run as the TCP coordinator and wait for externally launched workers")
	flag.BoolVar(&o.worker, "worker", false, "run as one TCP worker machine (requires -connect and -rank)")
	flag.StringVar(&o.listen, "listen", "127.0.0.1:0", "coordinator rendezvous address")
	flag.StringVar(&o.connect, "connect", "", "worker: coordinator rendezvous address")
	flag.IntVar(&o.rank, "rank", -1, "worker: machine rank in [0, p)")
	flag.BoolVar(&o.spawn, "spawn", true, "tcp coordinator: auto-spawn the worker processes")
	flag.Parse()
	if o.coordinator || o.worker {
		o.transport = "tcp"
	}
	return o
}

func main() {
	o := parseFlags()

	if o.worker {
		runWorker(o)
		return
	}

	ds, qs := buildDatasets(o)
	// -cores drives the evaluation scans too: ground truth, encoding and the
	// Hamming retrieval are all query/point-parallel.
	truth := retrieval.GroundTruthParallel(ds, qs, 50, o.cores)

	var model *binauto.Model
	if o.load != "" {
		f, err := os.Open(o.load)
		fatalIf(err)
		model, err = binauto.Load(f)
		closeErr := f.Close()
		fatalIf(err)
		fatalIf(closeErr)
		fmt.Printf("loaded model: L=%d D=%d\n", model.L(), model.D())
	} else {
		switch o.transport {
		case "inproc":
			model = trainInProcess(o, ds)
		case "tcp":
			model = trainTCP(o, ds)
		default:
			fatalIf(fmt.Errorf("unknown -transport %q", o.transport))
		}
	}

	base := model.EncodeParallel(ds, o.cores)
	qc := model.EncodeParallel(qs, o.cores)
	retr := retrieval.AllTopKHamming(base, qc, 50, o.cores)
	fmt.Printf("retrieval precision (K=k=50): %.3f\n", retrieval.Precision(truth, retr))

	if o.out != "" {
		f, err := os.Create(o.out)
		fatalIf(err)
		fatalIf(model.Save(f))
		fatalIf(f.Close())
		fmt.Printf("model written to %s\n", o.out)
	}
	if o.saveCodes != "" {
		f, err := os.Create(o.saveCodes)
		fatalIf(err)
		fatalIf(base.Save(f))
		fatalIf(f.Close())
		fmt.Printf("index written to %s (N=%d L=%d, %d bytes packed)\n",
			o.saveCodes, base.N, base.L, base.MemoryBytes())
	}
}

// buildDatasets constructs the base and query sets — deterministically from
// the flags, so the coordinator and every worker process agree on the data.
func buildDatasets(o *options) (ds, qs *dataset.Dataset) {
	if o.csvPath != "" {
		f, err := os.Open(o.csvPath)
		fatalIf(err)
		full, err := dataset.LoadCSV(f)
		closeErr := f.Close()
		fatalIf(err)
		fatalIf(closeErr)
		if full.N <= o.queries {
			fatalIf(fmt.Errorf("csv has %d rows; need more than %d", full.N, o.queries))
		}
		baseIdx := make([]int, full.N-o.queries)
		qIdx := make([]int, o.queries)
		for i := range baseIdx {
			baseIdx[i] = i
		}
		for i := range qIdx {
			qIdx[i] = full.N - o.queries + i
		}
		ds, qs = full.Subset(baseIdx), full.Subset(qIdx)
		o.n, o.d = ds.N, ds.D
		return ds, qs
	}
	return dataset.WithQueries(o.n, o.queries, o.d, o.clusters, o.seed, true)
}

// buildProblem constructs the sharded BA problem, identically in every
// process.
func buildProblem(o *options, ds *dataset.Dataset) *binauto.ParMACProblem {
	shards := dataset.ShuffledShardIndices(o.n, o.p, nil, o.seed)
	zm := binauto.ZAuto
	if o.approxZ {
		zm = binauto.ZAlternate
	}
	return binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
		L: o.bits, Mu0: o.mu0, MuFactor: o.muFactor, ZMethod: zm, Seed: o.seed,
		Parallel: o.cores,
	})
}

func engineConfig(o *options) core.Config {
	return core.Config{
		P: o.p, Epochs: o.epochs, Shuffle: o.shuffle, Seed: o.seed,
		RescueTimeout: o.rescueTimeout,
	}
}

// reportFailures surfaces machine deaths from an iteration's run report.
func reportFailures(res core.IterationResult) {
	for _, ev := range res.Failures {
		kind := "announced"
		if ev.Unannounced {
			kind = "unannounced"
		}
		switch {
		case ev.LostToken >= 0 && ev.FromRank >= 0:
			fmt.Fprintf(os.Stderr, "iter %d: machine %d died (%s); submodel %d restored from machine %d\n",
				res.Iter, ev.Rank, kind, ev.LostToken, ev.FromRank)
		case ev.LostToken >= 0:
			fmt.Fprintf(os.Stderr, "iter %d: machine %d died (%s); submodel %d restarted from the coordinator copy\n",
				res.Iter, ev.Rank, kind, ev.LostToken)
		default:
			fmt.Fprintf(os.Stderr, "iter %d: machine %d died (%s)\n", res.Iter, ev.Rank, kind)
		}
	}
	if res.DroppedFrames > 0 {
		fmt.Fprintf(os.Stderr, "iter %d: %d frames dropped toward departed machines\n", res.Iter, res.DroppedFrames)
	}
}

func trainInProcess(o *options, ds *dataset.Dataset) *binauto.Model {
	prob := buildProblem(o, ds)
	eng := core.New(prob, engineConfig(o))
	defer eng.Shutdown()

	fmt.Printf("%5s %14s %14s %10s %12s\n", "iter", "E_Q", "E_BA", "Zchanged", "model bytes")
	for it := 0; it < o.iters; it++ {
		res := eng.Iterate()
		eq, eba := prob.Stats()
		fmt.Printf("%5d %14.1f %14.1f %10d %12d\n", it, eq, eba, res.ZChanged, res.ModelBytes)
		reportFailures(res)
	}
	return prob.AssembleModel()
}

// trainTCP runs the coordinator over the TCP fabric: P worker processes (one
// per machine) plus this process as the coordinator rank. E_Q is shard-local
// worker state and is not reported here; the nested error E_BA is computed
// from the circulated model, which the coordinator owns.
func trainTCP(o *options, ds *dataset.Dataset) *binauto.Model {
	hub, err := tcp.NewHub(o.listen, o.p+1)
	fatalIf(err)
	defer hub.Close()
	fmt.Printf("coordinator: rendezvous at %s, waiting for %d workers\n", hub.Addr(), o.p)

	var children []*exec.Cmd
	if o.spawn && !o.coordinator {
		children = spawnWorkers(o, hub.Addr())
	}

	comm, err := tcp.Connect(hub.Addr(), o.p)
	fatalIf(err)
	prob := buildProblem(o, ds)
	eng := core.NewDistributed(prob, engineConfig(o), comm)
	// The hub sits outside the coordinator's Comm, so frames dropped toward
	// departed workers are counted there, not in comm.Stats().
	eng.SetStatsSource(func() cluster.Stats {
		s := comm.Stats()
		s.Dropped = hub.DroppedFrames()
		return s
	})

	var model *binauto.Model
	fmt.Printf("%5s %14s %10s %12s %8s\n", "iter", "E_BA", "Zchanged", "model bytes", "alive")
	for it := 0; it < o.iters; it++ {
		res := eng.Iterate()
		model = prob.AssembleModel()
		fmt.Printf("%5d %14.1f %10d %12d %8d\n", it, model.EBA(ds), res.ZChanged, res.ModelBytes, res.AliveMachines)
		reportFailures(res)
	}

	eng.Shutdown()
	if err := comm.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "warning: close transport:", err)
	}
	// Workers say bye once they have drained the shutdown; only then may the
	// hub die with the coordinator process.
	if err := hub.Wait(30 * time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "warning:", err)
	}
	for _, c := range children {
		if err := c.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "worker %v exited: %v\n", c.Args, err)
		}
	}
	return model
}

// spawnWorkers launches this binary P times in worker mode, one OS process
// per ParMAC machine.
func spawnWorkers(o *options, addr string) []*exec.Cmd {
	self, err := os.Executable()
	fatalIf(err)
	var children []*exec.Cmd
	for r := 0; r < o.p; r++ {
		args := []string{
			"-worker", "-connect", addr, "-rank", strconv.Itoa(r),
			"-n", strconv.Itoa(o.n), "-d", strconv.Itoa(o.d),
			"-clusters", strconv.Itoa(o.clusters), "-bits", strconv.Itoa(o.bits),
			"-p", strconv.Itoa(o.p), "-seed", strconv.FormatInt(o.seed, 10),
			"-cores", strconv.Itoa(o.cores),
			"-mu0", fmt.Sprint(o.mu0), "-mufactor", fmt.Sprint(o.muFactor),
			"-approxz=" + strconv.FormatBool(o.approxZ),
			"-queries", strconv.Itoa(o.queries),
		}
		if o.csvPath != "" {
			args = append(args, "-csv", o.csvPath)
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		fatalIf(cmd.Start())
		fmt.Printf("spawned worker %d (pid %d)\n", r, cmd.Process.Pid)
		children = append(children, cmd)
	}
	return children
}

// runWorker is one ParMAC machine as an OS process: rebuild the identical
// problem, attach to the fabric at the assigned rank, and serve the engine's
// protocol until shutdown.
func runWorker(o *options) {
	if o.connect == "" || o.rank < 0 || o.rank >= o.p {
		fatalIf(fmt.Errorf("worker mode needs -connect and -rank in [0,%d)", o.p))
	}
	ds, _ := buildDatasets(o)
	prob := buildProblem(o, ds)
	comm, err := tcp.Connect(o.connect, o.rank)
	fatalIf(err)
	// The rendezvous reveals the true cluster size; a -p that disagrees with
	// the coordinator's would silently shard the data differently here.
	if comm.Size() != o.p+1 {
		fatalIf(fmt.Errorf("worker built %d shards (-p %d) but the cluster has %d machines; pass the coordinator's flags to every worker",
			o.p, o.p, comm.Size()-1))
	}
	core.RunWorker(comm, prob, o.rank, core.WorkerOptions{
		Seed: core.WorkerSeed(o.seed, o.rank),
	})
	if err := comm.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "warning: close transport:", err)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
