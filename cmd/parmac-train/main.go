// parmac-train trains a binary autoencoder with ParMAC on a synthetic
// benchmark dataset, reports the learning curve and retrieval precision, and
// can save/load the model as JSON.
//
// Usage:
//
//	parmac-train -n 10000 -d 64 -bits 16 -p 8 -iters 12 -out model.json
//	parmac-train -load model.json -n 10000 -d 64    # evaluate a saved model
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/binauto"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/retrieval"
)

func main() {
	n := flag.Int("n", 5000, "training points")
	d := flag.Int("d", 64, "feature dimension")
	clusters := flag.Int("clusters", 16, "mixture components in the synthetic data")
	bits := flag.Int("bits", 16, "code length L")
	p := flag.Int("p", 4, "machines P")
	epochs := flag.Int("e", 1, "epochs per W step")
	iters := flag.Int("iters", 10, "MAC iterations")
	mu0 := flag.Float64("mu0", 1e-4, "initial penalty parameter")
	muFactor := flag.Float64("mufactor", 2, "penalty growth factor")
	shuffle := flag.Bool("shuffle", true, "shuffle ring and minibatches")
	seed := flag.Int64("seed", 1, "random seed")
	queries := flag.Int("queries", 100, "evaluation queries")
	csvPath := flag.String("csv", "", "load training features from this CSV instead of generating synthetic data (queries are split off the tail)")
	approxZ := flag.Bool("approxz", true, "use the alternating Z step instead of exact enumeration")
	out := flag.String("out", "", "write the trained model JSON here")
	load := flag.String("load", "", "skip training; evaluate this model JSON")
	flag.Parse()

	var ds, qs *dataset.Dataset
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		fatalIf(err)
		full, err := dataset.LoadCSV(f)
		f.Close()
		fatalIf(err)
		if full.N <= *queries {
			fatalIf(fmt.Errorf("csv has %d rows; need more than %d", full.N, *queries))
		}
		baseIdx := make([]int, full.N-*queries)
		qIdx := make([]int, *queries)
		for i := range baseIdx {
			baseIdx[i] = i
		}
		for i := range qIdx {
			qIdx[i] = full.N - *queries + i
		}
		ds, qs = full.Subset(baseIdx), full.Subset(qIdx)
		*n, *d = ds.N, ds.D
	} else {
		ds, qs = dataset.WithQueries(*n, *queries, *d, *clusters, *seed, true)
	}
	truth := retrieval.GroundTruth(ds, qs, 50)

	var model *binauto.Model
	if *load != "" {
		f, err := os.Open(*load)
		fatalIf(err)
		model, err = binauto.Load(f)
		f.Close()
		fatalIf(err)
		fmt.Printf("loaded model: L=%d D=%d\n", model.L(), model.D())
	} else {
		shards := dataset.ShuffledShardIndices(*n, *p, nil, *seed)
		zm := binauto.ZAuto
		if *approxZ {
			zm = binauto.ZAlternate
		}
		prob := binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
			L: *bits, Mu0: *mu0, MuFactor: *muFactor, ZMethod: zm, Seed: *seed,
		})
		eng := core.New(prob, core.Config{P: *p, Epochs: *epochs, Shuffle: *shuffle, Seed: *seed})
		defer eng.Shutdown()

		fmt.Printf("%5s %14s %14s %10s %12s\n", "iter", "E_Q", "E_BA", "Zchanged", "model bytes")
		for it := 0; it < *iters; it++ {
			res := eng.Iterate()
			eq, eba := prob.Stats()
			fmt.Printf("%5d %14.1f %14.1f %10d %12d\n", it, eq, eba, res.ZChanged, res.ModelBytes)
		}
		model = prob.AssembleModel()
	}

	base := model.Encode(ds)
	qc := model.Encode(qs)
	retr := make([][]int, qs.N)
	for q := 0; q < qs.N; q++ {
		retr[q] = retrieval.TopKHamming(base, qc.Code(q), 50)
	}
	fmt.Printf("retrieval precision (K=k=50): %.3f\n", retrieval.Precision(truth, retr))

	if *out != "" {
		f, err := os.Create(*out)
		fatalIf(err)
		fatalIf(model.Save(f))
		fatalIf(f.Close())
		fmt.Printf("model written to %s\n", *out)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
