// parmac-serve is the online retrieval service over a trained binary
// autoencoder: it keeps a packed-code index in RAM and answers top-k Hamming
// queries over a JSON HTTP API, micro-batching concurrent requests into one
// multicore scan. The (model, index) pair hot-swaps atomically via an admin
// endpoint, and a candidate pair can run in shadow mode against a sample of
// live traffic before being promoted.
//
// Usage:
//
//	parmac-train -n 50000 -d 64 -bits 16 -iters 8 -out model.json \
//	             -save-codes index.pmac       # train and export an index
//	parmac-serve -index index.pmac -model model.json -addr :8080
//
//	# query: encode-and-search a raw feature vector
//	curl -s localhost:8080/v1/search -d '{"vector":[0.1,0.2,…],"k":10}'
//	# query: search a pre-encoded code (hex words)
//	curl -s localhost:8080/v1/search -d '{"code":["0x3f2a"],"k":10}'
//	# hot-swap, shadow, promote
//	curl -s localhost:8080/v1/swap    -d '{"version":"v2","index":"new.pmac","model":"new.json"}'
//	curl -s localhost:8080/v1/shadow  -d '{"version":"cand","index":"cand.pmac","model":"cand.json"}'
//	curl -s localhost:8080/v1/promote -d '{}'
//	curl -s localhost:8080/v1/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		indexPath  = flag.String("index", "", "packed-code index file (retrieval.Codes.Save format, required)")
		modelPath  = flag.String("model", "", "model JSON (optional; without it only raw-code queries are served)")
		version    = flag.String("version", "v1", "label for the initial deployment")
		shards     = flag.Int("shards", 1, "linear-index shards for per-query fan-out")
		indexKind  = flag.String("index-kind", "linear", "index structure: linear (sharded scan) or mih (multi-index hashing)")
		mihBlocks  = flag.Int("mih-blocks", 0, "substring tables for -index-kind=mih (0 = auto from N and L)")
		workers    = flag.Int("workers", -1, "goroutines per batch scan (-1 = every core)")
		maxBatch   = flag.Int("max-batch", 64, "max requests coalesced into one scan")
		maxDelay   = flag.Duration("max-delay", 0, "how long to hold an under-filled batch (0 = flush when idle)")
		maxK       = flag.Int("max-k", 1000, "largest k a request may ask for")
		shadowRate = flag.Float64("shadow-rate", 0.1, "fraction of queries mirrored to the shadow deployment")
		maxBytes   = flag.Int64("max-index-bytes", 0, "index payload budget for loads (0 = 1 GiB default)")
	)
	flag.Parse()

	if *indexPath == "" {
		fmt.Fprintln(os.Stderr, "parmac-serve: -index is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := serve.IndexConfig{Kind: *indexKind, Shards: *shards, MIHBlocks: *mihBlocks}
	dep, err := serve.LoadDeployment(*version, *indexPath, *modelPath, cfg, *maxBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parmac-serve:", err)
		os.Exit(1)
	}
	s := serve.New(dep, serve.Options{
		Shards:        *shards,
		IndexKind:     *indexKind,
		MIHBlocks:     *mihBlocks,
		Workers:       *workers,
		MaxBatch:      *maxBatch,
		MaxDelay:      *maxDelay,
		MaxK:          *maxK,
		ShadowRate:    *shadowRate,
		MaxIndexBytes: *maxBytes,
	})
	defer s.Close()

	fmt.Printf("parmac-serve: %q on %s — kind=%s N=%d L=%d model=%v\n",
		*version, *addr, dep.Index.Kind(), dep.Index.N(), dep.Index.L(), dep.Model != nil)
	srv := &http.Server{Addr: *addr, Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "parmac-serve:", err)
		os.Exit(1)
	}
}
