// parmac-vet runs the project's invariant analyzers (internal/analysis) over
// package patterns, go-vet style. It is the CI gate that keeps the
// concurrency, determinism, and input-hardening conventions of the parallel
// training/serving stack from rotting as call sites multiply.
//
// Usage:
//
//	parmac-vet ./...                      # whole tree (the CI invocation)
//	parmac-vet -run clampworkers ./...    # one analyzer
//	parmac-vet -list                      # catalogue with one-line docs
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage error.
// Suppress a false positive with a trailing comment on the flagged line:
//
//	//parmac:vet ignore=<analyzer> <why the invariant holds anyway>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		var err error
		if analyzers, err = analysis.ByName(strings.Split(*run, ",")); err != nil {
			fmt.Fprintln(os.Stderr, "parmac-vet:", err)
			os.Exit(2)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "parmac-vet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parmac-vet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parmac-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "parmac-vet: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
