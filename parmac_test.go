package parmac

import (
	"math"
	"testing"

	"repro/internal/retrieval"
)

func TestSyntheticBenchmarkShapes(t *testing.T) {
	base, queries := SyntheticBenchmark(300, 40, 16, 6, 1)
	if base.N != 300 || queries.N != 40 || base.D != 16 || queries.D != 16 {
		t.Fatalf("shapes: base %dx%d queries %dx%d", base.N, base.D, queries.N, queries.D)
	}
	if !base.ByteBacked() || !queries.ByteBacked() {
		t.Fatal("benchmark sets must be byte-quantised")
	}
}

func TestManifoldBenchmarkShapes(t *testing.T) {
	base, queries := ManifoldBenchmark(200, 20, 24, 2)
	if base.N != 200 || queries.N != 20 || base.D != 24 {
		t.Fatal("manifold shapes wrong")
	}
	// Manifold features are bounded by the sinusoid plus small noise.
	for i := 0; i < base.N; i++ {
		for _, v := range base.Point(i, nil) {
			if math.Abs(v) > 1.5 {
				t.Fatalf("feature %v outside sinusoid range", v)
			}
		}
	}
}

func TestTrainBinaryAutoencoderEndToEnd(t *testing.T) {
	ds, queries := SyntheticBenchmark(600, 40, 16, 8, 3)
	res := TrainBinaryAutoencoder(ds, BAOptions{
		Bits: 8, Machines: 3, Epochs: 1, Iterations: 5, Shuffle: true, Seed: 3,
	})
	if res.Model == nil || res.Model.L() != 8 || res.Model.D() != 16 {
		t.Fatal("model shape wrong")
	}
	if len(res.History) != 5 {
		t.Fatalf("history length %d", len(res.History))
	}
	if res.Codes.N != 600 || res.Codes.L != 8 {
		t.Fatal("codes shape wrong")
	}
	for _, h := range res.History {
		if h.ModelBytes <= 0 || h.AliveMachines != 3 {
			t.Fatalf("bad iteration record: %+v", h)
		}
	}
	// The model must encode queries and retrieve something sensible: better
	// than the random-codes floor.
	base := res.Model.Encode(ds)
	qc := res.Model.Encode(queries)
	truth := retrieval.GroundTruth(ds, queries, 30)
	retr := make([][]int, queries.N)
	for q := 0; q < queries.N; q++ {
		retr[q] = retrieval.TopKHamming(base, qc.Code(q), 30)
	}
	prec := retrieval.Precision(truth, retr)
	floor := 30.0 / 600.0
	if prec < 3*floor {
		t.Fatalf("precision %v not clearly above the random floor %v", prec, floor)
	}
}

func TestTrainBinaryAutoencoderApproxZ(t *testing.T) {
	ds, _ := SyntheticBenchmark(300, 10, 24, 6, 4)
	res := TrainBinaryAutoencoder(ds, BAOptions{
		Bits: 18, Machines: 2, Iterations: 3, ApproxZ: true, Seed: 4,
	})
	if res.Model.L() != 18 {
		t.Fatal("18-bit model expected")
	}
	// L > D must be rejected (the paper defines the BA with L < D).
	small, _ := SyntheticBenchmark(50, 5, 8, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for L > D")
		}
	}()
	TrainBinaryAutoencoder(small, BAOptions{Bits: 18, Iterations: 1, Seed: 4})
}

func TestTrainBinaryAutoencoderDeterministic(t *testing.T) {
	ds, _ := SyntheticBenchmark(300, 10, 12, 6, 5)
	run := func() *retrieval.Codes {
		return TrainBinaryAutoencoder(ds, BAOptions{
			Bits: 8, Machines: 2, Iterations: 3, Seed: 5,
		}).Codes
	}
	if !run().Equal(run()) {
		t.Fatal("facade training must be deterministic")
	}
}

func TestTrainBinaryAutoencoderValidation(t *testing.T) {
	ds, _ := SyntheticBenchmark(100, 10, 8, 4, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing Bits")
		}
	}()
	TrainBinaryAutoencoder(ds, BAOptions{})
}

func TestDefaultsFillIn(t *testing.T) {
	ds, _ := SyntheticBenchmark(200, 10, 8, 4, 7)
	res := TrainBinaryAutoencoder(ds, BAOptions{Bits: 6, Seed: 7}) // 1 machine, 10 iters
	if len(res.History) != 10 {
		t.Fatalf("default iterations = %d", len(res.History))
	}
	if res.History[0].AliveMachines != 1 {
		t.Fatal("default machine count should be 1")
	}
}
