// Package parmac is the public API of this reproduction of "ParMAC:
// distributed optimisation of nested functions, with application to learning
// binary autoencoders" (Carreira-Perpiñán & Alizadeh, MLSYS 2019).
//
// ParMAC distributes the method of auxiliary coordinates (MAC) for training
// nested models: P machines hold disjoint data shards and the auxiliary
// coordinates of their points; the M independent submodels of the W step
// circulate through the machines in a ring, training by SGD on each shard
// they visit; the Z step updates each machine's coordinates with no
// communication at all.
//
// The package re-exports the generic engine (internal/core) and the two
// model families adapted to it — binary autoencoders (internal/binauto) and
// K-layer sigmoid nets (internal/macnet) — plus a one-call helper for the
// paper's flagship application, learning binary hash functions:
//
//	ds := parmac.SyntheticSIFT(10000, 128, 32, 1)
//	result := parmac.TrainBinaryAutoencoder(ds, parmac.BAOptions{
//	    Bits: 16, Machines: 8, Epochs: 1, Iterations: 12, Seed: 1,
//	})
//	codes := result.Model.Encode(ds)   // packed binary codes for retrieval
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results.
package parmac

import (
	"repro/internal/binauto"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/retrieval"
)

// Re-exported engine types. See internal/core for full documentation.
type (
	// Engine runs ParMAC iterations over a Problem.
	Engine = core.Engine
	// Config parameterises the engine (machines, epochs, shuffling,
	// replicas, failure injection).
	Config = core.Config
	// Problem adapts a MAC algorithm to the engine.
	Problem = core.Problem
	// Submodel is one circulating unit of the W step.
	Submodel = core.Submodel
	// Shard is one machine's data portion.
	Shard = core.Shard
	// IterationResult summarises one W+Z iteration.
	IterationResult = core.IterationResult
	// FailureInjection schedules a machine death for fault-tolerance runs.
	FailureInjection = core.FailureInjection
)

// Failure modes for Config.Fail.
const (
	FailNone      = core.FailNone
	FailDropToken = core.FailDropToken
)

// New creates a ParMAC engine for the problem.
func New(prob Problem, cfg Config) *Engine { return core.New(prob, cfg) }

// BAOptions configures TrainBinaryAutoencoder.
type BAOptions struct {
	Bits       int // L
	Machines   int // P
	Epochs     int // e per W step
	Iterations int // MAC iterations (μ stages)

	Mu0      float64 // first penalty value (default 1e-4)
	MuFactor float64 // μ growth factor a (default 2)
	Shuffle  bool
	Seed     int64

	// Cores is the number of goroutines each machine uses for its Z step:
	// 0 or 1 serial, < 0 every core (GOMAXPROCS). The codes are independent
	// per point, so the trained model is bit-identical for any value.
	Cores int

	// ApproxZ forces the alternating-optimisation Z step instead of exact
	// enumeration. The paper enumerates up to L=16 on its clusters; on one
	// laptop core the alternating solver is the practical choice for L ≳ 12.
	ApproxZ bool
}

// BAResult is the outcome of TrainBinaryAutoencoder.
type BAResult struct {
	Model   *binauto.Model
	Codes   *retrieval.Codes // final auxiliary codes, shard order
	History []IterationResult
	Problem *binauto.ParMACProblem
}

// TrainBinaryAutoencoder trains a binary autoencoder with ParMAC on the
// dataset: codes initialised from truncated PCA, L per-bit linear SVMs plus L
// decoder groups circulating over P machines, the works. It is the
// one-call version of the paper's flagship experiment.
func TrainBinaryAutoencoder(ds *dataset.Dataset, opt BAOptions) *BAResult {
	if opt.Bits <= 0 {
		panic("parmac: BAOptions.Bits required")
	}
	if opt.Machines <= 0 {
		opt.Machines = 1
	}
	if opt.Iterations <= 0 {
		opt.Iterations = 10
	}
	zm := binauto.ZAuto
	if opt.ApproxZ {
		zm = binauto.ZAlternate
	}
	shards := dataset.ShuffledShardIndices(ds.N, opt.Machines, nil, opt.Seed)
	prob := binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
		L: opt.Bits, Mu0: opt.Mu0, MuFactor: opt.MuFactor, ZMethod: zm, Seed: opt.Seed,
		Parallel: opt.Cores,
	})
	eng := New(prob, Config{
		P: opt.Machines, Epochs: opt.Epochs, Shuffle: opt.Shuffle, Seed: opt.Seed,
	})
	defer eng.Shutdown()
	hist := eng.Run(opt.Iterations)
	return &BAResult{
		Model:   prob.AssembleModel(),
		Codes:   prob.GatherCodes(),
		History: hist,
		Problem: prob,
	}
}

// SyntheticSIFT generates a byte-quantised SIFT-like benchmark dataset
// (clustered descriptors), the stand-in for the paper's image sets.
func SyntheticSIFT(n, d, clusters int, seed int64) *dataset.Dataset {
	return dataset.SIFTLike(n, d, clusters, seed)
}

// SyntheticGIST generates a float GIST-like dataset (the CIFAR analogue).
func SyntheticGIST(n, d, clusters int, seed int64) *dataset.Dataset {
	return dataset.GISTLike(n, d, clusters, seed)
}

// SyntheticBenchmark generates a base set plus queries drawn from the same
// mixture (the correct retrieval-benchmark protocol), byte-quantised on a
// shared grid.
func SyntheticBenchmark(n, q, d, clusters int, seed int64) (base, queries *dataset.Dataset) {
	return dataset.WithQueries(n, q, d, clusters, seed, true)
}

// ManifoldBenchmark generates a base set plus queries on a smooth nonlinear
// manifold — the data regime (like real GIST/SIFT descriptors) where learned
// binary autoencoders compete with and beat the PCA-based hashes.
func ManifoldBenchmark(n, q, d int, seed int64) (base, queries *dataset.Dataset) {
	return dataset.ManifoldWithQueries(n, q, d, 3, seed)
}
