package parmac

// One benchmark per table/figure of the paper (each drives the same
// experiment code as cmd/parmac-bench, at reduced scale so `go test -bench .`
// stays tractable on one core), plus micro-benchmarks of the hot paths:
// the Z-step solvers, the circulating-submodel SGD passes, one full engine
// iteration, and the simulator/theory speedup evaluations.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/binauto"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/retrieval"
	"repro/internal/sim"
	"repro/internal/speedup"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		tabs := e.Run(experiments.RunConfig{Quick: true, Seed: 1})
		for _, t := range tabs {
			t.Fprint(io.Discard)
		}
	}
}

// BenchmarkFig03Schedule regenerates the P=4, M=12 W-step schedule (Fig. 3).
func BenchmarkFig03Schedule(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig04TheoryCurve regenerates the typical speedup curve (Fig. 4).
func BenchmarkFig04TheoryCurve(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig05TheoryGrid regenerates the speedup-parameter grid (Fig. 5).
func BenchmarkFig05TheoryGrid(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig07SIFT10KCurves regenerates the SIFT-10K learning curves (Fig. 7).
func BenchmarkFig07SIFT10KCurves(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig08CIFARCurves regenerates the CIFAR learning curves (Fig. 8).
func BenchmarkFig08CIFARCurves(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig09Shuffling regenerates the shuffling comparison (Fig. 9).
func BenchmarkFig09Shuffling(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Speedups regenerates the strong-scaling speedups (Fig. 10).
func BenchmarkFig10Speedups(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11SIFT1BCurves regenerates the SIFT-1B learning curves (Fig. 11).
func BenchmarkFig11SIFT1BCurves(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12RecallAtR regenerates the recall@R comparison (Fig. 12).
func BenchmarkFig12RecallAtR(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13CommSplit regenerates the nodes×procs split (Fig. 13).
func BenchmarkFig13CommSplit(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkTab01Systems regenerates the system-parameter table (Table 1).
func BenchmarkTab01Systems(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkTabSIFT1B regenerates the §8.4 recall/time table.
func BenchmarkTabSIFT1B(b *testing.B) { benchExperiment(b, "tab-sift1b") }

// ---------------------------------------------------------------------------
// micro-benchmarks of the hot paths
// ---------------------------------------------------------------------------

func benchModelAndData(b *testing.B, n, d, l int) (*binauto.Model, *dataset.Dataset, *retrieval.Codes) {
	b.Helper()
	ds := dataset.GISTLike(n, d, 8, 1)
	m, z, _ := binauto.RunMAC(ds, binauto.MACConfig{
		L: l, Mu0: 1e-3, MuFactor: 2, Iters: 2, SVMEpochs: 1, Seed: 1,
	})
	return m, ds, z
}

// BenchmarkZStepEnumerate measures the exact Gray-code Z solve per point
// (L=12: 4096 candidates).
func BenchmarkZStepEnumerate(b *testing.B) {
	m, ds, z := benchModelAndData(b, 64, 32, 12)
	s := binauto.NewZSolver(m, 0.5, binauto.ZEnumerate)
	buf := make([]float64, ds.D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(ds.Point(i%ds.N, buf), z, i%ds.N)
	}
}

// BenchmarkZStepAlternate measures the relaxed+alternating Z solve per point
// at L=32.
func BenchmarkZStepAlternate(b *testing.B) {
	ds := dataset.GISTLike(64, 64, 8, 2)
	m, z, _ := binauto.RunMAC(ds, binauto.MACConfig{
		L: 32, Mu0: 1e-3, Iters: 1, SVMEpochs: 1, Seed: 2, ZMethod: binauto.ZAlternate,
	})
	s := binauto.NewZSolver(m, 0.5, binauto.ZAlternate)
	buf := make([]float64, ds.D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(ds.Point(i%ds.N, buf), z, i%ds.N)
	}
}

// BenchmarkZStepEnumerateD128 measures the exact Gray-code solve at SIFT
// dimension (L=12, D=128), the regime where the Gram-incremental walk pays
// off most: O(L) per candidate instead of O(D).
func BenchmarkZStepEnumerateD128(b *testing.B) {
	ds := dataset.GISTLike(64, 128, 8, 7)
	m := perf.RandomBA(128, 12, 7)
	s := binauto.NewZSolver(m, 0.5, binauto.ZEnumerate)
	z := m.Encode(ds)
	buf := make([]float64, ds.D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(ds.Point(i%ds.N, buf), z, i%ds.N)
	}
}

// BenchmarkZStepAlternateD128 measures the relaxed+alternating solve at SIFT
// dimension (L=32, D=128); flip candidates cost O(1) against the Gram matrix.
func BenchmarkZStepAlternateD128(b *testing.B) {
	ds := dataset.GISTLike(64, 128, 8, 8)
	m := perf.RandomBA(128, 32, 8)
	s := binauto.NewZSolver(m, 0.5, binauto.ZAlternate)
	z := m.Encode(ds)
	buf := make([]float64, ds.D)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(ds.Point(i%ds.N, buf), z, i%ds.N)
	}
}

// BenchmarkDecoderReconstruct measures packed-word f(z) reconstruction.
func BenchmarkDecoderReconstruct(b *testing.B) {
	m := perf.RandomBA(128, 32, 10)
	z := retrieval.NewCodes(256, 32)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < z.N; i++ {
		z.SetWord64(i, rng.Uint64()&0xFFFFFFFF)
	}
	dst := make([]float64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Dec.Reconstruct(z, i%z.N, dst)
	}
}

// BenchmarkRunZStep sweeps the full shard-local Z step over worker counts
// (the per-machine multicore knob); output is bit-identical across the sweep.
func BenchmarkRunZStep(b *testing.B) {
	ds := dataset.GISTLike(4000, 64, 8, 13)
	m := perf.RandomBA(64, 16, 13)
	init := m.Encode(ds)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				z := init.Clone()
				b.StartTimer()
				binauto.RunZStepParallel(m, ds, z, 0.5, binauto.ZAlternate, workers)
			}
		})
	}
}

// BenchmarkFitDecoder compares the dense exact decoder fit against the
// popcount-Gram WKernel on the same codes (N=800, L=16, D=64).
func BenchmarkFitDecoder(b *testing.B) {
	ds := dataset.GISTLike(800, 64, 8, 14)
	m := perf.RandomBA(64, 16, 14)
	z := retrieval.NewCodes(ds.N, 16)
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < z.N; i++ {
		z.SetWord64(i, rng.Uint64()&0xFFFF)
	}
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := m.FitDecoderExactDense(ds, z, 1e-4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("popcount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := m.FitDecoderExactParallel(ds, z, 1e-4, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTrainWStep compares the serial per-bit W step against the fused
// multi-bit trainer on byte-quantised SIFT-like data (N=500, L=8, D=64).
func BenchmarkTrainWStep(b *testing.B) {
	ds := dataset.SIFTLike(500, 64, 8, 16)
	z := retrieval.NewCodes(ds.N, 8)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < z.N; i++ {
		z.SetWord64(i, rng.Uint64()&0xFF)
	}
	pristine := binauto.NewModel(64, 8, 1e-5)
	cfg := &binauto.MACConfig{L: 8, SVMLambda: 1e-5, SVMEpochs: 2, DecLambda: 1e-4}
	run := func(b *testing.B, step func(m *binauto.Model, rng *rand.Rand) error) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m := pristine.Clone()
			wrng := rand.New(rand.NewSource(18))
			b.StartTimer()
			if err := step(m, wrng); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		run(b, func(m *binauto.Model, rng *rand.Rand) error {
			return binauto.TrainWStepSerial(m, ds, z, cfg, rng)
		})
	})
	b.Run("fused", func(b *testing.B) {
		run(b, func(m *binauto.Model, rng *rand.Rand) error {
			return binauto.TrainWStepFused(m, ds, z, cfg, rng, 1)
		})
	})
}

// BenchmarkAllTopKHamming measures the batched query-parallel Hamming scan
// (N=20000, Q=8, k=50) at worker counts 1 and 4.
func BenchmarkAllTopKHamming(b *testing.B) {
	base := retrieval.NewCodes(20000, 64)
	queries := retrieval.NewCodes(8, 64)
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < base.N; i++ {
		base.SetWord64(i, rng.Uint64())
	}
	for i := 0; i < queries.N; i++ {
		queries.SetWord64(i, rng.Uint64())
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				retrieval.AllTopKHamming(base, queries, 50, workers)
			}
		})
	}
}

// BenchmarkEngineIteration measures one full ParMAC W+Z iteration (P=4,
// L=8 BA on 800 points).
func BenchmarkEngineIteration(b *testing.B) {
	ds := dataset.GISTLike(800, 16, 8, 3)
	shards := dataset.ShardIndices(ds.N, 4, nil)
	prob := binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
		L: 8, Mu0: 1e-3, Seed: 3,
	})
	eng := core.New(prob, core.Config{P: 4, Epochs: 1, Seed: 3})
	defer eng.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Iterate()
	}
}

// BenchmarkSimIteration measures the discrete-event simulator at Fig. 10's
// SIFT-1B scale (P=128, M=128).
func BenchmarkSimIteration(b *testing.B) {
	cfg := sim.Config{P: 128, N: 100000000, M: 128, Epochs: 2, TWr: 1, TWc: 1e4, TZr: 40, Seed: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(cfg)
	}
}

// BenchmarkTheoryCurve measures the closed-form S(P) over a 2000-point grid.
func BenchmarkTheoryCurve(b *testing.B) {
	p := speedup.Params{N: 1e6, M: 512, E: 1, TWr: 1, TZr: 5, TWc: 1e3}
	for i := 0; i < b.N; i++ {
		for q := 1; q <= 2000; q++ {
			_ = p.Speedup(float64(q))
		}
	}
}

// BenchmarkTrainBinaryAutoencoder measures the public one-call API end to
// end at small scale.
func BenchmarkTrainBinaryAutoencoder(b *testing.B) {
	ds := SyntheticSIFT(400, 16, 8, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainBinaryAutoencoder(ds, BAOptions{
			Bits: 8, Machines: 2, Epochs: 1, Iterations: 3, Seed: 5,
		})
	}
}

// BenchmarkAblationZMethod regenerates the exact-vs-alternating Z ablation.
func BenchmarkAblationZMethod(b *testing.B) { benchExperiment(b, "abl-z") }

// BenchmarkAblationDecoderGroups regenerates the §5.4 grouping ablation.
func BenchmarkAblationDecoderGroups(b *testing.B) { benchExperiment(b, "abl-groups") }

// BenchmarkAblationWithinPasses regenerates the §4.2 two-round W-step ablation.
func BenchmarkAblationWithinPasses(b *testing.B) { benchExperiment(b, "abl-within") }
