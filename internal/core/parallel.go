package core

import (
	"runtime"
	"sync"
)

// The Z step is embarrassingly parallel within a machine — every point's
// coordinate update depends only on the (fixed) model, so the paper charges
// each machine t_Z^r per point on the assumption that all its cores are busy
// (§5.1). ParallelChunks is the shard-local worker pool the Problem
// implementations use to make that assumption true.

// MinParallelPoints is the shard size below which a Z step should stay
// serial: goroutine startup and WaitGroup synchronisation cost more than the
// solves themselves on tiny shards. Problem implementations share this
// threshold so the Parallel knob is a pure speed knob at every shard size.
const MinParallelPoints = 64

// Cores resolves a Z-step parallelism knob: 0 or 1 means serial, a negative
// value means every core the process may use (GOMAXPROCS), and any other
// value is taken literally.
func Cores(p int) int {
	switch {
	case p < 0:
		return runtime.GOMAXPROCS(0)
	case p == 0:
		return 1
	default:
		return p
	}
}

// ClampWorkers resolves a worker count for a per-point loop over n items:
// serial (1) when workers <= 1 or the loop is too small to amortise goroutine
// startup, otherwise bounded so every worker gets at least
// MinParallelPoints/2 items. This is the sizing rule the Z step has always
// used, shared so the W-step and retrieval pools degrade to serial on tiny
// inputs the same way.
func ClampWorkers(n, workers int) int {
	if workers <= 1 || n < MinParallelPoints {
		return 1
	}
	if max := n / (MinParallelPoints / 2); workers > max {
		workers = max
	}
	return workers
}

// ParallelChunks splits [0, n) into at most workers contiguous chunks and
// runs fn(worker, lo, hi) on each from its own goroutine, returning when all
// chunks are done. fn receives a dense worker index in [0, workers) for
// per-goroutine state (scratch buffers, counters). workers <= 1 (or n small
// enough to need one chunk) runs fn(0, 0, n) on the calling goroutine —
// serial callers pay no synchronisation.
func ParallelChunks(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
		w++
	}
	wg.Wait()
}
