package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
)

// The unannounced-death acceptance test on the TCP backend: a worker process
// severs its connection mid-W-step (the in-process stand-in for a SIGKILL —
// the real-process variant lives in cmd/parmac-train's e2e test), and the
// coordinator must finish training on the survivors with a model
// bit-identical to the announced-death path for the same survivor set.
func TestDistributedUnannouncedMatchesAnnounced(t *testing.T) {
	const P, M, shards, points, iters = 3, 6, 3, 4, 2
	base := core.Config{
		P: P, Epochs: 2, Replicas: true, Seed: 12,
		RescueTimeout: 2 * time.Second, RescueRetries: 2,
	}
	ann := base
	ann.Fail = core.FailureInjection{Mode: core.FailDropToken, Rank: 1, Iteration: 0, AfterTok: 3}
	una := base
	una.Fail = core.FailureInjection{Mode: core.FailUnannounced, Rank: 1, Iteration: 0, AfterTok: 3}

	coordA, workersA, resA := runDistributed(t, ann, iters, shards, points, M)
	coordU, workersU, resU := runDistributed(t, una, iters, shards, points, M)

	for i := range coordA.subs {
		a, u := coordA.subs[i], coordU.subs[i]
		if a.Sum != u.Sum || a.Count != u.Count {
			t.Fatalf("submodel %d diverged: announced(sum=%v,count=%d) unannounced(sum=%v,count=%d)",
				i, a.Sum, a.Count, u.Sum, u.Count)
		}
		if len(a.Visits) != len(u.Visits) {
			t.Fatalf("submodel %d visit logs differ: %v vs %v", i, a.Visits, u.Visits)
		}
		for j := range a.Visits {
			if a.Visits[j] != u.Visits[j] {
				t.Fatalf("submodel %d visit %d differs: %v vs %v", i, j, a.Visits, u.Visits)
			}
		}
	}
	// Survivors' shard-local Z state must agree across the two failure modes.
	for _, r := range []int{0, 2} {
		if za, zu := workersA[r].shards[r].z[0], workersU[r].shards[r].z[0]; za != zu {
			t.Fatalf("worker %d Z state diverged: announced %v, unannounced %v", r, za, zu)
		}
	}

	if len(resA[0].Failures) != 1 || resA[0].Failures[0].Unannounced {
		t.Fatalf("announced run events = %+v", resA[0].Failures)
	}
	var sawDeath, sawRecovery bool
	for _, ev := range resU[0].Failures {
		if ev.Rank == 1 && ev.Unannounced && ev.LostToken == -1 {
			sawDeath = true
		}
		if ev.Rank == 1 && ev.Unannounced && ev.LostToken >= 0 && ev.Recovered {
			sawRecovery = true
		}
	}
	if !sawDeath || !sawRecovery {
		t.Fatalf("unannounced run events = %+v, want death + recovered token", resU[0].Failures)
	}
	for it := 0; it < iters; it++ {
		if resA[it].AliveMachines != P-1 || resU[it].AliveMachines != P-1 {
			t.Fatalf("iteration %d alive: announced %d, unannounced %d",
				it, resA[it].AliveMachines, resU[it].AliveMachines)
		}
	}
	// The TCP hub must have counted (not delivered, not crashed on) frames
	// addressed to the departed worker.
	if resU[0].DroppedFrames == 0 && resU[1].DroppedFrames == 0 {
		t.Log("no frames dropped toward the dead worker (timing-dependent; not an error)")
	}
}
