package core

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// wireBox mirrors the TCP transport's payloadBox: protocol messages cross the
// fabric as gob interface values, so the golden bytes must exercise the same
// registration machinery the transport relies on.
type wireBox struct{ V any }

// fixedWireMessages returns one deterministic instance per gob-registered
// protocol type. Submodel fields stay nil — core defines only the interface;
// the concrete carriers pin their own formats (binauto, macnet golden tests).
func fixedWireMessages() []struct {
	file string
	msg  any
} {
	return []struct {
		file string
		msg  any
	}{
		{"token.golden.hex", &Token{ID: 3, Step: 2, Version: 1, Route: []int{0, 2, 1, 0}, Train: 3}},
		{"wstart.golden.hex", WStartMsg{Iter: 4, Train: 6, Within: 2, Shuffle: true, Replicas: true, M: 8, FailAfter: -1}},
		{"death_notice.golden.hex", DeathNotice{
			Rank:    2,
			Tok:     &Token{ID: 5, Step: 1, Version: 1, Route: []int{2, 0}, Train: 1},
			LostID:  7,
			LostTok: &Token{ID: 7, Step: 3, Route: []int{1, 2, 0}, Train: 2},
			Hops:    12,
			Bytes:   4096,
		}},
		{"wack.golden.hex", WAckMsg{Entries: []AckEntry{{ID: 0, Version: 2}, {ID: 3, Version: -1}}, Hops: 9, Bytes: 1024}},
		{"zdone.golden.hex", ZDoneMsg{Changed: 17}},
		{"fix.golden.hex", FixMsg{ID: 6}},
		{"rescue_reply.golden.hex", RescueReply{Version: 4, OK: true}},
		{"dead_ranks.golden.hex", DeadRanksMsg{Dead: []int{1, 3}}},
		{"probe_reply.golden.hex", ProbeReply{Entries: []TraceEntry{
			{ID: 2, Step: 4, To: 1, Version: 3},
			{ID: 5, Step: 7, To: 3, Version: 6},
		}}},
	}
}

// TestProtocolWireGolden decodes byte streams committed when each protocol
// message's wire format was defined. As in binauto/serialize_test.go, the
// check is decodability plus state equality — a worker built today must still
// understand frames from the committed format. -update re-captures the
// current encoding; flag any regeneration in the PR, because old workers
// cannot talk to new coordinators across a format change.
func TestProtocolWireGolden(t *testing.T) {
	for _, c := range fixedWireMessages() {
		path := filepath.Join("testdata", c.file)
		if *update {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&wireBox{V: c.msg}); err != nil {
				t.Fatalf("%s: encode: %v", c.file, err)
			}
			if err := os.WriteFile(path, []byte(hex.EncodeToString(buf.Bytes())+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		hexBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
		}
		raw, err := hex.DecodeString(strings.TrimSpace(string(hexBytes)))
		if err != nil {
			t.Fatal(err)
		}
		var back wireBox
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&back); err != nil {
			t.Fatalf("%s: committed wire bytes no longer decode — the format drifted incompatibly: %v", c.file, err)
		}
		if !reflect.DeepEqual(back.V, c.msg) {
			t.Fatalf("%s: committed wire bytes decode to different state:\ngot  %#v\nwant %#v", c.file, back.V, c.msg)
		}
	}
}
