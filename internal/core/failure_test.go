package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
)

// Tests for surviving unannounced worker death: the machine severs its fabric
// link mid-W-step (a SIGKILL, in effect) and the coordinator must detect it
// through the transport, reconstruct the lost-token inventory from the
// survivors' records, and finish training with a model bit-identical to the
// announced-death path.

// fastRescue keeps failure-era waits short in tests without weakening them.
const fastRescue = 2 * time.Second

func runWithFailures(t *testing.T, fails []FailureInjection, iters int) (*toyProblem, []IterationResult) {
	t.Helper()
	p := newToyProblem(3, 4, 6)
	e := New(p, Config{
		P: 3, Epochs: 2, Replicas: true, Seed: 12,
		RescueTimeout: fastRescue, RescueRetries: 2,
		Fails: fails,
	})
	defer e.Shutdown()
	return p, e.Run(iters)
}

func hasEvent(evs []FailureEvent, match func(FailureEvent) bool) bool {
	for _, ev := range evs {
		if match(ev) {
			return true
		}
	}
	return false
}

// TestUnannouncedDeathMatchesAnnounced is the core bit-parity claim: killing
// a machine without a DeathNotice must produce exactly the model the
// announced death of the same machine at the same protocol point produces.
// The recovery walk visits the same replicas in the same order, so every
// surviving submodel — sums, counts and visit logs — must agree bit for bit.
func TestUnannouncedDeathMatchesAnnounced(t *testing.T) {
	inj := func(mode FailMode) []FailureInjection {
		return []FailureInjection{{Mode: mode, Rank: 1, Iteration: 0, AfterTok: 3}}
	}
	pa, ra := runWithFailures(t, inj(FailDropToken), 2)
	pu, ru := runWithFailures(t, inj(FailUnannounced), 2)

	for i := range pa.subs {
		a, u := pa.subs[i], pu.subs[i]
		if a.sum != u.sum || a.count != u.count {
			t.Fatalf("submodel %d diverged: announced(sum=%v,count=%d) unannounced(sum=%v,count=%d)",
				i, a.sum, a.count, u.sum, u.count)
		}
		if len(a.visits) != len(u.visits) {
			t.Fatalf("submodel %d visit logs differ: %v vs %v", i, a.visits, u.visits)
		}
		for j := range a.visits {
			if a.visits[j] != u.visits[j] {
				t.Fatalf("submodel %d visit %d differs: %v vs %v", i, j, a.visits, u.visits)
			}
		}
	}
	for s := range pa.shards {
		if s == 1 {
			continue // the dead machine's shard is untouched after the death
		}
		if pa.shards[s].z[0] != pu.shards[s].z[0] {
			t.Fatalf("shard %d Z state diverged: %v vs %v", s, pa.shards[s].z[0], pu.shards[s].z[0])
		}
	}

	if len(ra[0].Failures) != 1 || ra[0].Failures[0].Unannounced {
		t.Fatalf("announced run events = %+v", ra[0].Failures)
	}
	// The unannounced run records the death itself plus every token the sweep
	// had to resurrect — at minimum the one the machine held when it died.
	if !hasEvent(ru[0].Failures, func(ev FailureEvent) bool {
		return ev.Rank == 1 && ev.LostToken == -1 && ev.Unannounced
	}) {
		t.Fatalf("unannounced death not recorded: %+v", ru[0].Failures)
	}
	if !hasEvent(ru[0].Failures, func(ev FailureEvent) bool {
		return ev.Rank == 1 && ev.LostToken >= 0 && ev.Recovered && ev.Unannounced
	}) {
		t.Fatalf("no recovered lost token recorded: %+v", ru[0].Failures)
	}
	for it := 0; it < 2; it++ {
		if ra[it].AliveMachines != 2 || ru[it].AliveMachines != 2 {
			t.Fatalf("iteration %d alive: announced %d, unannounced %d",
				it, ra[it].AliveMachines, ru[it].AliveMachines)
		}
	}
}

// TestTwoUnannouncedDeathsSameWStep: overlapping unannounced failures are
// best-effort — training must still complete on the survivors with both
// deaths recorded, and the engine must keep iterating afterwards.
func TestTwoUnannouncedDeathsSameWStep(t *testing.T) {
	p := newToyProblem(4, 3, 5)
	e := New(p, Config{
		P: 4, Epochs: 2, Replicas: true, Seed: 33,
		RescueTimeout: fastRescue, RescueRetries: 2,
		Fails: []FailureInjection{
			{Mode: FailUnannounced, Rank: 1, Iteration: 0, AfterTok: 2},
			{Mode: FailUnannounced, Rank: 3, Iteration: 0, AfterTok: 2},
		},
	})
	defer e.Shutdown()
	res := e.Iterate()
	if res.AliveMachines != 2 {
		t.Fatalf("alive = %d, want 2 (failures: %+v)", res.AliveMachines, res.Failures)
	}
	for _, rank := range []int{1, 3} {
		if !hasEvent(res.Failures, func(ev FailureEvent) bool {
			return ev.Rank == rank && ev.Unannounced && ev.LostToken == -1
		}) {
			t.Fatalf("death of rank %d not recorded: %+v", rank, res.Failures)
		}
	}
	for _, sub := range p.subs {
		if sub.count == 0 {
			t.Fatalf("submodel %d never trained", sub.id)
		}
	}
	res2 := e.Iterate()
	if res2.AliveMachines != 2 || len(res2.Failures) != 0 {
		t.Fatalf("second iteration after double death: %+v", res2)
	}
}

// TestRescuerDiesDuringRescue: rank 1 dies announced, losing a token; rank 0
// — its ring predecessor and therefore the replica holder asked first — dies
// unannounced the moment the rescue request arrives. The coordinator must
// fail over to the next replica upstream (or the authoritative copy) and
// finish on the lone survivor.
func TestRescuerDiesDuringRescue(t *testing.T) {
	p, res := runWithFailures(t, []FailureInjection{
		{Mode: FailDropToken, Rank: 1, Iteration: 0, AfterTok: 3},
		{Mode: FailRescueAbort, Rank: 0, Iteration: 0},
	}, 2)
	if res[0].AliveMachines != 1 {
		t.Fatalf("alive = %d, want 1 (failures: %+v)", res[0].AliveMachines, res[0].Failures)
	}
	if !hasEvent(res[0].Failures, func(ev FailureEvent) bool {
		return ev.Rank == 1 && !ev.Unannounced && ev.Recovered
	}) {
		t.Fatalf("announced death of rank 1 not recovered: %+v", res[0].Failures)
	}
	if !hasEvent(res[0].Failures, func(ev FailureEvent) bool {
		return ev.Rank == 0 && ev.Unannounced
	}) {
		t.Fatalf("rescuer death not recorded: %+v", res[0].Failures)
	}
	for _, sub := range p.subs {
		if sub.count == 0 {
			t.Fatalf("submodel %d never trained", sub.id)
		}
	}
	if res[1].AliveMachines != 1 {
		t.Fatalf("second iteration alive = %d, want 1", res[1].AliveMachines)
	}
}

// TestDeathBetweenIterations: a machine killed after its Z ack but before
// the next W step. collectDowns must mark it dead before routes are built,
// so the iteration runs clean on the survivors with no token ever lost.
func TestDeathBetweenIterations(t *testing.T) {
	p := newToyProblem(3, 4, 4)
	e := New(p, Config{P: 3, Epochs: 1, Replicas: true, Seed: 5, RescueTimeout: fastRescue})
	defer e.Shutdown()
	r0 := e.Iterate()
	if r0.AliveMachines != 3 || len(r0.Failures) != 0 {
		t.Fatalf("healthy iteration: %+v", r0)
	}
	e.net.Kill(1)
	r1 := e.Iterate()
	if r1.AliveMachines != 2 {
		t.Fatalf("alive = %d, want 2", r1.AliveMachines)
	}
	if len(r1.Failures) != 1 || r1.Failures[0].Rank != 1 ||
		!r1.Failures[0].Unannounced || r1.Failures[0].LostToken != -1 {
		t.Fatalf("failures = %+v, want one clean unannounced death", r1.Failures)
	}
	for _, sub := range p.subs {
		if sub.count == 0 {
			t.Fatalf("submodel %d never trained", sub.id)
		}
	}
}

// TestEngineUnderChaosKill drives the full engine over a chaos-wrapped
// fabric: the chaos layer kills rank 1 at a deterministic protocol point
// (its third token forward), unannounced, with the in-flight token lost.
// The run must complete on the survivors and record the death.
func TestEngineUnderChaosKill(t *testing.T) {
	const P, M = 3, 5
	prob := newToyProblem(P, 4, M)
	inner := cluster.NewNetwork(P + 1)
	fab, err := chaos.New(inner, chaos.Options{
		Seed:  7,
		Kills: []chaos.KillSpec{{Rank: 1, Tag: tagToken, AfterSends: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	for r := 0; r < P; r++ {
		go RunWorker(fab.Comm(r), prob, r, WorkerOptions{
			Seed:          WorkerSeed(99, r),
			SharedProblem: true,
		})
	}
	cfg := Config{
		P: P, Epochs: 2, Replicas: true, Seed: 99,
		RescueTimeout: fastRescue, RescueRetries: 2,
	}
	e := NewDistributed(prob, cfg, fab.Comm(P))
	e.SetStatsSource(fab.Stats)
	defer e.Shutdown()

	res := e.Iterate()
	if res.AliveMachines != P-1 {
		t.Fatalf("alive = %d, want %d (failures: %+v)", res.AliveMachines, P-1, res.Failures)
	}
	if !hasEvent(res.Failures, func(ev FailureEvent) bool {
		return ev.Rank == 1 && ev.Unannounced
	}) {
		t.Fatalf("chaos kill not recorded: %+v", res.Failures)
	}
	for _, sub := range prob.subs {
		if sub.count == 0 {
			t.Fatalf("submodel %d never trained", sub.id)
		}
	}
	res2 := e.Iterate()
	if res2.AliveMachines != P-1 || len(res2.Failures) != 0 {
		t.Fatalf("second iteration after chaos kill: %+v", res2)
	}
}
