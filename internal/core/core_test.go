package core

import (
	"testing"
	"testing/quick"
)

// ---------------------------------------------------------------------------
// toy problem: submodel i accumulates the sum of the values it sees; the Z
// step writes the global mean estimate into the shard coordinates. This makes
// visit coverage, determinism and model completeness directly observable.
// ---------------------------------------------------------------------------

type toyShard struct {
	id   int
	vals []float64
	z    []float64
}

func (s *toyShard) NumPoints() int { return len(s.vals) }

type toySub struct {
	id     int
	sum    float64
	count  int
	visits []int // shard ids in visit order
}

func (t *toySub) ID() int { return t.id }

func (t *toySub) TrainOn(shard Shard, order []int) {
	ts := shard.(*toyShard)
	for _, i := range order {
		t.sum += ts.vals[i]
		t.count++
	}
	t.visits = append(t.visits, ts.id)
}

func (t *toySub) Clone() Submodel {
	c := *t
	c.visits = append([]int(nil), t.visits...)
	return &c
}

func (t *toySub) Bytes() int { return 16 }

type toyProblem struct {
	shards []*toyShard
	subs   []*toySub
	iters  []int // OnIterationStart log
}

func newToyProblem(nShards, pointsPerShard, m int) *toyProblem {
	p := &toyProblem{}
	v := 0.0
	for s := 0; s < nShards; s++ {
		sh := &toyShard{id: s, z: make([]float64, pointsPerShard)}
		for i := 0; i < pointsPerShard; i++ {
			sh.vals = append(sh.vals, v)
			v++
		}
		p.shards = append(p.shards, sh)
	}
	for i := 0; i < m; i++ {
		p.subs = append(p.subs, &toySub{id: i})
	}
	return p
}

func (p *toyProblem) Submodels() []Submodel {
	out := make([]Submodel, len(p.subs))
	for i, s := range p.subs {
		out[i] = s
	}
	return out
}

func (p *toyProblem) NumShards() int { return len(p.shards) }

func (p *toyProblem) OnModelSync(model []Submodel) {
	for i, sm := range model {
		p.subs[i] = sm.(*toySub)
	}
}
func (p *toyProblem) Shard(i int) Shard      { return p.shards[i] }
func (p *toyProblem) OnIterationStart(i int) { p.iters = append(p.iters, i) }

func (p *toyProblem) ZStep(shard int, model []Submodel) int {
	var mean float64
	for _, sm := range model {
		if sm == nil {
			panic("toy: incomplete model at Z step")
		}
		t := sm.(*toySub)
		if t.count > 0 {
			mean += t.sum / float64(t.count)
		}
	}
	mean /= float64(len(model))
	sh := p.shards[shard]
	changed := 0
	for i := range sh.z {
		if sh.z[i] != mean {
			sh.z[i] = mean
			changed++
		}
	}
	return changed
}

func (p *toyProblem) totalSum() float64 {
	var s float64
	for _, sh := range p.shards {
		for _, v := range sh.vals {
			s += v
		}
	}
	return s
}

// ---------------------------------------------------------------------------

func TestSingleMachineExactCounts(t *testing.T) {
	p := newToyProblem(1, 10, 4)
	e := New(p, Config{P: 1, Epochs: 2, Seed: 1})
	defer e.Shutdown()
	res := e.Iterate()
	for _, sub := range p.subs {
		if sub.count != 2*10 {
			t.Fatalf("submodel %d saw %d points, want 20", sub.id, sub.count)
		}
		if sub.sum != 2*p.totalSum() {
			t.Fatalf("submodel %d sum %v, want %v", sub.id, sub.sum, 2*p.totalSum())
		}
	}
	if res.ZChanged != 10 {
		t.Fatalf("ZChanged = %d, want 10", res.ZChanged)
	}
	if res.FixMessages != 0 {
		t.Fatalf("unexpected fix messages: %d", res.FixMessages)
	}
}

func TestEverySubmodelVisitsEveryMachinePerEpoch(t *testing.T) {
	const P, E, M = 4, 3, 6
	p := newToyProblem(P, 5, M)
	e := New(p, Config{P: P, Epochs: E, Seed: 2})
	defer e.Shutdown()
	e.Iterate()
	for _, sub := range p.subs {
		if len(sub.visits) != E*P {
			t.Fatalf("submodel %d has %d training visits, want %d", sub.id, len(sub.visits), E*P)
		}
		for ep := 0; ep < E; ep++ {
			seen := map[int]bool{}
			for _, shard := range sub.visits[ep*P : (ep+1)*P] {
				if seen[shard] {
					t.Fatalf("submodel %d visited shard %d twice in epoch %d", sub.id, shard, ep)
				}
				seen[shard] = true
			}
		}
		// Totals: every point seen exactly E times.
		if sub.count != E*P*5 {
			t.Fatalf("submodel %d count %d", sub.id, sub.count)
		}
		if sub.sum != float64(E)*p.totalSum() {
			t.Fatalf("submodel %d sum %v want %v", sub.id, sub.sum, float64(E)*p.totalSum())
		}
	}
}

func TestShuffledRingStillCoversAllMachines(t *testing.T) {
	const P, E, M = 5, 2, 7
	p := newToyProblem(P, 3, M)
	e := New(p, Config{P: P, Epochs: E, Shuffle: true, Seed: 3})
	defer e.Shutdown()
	e.Iterate()
	for _, sub := range p.subs {
		for ep := 0; ep < E; ep++ {
			seen := map[int]bool{}
			for _, shard := range sub.visits[ep*P : (ep+1)*P] {
				seen[shard] = true
			}
			if len(seen) != P {
				t.Fatalf("submodel %d epoch %d covered %d machines, want %d", sub.id, ep, len(seen), P)
			}
		}
	}
}

func TestWithinMachinePasses(t *testing.T) {
	// §4.2: e within-machine passes with a single circulation epoch.
	p := newToyProblem(3, 4, 2)
	e := New(p, Config{P: 3, Epochs: 1, Within: 4, Seed: 4})
	defer e.Shutdown()
	e.Iterate()
	for _, sub := range p.subs {
		if sub.count != 4*3*4 {
			t.Fatalf("submodel %d count %d, want 48", sub.id, sub.count)
		}
	}
}

func TestCommunicationAccounting(t *testing.T) {
	const P, E, M = 4, 2, 6
	p := newToyProblem(P, 2, M)
	e := New(p, Config{P: P, Epochs: E, Seed: 5})
	defer e.Shutdown()
	res := e.Iterate()
	// Each token has (E+1)P−1 itinerary positions; the first is free
	// placement, so it is forwarded (E+1)P−2 times.
	wantHops := int64(M * ((E+1)*P - 2))
	if res.ModelMessages != wantHops {
		t.Fatalf("ModelMessages = %d, want %d", res.ModelMessages, wantHops)
	}
	if res.ModelBytes != wantHops*16 {
		t.Fatalf("ModelBytes = %d, want %d", res.ModelBytes, wantHops*16)
	}
}

func TestDeterministicAcrossRunsNoShuffle(t *testing.T) {
	run := func() []float64 {
		p := newToyProblem(3, 7, 5)
		e := New(p, Config{P: 3, Epochs: 2, Seed: 7})
		defer e.Shutdown()
		e.Run(3)
		out := make([]float64, 0, 5)
		for _, s := range p.subs {
			out = append(out, s.sum)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run results differ at submodel %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestIterationHookCalledInOrder(t *testing.T) {
	p := newToyProblem(2, 3, 2)
	e := New(p, Config{P: 2, Epochs: 1, Seed: 8})
	defer e.Shutdown()
	e.Run(3)
	if len(p.iters) != 3 || p.iters[0] != 0 || p.iters[2] != 2 {
		t.Fatalf("hook calls = %v", p.iters)
	}
}

func TestZStepRunsOnAllShards(t *testing.T) {
	p := newToyProblem(4, 6, 3)
	e := New(p, Config{P: 4, Epochs: 1, Seed: 9})
	defer e.Shutdown()
	res := e.Iterate()
	if res.ZChanged != 4*6 {
		t.Fatalf("ZChanged = %d, want 24", res.ZChanged)
	}
	want := p.shards[0].z[0]
	for _, sh := range p.shards {
		for _, z := range sh.z {
			if z != want {
				t.Fatal("Z values inconsistent across shards; machines saw different models")
			}
		}
	}
}

func TestReplicasKeepIndependentCopies(t *testing.T) {
	p := newToyProblem(2, 3, 2)
	e := New(p, Config{P: 2, Epochs: 1, Replicas: true, Seed: 10})
	defer e.Shutdown()
	res := e.Iterate()
	if res.FixMessages != 0 {
		// With replicas, copies recorded before the last training visit are
		// stale and must be repaired before the Z step.
		t.Logf("fix messages: %d (stale replicas repaired)", res.FixMessages)
	}
	// Z step must still be consistent.
	if p.shards[0].z[0] != p.shards[1].z[0] {
		t.Fatal("Z inconsistent with replicas")
	}
}

func TestRoutesStructure(t *testing.T) {
	p := newToyProblem(4, 2, 5)
	e := New(p, Config{P: 4, Epochs: 2, Seed: 11})
	defer e.Shutdown()
	routes := e.buildRoutes([]int{0, 1, 2, 3}, 8)
	for id, r := range routes {
		if len(r) != (2+1)*4-1 {
			t.Fatalf("route %d length %d", id, len(r))
		}
		if r[0] != id%4 {
			t.Fatalf("route %d home %d, want %d", id, r[0], id%4)
		}
		// Each epoch of 4 visits covers all machines.
		for ep := 0; ep < 2; ep++ {
			seen := map[int]bool{}
			for _, m := range r[ep*4 : (ep+1)*4] {
				seen[m] = true
			}
			if len(seen) != 4 {
				t.Fatalf("route %d epoch %d covers %d machines", id, ep, len(seen))
			}
		}
		// Final round: the P−1 tail hops plus the last training machine
		// cover everyone (each machine ends with a copy).
		seen := map[int]bool{r[7]: true}
		for _, m := range r[8:] {
			seen[m] = true
		}
		if len(seen) != 4 {
			t.Fatalf("route %d final round covers %d machines", id, len(seen))
		}
	}
}

func TestFaultRecoveryMidWStep(t *testing.T) {
	const P, M = 3, 6
	p := newToyProblem(P, 4, M)
	e := New(p, Config{
		P: P, Epochs: 2, Replicas: true, Seed: 12,
		Fail: FailureInjection{Mode: FailDropToken, Rank: 1, Iteration: 0, AfterTok: 3},
	})
	defer e.Shutdown()
	res := e.Iterate()
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %+v", res.Failures)
	}
	ev := res.Failures[0]
	if ev.Rank != 1 || !ev.Recovered {
		t.Fatalf("failure event = %+v", ev)
	}
	if res.AliveMachines != P-1 {
		t.Fatalf("alive = %d, want %d", res.AliveMachines, P-1)
	}
	// Training must still complete: every submodel finished its itinerary
	// (possibly skipping the dead machine) and the surviving shards ran
	// their Z steps consistently.
	if p.shards[0].z[0] != p.shards[2].z[0] {
		t.Fatal("surviving shards disagree after recovery")
	}
	// The engine must keep working after the failure.
	res2 := e.Iterate()
	if res2.AliveMachines != P-1 {
		t.Fatalf("alive after second iteration = %d", res2.AliveMachines)
	}
	for _, sub := range p.subs {
		// Second iteration: each submodel visits the 2 survivors twice.
		if len(sub.visits) == 0 {
			t.Fatalf("submodel %d never trained", sub.id)
		}
	}
}

func TestStreamingAddAndRetire(t *testing.T) {
	p := newToyProblem(3, 4, 4) // 3 shards available, start with 2 machines
	e := New(p, Config{P: 2, Epochs: 1, Seed: 13, MaxMachines: 3})
	defer e.Shutdown()
	r1 := e.Iterate()
	if r1.AliveMachines != 2 {
		t.Fatalf("alive = %d", r1.AliveMachines)
	}
	countAfter1 := p.subs[0].count // 2 shards × 4 points

	rank := e.AddMachine(2)
	if rank != 2 {
		t.Fatalf("new machine rank = %d", rank)
	}
	r2 := e.Iterate()
	if r2.AliveMachines != 3 {
		t.Fatalf("alive after add = %d", r2.AliveMachines)
	}
	if got := p.subs[0].count - countAfter1; got != 3*4 {
		t.Fatalf("iteration after add saw %d points, want 12", got)
	}

	e.Retire(0)
	r3 := e.Iterate()
	if r3.AliveMachines != 2 {
		t.Fatalf("alive after retire = %d", r3.AliveMachines)
	}
	if got := p.subs[0].count - countAfter1 - 12; got != 2*4 {
		t.Fatalf("iteration after retire saw %d points, want 8", got)
	}
}

func TestLoadBalancedShards(t *testing.T) {
	// Machines with unequal shards: work proportional to shard size (§4.3).
	p := &toyProblem{}
	sizes := []int{2, 6}
	v := 0.0
	for s, n := range sizes {
		sh := &toyShard{id: s, z: make([]float64, n)}
		for i := 0; i < n; i++ {
			sh.vals = append(sh.vals, v)
			v++
		}
		p.shards = append(p.shards, sh)
	}
	p.subs = []*toySub{{id: 0}}
	e := New(p, Config{P: 2, Epochs: 1, Seed: 14})
	defer e.Shutdown()
	e.Iterate()
	if p.subs[0].count != 8 {
		t.Fatalf("count = %d, want 8", p.subs[0].count)
	}
}

func TestConfigValidation(t *testing.T) {
	p := newToyProblem(1, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: fault injection without replicas")
		}
	}()
	New(p, Config{P: 1, Fail: FailureInjection{Mode: FailDropToken}})
}

func TestTooFewShardsPanics(t *testing.T) {
	p := newToyProblem(1, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: more machines than shards")
		}
	}()
	New(p, Config{P: 3})
}

func TestRescueFallsBackToAuthoritativeCopy(t *testing.T) {
	// Kill a machine on its very first token of the iteration: upstream
	// replicas may not exist yet, so recovery must restart the lost
	// submodel from the pre-iteration authoritative state.
	p := newToyProblem(3, 4, 3)
	e := New(p, Config{
		P: 3, Epochs: 1, Replicas: true, Seed: 20,
		Fail: FailureInjection{Mode: FailDropToken, Rank: 0, Iteration: 0, AfterTok: 0},
	})
	defer e.Shutdown()
	res := e.Iterate()
	if len(res.Failures) != 1 || !res.Failures[0].Recovered {
		t.Fatalf("failure not recovered: %+v", res.Failures)
	}
	// All submodels must still have finished training on the survivors.
	for _, sub := range p.subs {
		if sub.count == 0 {
			t.Fatalf("submodel %d never trained", sub.id)
		}
	}
}

func TestFailureOnLaterIterationOnly(t *testing.T) {
	p := newToyProblem(2, 3, 2)
	e := New(p, Config{
		P: 2, Epochs: 1, Replicas: true, Seed: 21,
		Fail: FailureInjection{Mode: FailDropToken, Rank: 1, Iteration: 2, AfterTok: 1},
	})
	defer e.Shutdown()
	r0 := e.Iterate()
	r1 := e.Iterate()
	if len(r0.Failures)+len(r1.Failures) != 0 {
		t.Fatal("failure fired too early")
	}
	r2 := e.Iterate()
	if len(r2.Failures) != 1 {
		t.Fatalf("failure did not fire at iteration 2: %+v", r2)
	}
}

func TestAddMachineRejectsBadShard(t *testing.T) {
	p := newToyProblem(2, 3, 2)
	e := New(p, Config{P: 2, MaxMachines: 3, Seed: 22})
	defer e.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range shard")
		}
	}()
	e.AddMachine(99)
}

func TestAddMachineExhaustsRanks(t *testing.T) {
	p := newToyProblem(3, 2, 2)
	e := New(p, Config{P: 2, MaxMachines: 2, Seed: 23})
	defer e.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when no ranks are free")
		}
	}()
	e.AddMachine(2)
}

func TestRetireTwicePanics(t *testing.T) {
	p := newToyProblem(3, 2, 2)
	e := New(p, Config{P: 3, Seed: 24})
	defer e.Shutdown()
	e.Retire(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double retire")
		}
	}()
	e.Retire(1)
}

func TestShutdownIsIdempotent(t *testing.T) {
	p := newToyProblem(2, 2, 2)
	e := New(p, Config{P: 2, Seed: 25})
	e.Iterate()
	e.Shutdown()
	e.Shutdown() // must not panic or deadlock
}

func TestManyIterationsStayConsistent(t *testing.T) {
	p := newToyProblem(4, 5, 6)
	e := New(p, Config{P: 4, Epochs: 2, Shuffle: true, Seed: 26})
	defer e.Shutdown()
	results := e.Run(10)
	for i, r := range results {
		if r.Iter != i {
			t.Fatalf("iteration numbering broken: %+v", r)
		}
		if r.AliveMachines != 4 {
			t.Fatalf("machines lost without failures: %+v", r)
		}
	}
	// 10 iterations × 2 epochs × 4 shards × 5 points each.
	for _, sub := range p.subs {
		if sub.count != 10*2*4*5 {
			t.Fatalf("submodel %d count %d", sub.id, sub.count)
		}
	}
}

func TestQuickProtocolInvariants(t *testing.T) {
	// Property: for random (P, M, e, shuffle, within), one iteration
	// satisfies the ParMAC protocol invariants: every submodel trains on
	// every shard exactly e·within times, the Z step touches every shard,
	// and no repair traffic is needed in failure-free runs.
	f := func(pRaw, mRaw, eRaw, wRaw uint8, shuffle bool, seed int64) bool {
		P := int(pRaw)%5 + 1
		M := int(mRaw)%9 + 1
		E := int(eRaw)%3 + 1
		W := int(wRaw)%2 + 1
		prob := newToyProblem(P, 3, M)
		e := New(prob, Config{P: P, Epochs: E, Within: W, Shuffle: shuffle, Seed: seed})
		defer e.Shutdown()
		res := e.Iterate()
		if res.FixMessages != 0 || len(res.Failures) != 0 {
			return false
		}
		if res.ZChanged != P*3 {
			return false
		}
		for _, sub := range prob.subs {
			if sub.count != E*W*P*3 {
				return false
			}
			// Visits: E·W per shard... W passes happen inside one visit, so
			// the visit log records E entries per shard.
			perShard := map[int]int{}
			for _, v := range sub.visits {
				perShard[v]++
			}
			if len(perShard) != P {
				return false
			}
			for _, c := range perShard {
				if c != E*W {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
