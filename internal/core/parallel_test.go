package core

import (
	"sync/atomic"
	"testing"
)

func TestCores(t *testing.T) {
	if Cores(0) != 1 || Cores(1) != 1 {
		t.Fatal("0 and 1 must mean serial")
	}
	if Cores(5) != 5 {
		t.Fatal("positive values are literal")
	}
	if Cores(-1) < 1 {
		t.Fatal("negative must resolve to at least one core")
	}
}

func TestParallelChunksCoversRangeExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 3}, {100, 1}, {100, 7}, {5, 100},
	} {
		seen := make([]int32, tc.n)
		//parmac:vet ignore=clampworkers exercising the pool directly with fixed table counts
		ParallelChunks(tc.n, tc.workers, func(w, lo, hi int) {
			if w < 0 || (tc.n > 0 && w >= tc.workers && tc.workers > 0) {
				t.Errorf("n=%d workers=%d: worker index %d out of range", tc.n, tc.workers, w)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: index %d visited %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}

func TestParallelChunksWorkerIndicesAreDense(t *testing.T) {
	const n, workers = 64, 4
	var hits [workers]int32
	ParallelChunks(n, workers, func(w, lo, hi int) {
		atomic.AddInt32(&hits[w], int32(hi-lo))
	})
	total := int32(0)
	for _, h := range hits {
		total += h
	}
	if total != n {
		t.Fatalf("chunks covered %d of %d points", total, n)
	}
}
