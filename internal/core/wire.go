package core

import "encoding/gob"

// The engine's protocol messages. Every type here crosses the fabric, so all
// fields are exported and the types are gob-registered: on the in-process
// backend they travel as pointers, on the TCP backend they are serialized
// into gob frames by the transport. Submodel values inside them serialize
// through the gob interface mechanism — each Problem's concrete submodel
// types register themselves and implement GobEncoder/GobDecoder (see
// binauto/wire.go, macnet/wire.go).

// Token is a circulating submodel together with its itinerary through the
// ring (§4.1): Route lists the machine rank per itinerary position, the
// first Train positions are training visits, the rest are the final
// copy-only round.
type Token struct {
	SM      Submodel
	ID      int
	Step    int // itinerary positions completed
	Version int // training visits completed
	Route   []int
	Train   int
	// Incarnation counts coordinator resurrections of this submodel after
	// unannounced deaths. A finished or bounced token whose incarnation is
	// stale is a surviving duplicate of a copy already given up on, and is
	// dropped. Old wire bytes decode with 0, matching never-resurrected.
	Incarnation int
}

// WStartMsg opens one iteration's W step on a machine.
type WStartMsg struct {
	Iter      int
	Train     int // training visit count e·P_alive
	Within    int
	Shuffle   bool
	Replicas  bool
	M         int // total submodel count (for the machine's Z-step assembly)
	FailAfter int // injected failure: die at this token, -1 to stay alive
	// FailUnannounced makes the injected death unannounced: the machine
	// severs its fabric link (no DeathNotice), like a SIGKILL.
	FailUnannounced bool
	// FailRescueAbort makes the machine die unannounced upon its next rescue
	// request — the "rescuer dies during the rescue" re-entry case.
	FailRescueAbort bool
}

// DeathNotice is the metadata a dying machine manages to emit: an intact
// token being bounced, or the itinerary of the token whose parameters died
// with the machine's memory — plus the traffic counters it can no longer
// report through a WAckMsg, so the iteration's communication accounting
// stays exact under failures.
type DeathNotice struct {
	Rank    int
	Tok     *Token // intact token being bounced, nil when lost
	LostID  int    // submodel ID lost with the machine's memory, -1 if none
	LostTok *Token // itinerary metadata of the lost token (parameters gone)
	Hops    int64  // token forwards performed before dying
	Bytes   int64  // bytes of model parameters moved before dying
}

// AckEntry reports one locally held submodel copy. Version -1 marks an
// aliased in-process pointer (always current), -2 a copy installed by a
// repair message.
type AckEntry struct {
	ID      int
	Version int
}

// WAckMsg is a machine's end-of-W-step report: its local model inventory
// plus the token traffic it generated, which the coordinator aggregates into
// IterationResult — no shared counters, so the accounting works across
// processes.
type WAckMsg struct {
	Entries []AckEntry
	Hops    int64
	Bytes   int64
}

// ZDoneMsg reports a completed shard-local Z step.
type ZDoneMsg struct{ Changed int }

// FixMsg repairs a stale or missing local submodel copy before the Z step.
type FixMsg struct {
	ID int
	SM Submodel
}

// RescueReply answers a coordinator's replica request during fault recovery
// (§4.3). OK is false when the machine holds no copy of the submodel.
type RescueReply struct {
	SM      Submodel
	Version int
	OK      bool
}

// DeadRanksMsg tells every surviving machine which ranks have left the ring
// mid-W-step (announced or not), so token forwards skip them instead of
// sending into a dead inbox.
type DeadRanksMsg struct {
	Dead []int
}

// TraceEntry is one machine's record of the last thing it did with a token:
// after processing it, the machine sent the token toward itinerary position
// Step, to rank To, holding a local replica at Version. The coordinator's
// probe sweep aggregates these to reconstruct where each token was when a
// machine died unannounced — the replica inventory stands in for the dead
// machine's report (§4.3 without a DeathNotice).
type TraceEntry struct {
	ID      int
	Step    int // itinerary position the token was sent toward
	To      int // rank it was sent to (the coordinator's rank if finished)
	Version int // version of this machine's replica of the submodel
}

// ProbeReply answers a coordinator liveness/trace probe with every token
// trace this machine holds for the current W step.
type ProbeReply struct {
	Entries []TraceEntry
}

func init() {
	gob.Register(&Token{})
	gob.Register(WStartMsg{})
	gob.Register(DeathNotice{})
	gob.Register(WAckMsg{})
	gob.Register(ZDoneMsg{})
	gob.Register(FixMsg{})
	gob.Register(RescueReply{})
	gob.Register(DeadRanksMsg{})
	gob.Register(ProbeReply{})
}
