package core

import "encoding/gob"

// The engine's protocol messages. Every type here crosses the fabric, so all
// fields are exported and the types are gob-registered: on the in-process
// backend they travel as pointers, on the TCP backend they are serialized
// into gob frames by the transport. Submodel values inside them serialize
// through the gob interface mechanism — each Problem's concrete submodel
// types register themselves and implement GobEncoder/GobDecoder (see
// binauto/wire.go, macnet/wire.go).

// Token is a circulating submodel together with its itinerary through the
// ring (§4.1): Route lists the machine rank per itinerary position, the
// first Train positions are training visits, the rest are the final
// copy-only round.
type Token struct {
	SM      Submodel
	ID      int
	Step    int // itinerary positions completed
	Version int // training visits completed
	Route   []int
	Train   int
}

// WStartMsg opens one iteration's W step on a machine.
type WStartMsg struct {
	Iter      int
	Train     int // training visit count e·P_alive
	Within    int
	Shuffle   bool
	Replicas  bool
	M         int // total submodel count (for the machine's Z-step assembly)
	FailAfter int // injected failure: die at this token, -1 to stay alive
}

// DeathNotice is the metadata a dying machine manages to emit: an intact
// token being bounced, or the itinerary of the token whose parameters died
// with the machine's memory — plus the traffic counters it can no longer
// report through a WAckMsg, so the iteration's communication accounting
// stays exact under failures.
type DeathNotice struct {
	Rank    int
	Tok     *Token // intact token being bounced, nil when lost
	LostID  int    // submodel ID lost with the machine's memory, -1 if none
	LostTok *Token // itinerary metadata of the lost token (parameters gone)
	Hops    int64  // token forwards performed before dying
	Bytes   int64  // bytes of model parameters moved before dying
}

// AckEntry reports one locally held submodel copy. Version -1 marks an
// aliased in-process pointer (always current), -2 a copy installed by a
// repair message.
type AckEntry struct {
	ID      int
	Version int
}

// WAckMsg is a machine's end-of-W-step report: its local model inventory
// plus the token traffic it generated, which the coordinator aggregates into
// IterationResult — no shared counters, so the accounting works across
// processes.
type WAckMsg struct {
	Entries []AckEntry
	Hops    int64
	Bytes   int64
}

// ZDoneMsg reports a completed shard-local Z step.
type ZDoneMsg struct{ Changed int }

// FixMsg repairs a stale or missing local submodel copy before the Z step.
type FixMsg struct {
	ID int
	SM Submodel
}

// RescueReply answers a coordinator's replica request during fault recovery
// (§4.3). OK is false when the machine holds no copy of the submodel.
type RescueReply struct {
	SM      Submodel
	Version int
	OK      bool
}

func init() {
	gob.Register(&Token{})
	gob.Register(WStartMsg{})
	gob.Register(DeathNotice{})
	gob.Register(WAckMsg{})
	gob.Register(ZDoneMsg{})
	gob.Register(FixMsg{})
	gob.Register(RescueReply{})
}
