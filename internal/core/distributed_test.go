package core_test

import (
	"encoding/gob"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cluster/tcp"
	"repro/internal/core"
)

// The distributed shape of the engine: coordinator and workers share no
// memory, each worker owns its Problem instance, and every token crosses a
// real TCP socket as gob frames. The runs below must match the in-process
// engine exactly — that is the transport-independence claim of the Transport
// refactor, at the engine level rather than the fabric level.

// WireSub is a gob-serializable toy submodel: it accumulates the sum and
// count of every value it sees, so divergence anywhere (a lost visit, stale
// state after deserialization) shows up in the final model.
type WireSub struct {
	Id     int
	Sum    float64
	Count  int
	Visits []int
}

func (s *WireSub) ID() int { return s.Id }

func (s *WireSub) TrainOn(shard core.Shard, order []int) {
	sh := shard.(*wireShard)
	for _, i := range order {
		s.Sum += sh.vals[i]
		s.Count++
	}
	s.Visits = append(s.Visits, sh.id)
}

func (s *WireSub) Clone() core.Submodel {
	c := *s
	c.Visits = append([]int(nil), s.Visits...)
	return &c
}

func (s *WireSub) Bytes() int { return 16 }

func init() { gob.Register(&WireSub{}) }

type wireShard struct {
	id   int
	vals []float64
	z    []float64
}

func (s *wireShard) NumPoints() int { return len(s.vals) }

type wireProblem struct {
	shards []*wireShard
	subs   []*WireSub
	mu     float64 // per-iteration state driven by OnIterationStart
}

func newWireProblem(nShards, pointsPerShard, m int) *wireProblem {
	p := &wireProblem{}
	v := 0.0
	for s := 0; s < nShards; s++ {
		sh := &wireShard{id: s, z: make([]float64, pointsPerShard)}
		for i := 0; i < pointsPerShard; i++ {
			sh.vals = append(sh.vals, v)
			v++
		}
		p.shards = append(p.shards, sh)
	}
	for i := 0; i < m; i++ {
		p.subs = append(p.subs, &WireSub{Id: i})
	}
	return p
}

func (p *wireProblem) Submodels() []core.Submodel {
	out := make([]core.Submodel, len(p.subs))
	for i, s := range p.subs {
		out[i] = s
	}
	return out
}

func (p *wireProblem) NumShards() int         { return len(p.shards) }
func (p *wireProblem) Shard(i int) core.Shard { return p.shards[i] }
func (p *wireProblem) OnIterationStart(i int) { p.mu = float64(i + 1) }
func (p *wireProblem) OnModelSync(m []core.Submodel) {
	for i, sm := range m {
		p.subs[i] = sm.(*WireSub)
	}
}

func (p *wireProblem) ZStep(shard int, model []core.Submodel) int {
	var mean float64
	for _, sm := range model {
		t := sm.(*WireSub)
		if t.Count > 0 {
			mean += t.Sum / float64(t.Count)
		}
	}
	mean = mean/float64(len(model)) + p.mu // μ dependence checks the worker-side hook
	sh := p.shards[shard]
	changed := 0
	for i := range sh.z {
		if sh.z[i] != mean {
			sh.z[i] = mean
			changed++
		}
	}
	return changed
}

// runDistributed executes iters engine iterations over a real TCP fabric:
// one coordinator, P workers, each with a private wireProblem. It returns
// the coordinator-side problem (synced model) and the per-worker problems
// (shard-local Z state), plus the iteration results.
func runDistributed(t *testing.T, cfg core.Config, iters, shards, points, m int) (*wireProblem, []*wireProblem, []core.IterationResult) {
	t.Helper()
	fab, err := cluster.NewFabric("tcp", cfg.P+1)
	if err != nil {
		t.Fatalf("tcp fabric: %v", err)
	}
	defer fab.Close()

	workerProbs := make([]*wireProblem, cfg.P)
	var wg sync.WaitGroup
	for r := 0; r < cfg.P; r++ {
		workerProbs[r] = newWireProblem(shards, points, m)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			core.RunWorker(fab.Comm(r), workerProbs[r], r, core.WorkerOptions{
				Seed: core.WorkerSeed(cfg.Seed, r),
			})
		}(r)
	}

	coordProb := newWireProblem(shards, points, m)
	eng := core.NewDistributed(coordProb, cfg, fab.Comm(cfg.P))
	eng.SetStatsSource(fab.Stats)
	results := eng.Run(iters)
	eng.Shutdown()
	wg.Wait() // workers must drain their shutdown before the fabric dies
	return coordProb, workerProbs, results
}

func TestDistributedMatchesInProcess(t *testing.T) {
	const P, M, shards, points, iters = 3, 5, 3, 4, 3
	cfg := core.Config{P: P, Epochs: 2, Seed: 42}

	inproc := newWireProblem(shards, points, M)
	eng := core.New(inproc, cfg)
	inprocRes := eng.Run(iters)
	eng.Shutdown()

	coordProb, workerProbs, distRes := runDistributed(t, cfg, iters, shards, points, M)

	for i, sub := range coordProb.subs {
		want := inproc.subs[i]
		if sub.Sum != want.Sum || sub.Count != want.Count {
			t.Fatalf("submodel %d diverged across transports: tcp(sum=%v,count=%d) inproc(sum=%v,count=%d)",
				i, sub.Sum, sub.Count, want.Sum, want.Count)
		}
	}
	for i := range inprocRes {
		a, b := inprocRes[i], distRes[i]
		if a.ZChanged != b.ZChanged || a.ModelMessages != b.ModelMessages || a.ModelBytes != b.ModelBytes {
			t.Fatalf("iteration %d results diverged: inproc %+v vs tcp %+v", i, a, b)
		}
	}
	// Every worker's shard-local Z state must match the in-process shards:
	// the Z step saw the same complete model and the same μ on both fabrics.
	for r, wp := range workerProbs {
		if got, want := wp.shards[r].z[0], inproc.shards[r].z[0]; got != want {
			t.Fatalf("worker %d Z state %v, in-process %v", r, got, want)
		}
	}
}

func TestDistributedFaultRecovery(t *testing.T) {
	const P, M, shards, points = 3, 6, 3, 4
	cfg := core.Config{
		P: P, Epochs: 2, Replicas: true, Seed: 12,
		Fail: core.FailureInjection{Mode: core.FailDropToken, Rank: 1, Iteration: 0, AfterTok: 3},
	}
	_, workerProbs, res := runDistributed(t, cfg, 2, shards, points, M)
	if len(res[0].Failures) != 1 {
		t.Fatalf("failures = %+v", res[0].Failures)
	}
	ev := res[0].Failures[0]
	if ev.Rank != 1 || !ev.Recovered {
		t.Fatalf("failure event = %+v", ev)
	}
	if res[0].AliveMachines != P-1 || res[1].AliveMachines != P-1 {
		t.Fatalf("alive machines = %d then %d, want %d", res[0].AliveMachines, res[1].AliveMachines, P-1)
	}
	// Survivors' Z state must agree: the lost submodel was rescued over the
	// wire (RescueReply) and everyone ended with the same complete model.
	if z0, z2 := workerProbs[0].shards[0].z[0], workerProbs[2].shards[2].z[0]; z0 != z2 {
		t.Fatalf("surviving shards disagree after recovery: %v vs %v", z0, z2)
	}
}

// Guard against the registered tcp fabric being silently absent (an import
// regression would turn the tests above into inproc-only coverage).
var _ = tcp.NewLoopbackFabric
