// Package core implements ParMAC (§4), the paper's contribution: a
// distributed computation model for the method of auxiliary coordinates.
//
// P machines hold disjoint data shards (and the auxiliary coordinates of
// their points, which never move). In the W step, M independent submodels
// circulate through the machines in a ring: each machine trains every
// submodel that passes through on its local shard (implicitly running SGD
// with per-machine minibatches), then forwards it to its successor. After e
// epochs (visits to every machine) plus one final round of communication,
// every machine holds a copy of the whole updated model. In the Z step, each
// machine updates the coordinates of its own points with no communication at
// all. Only model parameters ever cross the network.
//
// The engine is split along the paper's deployment boundary: the Engine is
// the coordinator, machines run RunWorker (worker.go), and the two sides
// speak exclusively through the pluggable fabric of internal/cluster — Go
// channels in-process (Engine.New spawns the workers itself) or TCP between
// OS processes (NewDistributed drives externally launched workers, with
// submodels gob-serialized on the wire). The engine supports the ParMAC
// extensions of §4.3: per-epoch ring shuffling, load balancing via unequal
// shards, streaming (machines can be added and retired between iterations)
// and fault tolerance (a machine can die mid-W-step; lost submodels are
// recovered from the redundant copies on their predecessor machines, and
// routes are repaired to skip the dead machine).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
)

// Shard is a machine-local slice of the data and its auxiliary coordinates.
// The engine never looks inside; it only schedules work against it.
type Shard interface {
	NumPoints() int
}

// Submodel is one independent unit of the W step (a hash function, a decoder
// group, a hidden unit's weight vector...). Submodels own their parameters
// and any optimiser state (e.g. SGD schedules), which therefore circulate
// with them. Concrete types used across process boundaries must additionally
// be gob-encodable (including optimiser state) and gob-registered.
type Submodel interface {
	// ID identifies the submodel; IDs must be 0..M-1.
	ID() int
	// TrainOn performs one stochastic pass over the shard, visiting points
	// in the given order. This is the "process it" of the paper's
	// asynchronous W step.
	TrainOn(shard Shard, order []int)
	// Clone returns a deep copy, used for the per-machine redundant copies
	// that give ParMAC its fault tolerance (§4.3).
	Clone() Submodel
	// Bytes is the serialised parameter size, accounted as t_c^W traffic.
	Bytes() int
}

// Problem adapts a specific MAC algorithm (binary autoencoder, deep net, …)
// to the engine.
type Problem interface {
	// Submodels returns the circulating submodels with IDs 0..M-1. The
	// engine trains these objects in place across iterations.
	Submodels() []Submodel
	// NumShards reports how many shards exist; shard i belongs to machine i.
	NumShards() int
	// Shard returns shard i.
	Shard(i int) Shard
	// ZStep updates the auxiliary coordinates of shard i given a complete
	// model (indexed by submodel ID) and returns how many coordinates
	// changed. It runs concurrently across machines and must only touch
	// shard-local state.
	ZStep(shard int, model []Submodel) int
}

// IterationHook is implemented by problems that advance per-iteration state
// (e.g. the μ schedule of the BA). In the in-process shape it is called
// once, before each iteration's W step, on the coordinator's problem; in the
// distributed shape each worker additionally calls it on its own problem
// instance when the W step opens, so shard-local state (the μ used by the Z
// step) advances everywhere.
type IterationHook interface {
	OnIterationStart(iter int)
}

// ModelSyncHook is implemented by problems that cache references to their
// circulating submodels (for evaluation between iterations). Fault recovery
// replaces a lost submodel with a recovered clone, so the cached references
// can go stale; the engine calls OnModelSync with the authoritative set at
// the end of every iteration.
type ModelSyncHook interface {
	OnModelSync(model []Submodel)
}

// FailMode selects how an injected failure behaves.
type FailMode int

const (
	// FailNone disables failure injection.
	FailNone FailMode = iota
	// FailDropToken kills the machine while it is training a submodel: the
	// machine's memory (including that submodel's current state) is lost and
	// the submodel must be recovered from the redundant copy held by its
	// predecessor in the ring (§4.3 "revert to the previously updated copy").
	FailDropToken
	// FailUnannounced is FailDropToken without the courtesy: the machine
	// severs its fabric link with the token in memory and says nothing, like
	// a SIGKILL. The coordinator must detect the death via the transport's
	// peer-down signal and reconstruct the lost-token inventory from the
	// survivors' replica traces.
	FailUnannounced
	// FailRescueAbort makes the machine die unannounced the moment it is
	// asked to serve a rescue — the re-entrant failure: a rescuer dying
	// during the rescue it was performing.
	FailRescueAbort
)

// FailureInjection schedules a machine death for tests and the
// fault-tolerance experiments.
type FailureInjection struct {
	Mode      FailMode
	Rank      int // machine to kill
	Iteration int // iteration (0-based) during whose W step it dies
	AfterTok  int // die when about to process its AfterTok-th token
}

// Config parameterises the engine.
type Config struct {
	P       int  // initial number of machines
	Epochs  int  // e: circulation epochs per W step
	Within  int  // within-machine passes per visit (§4.2); default 1
	Shuffle bool // shuffle the ring per epoch and within-machine order (§4.3)
	Seed    int64

	// Replicas makes machines store deep copies of passing submodels rather
	// than sharing pointers. Required for fault tolerance; costs memory,
	// exactly the paper's "in-built redundance". Distributed workers always
	// hold private decoded copies, so there it is implied.
	Replicas bool

	// MaxMachines reserves fabric ranks for machines added later by
	// streaming. Defaults to P.
	MaxMachines int

	// RescueTimeout bounds every failure-era wait: how long the supervising
	// coordinator sits silent before re-probing, and the first wait for a
	// rescue/probe/ack reply. <= 0 means DefaultRescueTimeout. Keep it
	// above the worst-case single-visit training time, or slow-but-alive
	// machines get declared dead.
	RescueTimeout time.Duration
	// RescueRetries bounds how many times a reply wait is retried, each
	// retry doubling the previous wait (exponential backoff). A machine
	// still silent after the last retry is declared dead. <= 0 means 3.
	RescueRetries int

	// Fail schedules a single failure injection (kept for compatibility);
	// Fails schedules any number. They are merged.
	Fail  FailureInjection
	Fails []FailureInjection
}

// DefaultRescueTimeout is the default per-wait bound for failure detection
// and rescue replies.
const DefaultRescueTimeout = 30 * time.Second

func (c *Config) fillDefaults() {
	if c.P <= 0 {
		c.P = 1
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.Within <= 0 {
		c.Within = 1
	}
	if c.MaxMachines < c.P {
		c.MaxMachines = c.P
	}
	if c.RescueTimeout <= 0 {
		c.RescueTimeout = DefaultRescueTimeout
	}
	if c.RescueRetries <= 0 {
		c.RescueRetries = 3
	}
	if c.Fail.Mode != FailNone {
		c.Fails = append(c.Fails, c.Fail)
		c.Fail = FailureInjection{}
	}
	for _, f := range c.Fails {
		if f.Mode != FailNone && !c.Replicas {
			panic("core: fault tolerance requires Config.Replicas")
		}
	}
}

// FailureEvent records a machine death (and, when LostToken >= 0, the
// recovery of a submodel that died with it).
type FailureEvent struct {
	Rank      int
	LostToken int // submodel ID being trained when the machine died, -1 if none
	Recovered bool
	FromRank  int // machine whose replica restored the lost submodel, -1
	// Unannounced marks a death detected via the transport (connection loss,
	// SIGKILL) rather than a DeathNotice from the dying machine itself. An
	// unannounced death yields one event for the death and one per lost
	// token recovered by the probe sweep.
	Unannounced bool
}

// IterationResult summarises one ParMAC iteration (one W step + one Z step).
type IterationResult struct {
	Iter          int
	ZChanged      int   // coordinates changed across all shards
	ModelMessages int64 // submodel hops in the W step
	ModelBytes    int64 // bytes of model parameters moved
	FixMessages   int   // post-W repairs of stale/missing local copies
	Failures      []FailureEvent
	AliveMachines int
	// DroppedFrames counts fabric frames discarded this iteration because
	// their destination had died (requires a stats source: automatic
	// in-process, SetStatsSource for distributed coordinators).
	DroppedFrames int64
}

// message tags on the fabric.
const (
	tagWStart = iota
	tagToken
	tagFinished
	tagDead
	tagBounced
	tagRescue
	tagRescueReply
	tagWDone
	tagWAck
	tagFix
	tagZGo
	tagZDone
	tagShutdown
	tagShutdownAck
	tagDeadRanks
	tagProbe
	tagProbeReply
)

// Engine is the ParMAC coordinator. It owns the authoritative model between
// iterations, builds itineraries, supervises failures and aggregates
// results; all machine interaction goes through its communicator.
type Engine struct {
	cfg  Config
	prob Problem

	net   *cluster.Network // in-process shape only: the fabric we own
	coord *cluster.Comm

	occupied []bool // rank has a (possibly dead) worker attached
	alive    []bool // rank is in the ring

	submodels []Submodel // authoritative model between iterations
	versions  []int      // training visits accumulated per submodel

	// incarnation counts coordinator resurrections per submodel; stale
	// finishes/bounces from a superseded token copy are dropped against it.
	incarnation []int

	rng  *rand.Rand
	iter int

	// per-iteration traffic generated by the coordinator itself
	coordHops  int64
	coordBytes int64

	// statsFn supplies fabric-level counters for DroppedFrames reporting
	// (the in-process engine wires its own Network; distributed coordinators
	// call SetStatsSource).
	statsFn     func() cluster.Stats
	lastDropped int64

	// pendingDowns queues ranks whose death was observed inside a nested
	// wait (rescue, probe) or declared by patience exhaustion, for the
	// supervising loop to process.
	pendingDowns []int

	shutdown bool
}

// New creates an in-process engine for the problem: the fabric is the
// channel backend and machine i runs as a goroutine attached to
// prob.Shard(i). prob.NumShards() must be >= cfg.P.
func New(prob Problem, cfg Config) *Engine {
	cfg.fillDefaults()
	if prob.NumShards() < cfg.P {
		panic(fmt.Sprintf("core: %d shards for %d machines", prob.NumShards(), cfg.P))
	}
	net := cluster.NewNetwork(cfg.MaxMachines + 1)
	e := newEngine(prob, cfg, net.Comm(cfg.MaxMachines))
	e.net = net
	e.statsFn = net.Stats
	for r := 0; r < cfg.P; r++ {
		e.spawnMachine(r, r)
	}
	return e
}

// NewDistributed creates a coordinator over an external fabric (e.g. a TCP
// cluster): comm must be the fabric's last rank, and cfg.P workers —
// launched separately with RunWorker, each owning its Problem instance —
// occupy ranks 0..P-1. Streaming (AddMachine) is not available in this
// shape; fault injection and recovery are.
func NewDistributed(prob Problem, cfg Config, comm *cluster.Comm) *Engine {
	cfg.MaxMachines = cfg.P // streaming needs worker spawning; no spare ranks here
	cfg.fillDefaults()
	if comm.Size() != cfg.P+1 || comm.Rank() != cfg.P {
		panic(fmt.Sprintf("core: coordinator needs rank %d of a %d-rank fabric, got rank %d of %d",
			cfg.P, cfg.P+1, comm.Rank(), comm.Size()))
	}
	e := newEngine(prob, cfg, comm)
	for r := 0; r < cfg.P; r++ {
		e.occupied[r] = true
		e.alive[r] = true
	}
	return e
}

func newEngine(prob Problem, cfg Config, coord *cluster.Comm) *Engine {
	e := &Engine{
		cfg:      cfg,
		prob:     prob,
		coord:    coord,
		occupied: make([]bool, cfg.MaxMachines),
		alive:    make([]bool, cfg.MaxMachines),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	e.submodels = prob.Submodels()
	for i, sm := range e.submodels {
		if sm.ID() != i {
			panic("core: submodel IDs must be 0..M-1 in order")
		}
	}
	e.versions = make([]int, len(e.submodels))
	e.incarnation = make([]int, len(e.submodels))
	return e
}

// SetStatsSource wires a fabric-level stats snapshot (e.g. combining
// comm.Stats with tcp.Hub.DroppedFrames) so IterationResult.DroppedFrames is
// reported in the distributed shape. The in-process engine wires its own.
func (e *Engine) SetStatsSource(fn func() cluster.Stats) { e.statsFn = fn }

func (e *Engine) spawnMachine(rank, shard int) {
	e.occupied[rank] = true
	e.alive[rank] = true
	go RunWorker(e.net.Comm(rank), e.prob, shard, WorkerOptions{
		Seed:          WorkerSeed(e.cfg.Seed, rank),
		SharedProblem: true,
	})
}

// M returns the number of submodels.
func (e *Engine) M() int { return len(e.submodels) }

// Model returns the authoritative submodels (valid between iterations).
func (e *Engine) Model() []Submodel { return e.submodels }

// AliveRanks lists the machines currently in the ring.
func (e *Engine) AliveRanks() []int {
	var out []int
	for r := range e.alive {
		if e.occupied[r] && e.alive[r] {
			out = append(out, r)
		}
	}
	return out
}

// AddMachine attaches a new machine serving prob.Shard(shard) and returns its
// rank. It implements the streaming extension: "adding it to the circular
// topology simply requires connecting it between any two machines" (§4.3).
// Call between iterations. In-process engines only.
func (e *Engine) AddMachine(shard int) int {
	if e.net == nil {
		panic("core: AddMachine requires the in-process engine")
	}
	for r := range e.occupied {
		if !e.occupied[r] {
			if shard >= e.prob.NumShards() {
				panic("core: AddMachine shard out of range")
			}
			e.spawnMachine(r, shard)
			return r
		}
	}
	panic("core: no free ranks; raise Config.MaxMachines")
}

// Retire removes a machine from the ring between iterations ("to remove
// machine p, we do so in the Z step, by reconnecting machine p−1 → machine
// p+1 and returning machine p to the cluster", §4.3). Its shard's data are no
// longer visited.
func (e *Engine) Retire(rank int) {
	if !e.occupied[rank] || !e.alive[rank] {
		panic("core: Retire of absent machine")
	}
	e.alive[rank] = false
	e.coordSendTo(rank, tagShutdown, nil)
	// Wait for the machine to acknowledge: its rank (and communicator) may
	// be reused by a later AddMachine, so the old worker must be gone first.
	e.coord.RecvFrom(rank, tagShutdownAck)
	e.occupied[rank] = false
}

// Shutdown terminates all machine loops. The engine is unusable after.
func (e *Engine) Shutdown() {
	if e.shutdown {
		return
	}
	e.shutdown = true
	for r := range e.occupied {
		if e.occupied[r] {
			e.coordSendTo(r, tagShutdown, nil)
		}
	}
}

func (e *Engine) coordSendTo(rank, tag int, payload any) {
	e.coord.Send(rank, tag, payload, 0)
}

// wState is the coordinator's view of one W step: which tokens finished at
// which version, the itineraries, and the last send the coordinator itself
// made per token (the coordinator's own trace entry for the probe sweep).
type wState struct {
	res      *IterationResult
	routes   [][]int
	train    int
	final    []int
	done     []bool
	finished int
	sent     []coordSend
}

// coordSend remembers the coordinator's last forward of a token: where it
// went and what state it carried. If the token is lost before any machine
// processes it again, this is both the trace and the recovery source (the
// object is unmutated since the send — nobody else holds the token).
type coordSend struct {
	valid   bool
	step    int
	to      int
	version int
	sm      Submodel
}

// Iterate runs one full ParMAC iteration (W step then Z step) and returns its
// summary.
func (e *Engine) Iterate() IterationResult {
	if hook, ok := e.prob.(IterationHook); ok {
		hook.OnIterationStart(e.iter)
	}
	res := IterationResult{Iter: e.iter}
	e.coordHops, e.coordBytes = 0, 0

	// Deaths observed between iterations (e.g. a machine SIGKILLed after its
	// Z ack) must be known before routes are built.
	e.collectDowns(&res)

	aliveList := e.AliveRanks()
	p := len(aliveList)
	if p == 0 {
		panic("core: no machines alive")
	}
	trainVisits := e.cfg.Epochs * p
	m := len(e.submodels)
	st := &wState{
		res:    &res,
		routes: e.buildRoutes(aliveList, trainVisits),
		train:  trainVisits,
		final:  make([]int, m),
		done:   make([]bool, m),
		sent:   make([]coordSend, m),
	}

	// Start the W step on all alive machines, arming failure injection where
	// scheduled.
	for _, r := range aliveList {
		failAfter, abrupt, onRescue := e.injectionFor(r)
		e.coordSendTo(r, tagWStart, WStartMsg{
			Iter: e.iter, Train: trainVisits, Within: e.cfg.Within,
			Shuffle: e.cfg.Shuffle, Replicas: e.cfg.Replicas,
			M: m, FailAfter: failAfter,
			FailUnannounced: abrupt, FailRescueAbort: onRescue,
		})
	}
	// Inject the initial tokens at their home machines.
	for i, sm := range e.submodels {
		tok := &Token{SM: sm, ID: i, Version: e.versions[i], Route: st.routes[i],
			Train: trainVisits, Incarnation: e.incarnation[i]}
		// Placement is free: submodel i starts resident at its home machine.
		st.sent[i] = coordSend{valid: true, step: 0, to: tok.Route[0], version: tok.Version, sm: tok.SM}
		e.coord.Send(tok.Route[0], tagToken, tok, 0)
	}

	e.supervise(st)
	copy(e.versions, st.final)

	e.drainWAcks(st)
	e.runZPhase(st)

	res.ModelMessages += e.coordHops
	res.ModelBytes += e.coordBytes
	res.AliveMachines = len(e.AliveRanks())
	if e.statsFn != nil {
		d := e.statsFn().Dropped
		res.DroppedFrames = d - e.lastDropped
		e.lastDropped = d
	}
	if hook, ok := e.prob.(ModelSyncHook); ok {
		hook.OnModelSync(e.submodels)
	}
	e.iter++
	return res
}

// injectionFor resolves the failure injection armed for rank this iteration.
func (e *Engine) injectionFor(rank int) (failAfter int, abrupt, onRescue bool) {
	failAfter = -1
	for _, f := range e.cfg.Fails {
		if f.Rank != rank || f.Iteration != e.iter {
			continue
		}
		switch f.Mode {
		case FailDropToken:
			failAfter = f.AfterTok
		case FailUnannounced:
			failAfter = f.AfterTok
			abrupt = true
		case FailRescueAbort:
			onRescue = true
		}
	}
	return failAfter, abrupt, onRescue
}

// supervise waits until every token has finished, converting transport
// peer-down events into synthetic death handling and re-probing after
// silence whenever failures have already happened. No wait here is
// unbounded once a failure is in play.
func (e *Engine) supervise(st *wState) {
	for st.finished < len(e.submodels) {
		if len(e.pendingDowns) > 0 {
			r := e.pendingDowns[0]
			e.pendingDowns = e.pendingDowns[1:]
			if e.markDead(r, st.res) {
				e.sweep(st)
			}
			continue
		}
		msg, err := e.coord.RecvEvent(cluster.AnySource, cluster.AnyTag, e.cfg.RescueTimeout)
		if err != nil {
			var pd *cluster.PeerDownError
			switch {
			case errors.As(err, &pd):
				if e.markDead(pd.Rank, st.res) {
					e.sweep(st)
				}
			case errors.Is(err, cluster.ErrRecvTimeout):
				// Healthy-but-slow iterations just keep waiting; once any
				// machine has died this iteration, silence means a token may
				// be lost — re-probe.
				if len(st.res.Failures) > 0 {
					e.sweep(st)
				}
			default:
				panic(fmt.Sprintf("core: coordinator lost its fabric: %v", err))
			}
			continue
		}
		e.superviseMsg(msg, st)
	}
}

// superviseMsg dispatches one message during the W step (also used while a
// probe sweep is collecting, so deaths and finishes interleave correctly).
func (e *Engine) superviseMsg(msg cluster.Message, st *wState) {
	switch msg.Tag {
	case tagFinished:
		tok := msg.Payload.(*Token)
		if tok.Incarnation != e.incarnation[tok.ID] || st.done[tok.ID] {
			return // a superseded duplicate survived; drop it
		}
		e.finishToken(tok, st)
	case tagDead:
		n := msg.Payload.(DeathNotice)
		ev := e.handleDeath(n, st)
		st.res.Failures = append(st.res.Failures, ev)
		e.broadcastDead()
	case tagBounced:
		tok := msg.Payload.(*Token)
		if tok.Incarnation != e.incarnation[tok.ID] || st.done[tok.ID] {
			return
		}
		if !e.forwardFromCoord(tok, st) {
			e.finishToken(tok, st)
		}
	case tagProbeReply, tagRescueReply, tagWAck:
		// Late replies from an abandoned wait; already accounted for.
	default:
		panic(fmt.Sprintf("core: coordinator got unexpected tag %d", msg.Tag))
	}
}

func (e *Engine) finishToken(tok *Token, st *wState) {
	e.submodels[tok.ID] = tok.SM
	st.final[tok.ID] = tok.Version
	st.done[tok.ID] = true
	st.sent[tok.ID].valid = false
	st.finished++
}

// markDead flips rank to dead, records the failure, and broadcasts the
// updated dead set to the survivors. It reports false when the rank was
// already gone (duplicate signals are expected: transport event + patience
// exhaustion can both fire).
func (e *Engine) markDead(rank int, res *IterationResult) bool {
	if rank < 0 || rank >= len(e.alive) || !e.occupied[rank] || !e.alive[rank] {
		return false
	}
	e.alive[rank] = false
	res.Failures = append(res.Failures, FailureEvent{
		Rank: rank, LostToken: -1, FromRank: -1, Unannounced: true,
	})
	e.broadcastDead()
	return true
}

// broadcastDead tells every live machine which ranks are out of the ring, so
// their token forwards skip the dead instead of sending into a void.
func (e *Engine) broadcastDead() {
	var dead []int
	for r := range e.alive {
		if e.occupied[r] && !e.alive[r] {
			dead = append(dead, r)
		}
	}
	msg := DeadRanksMsg{Dead: dead}
	for _, r := range e.AliveRanks() {
		e.coordSendTo(r, tagDeadRanks, msg)
	}
}

// flushPendingDowns marks dead any ranks whose down signal was consumed by a
// nested wait but not yet processed, so the drain phases don't wait on them.
func (e *Engine) flushPendingDowns(st *wState) {
	for _, r := range e.pendingDowns {
		e.markDead(r, st.res)
	}
	e.pendingDowns = nil
}

// collectDowns drains peer-down signals that arrived outside a supervised
// wait (between iterations, or queued by a nested wait).
func (e *Engine) collectDowns(res *IterationResult) {
	for _, r := range e.coord.PollDown() {
		e.markDead(r, res)
	}
	for _, r := range e.pendingDowns {
		e.markDead(r, res)
	}
	e.pendingDowns = nil
}

// Run performs iters iterations and returns their results.
func (e *Engine) Run(iters int) []IterationResult {
	out := make([]IterationResult, 0, iters)
	for i := 0; i < iters; i++ {
		out = append(out, e.Iterate())
	}
	return out
}

// buildRoutes constructs each token's itinerary: e epochs of training visits
// plus the final round of P−1 copy-only hops (§4.1). Homes are dealt
// round-robin; with Shuffle, each epoch uses a fresh random cyclic ring
// ("reorganise the circular topology randomly while still circular", §4.3).
func (e *Engine) buildRoutes(alive []int, trainVisits int) [][]int {
	p := len(alive)
	// succ[epoch][rank] = successor rank in that epoch's ring.
	epochs := e.cfg.Epochs
	succ := make([]map[int]int, epochs+1)
	for ep := 0; ep <= epochs; ep++ {
		order := make([]int, p)
		copy(order, alive)
		if e.cfg.Shuffle {
			e.rng.Shuffle(p, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		s := make(map[int]int, p)
		for i, r := range order {
			s[r] = order[(i+1)%p]
		}
		succ[ep] = s
	}
	routes := make([][]int, len(e.submodels))
	for id := range e.submodels {
		home := alive[id%p]
		route := make([]int, 0, trainVisits+p-1)
		cur := home
		for v := 0; v < trainVisits+p-1; v++ {
			route = append(route, cur)
			ep := (v + 1) / p
			if ep > epochs {
				ep = epochs
			}
			cur = succ[ep][cur]
		}
		routes[id] = route
	}
	return routes
}

// handleDeath processes an announced machine failure: mark it dead, reroute
// the bounced token if intact, or recover the lost submodel from its
// predecessor's replica (§4.3 "revert to the previously updated copy").
// Every rescue wait is bounded; a rescuer that itself dies mid-rescue fails
// over to the next replica upstream, ultimately to the authoritative
// pre-iteration state.
func (e *Engine) handleDeath(n DeathNotice, st *wState) FailureEvent {
	e.alive[n.Rank] = false
	// The dead machine will never ack, so its traffic counters arrive here.
	e.coordHops += n.Hops
	e.coordBytes += n.Bytes
	ev := FailureEvent{Rank: n.Rank, LostToken: n.LostID, FromRank: -1}
	if tok := n.Tok; tok != nil {
		// Intact token bounced by the dying machine.
		if tok.Incarnation == e.incarnation[tok.ID] && !st.done[tok.ID] {
			if !e.forwardFromCoord(tok, st) {
				e.finishToken(tok, st)
			}
		}
	}
	if n.LostTok != nil {
		tok := n.LostTok
		// Find the most recent previous alive machine on its route and ask
		// for its replica of the submodel.
		rescued := false
		for pos := tok.Step - 1; pos >= 0 && !rescued; pos-- {
			r := tok.Route[pos]
			if r == n.Rank || !e.alive[r] {
				continue
			}
			reply, ok := e.requestReplica(r, tok.ID)
			if ok && reply.OK {
				tok.SM = reply.SM
				tok.Version = reply.Version
				rescued = true
				ev.Recovered = true
				ev.FromRank = r
			}
		}
		if !rescued {
			// No replica anywhere upstream: restart from the authoritative
			// pre-iteration state.
			tok.SM = e.submodels[tok.ID].Clone()
			tok.Version = e.versions[tok.ID]
			ev.Recovered = true
			ev.FromRank = -1
		}
		// Resume the itinerary past the dead machine.
		if !e.forwardFromCoord(tok, st) {
			e.finishToken(tok, st)
		}
	}
	return ev
}

// traceCand is one account of a token's whereabouts during the probe sweep:
// "machine from sent it toward position entry.Step, holding a replica at
// entry.Version". from -1 is the coordinator's own last send.
type traceCand struct {
	from  int
	entry TraceEntry
}

// sweep reconstructs the state of every unfinished token after an
// unannounced death, from the survivors' records instead of the dead
// machine's report: probe all live machines for their last-forward traces,
// find each token's most advanced account, and resurrect the tokens whose
// last known holder is dead (§4.3 without the DeathNotice). Sound for a
// single concurrent failure because the transport delivers a dead peer's
// final forwards before its down event, so a probe sent after the down
// event is answered only after those forwards were processed; overlapping
// failures are handled best-effort (training completes, every death is
// recorded, but a token caught between two deaths may lose a visit).
func (e *Engine) sweep(st *wState) {
	if st.finished >= len(e.submodels) {
		return
	}
	expect := make(map[int]bool)
	for _, r := range e.AliveRanks() {
		e.coordSendTo(r, tagProbe, nil)
		expect[r] = true
	}
	collected := make(map[int][]traceCand)
	wait := e.cfg.RescueTimeout
	retries := e.cfg.RescueRetries
	for len(expect) > 0 {
		msg, err := e.coord.RecvEvent(cluster.AnySource, cluster.AnyTag, wait)
		if err != nil {
			var pd *cluster.PeerDownError
			switch {
			case errors.As(err, &pd):
				e.markDead(pd.Rank, st.res)
				delete(expect, pd.Rank)
			case errors.Is(err, cluster.ErrRecvTimeout):
				if retries == 0 {
					// Patience exhausted: the silent machines are dead.
					for r := range expect {
						e.markDead(r, st.res)
						delete(expect, r)
					}
					continue
				}
				retries--
				wait *= 2
			default:
				panic(fmt.Sprintf("core: coordinator lost its fabric: %v", err))
			}
			continue
		}
		if msg.Tag == tagProbeReply && expect[msg.From] {
			delete(expect, msg.From)
			for _, en := range msg.Payload.(ProbeReply).Entries {
				collected[en.ID] = append(collected[en.ID], traceCand{from: msg.From, entry: en})
			}
			continue
		}
		// Tokens keep finishing (and machines keep dying) while the sweep
		// collects; handle them through the normal dispatcher.
		e.superviseMsg(msg, st)
	}
	for id := range e.submodels {
		if st.done[id] {
			continue
		}
		cands := append([]traceCand(nil), collected[id]...)
		if s := st.sent[id]; s.valid {
			cands = append(cands, traceCand{from: -1,
				entry: TraceEntry{ID: id, Step: s.step, To: s.to, Version: s.version}})
		}
		if len(cands) == 0 {
			continue
		}
		// Most advanced account first; the coordinator's own wins ties (its
		// copy is exact). Ties between machines cannot disagree: equal Step
		// means the same forward observed twice.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].entry.Step != cands[j].entry.Step {
				return cands[i].entry.Step > cands[j].entry.Step
			}
			return cands[i].from < cands[j].from
		})
		top := cands[0]
		if top.entry.To == e.coord.Rank() {
			continue // in flight to the coordinator; supervise will receive it
		}
		if e.alive[top.entry.To] {
			continue // still circulating at a live machine
		}
		e.resurrect(id, cands, st)
	}
}

// resurrect rebuilds a token lost in an unannounced death and re-injects it
// at the position it died, under a bumped incarnation so any surviving
// duplicate of the old copy is dropped on arrival. The replica walk visits
// the same machines in the same order as the announced-death rescue, so the
// recovered state — and therefore the final model — is bit-identical to
// what an announced death of the same machine would have produced.
func (e *Engine) resurrect(id int, cands []traceCand, st *wState) {
	top := cands[0]
	ev := FailureEvent{Rank: top.entry.To, LostToken: id, FromRank: -1, Unannounced: true}
	tok := &Token{ID: id, Route: st.routes[id], Train: st.train, Step: top.entry.Step}
	recovered := false
	for _, c := range cands {
		if c.from < 0 {
			// The coordinator's own send was never processed by anyone: its
			// retained copy is exactly the lost state.
			s := st.sent[id]
			tok.SM = s.sm.Clone()
			tok.Version = s.version
			recovered = true
			break
		}
		if !e.alive[c.from] {
			continue
		}
		reply, ok := e.requestReplica(c.from, id)
		if ok && reply.OK {
			tok.SM = reply.SM
			tok.Version = reply.Version
			ev.FromRank = c.from
			recovered = true
			break
		}
	}
	if !recovered {
		// No replica anywhere: restart from the authoritative pre-iteration
		// state.
		tok.SM = e.submodels[id].Clone()
		tok.Version = e.versions[id]
	}
	ev.Recovered = true
	e.incarnation[id]++
	tok.Incarnation = e.incarnation[id]
	st.res.Failures = append(st.res.Failures, ev)
	if !e.forwardFromCoord(tok, st) {
		e.finishToken(tok, st)
	}
}

// requestReplica asks rank r for its replica of submodel id, with bounded
// patience (RescueTimeout doubling per retry). ok is false when r died or
// stayed silent past the last retry; any death observed while waiting is
// queued on pendingDowns for the supervising loop to process.
func (e *Engine) requestReplica(r, id int) (RescueReply, bool) {
	if r < 0 || r >= len(e.alive) || !e.alive[r] || e.coord.Down(r) {
		return RescueReply{}, false
	}
	e.coordSendTo(r, tagRescue, id)
	wait := e.cfg.RescueTimeout
	for try := 0; ; try++ {
		msg, err := e.coord.RecvEvent(r, tagRescueReply, wait)
		if err == nil {
			return msg.Payload.(RescueReply), true
		}
		var pd *cluster.PeerDownError
		switch {
		case errors.As(err, &pd):
			e.pendingDowns = append(e.pendingDowns, pd.Rank)
			if pd.Rank == r {
				return RescueReply{}, false
			}
		case errors.Is(err, cluster.ErrRecvTimeout):
			if try >= e.cfg.RescueRetries {
				e.pendingDowns = append(e.pendingDowns, r)
				return RescueReply{}, false
			}
			wait *= 2
		default:
			panic(fmt.Sprintf("core: coordinator lost its fabric: %v", err))
		}
	}
}

// drainWAcks closes the W step: every live machine reports its local model
// inventory and traffic counters, and stale or missing copies are repaired
// so the Z step sees the full model. A machine that dies during the drain
// is marked dead and skipped.
func (e *Engine) drainWAcks(st *wState) {
	e.flushPendingDowns(st)
	expect := make(map[int]bool)
	for _, r := range e.AliveRanks() {
		e.coordSendTo(r, tagWDone, nil)
		expect[r] = true
	}
	wait := e.cfg.RescueTimeout
	retries := e.cfg.RescueRetries
	for len(expect) > 0 {
		msg, err := e.coord.RecvEvent(cluster.AnySource, cluster.AnyTag, wait)
		if err != nil {
			var pd *cluster.PeerDownError
			switch {
			case errors.As(err, &pd):
				e.markDead(pd.Rank, st.res)
				delete(expect, pd.Rank)
			case errors.Is(err, cluster.ErrRecvTimeout):
				if retries == 0 {
					for r := range expect {
						e.markDead(r, st.res)
						delete(expect, r)
					}
					continue
				}
				retries--
				wait *= 2
			default:
				panic(fmt.Sprintf("core: coordinator lost its fabric: %v", err))
			}
			continue
		}
		if msg.Tag != tagWAck || !expect[msg.From] {
			continue // straggler from the supervised phase; already accounted
		}
		delete(expect, msg.From)
		ack := msg.Payload.(WAckMsg)
		st.res.ModelMessages += ack.Hops
		st.res.ModelBytes += ack.Bytes
		have := make(map[int]int, len(ack.Entries))
		for _, en := range ack.Entries {
			have[en.ID] = en.Version
		}
		for id, sm := range e.submodels {
			v, ok := have[id]
			stale := !ok || (v >= 0 && v != st.final[id])
			if stale {
				var payload Submodel
				if e.cfg.Replicas {
					payload = sm.Clone()
				} else {
					payload = sm
				}
				e.coord.Send(msg.From, tagFix, FixMsg{ID: id, SM: payload}, sm.Bytes())
				e.coordBytes += int64(sm.Bytes())
				st.res.FixMessages++
			}
		}
	}
}

// runZPhase triggers the shard-local Z step (§4.1: no communication between
// machines) on every live machine and collects the change counts. tagZGo is
// never re-sent — ZStep is not idempotent — so a machine that dies here
// just loses its shard's update for this iteration.
func (e *Engine) runZPhase(st *wState) {
	e.flushPendingDowns(st)
	expect := make(map[int]bool)
	for _, r := range e.AliveRanks() {
		e.coordSendTo(r, tagZGo, nil)
		expect[r] = true
	}
	wait := e.cfg.RescueTimeout
	retries := e.cfg.RescueRetries
	for len(expect) > 0 {
		msg, err := e.coord.RecvEvent(cluster.AnySource, cluster.AnyTag, wait)
		if err != nil {
			var pd *cluster.PeerDownError
			switch {
			case errors.As(err, &pd):
				e.markDead(pd.Rank, st.res)
				delete(expect, pd.Rank)
			case errors.Is(err, cluster.ErrRecvTimeout):
				if retries == 0 {
					for r := range expect {
						e.markDead(r, st.res)
						delete(expect, r)
					}
					continue
				}
				retries--
				wait *= 2
			default:
				panic(fmt.Sprintf("core: coordinator lost its fabric: %v", err))
			}
			continue
		}
		if msg.Tag != tagZDone || !expect[msg.From] {
			continue
		}
		delete(expect, msg.From)
		st.res.ZChanged += msg.Payload.(ZDoneMsg).Changed
	}
}

// forwardFromCoord advances tok.Step to the next alive itinerary position and
// sends the token there, recording the send as the coordinator's trace entry
// for the probe sweep. It reports false when no alive position remains (the
// token is finished).
func (e *Engine) forwardFromCoord(tok *Token, st *wState) bool {
	for pos := tok.Step; pos < len(tok.Route); pos++ {
		if e.alive[tok.Route[pos]] {
			tok.Step = pos
			e.coordHops++
			e.coordBytes += int64(tok.SM.Bytes())
			st.sent[tok.ID] = coordSend{valid: true, step: pos, to: tok.Route[pos], version: tok.Version, sm: tok.SM}
			e.coord.Send(tok.Route[pos], tagToken, tok, tok.SM.Bytes())
			return true
		}
	}
	return false
}
