// Package core implements ParMAC (§4), the paper's contribution: a
// distributed computation model for the method of auxiliary coordinates.
//
// P machines hold disjoint data shards (and the auxiliary coordinates of
// their points, which never move). In the W step, M independent submodels
// circulate through the machines in a ring: each machine trains every
// submodel that passes through on its local shard (implicitly running SGD
// with per-machine minibatches), then forwards it to its successor. After e
// epochs (visits to every machine) plus one final round of communication,
// every machine holds a copy of the whole updated model. In the Z step, each
// machine updates the coordinates of its own points with no communication at
// all. Only model parameters ever cross the network.
//
// The engine is split along the paper's deployment boundary: the Engine is
// the coordinator, machines run RunWorker (worker.go), and the two sides
// speak exclusively through the pluggable fabric of internal/cluster — Go
// channels in-process (Engine.New spawns the workers itself) or TCP between
// OS processes (NewDistributed drives externally launched workers, with
// submodels gob-serialized on the wire). The engine supports the ParMAC
// extensions of §4.3: per-epoch ring shuffling, load balancing via unequal
// shards, streaming (machines can be added and retired between iterations)
// and fault tolerance (a machine can die mid-W-step; lost submodels are
// recovered from the redundant copies on their predecessor machines, and
// routes are repaired to skip the dead machine).
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
)

// Shard is a machine-local slice of the data and its auxiliary coordinates.
// The engine never looks inside; it only schedules work against it.
type Shard interface {
	NumPoints() int
}

// Submodel is one independent unit of the W step (a hash function, a decoder
// group, a hidden unit's weight vector...). Submodels own their parameters
// and any optimiser state (e.g. SGD schedules), which therefore circulate
// with them. Concrete types used across process boundaries must additionally
// be gob-encodable (including optimiser state) and gob-registered.
type Submodel interface {
	// ID identifies the submodel; IDs must be 0..M-1.
	ID() int
	// TrainOn performs one stochastic pass over the shard, visiting points
	// in the given order. This is the "process it" of the paper's
	// asynchronous W step.
	TrainOn(shard Shard, order []int)
	// Clone returns a deep copy, used for the per-machine redundant copies
	// that give ParMAC its fault tolerance (§4.3).
	Clone() Submodel
	// Bytes is the serialised parameter size, accounted as t_c^W traffic.
	Bytes() int
}

// Problem adapts a specific MAC algorithm (binary autoencoder, deep net, …)
// to the engine.
type Problem interface {
	// Submodels returns the circulating submodels with IDs 0..M-1. The
	// engine trains these objects in place across iterations.
	Submodels() []Submodel
	// NumShards reports how many shards exist; shard i belongs to machine i.
	NumShards() int
	// Shard returns shard i.
	Shard(i int) Shard
	// ZStep updates the auxiliary coordinates of shard i given a complete
	// model (indexed by submodel ID) and returns how many coordinates
	// changed. It runs concurrently across machines and must only touch
	// shard-local state.
	ZStep(shard int, model []Submodel) int
}

// IterationHook is implemented by problems that advance per-iteration state
// (e.g. the μ schedule of the BA). In the in-process shape it is called
// once, before each iteration's W step, on the coordinator's problem; in the
// distributed shape each worker additionally calls it on its own problem
// instance when the W step opens, so shard-local state (the μ used by the Z
// step) advances everywhere.
type IterationHook interface {
	OnIterationStart(iter int)
}

// ModelSyncHook is implemented by problems that cache references to their
// circulating submodels (for evaluation between iterations). Fault recovery
// replaces a lost submodel with a recovered clone, so the cached references
// can go stale; the engine calls OnModelSync with the authoritative set at
// the end of every iteration.
type ModelSyncHook interface {
	OnModelSync(model []Submodel)
}

// FailMode selects how an injected failure behaves.
type FailMode int

const (
	// FailNone disables failure injection.
	FailNone FailMode = iota
	// FailDropToken kills the machine while it is training a submodel: the
	// machine's memory (including that submodel's current state) is lost and
	// the submodel must be recovered from the redundant copy held by its
	// predecessor in the ring (§4.3 "revert to the previously updated copy").
	FailDropToken
)

// FailureInjection schedules a machine death for tests and the
// fault-tolerance experiments.
type FailureInjection struct {
	Mode      FailMode
	Rank      int // machine to kill
	Iteration int // iteration (0-based) during whose W step it dies
	AfterTok  int // die when about to process its AfterTok-th token
}

// Config parameterises the engine.
type Config struct {
	P       int  // initial number of machines
	Epochs  int  // e: circulation epochs per W step
	Within  int  // within-machine passes per visit (§4.2); default 1
	Shuffle bool // shuffle the ring per epoch and within-machine order (§4.3)
	Seed    int64

	// Replicas makes machines store deep copies of passing submodels rather
	// than sharing pointers. Required for fault tolerance; costs memory,
	// exactly the paper's "in-built redundance". Distributed workers always
	// hold private decoded copies, so there it is implied.
	Replicas bool

	// MaxMachines reserves fabric ranks for machines added later by
	// streaming. Defaults to P.
	MaxMachines int

	Fail FailureInjection
}

func (c *Config) fillDefaults() {
	if c.P <= 0 {
		c.P = 1
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.Within <= 0 {
		c.Within = 1
	}
	if c.MaxMachines < c.P {
		c.MaxMachines = c.P
	}
	if c.Fail.Mode != FailNone && !c.Replicas {
		panic("core: fault tolerance requires Config.Replicas")
	}
}

// FailureEvent records a recovered machine death.
type FailureEvent struct {
	Rank      int
	LostToken int // submodel ID being trained when the machine died, -1 if none
	Recovered bool
	FromRank  int // machine whose replica restored the lost submodel, -1
}

// IterationResult summarises one ParMAC iteration (one W step + one Z step).
type IterationResult struct {
	Iter          int
	ZChanged      int   // coordinates changed across all shards
	ModelMessages int64 // submodel hops in the W step
	ModelBytes    int64 // bytes of model parameters moved
	FixMessages   int   // post-W repairs of stale/missing local copies
	Failures      []FailureEvent
	AliveMachines int
}

// message tags on the fabric.
const (
	tagWStart = iota
	tagToken
	tagFinished
	tagDead
	tagBounced
	tagRescue
	tagRescueReply
	tagWDone
	tagWAck
	tagFix
	tagZGo
	tagZDone
	tagShutdown
	tagShutdownAck
)

// Engine is the ParMAC coordinator. It owns the authoritative model between
// iterations, builds itineraries, supervises failures and aggregates
// results; all machine interaction goes through its communicator.
type Engine struct {
	cfg  Config
	prob Problem

	net   *cluster.Network // in-process shape only: the fabric we own
	coord *cluster.Comm

	occupied []bool // rank has a (possibly dead) worker attached
	alive    []bool // rank is in the ring

	submodels []Submodel // authoritative model between iterations
	versions  []int      // training visits accumulated per submodel

	rng  *rand.Rand
	iter int

	// per-iteration traffic generated by the coordinator itself
	coordHops  int64
	coordBytes int64

	shutdown bool
}

// New creates an in-process engine for the problem: the fabric is the
// channel backend and machine i runs as a goroutine attached to
// prob.Shard(i). prob.NumShards() must be >= cfg.P.
func New(prob Problem, cfg Config) *Engine {
	cfg.fillDefaults()
	if prob.NumShards() < cfg.P {
		panic(fmt.Sprintf("core: %d shards for %d machines", prob.NumShards(), cfg.P))
	}
	net := cluster.NewNetwork(cfg.MaxMachines + 1)
	e := newEngine(prob, cfg, net.Comm(cfg.MaxMachines))
	e.net = net
	for r := 0; r < cfg.P; r++ {
		e.spawnMachine(r, r)
	}
	return e
}

// NewDistributed creates a coordinator over an external fabric (e.g. a TCP
// cluster): comm must be the fabric's last rank, and cfg.P workers —
// launched separately with RunWorker, each owning its Problem instance —
// occupy ranks 0..P-1. Streaming (AddMachine) is not available in this
// shape; fault injection and recovery are.
func NewDistributed(prob Problem, cfg Config, comm *cluster.Comm) *Engine {
	cfg.MaxMachines = cfg.P // streaming needs worker spawning; no spare ranks here
	cfg.fillDefaults()
	if comm.Size() != cfg.P+1 || comm.Rank() != cfg.P {
		panic(fmt.Sprintf("core: coordinator needs rank %d of a %d-rank fabric, got rank %d of %d",
			cfg.P, cfg.P+1, comm.Rank(), comm.Size()))
	}
	e := newEngine(prob, cfg, comm)
	for r := 0; r < cfg.P; r++ {
		e.occupied[r] = true
		e.alive[r] = true
	}
	return e
}

func newEngine(prob Problem, cfg Config, coord *cluster.Comm) *Engine {
	e := &Engine{
		cfg:      cfg,
		prob:     prob,
		coord:    coord,
		occupied: make([]bool, cfg.MaxMachines),
		alive:    make([]bool, cfg.MaxMachines),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	e.submodels = prob.Submodels()
	for i, sm := range e.submodels {
		if sm.ID() != i {
			panic("core: submodel IDs must be 0..M-1 in order")
		}
	}
	e.versions = make([]int, len(e.submodels))
	return e
}

func (e *Engine) spawnMachine(rank, shard int) {
	e.occupied[rank] = true
	e.alive[rank] = true
	go RunWorker(e.net.Comm(rank), e.prob, shard, WorkerOptions{
		Seed:          WorkerSeed(e.cfg.Seed, rank),
		SharedProblem: true,
	})
}

// M returns the number of submodels.
func (e *Engine) M() int { return len(e.submodels) }

// Model returns the authoritative submodels (valid between iterations).
func (e *Engine) Model() []Submodel { return e.submodels }

// AliveRanks lists the machines currently in the ring.
func (e *Engine) AliveRanks() []int {
	var out []int
	for r := range e.alive {
		if e.occupied[r] && e.alive[r] {
			out = append(out, r)
		}
	}
	return out
}

// AddMachine attaches a new machine serving prob.Shard(shard) and returns its
// rank. It implements the streaming extension: "adding it to the circular
// topology simply requires connecting it between any two machines" (§4.3).
// Call between iterations. In-process engines only.
func (e *Engine) AddMachine(shard int) int {
	if e.net == nil {
		panic("core: AddMachine requires the in-process engine")
	}
	for r := range e.occupied {
		if !e.occupied[r] {
			if shard >= e.prob.NumShards() {
				panic("core: AddMachine shard out of range")
			}
			e.spawnMachine(r, shard)
			return r
		}
	}
	panic("core: no free ranks; raise Config.MaxMachines")
}

// Retire removes a machine from the ring between iterations ("to remove
// machine p, we do so in the Z step, by reconnecting machine p−1 → machine
// p+1 and returning machine p to the cluster", §4.3). Its shard's data are no
// longer visited.
func (e *Engine) Retire(rank int) {
	if !e.occupied[rank] || !e.alive[rank] {
		panic("core: Retire of absent machine")
	}
	e.alive[rank] = false
	e.coordSendTo(rank, tagShutdown, nil)
	// Wait for the machine to acknowledge: its rank (and communicator) may
	// be reused by a later AddMachine, so the old worker must be gone first.
	e.coord.RecvFrom(rank, tagShutdownAck)
	e.occupied[rank] = false
}

// Shutdown terminates all machine loops. The engine is unusable after.
func (e *Engine) Shutdown() {
	if e.shutdown {
		return
	}
	e.shutdown = true
	for r := range e.occupied {
		if e.occupied[r] {
			e.coordSendTo(r, tagShutdown, nil)
		}
	}
}

func (e *Engine) coordSendTo(rank, tag int, payload any) {
	e.coord.Send(rank, tag, payload, 0)
}

// Iterate runs one full ParMAC iteration (W step then Z step) and returns its
// summary.
func (e *Engine) Iterate() IterationResult {
	if hook, ok := e.prob.(IterationHook); ok {
		hook.OnIterationStart(e.iter)
	}
	res := IterationResult{Iter: e.iter}
	e.coordHops, e.coordBytes = 0, 0

	aliveList := e.AliveRanks()
	p := len(aliveList)
	if p == 0 {
		panic("core: no machines alive")
	}
	trainVisits := e.cfg.Epochs * p
	routes := e.buildRoutes(aliveList, trainVisits)

	// Start the W step on all alive machines, arming failure injection where
	// scheduled.
	for _, r := range aliveList {
		failAfter := -1
		if e.cfg.Fail.Mode != FailNone && e.cfg.Fail.Rank == r && e.cfg.Fail.Iteration == e.iter {
			failAfter = e.cfg.Fail.AfterTok
		}
		e.coordSendTo(r, tagWStart, WStartMsg{
			Iter: e.iter, Train: trainVisits, Within: e.cfg.Within,
			Shuffle: e.cfg.Shuffle, Replicas: e.cfg.Replicas,
			M: len(e.submodels), FailAfter: failAfter,
		})
	}
	// Inject the initial tokens at their home machines.
	for i, sm := range e.submodels {
		tok := &Token{SM: sm, ID: i, Version: e.versions[i], Route: routes[i], Train: trainVisits}
		// Placement is free: submodel i starts resident at its home machine.
		e.coord.Send(tok.Route[0], tagToken, tok, 0)
	}

	// Supervise until all tokens finish.
	finished := 0
	finalVersion := make([]int, len(e.submodels))
	for finished < len(e.submodels) {
		msg := e.coord.Recv(cluster.AnyTag)
		switch msg.Tag {
		case tagFinished:
			tok := msg.Payload.(*Token)
			e.submodels[tok.ID] = tok.SM
			finalVersion[tok.ID] = tok.Version
			finished++
		case tagDead:
			n := msg.Payload.(DeathNotice)
			ev := e.handleDeath(n)
			res.Failures = append(res.Failures, ev)
		case tagBounced:
			tok := msg.Payload.(*Token)
			if !e.forwardFromCoord(tok) {
				e.submodels[tok.ID] = tok.SM
				finalVersion[tok.ID] = tok.Version
				finished++
			}
		default:
			panic(fmt.Sprintf("core: coordinator got unexpected tag %d", msg.Tag))
		}
	}
	copy(e.versions, finalVersion)

	// Drain the W step: every alive machine acks with its local inventory
	// and traffic counters; repair stale or missing copies so the Z step
	// sees the full model.
	aliveNow := e.AliveRanks()
	for _, r := range aliveNow {
		e.coordSendTo(r, tagWDone, nil)
	}
	for range aliveNow {
		msg := e.coord.Recv(tagWAck)
		ack := msg.Payload.(WAckMsg)
		res.ModelMessages += ack.Hops
		res.ModelBytes += ack.Bytes
		have := make(map[int]int, len(ack.Entries))
		for _, en := range ack.Entries {
			have[en.ID] = en.Version
		}
		for id, sm := range e.submodels {
			v, ok := have[id]
			stale := !ok || (v >= 0 && v != finalVersion[id])
			if stale {
				var payload Submodel
				if e.cfg.Replicas {
					payload = sm.Clone()
				} else {
					payload = sm
				}
				e.coord.Send(msg.From, tagFix, FixMsg{ID: id, SM: payload}, sm.Bytes())
				e.coordBytes += int64(sm.Bytes())
				res.FixMessages++
			}
		}
	}

	// Z step: no communication between machines (§4.1).
	for _, r := range aliveNow {
		e.coordSendTo(r, tagZGo, nil)
	}
	for range aliveNow {
		msg := e.coord.Recv(tagZDone)
		res.ZChanged += msg.Payload.(ZDoneMsg).Changed
	}

	res.ModelMessages += e.coordHops
	res.ModelBytes += e.coordBytes
	res.AliveMachines = len(aliveNow)
	if hook, ok := e.prob.(ModelSyncHook); ok {
		hook.OnModelSync(e.submodels)
	}
	e.iter++
	return res
}

// Run performs iters iterations and returns their results.
func (e *Engine) Run(iters int) []IterationResult {
	out := make([]IterationResult, 0, iters)
	for i := 0; i < iters; i++ {
		out = append(out, e.Iterate())
	}
	return out
}

// buildRoutes constructs each token's itinerary: e epochs of training visits
// plus the final round of P−1 copy-only hops (§4.1). Homes are dealt
// round-robin; with Shuffle, each epoch uses a fresh random cyclic ring
// ("reorganise the circular topology randomly while still circular", §4.3).
func (e *Engine) buildRoutes(alive []int, trainVisits int) [][]int {
	p := len(alive)
	// succ[epoch][rank] = successor rank in that epoch's ring.
	epochs := e.cfg.Epochs
	succ := make([]map[int]int, epochs+1)
	for ep := 0; ep <= epochs; ep++ {
		order := make([]int, p)
		copy(order, alive)
		if e.cfg.Shuffle {
			e.rng.Shuffle(p, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		s := make(map[int]int, p)
		for i, r := range order {
			s[r] = order[(i+1)%p]
		}
		succ[ep] = s
	}
	routes := make([][]int, len(e.submodels))
	for id := range e.submodels {
		home := alive[id%p]
		route := make([]int, 0, trainVisits+p-1)
		cur := home
		for v := 0; v < trainVisits+p-1; v++ {
			route = append(route, cur)
			ep := (v + 1) / p
			if ep > epochs {
				ep = epochs
			}
			cur = succ[ep][cur]
		}
		routes[id] = route
	}
	return routes
}

// handleDeath processes a machine failure: mark it dead, reroute the bounced
// token if intact, or recover the lost submodel from its predecessor's
// replica (§4.3).
func (e *Engine) handleDeath(n DeathNotice) FailureEvent {
	e.alive[n.Rank] = false
	// The dead machine will never ack, so its traffic counters arrive here.
	e.coordHops += n.Hops
	e.coordBytes += n.Bytes
	ev := FailureEvent{Rank: n.Rank, LostToken: n.LostID, FromRank: -1}
	if n.Tok != nil {
		// Intact token bounced by the dying machine.
		if !e.forwardFromCoord(n.Tok) {
			e.coord.Send(e.coord.Rank(), tagFinished, n.Tok, 0) // self-deliver
		}
	}
	if n.LostTok != nil {
		tok := n.LostTok
		// Find the most recent previous alive machine on its route and ask
		// for its replica of the submodel.
		rescued := false
		for pos := tok.Step - 1; pos >= 0 && !rescued; pos-- {
			r := tok.Route[pos]
			if r == n.Rank || !e.alive[r] {
				continue
			}
			e.coordSendTo(r, tagRescue, tok.ID)
			reply := e.coord.RecvFrom(r, tagRescueReply).Payload.(RescueReply)
			if reply.OK {
				tok.SM = reply.SM
				tok.Version = reply.Version
				rescued = true
				ev.Recovered = true
				ev.FromRank = r
			}
		}
		if !rescued {
			// No replica anywhere upstream: restart from the authoritative
			// pre-iteration state.
			tok.SM = e.submodels[tok.ID].Clone()
			tok.Version = e.versions[tok.ID]
			ev.Recovered = true
			ev.FromRank = -1
		}
		// Resume the itinerary past the dead machine.
		if !e.forwardFromCoord(tok) {
			e.coord.Send(e.coord.Rank(), tagFinished, tok, 0)
		}
	}
	return ev
}

// forwardFromCoord advances tok.Step to the next alive itinerary position and
// sends the token there. It reports false when no alive position remains (the
// token is finished).
func (e *Engine) forwardFromCoord(tok *Token) bool {
	for pos := tok.Step; pos < len(tok.Route); pos++ {
		if e.alive[tok.Route[pos]] {
			tok.Step = pos
			e.coordHops++
			e.coordBytes += int64(tok.SM.Bytes())
			e.coord.Send(tok.Route[pos], tagToken, tok, tok.SM.Bytes())
			return true
		}
	}
	return false
}
