// Package core implements ParMAC (§4), the paper's contribution: a
// distributed computation model for the method of auxiliary coordinates.
//
// P machines hold disjoint data shards (and the auxiliary coordinates of
// their points, which never move). In the W step, M independent submodels
// circulate through the machines in a ring: each machine trains every
// submodel that passes through on its local shard (implicitly running SGD
// with per-machine minibatches), then forwards it to its successor. After e
// epochs (visits to every machine) plus one final round of communication,
// every machine holds a copy of the whole updated model. In the Z step, each
// machine updates the coordinates of its own points with no communication at
// all. Only model parameters ever cross the network.
//
// The engine runs each machine as a goroutine over the MPI-like fabric of
// internal/cluster and supports the ParMAC extensions of §4.3: per-epoch ring
// shuffling, load balancing via unequal shards, streaming (machines can be
// added and retired between iterations) and fault tolerance (a machine can
// die mid-W-step; lost submodels are recovered from the redundant copies on
// their predecessor machines, and routes are repaired to skip the dead
// machine).
package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/cluster"
)

// Shard is a machine-local slice of the data and its auxiliary coordinates.
// The engine never looks inside; it only schedules work against it.
type Shard interface {
	NumPoints() int
}

// Submodel is one independent unit of the W step (a hash function, a decoder
// group, a hidden unit's weight vector...). Submodels own their parameters
// and any optimiser state (e.g. SGD schedules), which therefore circulate
// with them.
type Submodel interface {
	// ID identifies the submodel; IDs must be 0..M-1.
	ID() int
	// TrainOn performs one stochastic pass over the shard, visiting points
	// in the given order. This is the "process it" of the paper's
	// asynchronous W step.
	TrainOn(shard Shard, order []int)
	// Clone returns a deep copy, used for the per-machine redundant copies
	// that give ParMAC its fault tolerance (§4.3).
	Clone() Submodel
	// Bytes is the serialised parameter size, accounted as t_c^W traffic.
	Bytes() int
}

// Problem adapts a specific MAC algorithm (binary autoencoder, deep net, …)
// to the engine.
type Problem interface {
	// Submodels returns the circulating submodels with IDs 0..M-1. The
	// engine trains these objects in place across iterations.
	Submodels() []Submodel
	// NumShards reports how many shards exist; shard i belongs to machine i.
	NumShards() int
	// Shard returns shard i.
	Shard(i int) Shard
	// ZStep updates the auxiliary coordinates of shard i given a complete
	// model (indexed by submodel ID) and returns how many coordinates
	// changed. It runs concurrently across machines and must only touch
	// shard-local state.
	ZStep(shard int, model []Submodel) int
}

// IterationHook is implemented by problems that advance per-iteration state
// (e.g. the μ schedule of the BA). It is called once, before each iteration's
// W step, from the coordinator goroutine; the engine's message causality
// makes the update visible to all machines.
type IterationHook interface {
	OnIterationStart(iter int)
}

// ModelSyncHook is implemented by problems that cache references to their
// circulating submodels (for evaluation between iterations). Fault recovery
// replaces a lost submodel with a recovered clone, so the cached references
// can go stale; the engine calls OnModelSync with the authoritative set at
// the end of every iteration.
type ModelSyncHook interface {
	OnModelSync(model []Submodel)
}

// FailMode selects how an injected failure behaves.
type FailMode int

const (
	// FailNone disables failure injection.
	FailNone FailMode = iota
	// FailDropToken kills the machine while it is training a submodel: the
	// machine's memory (including that submodel's current state) is lost and
	// the submodel must be recovered from the redundant copy held by its
	// predecessor in the ring (§4.3 "revert to the previously updated copy").
	FailDropToken
)

// FailureInjection schedules a machine death for tests and the
// fault-tolerance experiments.
type FailureInjection struct {
	Mode      FailMode
	Rank      int // machine to kill
	Iteration int // iteration (0-based) during whose W step it dies
	AfterTok  int // die when about to process its AfterTok-th token
}

// Config parameterises the engine.
type Config struct {
	P       int  // initial number of machines
	Epochs  int  // e: circulation epochs per W step
	Within  int  // within-machine passes per visit (§4.2); default 1
	Shuffle bool // shuffle the ring per epoch and within-machine order (§4.3)
	Seed    int64

	// Replicas makes machines store deep copies of passing submodels rather
	// than sharing pointers. Required for fault tolerance; costs memory,
	// exactly the paper's "in-built redundance".
	Replicas bool

	// MaxMachines reserves fabric ranks for machines added later by
	// streaming. Defaults to P.
	MaxMachines int

	Fail FailureInjection
}

func (c *Config) fillDefaults() {
	if c.P <= 0 {
		c.P = 1
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.Within <= 0 {
		c.Within = 1
	}
	if c.MaxMachines < c.P {
		c.MaxMachines = c.P
	}
	if c.Fail.Mode != FailNone && !c.Replicas {
		panic("core: fault tolerance requires Config.Replicas")
	}
}

// FailureEvent records a recovered machine death.
type FailureEvent struct {
	Rank      int
	LostToken int // submodel ID being trained when the machine died, -1 if none
	Recovered bool
	FromRank  int // machine whose replica restored the lost submodel, -1
}

// IterationResult summarises one ParMAC iteration (one W step + one Z step).
type IterationResult struct {
	Iter          int
	ZChanged      int   // coordinates changed across all shards
	ModelMessages int64 // submodel hops in the W step
	ModelBytes    int64 // bytes of model parameters moved
	FixMessages   int   // post-W repairs of stale/missing local copies
	Failures      []FailureEvent
	AliveMachines int
}

// message tags on the fabric.
const (
	tagWStart = iota
	tagToken
	tagFinished
	tagDead
	tagBounced
	tagRescue
	tagRescueReply
	tagWDone
	tagWAck
	tagFix
	tagZGo
	tagZDone
	tagShutdown
)

// token is a circulating submodel with its itinerary.
type token struct {
	sm      Submodel
	id      int
	step    int   // itinerary positions completed
	version int   // training visits completed
	route   []int // machine rank per itinerary position
	train   int   // positions < train are training visits
}

// deathNotice is the metadata a dying machine manages to emit.
type deathNotice struct {
	rank    int
	tok     *token // intact token being bounced, nil when lost
	lostID  int    // submodel ID lost with the machine's memory, -1 if none
	lostTok *token // itinerary metadata of the lost token (parameters gone)
}

type wStartMsg struct {
	iter    int
	train   int // training visit count e·P_alive
	within  int
	shuffle bool
}

type ackEntry struct {
	id      int
	version int // -1 when the machine holds an aliased pointer (no replicas)
}

type zDoneMsg struct{ changed int }

type fixMsg struct {
	id int
	sm Submodel
}

// localEntry is a machine's copy of a submodel as of some version.
type localEntry struct {
	sm      Submodel
	version int
}

// Engine runs ParMAC.
type Engine struct {
	cfg  Config
	prob Problem

	net   *cluster.Network
	coord *cluster.Comm

	machines []*machine
	alive    []atomic.Bool

	submodels []Submodel // authoritative model between iterations
	versions  []int      // training visits accumulated per submodel

	rng  *rand.Rand
	iter int
	hops atomic.Int64 // submodel forwards during the current W step

	shutdown bool
}

type machine struct {
	eng   *Engine
	rank  int
	comm  *cluster.Comm
	shard int
	local map[int]localEntry
	rng   *rand.Rand

	// failure injection state for the current iteration
	failAfter int // -1: never
	processed int
	dead      bool
}

// New creates an engine for the problem. Machine i is attached to
// prob.Shard(i); prob.NumShards() must be >= cfg.P.
func New(prob Problem, cfg Config) *Engine {
	cfg.fillDefaults()
	if prob.NumShards() < cfg.P {
		panic(fmt.Sprintf("core: %d shards for %d machines", prob.NumShards(), cfg.P))
	}
	e := &Engine{
		cfg:  cfg,
		prob: prob,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	e.net = cluster.NewNetwork(cfg.MaxMachines + 1)
	e.coord = e.net.Comm(cfg.MaxMachines)
	e.machines = make([]*machine, cfg.MaxMachines)
	e.alive = make([]atomic.Bool, cfg.MaxMachines)

	e.submodels = prob.Submodels()
	for i, sm := range e.submodels {
		if sm.ID() != i {
			panic("core: submodel IDs must be 0..M-1 in order")
		}
	}
	e.versions = make([]int, len(e.submodels))

	for r := 0; r < cfg.P; r++ {
		e.spawnMachine(r, r)
	}
	return e
}

func (e *Engine) spawnMachine(rank, shard int) {
	m := &machine{
		eng:       e,
		rank:      rank,
		comm:      e.net.Comm(rank),
		shard:     shard,
		local:     make(map[int]localEntry),
		rng:       rand.New(rand.NewSource(e.cfg.Seed + 1000003*int64(rank+1))),
		failAfter: -1,
	}
	e.machines[rank] = m
	e.alive[rank].Store(true)
	go m.run()
}

// M returns the number of submodels.
func (e *Engine) M() int { return len(e.submodels) }

// Model returns the authoritative submodels (valid between iterations).
func (e *Engine) Model() []Submodel { return e.submodels }

// AliveRanks lists the machines currently in the ring.
func (e *Engine) AliveRanks() []int {
	var out []int
	for r := range e.machines {
		if e.machines[r] != nil && e.alive[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// AddMachine attaches a new machine serving prob.Shard(shard) and returns its
// rank. It implements the streaming extension: "adding it to the circular
// topology simply requires connecting it between any two machines" (§4.3).
// Call between iterations.
func (e *Engine) AddMachine(shard int) int {
	for r := range e.machines {
		if e.machines[r] == nil {
			if shard >= e.prob.NumShards() {
				panic("core: AddMachine shard out of range")
			}
			e.spawnMachine(r, shard)
			return r
		}
	}
	panic("core: no free ranks; raise Config.MaxMachines")
}

// Retire removes a machine from the ring between iterations ("to remove
// machine p, we do so in the Z step, by reconnecting machine p−1 → machine
// p+1 and returning machine p to the cluster", §4.3). Its shard's data are no
// longer visited.
func (e *Engine) Retire(rank int) {
	if e.machines[rank] == nil || !e.alive[rank].Load() {
		panic("core: Retire of absent machine")
	}
	e.alive[rank].Store(false)
	e.coordSendTo(rank, tagShutdown, nil)
	e.machines[rank] = nil
}

// Shutdown terminates all machine goroutines. The engine is unusable after.
func (e *Engine) Shutdown() {
	if e.shutdown {
		return
	}
	e.shutdown = true
	for _, m := range e.machines {
		if m != nil {
			e.coordSendTo(m.rank, tagShutdown, nil)
		}
	}
}

func (e *Engine) coordSendTo(rank, tag int, payload any) {
	e.coord.Send(rank, tag, payload, 0)
}

// Iterate runs one full ParMAC iteration (W step then Z step) and returns its
// summary.
func (e *Engine) Iterate() IterationResult {
	if hook, ok := e.prob.(IterationHook); ok {
		hook.OnIterationStart(e.iter)
	}
	res := IterationResult{Iter: e.iter}
	statsBefore := e.net.Stats()

	aliveList := e.AliveRanks()
	p := len(aliveList)
	if p == 0 {
		panic("core: no machines alive")
	}
	trainVisits := e.cfg.Epochs * p
	routes := e.buildRoutes(aliveList, trainVisits)

	// Arm failure injection.
	for _, m := range e.machines {
		if m == nil {
			continue
		}
		m.failAfter = -1
		m.processed = 0
		if e.cfg.Fail.Mode != FailNone && e.cfg.Fail.Rank == m.rank && e.cfg.Fail.Iteration == e.iter {
			m.failAfter = e.cfg.Fail.AfterTok
		}
	}

	// Start the W step on all alive machines.
	start := wStartMsg{iter: e.iter, train: trainVisits, within: e.cfg.Within, shuffle: e.cfg.Shuffle}
	for _, r := range aliveList {
		e.coordSendTo(r, tagWStart, start)
	}
	// Inject the initial tokens at their home machines.
	tokens := make([]*token, len(e.submodels))
	for i, sm := range e.submodels {
		tok := &token{sm: sm, id: i, version: e.versions[i], route: routes[i], train: trainVisits}
		tokens[i] = tok
		// Placement is free: submodel i starts resident at its home machine.
		e.coord.Send(tok.route[0], tagToken, tok, 0)
	}

	// Supervise until all tokens finish.
	finished := 0
	finalVersion := make([]int, len(e.submodels))
	for finished < len(e.submodels) {
		msg := e.coord.Recv(cluster.AnyTag)
		switch msg.Tag {
		case tagFinished:
			tok := msg.Payload.(*token)
			e.submodels[tok.id] = tok.sm
			finalVersion[tok.id] = tok.version
			finished++
		case tagDead:
			n := msg.Payload.(deathNotice)
			ev := e.handleDeath(n)
			res.Failures = append(res.Failures, ev)
		case tagBounced:
			tok := msg.Payload.(*token)
			if !e.forwardFromCoord(tok) {
				e.submodels[tok.id] = tok.sm
				finalVersion[tok.id] = tok.version
				finished++
			}
		default:
			panic(fmt.Sprintf("core: coordinator got unexpected tag %d", msg.Tag))
		}
	}
	copy(e.versions, finalVersion)

	// Drain the W step: every alive machine acks with its local inventory;
	// repair stale or missing copies so the Z step sees the full model.
	aliveNow := e.AliveRanks()
	for _, r := range aliveNow {
		e.coordSendTo(r, tagWDone, nil)
	}
	for range aliveNow {
		msg := e.coord.Recv(tagWAck)
		entries := msg.Payload.([]ackEntry)
		have := make(map[int]int, len(entries))
		for _, en := range entries {
			have[en.id] = en.version
		}
		for id, sm := range e.submodels {
			v, ok := have[id]
			stale := !ok || (v >= 0 && v != finalVersion[id])
			if stale {
				var payload Submodel
				if e.cfg.Replicas {
					payload = sm.Clone()
				} else {
					payload = sm
				}
				e.coord.Send(msg.From, tagFix, fixMsg{id: id, sm: payload}, sm.Bytes())
				res.FixMessages++
			}
		}
	}

	// Z step: no communication between machines (§4.1).
	for _, r := range aliveNow {
		e.coordSendTo(r, tagZGo, nil)
	}
	for range aliveNow {
		msg := e.coord.Recv(tagZDone)
		res.ZChanged += msg.Payload.(zDoneMsg).changed
	}

	statsAfter := e.net.Stats()
	res.ModelBytes = statsAfter.Bytes - statsBefore.Bytes
	res.ModelMessages = e.hops.Swap(0)
	res.AliveMachines = len(aliveNow)
	if hook, ok := e.prob.(ModelSyncHook); ok {
		hook.OnModelSync(e.submodels)
	}
	e.iter++
	return res
}

// Run performs iters iterations and returns their results.
func (e *Engine) Run(iters int) []IterationResult {
	out := make([]IterationResult, 0, iters)
	for i := 0; i < iters; i++ {
		out = append(out, e.Iterate())
	}
	return out
}

// buildRoutes constructs each token's itinerary: e epochs of training visits
// plus the final round of P−1 copy-only hops (§4.1). Homes are dealt
// round-robin; with Shuffle, each epoch uses a fresh random cyclic ring
// ("reorganise the circular topology randomly while still circular", §4.3).
func (e *Engine) buildRoutes(alive []int, trainVisits int) [][]int {
	p := len(alive)
	// succ[epoch][rank] = successor rank in that epoch's ring.
	epochs := e.cfg.Epochs
	succ := make([]map[int]int, epochs+1)
	for ep := 0; ep <= epochs; ep++ {
		order := make([]int, p)
		copy(order, alive)
		if e.cfg.Shuffle {
			e.rng.Shuffle(p, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		s := make(map[int]int, p)
		for i, r := range order {
			s[r] = order[(i+1)%p]
		}
		succ[ep] = s
	}
	routes := make([][]int, len(e.submodels))
	for id := range e.submodels {
		home := alive[id%p]
		route := make([]int, 0, trainVisits+p-1)
		cur := home
		for v := 0; v < trainVisits+p-1; v++ {
			route = append(route, cur)
			ep := (v + 1) / p
			if ep > epochs {
				ep = epochs
			}
			cur = succ[ep][cur]
		}
		routes[id] = route
	}
	return routes
}

// handleDeath processes a machine failure: mark it dead, reroute the bounced
// token if intact, or recover the lost submodel from its predecessor's
// replica (§4.3).
func (e *Engine) handleDeath(n deathNotice) FailureEvent {
	e.alive[n.rank].Store(false)
	ev := FailureEvent{Rank: n.rank, LostToken: n.lostID, FromRank: -1}
	if n.tok != nil {
		// Intact token bounced by the dying machine.
		if !e.forwardFromCoord(n.tok) {
			e.coord.Send(e.coord.Rank(), tagFinished, n.tok, 0) // self-deliver
		}
	}
	if n.lostTok != nil {
		tok := n.lostTok
		// Find the most recent previous alive machine on its route and ask
		// for its replica of the submodel.
		rescued := false
		for pos := tok.step - 1; pos >= 0 && !rescued; pos-- {
			r := tok.route[pos]
			if r == n.rank || !e.alive[r].Load() {
				continue
			}
			e.coordSendTo(r, tagRescue, tok.id)
			reply := e.coord.RecvFrom(r, tagRescueReply)
			if reply.Payload != nil {
				entry := reply.Payload.(localEntry)
				tok.sm = entry.sm
				tok.version = entry.version
				rescued = true
				ev.Recovered = true
				ev.FromRank = r
			}
		}
		if !rescued {
			// No replica anywhere upstream: restart from the authoritative
			// pre-iteration state.
			tok.sm = e.submodels[tok.id].Clone()
			tok.version = e.versions[tok.id]
			ev.Recovered = true
			ev.FromRank = -1
		}
		// Resume the itinerary past the dead machine.
		if !e.forwardFromCoord(tok) {
			e.coord.Send(e.coord.Rank(), tagFinished, tok, 0)
		}
	}
	return ev
}

// forwardFromCoord advances tok.step to the next alive itinerary position and
// sends the token there. It reports false when no alive position remains (the
// token is finished).
func (e *Engine) forwardFromCoord(tok *token) bool {
	for pos := tok.step; pos < len(tok.route); pos++ {
		if e.alive[tok.route[pos]].Load() {
			tok.step = pos
			e.hops.Add(1)
			e.coord.Send(tok.route[pos], tagToken, tok, tok.sm.Bytes())
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// machine goroutine
// ---------------------------------------------------------------------------

func (m *machine) run() {
	for {
		msg := m.comm.Recv(cluster.AnyTag)
		switch msg.Tag {
		case tagWStart:
			if m.runWStep(msg.Payload.(wStartMsg)) {
				return
			}
		case tagFix:
			fix := msg.Payload.(fixMsg)
			m.local[fix.id] = localEntry{sm: fix.sm, version: -2}
		case tagZGo:
			m.runZStep()
		case tagShutdown:
			return
		case tagToken:
			// A token raced a shutdown/retire; bounce it to the coordinator.
			m.comm.Send(m.coordRank(), tagBounced, msg.Payload, 0)
		case tagRescue:
			m.handleRescue(msg.Payload.(int))
		default:
			panic(fmt.Sprintf("core: machine %d got unexpected tag %d", m.rank, msg.Tag))
		}
	}
}

func (m *machine) coordRank() int { return m.eng.cfg.MaxMachines }

func (m *machine) handleRescue(id int) {
	if entry, ok := m.local[id]; ok {
		m.comm.Send(m.coordRank(), tagRescueReply, entry, 0)
	} else {
		m.comm.Send(m.coordRank(), tagRescueReply, nil, 0)
	}
}

// runWStep is the paper's asynchronous W-step loop: "extract a submodel from
// the queue, process it (except in epoch e+1) and send it to the machine's
// successor" (§4.1).
// runWStep returns true when the machine was shut down mid-step.
func (m *machine) runWStep(cfg wStartMsg) bool {
	shard := m.eng.prob.Shard(m.shard)
	for {
		msg := m.comm.Recv(cluster.AnyTag)
		switch msg.Tag {
		case tagToken:
			tok := msg.Payload.(*token)
			if m.dead {
				m.comm.Send(m.coordRank(), tagBounced, tok, 0)
				continue
			}
			if m.failAfter >= 0 && m.processed >= m.failAfter {
				// The machine dies now. Its memory — including the submodel
				// it was about to train — is gone; only the failure
				// detection metadata escapes.
				m.dead = true
				m.eng.alive[m.rank].Store(false)
				meta := *tok
				meta.sm = nil
				m.comm.Send(m.coordRank(), tagDead,
					deathNotice{rank: m.rank, lostID: tok.id, lostTok: &meta}, 0)
				continue
			}
			m.processToken(tok, shard, cfg)
		case tagRescue:
			m.handleRescue(msg.Payload.(int))
		case tagWDone:
			m.comm.Send(m.coordRank(), tagWAck, m.inventory(), 0)
			return false
		case tagShutdown:
			return true
		default:
			panic(fmt.Sprintf("core: machine %d got tag %d during W step", m.rank, msg.Tag))
		}
	}
}

func (m *machine) processToken(tok *token, shard Shard, cfg wStartMsg) {
	if tok.step < tok.train {
		for pass := 0; pass < cfg.within; pass++ {
			order := trainOrder(shard.NumPoints(), cfg.shuffle, m.rng)
			tok.sm.TrainOn(shard, order)
		}
		tok.version++
	}
	tok.step++
	m.processed++
	m.record(tok)
	// Forward to the next alive itinerary position, skipping dead machines
	// ("should not visit p anymore", §4.3).
	for pos := tok.step; pos < len(tok.route); pos++ {
		if m.eng.alive[tok.route[pos]].Load() {
			tok.step = pos
			m.eng.hops.Add(1)
			m.comm.Send(tok.route[pos], tagToken, tok, tok.sm.Bytes())
			return
		}
	}
	m.comm.Send(m.coordRank(), tagFinished, tok, 0)
}

// record stores this machine's copy of the submodel: a deep clone when
// replicas are on (fault tolerance), a shared pointer otherwise.
func (m *machine) record(tok *token) {
	if m.eng.cfg.Replicas {
		m.local[tok.id] = localEntry{sm: tok.sm.Clone(), version: tok.version}
	} else {
		m.local[tok.id] = localEntry{sm: tok.sm, version: -1}
	}
}

func (m *machine) inventory() []ackEntry {
	out := make([]ackEntry, 0, len(m.local))
	for id, entry := range m.local {
		out = append(out, ackEntry{id: id, version: entry.version})
	}
	return out
}

func (m *machine) runZStep() {
	model := make([]Submodel, m.eng.M())
	for id := range model {
		entry, ok := m.local[id]
		if !ok {
			panic(fmt.Sprintf("core: machine %d missing submodel %d at Z step", m.rank, id))
		}
		model[id] = entry.sm
	}
	changed := m.eng.prob.ZStep(m.shard, model)
	m.comm.Send(m.coordRank(), tagZDone, zDoneMsg{changed: changed}, 0)
}

// trainOrder mirrors sgd.Order without importing it (the engine stays
// decoupled from the trainers).
func trainOrder(n int, shuffle bool, rng *rand.Rand) []int {
	if !shuffle {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return rng.Perm(n)
}
