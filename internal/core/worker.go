package core

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
)

// The machine side of the ParMAC protocol. A worker talks to the coordinator
// and its ring neighbours exclusively through its communicator — it shares
// no memory with the Engine — so the same loop serves both deployment
// shapes: a goroutine per machine over the in-process fabric (Engine.New
// spawns these) and one OS process per machine over the TCP fabric
// (cmd/parmac-train -worker runs this as its main loop).

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Seed drives the machine-local shuffling RNG. Use WorkerSeed so every
	// deployment shape derives the same per-rank stream.
	Seed int64
	// SharedProblem marks the in-process shape, where the worker's Problem
	// is the coordinator's: per-iteration problem hooks then run once on the
	// coordinator instead of on every machine, and local submodel copies
	// follow Config.Replicas aliasing semantics. Distributed workers own
	// their Problem instance and leave this false.
	SharedProblem bool
}

// WorkerSeed derives the canonical per-rank RNG seed, identical across
// backends so a fixed-seed run is reproducible in either deployment shape.
func WorkerSeed(base int64, rank int) int64 { return base + 1000003*int64(rank+1) }

// RunWorker runs one machine: it serves W-step, repair, rescue and Z-step
// requests over comm until the coordinator sends a shutdown. The machine is
// attached to prob.Shard(shard); the coordinator is the fabric's last rank.
func RunWorker(comm *cluster.Comm, prob Problem, shard int, opt WorkerOptions) {
	w := &worker{
		comm:      comm,
		prob:      prob,
		shard:     shard,
		shared:    opt.SharedProblem,
		coordRank: comm.Size() - 1,
		rank:      comm.Rank(),
		local:     make(map[int]localEntry),
		rng:       rand.New(rand.NewSource(opt.Seed)),
		failAfter: -1,
	}
	w.run()
}

// localEntry is a machine's copy of a submodel as of some version.
type localEntry struct {
	sm      Submodel
	version int
}

type worker struct {
	comm      *cluster.Comm
	prob      Problem
	shard     int
	shared    bool
	coordRank int
	rank      int
	local     map[int]localEntry
	rng       *rand.Rand

	// per-iteration state, armed by WStartMsg
	m         int
	replicas  bool
	hops      int64
	bytes     int64
	failAfter int // -1: never
	processed int
	dead      bool
}

func (w *worker) run() {
	for {
		msg := w.comm.Recv(cluster.AnyTag)
		switch msg.Tag {
		case tagWStart:
			if w.runWStep(msg.Payload.(WStartMsg)) {
				return
			}
		case tagFix:
			fix := msg.Payload.(FixMsg)
			w.local[fix.ID] = localEntry{sm: fix.SM, version: -2}
		case tagZGo:
			w.runZStep()
		case tagShutdown:
			w.ackShutdown()
			return
		case tagToken:
			// A token raced a shutdown/retire; bounce it to the coordinator.
			w.comm.Send(w.coordRank, tagBounced, msg.Payload, 0)
		case tagRescue:
			w.handleRescue(msg.Payload.(int))
		default:
			panic(fmt.Sprintf("core: machine %d got unexpected tag %d", w.rank, msg.Tag))
		}
	}
}

// ackShutdown is the worker's very last send: Retire blocks on it before
// releasing the rank, so a successor machine can never share this worker's
// communicator.
func (w *worker) ackShutdown() {
	w.comm.Send(w.coordRank, tagShutdownAck, nil, 0)
}

func (w *worker) handleRescue(id int) {
	if entry, ok := w.local[id]; ok {
		w.comm.Send(w.coordRank, tagRescueReply, RescueReply{SM: entry.sm, Version: entry.version, OK: true}, 0)
	} else {
		w.comm.Send(w.coordRank, tagRescueReply, RescueReply{}, 0)
	}
}

// runWStep is the paper's asynchronous W-step loop: "extract a submodel from
// the queue, process it (except in epoch e+1) and send it to the machine's
// successor" (§4.1). It returns true when the machine was shut down
// mid-step.
func (w *worker) runWStep(cfg WStartMsg) bool {
	w.m = cfg.M
	w.replicas = cfg.Replicas
	w.failAfter = cfg.FailAfter
	w.processed = 0
	w.hops, w.bytes = 0, 0
	if !w.shared {
		// This worker owns its Problem instance, so per-iteration state (the
		// μ schedule, SGD re-tuning) must advance here; in the shared shape
		// the coordinator already did it.
		if hook, ok := w.prob.(IterationHook); ok {
			hook.OnIterationStart(cfg.Iter)
		}
	}
	shard := w.prob.Shard(w.shard)
	for {
		msg := w.comm.Recv(cluster.AnyTag)
		switch msg.Tag {
		case tagToken:
			tok := msg.Payload.(*Token)
			if w.dead {
				w.comm.Send(w.coordRank, tagBounced, tok, 0)
				continue
			}
			if w.failAfter >= 0 && w.processed >= w.failAfter {
				// The machine dies now. Its memory — including the submodel
				// it was about to train — is gone; only the failure
				// detection metadata escapes.
				w.dead = true
				meta := *tok
				meta.SM = nil
				w.comm.Send(w.coordRank, tagDead,
					DeathNotice{Rank: w.rank, LostID: tok.ID, LostTok: &meta,
						Hops: w.hops, Bytes: w.bytes}, 0)
				continue
			}
			w.processToken(tok, shard, cfg)
		case tagRescue:
			w.handleRescue(msg.Payload.(int))
		case tagWDone:
			w.comm.Send(w.coordRank, tagWAck,
				WAckMsg{Entries: w.inventory(), Hops: w.hops, Bytes: w.bytes}, 0)
			return false
		case tagShutdown:
			w.ackShutdown()
			return true
		default:
			panic(fmt.Sprintf("core: machine %d got tag %d during W step", w.rank, msg.Tag))
		}
	}
}

func (w *worker) processToken(tok *Token, shard Shard, cfg WStartMsg) {
	if tok.Step < tok.Train {
		for pass := 0; pass < cfg.Within; pass++ {
			order := trainOrder(shard.NumPoints(), cfg.Shuffle, w.rng)
			tok.SM.TrainOn(shard, order)
		}
		tok.Version++
	}
	tok.Step++
	w.processed++
	w.record(tok)
	// Forward along the itinerary. The machine does not know who died; a
	// dead successor bounces the token to the coordinator, which reroutes it
	// past the failure ("should not visit p anymore", §4.3).
	if tok.Step < len(tok.Route) {
		w.hops++
		w.bytes += int64(tok.SM.Bytes())
		w.comm.Send(tok.Route[tok.Step], tagToken, tok, tok.SM.Bytes())
		return
	}
	w.comm.Send(w.coordRank, tagFinished, tok, 0)
}

// record stores this machine's copy of the submodel. In the distributed
// shape the decoded token is already a private copy, so it doubles as the
// fault-tolerance replica; in the shared shape a deep clone is taken when
// replicas are on, and a shared pointer (version -1: always current) is kept
// otherwise.
func (w *worker) record(tok *Token) {
	switch {
	case !w.shared:
		w.local[tok.ID] = localEntry{sm: tok.SM, version: tok.Version}
	case w.replicas:
		w.local[tok.ID] = localEntry{sm: tok.SM.Clone(), version: tok.Version}
	default:
		w.local[tok.ID] = localEntry{sm: tok.SM, version: -1}
	}
}

func (w *worker) inventory() []AckEntry {
	out := make([]AckEntry, 0, len(w.local))
	for id, entry := range w.local {
		out = append(out, AckEntry{ID: id, Version: entry.version})
	}
	return out
}

func (w *worker) runZStep() {
	model := make([]Submodel, w.m)
	for id := range model {
		entry, ok := w.local[id]
		if !ok {
			panic(fmt.Sprintf("core: machine %d missing submodel %d at Z step", w.rank, id))
		}
		model[id] = entry.sm
	}
	changed := w.prob.ZStep(w.shard, model)
	w.comm.Send(w.coordRank, tagZDone, ZDoneMsg{Changed: changed}, 0)
}

// trainOrder mirrors sgd.Order without importing it (the engine stays
// decoupled from the trainers).
func trainOrder(n int, shuffle bool, rng *rand.Rand) []int {
	if !shuffle {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return rng.Perm(n)
}
