package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cluster"
)

// The machine side of the ParMAC protocol. A worker talks to the coordinator
// and its ring neighbours exclusively through its communicator — it shares
// no memory with the Engine — so the same loop serves both deployment
// shapes: a goroutine per machine over the in-process fabric (Engine.New
// spawns these) and one OS process per machine over the TCP fabric
// (cmd/parmac-train -worker runs this as its main loop).

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Seed drives the machine-local shuffling RNG. Use WorkerSeed so every
	// deployment shape derives the same per-rank stream.
	Seed int64
	// SharedProblem marks the in-process shape, where the worker's Problem
	// is the coordinator's: per-iteration problem hooks then run once on the
	// coordinator instead of on every machine, and local submodel copies
	// follow Config.Replicas aliasing semantics. Distributed workers own
	// their Problem instance and leave this false.
	SharedProblem bool
}

// WorkerSeed derives the canonical per-rank RNG seed, identical across
// backends so a fixed-seed run is reproducible in either deployment shape.
func WorkerSeed(base int64, rank int) int64 { return base + 1000003*int64(rank+1) }

// RunWorker runs one machine: it serves W-step, repair, rescue and Z-step
// requests over comm until the coordinator sends a shutdown. The machine is
// attached to prob.Shard(shard); the coordinator is the fabric's last rank.
func RunWorker(comm *cluster.Comm, prob Problem, shard int, opt WorkerOptions) {
	w := &worker{
		comm:      comm,
		prob:      prob,
		shard:     shard,
		shared:    opt.SharedProblem,
		coordRank: comm.Size() - 1,
		rank:      comm.Rank(),
		local:     make(map[int]localEntry),
		deadRanks: make(map[int]bool),
		traces:    make(map[int]TraceEntry),
		rng:       rand.New(rand.NewSource(opt.Seed)),
		failAfter: -1,
	}
	w.run()
}

// localEntry is a machine's copy of a submodel as of some version.
type localEntry struct {
	sm      Submodel
	version int
}

type worker struct {
	comm      *cluster.Comm
	prob      Problem
	shard     int
	shared    bool
	coordRank int
	rank      int
	local     map[int]localEntry
	deadRanks map[int]bool       // ranks known to have left the ring
	traces    map[int]TraceEntry // per token: last forward this machine made
	rng       *rand.Rand

	// per-iteration state, armed by WStartMsg
	m          int
	replicas   bool
	hops       int64
	bytes      int64
	failAfter  int // -1: never
	processed  int
	dead       bool
	failAbrupt bool // injected death is unannounced (no DeathNotice)
	failRescue bool // die unannounced upon the next rescue request
}

// recv is the worker's failure-aware receive. Peer-down events observed on
// the transport feed the dead-rank set (so forwards reroute) and the wait
// continues; ok is false when this worker's own fabric attachment is gone,
// which is the worker's cue to exit quietly — never to panic.
func (w *worker) recv() (cluster.Message, bool) {
	for {
		msg, err := w.comm.RecvEvent(cluster.AnySource, cluster.AnyTag, -1)
		if err == nil {
			return msg, true
		}
		var pd *cluster.PeerDownError
		if errors.As(err, &pd) {
			w.deadRanks[pd.Rank] = true
			continue
		}
		return cluster.Message{}, false
	}
}

func (w *worker) run() {
	for {
		msg, ok := w.recv()
		if !ok {
			return
		}
		switch msg.Tag {
		case tagWStart:
			if w.runWStep(msg.Payload.(WStartMsg)) {
				return
			}
		case tagFix:
			fix := msg.Payload.(FixMsg)
			w.local[fix.ID] = localEntry{sm: fix.SM, version: -2}
		case tagZGo:
			w.runZStep()
		case tagShutdown:
			w.ackShutdown()
			return
		case tagToken:
			// A token raced a shutdown/retire; bounce it to the coordinator.
			w.comm.Send(w.coordRank, tagBounced, msg.Payload, 0)
		case tagRescue:
			if w.handleRescue(msg.Payload.(int)) {
				return
			}
		case tagDeadRanks:
			w.mergeDeadRanks(msg.Payload.(DeadRanksMsg))
		case tagProbe:
			w.sendProbeReply()
		case tagWDone:
			// A drain request that arrived after the W step already closed
			// (e.g. the coordinator re-drained around a failure): re-ack the
			// inventory; the traffic counters were already reported.
			w.comm.Send(w.coordRank, tagWAck, WAckMsg{Entries: w.inventory()}, 0)
		default:
			panic(fmt.Sprintf("core: machine %d got unexpected tag %d", w.rank, msg.Tag))
		}
	}
}

func (w *worker) mergeDeadRanks(m DeadRanksMsg) {
	for _, r := range m.Dead {
		w.deadRanks[r] = true
	}
}

// isDeadRank combines coordinator knowledge (DeadRanksMsg, which includes
// announced deaths) with transport knowledge (peer-down events this worker
// has drained itself).
func (w *worker) isDeadRank(r int) bool {
	return w.deadRanks[r] || w.comm.Down(r)
}

// sendProbeReply reports every token trace of the current W step, sorted by
// submodel ID for determinism.
func (w *worker) sendProbeReply() {
	entries := make([]TraceEntry, 0, len(w.traces))
	for _, tr := range w.traces {
		entries = append(entries, tr)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	w.comm.Send(w.coordRank, tagProbeReply, ProbeReply{Entries: entries}, 0)
}

// ackShutdown is the worker's very last send: Retire blocks on it before
// releasing the rank, so a successor machine can never share this worker's
// communicator.
func (w *worker) ackShutdown() {
	w.comm.Send(w.coordRank, tagShutdownAck, nil, 0)
}

// handleRescue answers a replica request. It returns true when the worker
// died instead (the injected rescuer-dies-during-rescue failure).
func (w *worker) handleRescue(id int) bool {
	if w.failRescue {
		w.failRescue = false
		w.comm.Abort()
		return true
	}
	if entry, ok := w.local[id]; ok {
		w.comm.Send(w.coordRank, tagRescueReply, RescueReply{SM: entry.sm, Version: entry.version, OK: true}, 0)
	} else {
		w.comm.Send(w.coordRank, tagRescueReply, RescueReply{}, 0)
	}
	return false
}

// runWStep is the paper's asynchronous W-step loop: "extract a submodel from
// the queue, process it (except in epoch e+1) and send it to the machine's
// successor" (§4.1). It returns true when the machine was shut down
// mid-step.
func (w *worker) runWStep(cfg WStartMsg) bool {
	w.m = cfg.M
	w.replicas = cfg.Replicas
	w.failAfter = cfg.FailAfter
	w.failAbrupt = cfg.FailUnannounced
	w.failRescue = cfg.FailRescueAbort
	w.processed = 0
	w.hops, w.bytes = 0, 0
	w.traces = make(map[int]TraceEntry)
	if !w.shared {
		// This worker owns its Problem instance, so per-iteration state (the
		// μ schedule, SGD re-tuning) must advance here; in the shared shape
		// the coordinator already did it.
		if hook, ok := w.prob.(IterationHook); ok {
			hook.OnIterationStart(cfg.Iter)
		}
	}
	shard := w.prob.Shard(w.shard)
	for {
		msg, ok := w.recv()
		if !ok {
			return true
		}
		switch msg.Tag {
		case tagToken:
			tok := msg.Payload.(*Token)
			if w.dead {
				w.comm.Send(w.coordRank, tagBounced, tok, 0)
				continue
			}
			if w.failAfter >= 0 && w.processed >= w.failAfter {
				if w.failAbrupt {
					// Unannounced death: sever the fabric link with the token
					// in memory, exactly like a SIGKILL between receive and
					// forward. Nothing escapes; the coordinator must detect
					// and reconstruct (§4.3 without the DeathNotice).
					w.comm.Abort()
					return true
				}
				// The machine dies now. Its memory — including the submodel
				// it was about to train — is gone; only the failure
				// detection metadata escapes.
				w.dead = true
				meta := *tok
				meta.SM = nil
				w.comm.Send(w.coordRank, tagDead,
					DeathNotice{Rank: w.rank, LostID: tok.ID, LostTok: &meta,
						Hops: w.hops, Bytes: w.bytes}, 0)
				continue
			}
			w.processToken(tok, shard, cfg)
		case tagRescue:
			if w.handleRescue(msg.Payload.(int)) {
				return true
			}
		case tagDeadRanks:
			w.mergeDeadRanks(msg.Payload.(DeadRanksMsg))
		case tagProbe:
			w.sendProbeReply()
		case tagWDone:
			w.comm.Send(w.coordRank, tagWAck,
				WAckMsg{Entries: w.inventory(), Hops: w.hops, Bytes: w.bytes}, 0)
			return false
		case tagShutdown:
			w.ackShutdown()
			return true
		default:
			panic(fmt.Sprintf("core: machine %d got tag %d during W step", w.rank, msg.Tag))
		}
	}
}

func (w *worker) processToken(tok *Token, shard Shard, cfg WStartMsg) {
	if tok.Step < tok.Train {
		for pass := 0; pass < cfg.Within; pass++ {
			order := trainOrder(shard.NumPoints(), cfg.Shuffle, w.rng)
			tok.SM.TrainOn(shard, order)
		}
		tok.Version++
	}
	tok.Step++
	w.processed++
	w.record(tok)
	// Forward along the itinerary, skipping positions held by machines known
	// to be dead (DeadRanksMsg from the coordinator, peer-down events from
	// the transport) — the same next-alive-position rule the coordinator
	// applies when rerouting, so the training sequence is identical whether
	// the death was announced or not. A death this machine has not heard of
	// yet still bounces (announced) or is reconstructed by the coordinator's
	// probe sweep (unannounced).
	next := tok.Step
	for next < len(tok.Route) && w.isDeadRank(tok.Route[next]) {
		next++
	}
	tok.Step = next
	if next < len(tok.Route) {
		w.traces[tok.ID] = TraceEntry{ID: tok.ID, Step: next, To: tok.Route[next], Version: tok.Version}
		w.hops++
		w.bytes += int64(tok.SM.Bytes())
		w.comm.Send(tok.Route[next], tagToken, tok, tok.SM.Bytes())
		return
	}
	w.traces[tok.ID] = TraceEntry{ID: tok.ID, Step: len(tok.Route), To: w.coordRank, Version: tok.Version}
	w.comm.Send(w.coordRank, tagFinished, tok, 0)
}

// record stores this machine's copy of the submodel. In the distributed
// shape the decoded token is already a private copy, so it doubles as the
// fault-tolerance replica; in the shared shape a deep clone is taken when
// replicas are on, and a shared pointer (version -1: always current) is kept
// otherwise.
func (w *worker) record(tok *Token) {
	switch {
	case !w.shared:
		w.local[tok.ID] = localEntry{sm: tok.SM, version: tok.Version}
	case w.replicas:
		w.local[tok.ID] = localEntry{sm: tok.SM.Clone(), version: tok.Version}
	default:
		w.local[tok.ID] = localEntry{sm: tok.SM, version: -1}
	}
}

func (w *worker) inventory() []AckEntry {
	out := make([]AckEntry, 0, len(w.local))
	for id, entry := range w.local {
		out = append(out, AckEntry{ID: id, Version: entry.version})
	}
	return out
}

func (w *worker) runZStep() {
	model := make([]Submodel, w.m)
	for id := range model {
		entry, ok := w.local[id]
		if !ok {
			panic(fmt.Sprintf("core: machine %d missing submodel %d at Z step", w.rank, id))
		}
		model[id] = entry.sm
	}
	changed := w.prob.ZStep(w.shard, model)
	w.comm.Send(w.coordRank, tagZDone, ZDoneMsg{Changed: changed}, 0)
}

// trainOrder mirrors sgd.Order without importing it (the engine stays
// decoupled from the trainers).
func trainOrder(n int, shuffle bool, rng *rand.Rand) []int {
	if !shuffle {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return rng.Perm(n)
}
