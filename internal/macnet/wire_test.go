package macnet

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestUnitSubGobRoundTrip(t *testing.T) {
	var orig core.Submodel = &unitSub{
		id:  4,
		ref: UnitRef{Layer: 1, Unit: 2},
		w:   []float64{0.5, -1, 0.25, 2},
		k:   2,
		eta: 0.3,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&orig); err != nil {
		t.Fatal(err)
	}
	var back core.Submodel
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("unit submodel round trip lost state:\norig %#v\nback %#v", orig, back)
	}
}

func TestUnitSubDecodeRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&unitWire{ID: 1}); err != nil {
		t.Fatal(err)
	}
	var u unitSub
	if err := u.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("weightless unit must not decode")
	}
}

var update = flag.Bool("update", false, "rewrite golden files")

// TestUnitSubWireGolden decodes unit-submodel bytes committed when the wire
// format was defined (binauto/serialize_test.go convention): decodability of
// old bytes is the compatibility the TCP fabric depends on. -update
// re-captures the current encoding; flag any regeneration in the PR.
func TestUnitSubWireGolden(t *testing.T) {
	want := &unitSub{
		id:  4,
		ref: UnitRef{Layer: 1, Unit: 2},
		w:   []float64{0.5, -1, 0.25, 2},
		k:   2,
		eta: 0.3,
	}
	path := filepath.Join("testdata", "unit_sub.golden.hex")
	if *update {
		raw, err := want.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(raw)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	hexBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(hexBytes)))
	if err != nil {
		t.Fatal(err)
	}
	got := &unitSub{}
	if err := got.GobDecode(raw); err != nil {
		t.Fatalf("committed wire bytes no longer decode — the format drifted incompatibly: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("committed wire bytes decode to different state:\ngot  %#v\nwant %#v", got, want)
	}
}
