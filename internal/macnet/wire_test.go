package macnet

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/core"
)

func TestUnitSubGobRoundTrip(t *testing.T) {
	var orig core.Submodel = &unitSub{
		id:  4,
		ref: UnitRef{Layer: 1, Unit: 2},
		w:   []float64{0.5, -1, 0.25, 2},
		k:   2,
		eta: 0.3,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&orig); err != nil {
		t.Fatal(err)
	}
	var back core.Submodel
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("unit submodel round trip lost state:\norig %#v\nback %#v", orig, back)
	}
}

func TestUnitSubDecodeRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&unitWire{ID: 1}); err != nil {
		t.Fatal(err)
	}
	var u unitSub
	if err := u.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("weightless unit must not decode")
	}
}
