package macnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/vec"
)

// toyRegression builds a smooth target y = σ-shaped function of x in (0,1).
func toyRegression(n int, seed int64) (xs, ys *vec.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	xs = vec.NewMatrix(n, 2)
	ys = vec.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		xs.Set(i, 0, a)
		xs.Set(i, 1, b)
		ys.Set(i, 0, Sigmoid(2*a-b))
	}
	return xs, ys
}

func TestForwardShapesAndRange(t *testing.T) {
	n := NewNet([]int{3, 4, 2})
	n.InitRandom(rand.New(rand.NewSource(1)), 0.5)
	out := n.Forward([]float64{1, -1, 0.5}, nil)
	if len(out) != 2 {
		t.Fatalf("output dim %d", len(out))
	}
	for _, v := range out {
		if v <= 0 || v >= 1 {
			t.Fatalf("sigmoid output %v out of (0,1)", v)
		}
	}
}

func TestActivationsMatchForward(t *testing.T) {
	n := NewNet([]int{2, 3, 3, 1})
	n.InitRandom(rand.New(rand.NewSource(2)), 0.5)
	x := []float64{0.3, -0.7}
	hidden, out := n.Activations(x)
	if len(hidden) != 2 {
		t.Fatalf("hidden layers %d", len(hidden))
	}
	fw := n.Forward(x, nil)
	if math.Abs(fw[0]-out[0]) > 1e-15 {
		t.Fatal("Activations output disagrees with Forward")
	}
}

func TestPenaltyEqualsNestedAtForwardCoords(t *testing.T) {
	// With z = activations, the constraints hold and E_Q = nested error for
	// any μ (the warm-start property of eq. 5/6).
	n := NewNet([]int{2, 4, 1})
	n.InitRandom(rand.New(rand.NewSource(3)), 0.8)
	xs, ys := toyRegression(30, 4)
	c := NewCoordsFromForward(n, xs)
	nested := n.NestedError(xs, ys)
	for _, mu := range []float64{0.1, 1, 100} {
		eq := PenaltyError(n, xs, ys, c, mu)
		if math.Abs(eq-nested) > 1e-9 {
			t.Fatalf("mu=%v: EQ %v != nested %v", mu, eq, nested)
		}
	}
}

func TestZStepPointDecreasesObjective(t *testing.T) {
	n := NewNet([]int{2, 5, 1})
	n.InitRandom(rand.New(rand.NewSource(5)), 1)
	xs, ys := toyRegression(10, 6)
	c := NewCoordsFromForward(n, xs)
	mu := 0.5
	for i := 0; i < xs.Rows; i++ {
		before := pointPenalty(n, xs.Row(i), ys.Row(i), c, i, mu)
		after := ZStepPoint(n, xs.Row(i), ys.Row(i), c, i, mu, 20)
		if after > before+1e-12 {
			t.Fatalf("point %d: Z step increased objective %v -> %v", i, before, after)
		}
	}
}

func TestZStepGradientMatchesFiniteDifference(t *testing.T) {
	n := NewNet([]int{2, 3, 2, 1})
	n.InitRandom(rand.New(rand.NewSource(7)), 0.7)
	xs, ys := toyRegression(3, 8)
	c := NewCoordsFromForward(n, xs)
	mu := 0.3
	i := 1
	grads := [][]float64{make([]float64, 3), make([]float64, 2)}
	zGrad(n, xs.Row(i), ys.Row(i), c, i, mu, grads)
	const h = 1e-6
	for layer := 0; layer < 2; layer++ {
		z := c.Z[layer].Row(i)
		for d := range z {
			orig := z[d]
			z[d] = orig + h
			up := pointPenalty(n, xs.Row(i), ys.Row(i), c, i, mu)
			z[d] = orig - h
			dn := pointPenalty(n, xs.Row(i), ys.Row(i), c, i, mu)
			z[d] = orig
			fd := (up - dn) / (2 * h)
			if math.Abs(fd-grads[layer][d]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("layer %d dim %d: grad %v vs fd %v", layer, d, grads[layer][d], fd)
			}
		}
	}
}

func TestUnitSGDStepReducesUnitLoss(t *testing.T) {
	n := NewNet([]int{2, 1}) // single unit
	n.InitRandom(rand.New(rand.NewSource(9)), 0.1)
	in := []float64{1, -0.5}
	target := 0.9
	lossOf := func() float64 {
		out := n.Forward(in, nil)
		d := out[0] - target
		return d * d
	}
	before := lossOf()
	for i := 0; i < 50; i++ {
		n.UnitSGDStep(UnitRef{0, 0}, in, target, 1)
	}
	if lossOf() >= before {
		t.Fatalf("unit SGD did not reduce loss: %v -> %v", before, lossOf())
	}
}

func TestRunMACReducesNestedError(t *testing.T) {
	xs, ys := toyRegression(200, 10)
	n := NewNet([]int{2, 6, 1})
	n.InitRandom(rand.New(rand.NewSource(11)), 0.3)
	before := n.NestedError(xs, ys)
	stats := RunMAC(n, xs, ys, MACConfig{Mu0: 1, MuFactor: 2, Iters: 8, Eta: 1, WEpochs: 3, ZIters: 10, Seed: 11})
	after := stats[len(stats)-1].Nested
	t.Logf("nested error %v -> %v", before, after)
	if after >= before {
		t.Fatalf("MAC did not reduce the nested error: %v -> %v", before, after)
	}
	if after > 0.5*before {
		t.Fatalf("MAC reduction too weak: %v -> %v", before, after)
	}
}

func TestRunMACDeterministic(t *testing.T) {
	xs, ys := toyRegression(80, 12)
	run := func() float64 {
		n := NewNet([]int{2, 4, 1})
		n.InitRandom(rand.New(rand.NewSource(13)), 0.3)
		st := RunMAC(n, xs, ys, MACConfig{Mu0: 1, Iters: 4, Seed: 13})
		return st[len(st)-1].EQ
	}
	if run() != run() {
		t.Fatal("serial MAC must be deterministic")
	}
}

func TestParMACNetProblem(t *testing.T) {
	xs, ys := toyRegression(240, 14)
	start := NewNet([]int{2, 6, 1})
	start.InitRandom(rand.New(rand.NewSource(15)), 0.3)
	nestedBefore := start.NestedError(xs, ys)

	shards := dataset.ShardIndices(240, 3, nil)
	prob := NewParMACProblem(start, xs, ys, shards, ParMACConfig{Mu0: 1, MuFactor: 2, Eta: 1, ZIters: 10})
	if len(prob.Submodels()) != 7 { // 6 hidden + 1 output unit
		t.Fatalf("submodels = %d, want 7", len(prob.Submodels()))
	}
	eng := core.New(prob, core.Config{P: 3, Epochs: 2, Seed: 15})
	defer eng.Shutdown()
	eng.Run(8)
	_, nestedAfter := prob.PenaltyAndNested()
	t.Logf("ParMAC nested error %v -> %v", nestedBefore, nestedAfter)
	if nestedAfter >= nestedBefore {
		t.Fatalf("ParMAC did not reduce the nested error: %v -> %v", nestedBefore, nestedAfter)
	}
}

func TestParMACNetDeterministic(t *testing.T) {
	xs, ys := toyRegression(90, 16)
	run := func() float64 {
		start := NewNet([]int{2, 4, 1})
		start.InitRandom(rand.New(rand.NewSource(17)), 0.3)
		shards := dataset.ShardIndices(90, 2, nil)
		prob := NewParMACProblem(start, xs, ys, shards, ParMACConfig{Mu0: 1, Eta: 1})
		eng := core.New(prob, core.Config{P: 2, Epochs: 1, Seed: 17})
		defer eng.Shutdown()
		eng.Run(3)
		_, nested := prob.PenaltyAndNested()
		return nested
	}
	if run() != run() {
		t.Fatal("ParMAC net training must be deterministic without shuffle")
	}
}

func TestAssembleNetRoundTrip(t *testing.T) {
	xs, ys := toyRegression(20, 18)
	start := NewNet([]int{2, 3, 1})
	start.InitRandom(rand.New(rand.NewSource(19)), 0.5)
	prob := NewParMACProblem(start, xs, ys, dataset.ShardIndices(20, 1, nil), ParMACConfig{})
	back := prob.AssembleNet()
	for k := range start.Ws {
		if vec.MaxAbsDiff(start.Ws[k], back.Ws[k]) != 0 {
			t.Fatalf("layer %d weights lost in round trip", k)
		}
	}
}

func TestNetZStepParallelMatchesSerial(t *testing.T) {
	// The shard-local Z step fanned out over a goroutine pool must produce
	// coordinates bitwise identical to the serial pass, for several worker
	// counts (run under -race this also proves the workers share nothing).
	xs, ys := toyRegression(300, 21)
	build := func(parallel int) *ParMACProblem {
		start := NewNet([]int{2, 5, 3, 1})
		start.InitRandom(rand.New(rand.NewSource(22)), 0.3)
		shards := dataset.ShardIndices(300, 2, nil)
		return NewParMACProblem(start, xs, ys, shards, ParMACConfig{
			Mu0: 1, Eta: 1, ZIters: 8, Parallel: parallel,
		})
	}
	serial := build(0)
	model := serial.Submodels()
	wantChanged := make([]int, serial.NumShards())
	for sh := range wantChanged {
		wantChanged[sh] = serial.ZStep(sh, model)
	}
	for _, workers := range []int{2, 5, -1} {
		par := build(workers)
		for sh := 0; sh < par.NumShards(); sh++ {
			if changed := par.ZStep(sh, par.Submodels()); changed != wantChanged[sh] {
				t.Fatalf("workers=%d shard %d: changed %d, serial %d", workers, sh, changed, wantChanged[sh])
			}
			for layer := range par.shards[sh].C.Z {
				if vec.MaxAbsDiff(par.shards[sh].C.Z[layer], serial.shards[sh].C.Z[layer]) != 0 {
					t.Fatalf("workers=%d shard %d layer %d: coordinates differ from serial", workers, sh, layer)
				}
			}
		}
	}
}
