package macnet

import (
	"math/rand"

	"repro/internal/sgd"
	"repro/internal/vec"
)

// Augmented-Lagrangian MAC (§3.1: "it is also possible to apply the augmented
// Lagrangian method"). For the continuous coordinates of the K-layer net the
// penalised objective gains a multiplier term per constraint:
//
//	L(W,Z,Λ;μ) = ½Σ‖y − f_{K+1}(z_K)‖²
//	           + Σ_k [ λ_kᵀ(z_k − f_k(ẑ_{k−1})) + μ/2·‖z_k − f_k(ẑ_{k−1})‖² ]
//
// with the first-order multiplier update λ_k ← λ_k + μ(z_k − f_k(ẑ_{k−1}))
// after each MAC iteration. Unlike the quadratic penalty, AL drives the
// constraints to feasibility at a *finite* μ. The W step barely changes:
// minimising the k-th layer's terms over W_k is a least-squares fit of
// f_k(ẑ_{k−1}) to the shifted targets z_k + λ_k/μ.

// Multipliers holds one λ vector per hidden constraint per point, with the
// same shape as the auxiliary coordinates.
type Multipliers struct {
	L []*vec.Matrix // L[k]: N × dims[k+1]
}

// NewMultipliers allocates zero multipliers matching the net and point count.
func NewMultipliers(n *Net, points int) *Multipliers {
	m := &Multipliers{}
	for k := 0; k < n.K(); k++ {
		m.L = append(m.L, vec.NewMatrix(points, n.Dims[k+1]))
	}
	return m
}

// ALPenalty evaluates the augmented Lagrangian over all points.
func ALPenalty(n *Net, xs, ys *vec.Matrix, c *Coords, lam *Multipliers, mu float64) float64 {
	var total float64
	for i := 0; i < xs.Rows; i++ {
		total += pointPenaltyAL(n, xs.Row(i), ys.Row(i), c, lam, i, mu)
	}
	return total
}

// pointPenaltyAL is pointPenalty plus the multiplier terms.
func pointPenaltyAL(n *Net, x, y []float64, c *Coords, lam *Multipliers, i int, mu float64) float64 {
	total := pointPenalty(n, x, y, c, i, mu)
	if lam == nil {
		return total
	}
	k := n.K()
	prev := x
	buf := make([]float64, maxDim(n))
	for layer := 0; layer < k; layer++ {
		out := buf[:n.Dims[layer+1]]
		applyLayer(n.Ws[layer], prev, out)
		z := c.Z[layer].Row(i)
		l := lam.L[layer].Row(i)
		for d := range z {
			total += l[d] * (z[d] - out[d])
		}
		prev = z
	}
	return total
}

// ConstraintViolation returns Σ_n Σ_k ‖z_k − f_k(ẑ_{k−1})‖², the feasibility
// measure AL is supposed to drive to zero at finite μ.
func ConstraintViolation(n *Net, xs *vec.Matrix, c *Coords) float64 {
	k := n.K()
	buf := make([]float64, maxDim(n))
	var total float64
	for i := 0; i < xs.Rows; i++ {
		prev := xs.Row(i)
		for layer := 0; layer < k; layer++ {
			out := buf[:n.Dims[layer+1]]
			applyLayer(n.Ws[layer], prev, out)
			total += vec.SqDist(c.Z[layer].Row(i), out)
			prev = c.Z[layer].Row(i)
		}
	}
	return total
}

// UpdateMultipliers applies the first-order AL update
// λ_k ← λ_k + μ·(z_k − f_k(ẑ_{k−1})) for every point and layer.
func UpdateMultipliers(n *Net, xs *vec.Matrix, c *Coords, lam *Multipliers, mu float64) {
	k := n.K()
	buf := make([]float64, maxDim(n))
	for i := 0; i < xs.Rows; i++ {
		prev := xs.Row(i)
		for layer := 0; layer < k; layer++ {
			out := buf[:n.Dims[layer+1]]
			applyLayer(n.Ws[layer], prev, out)
			z := c.Z[layer].Row(i)
			l := lam.L[layer].Row(i)
			for d := range z {
				l[d] += mu * (z[d] - out[d])
			}
			prev = z
		}
	}
}

// ZStepPointAL minimises one point's augmented-Lagrangian terms over its
// coordinates by gradient descent with backtracking, generalising
// ZStepPoint (which it reduces to when lam is nil).
func ZStepPointAL(n *Net, x, y []float64, c *Coords, lam *Multipliers, i int, mu float64, iters int) float64 {
	k := n.K()
	if k == 0 {
		return pointPenaltyAL(n, x, y, c, lam, i, mu)
	}
	step := 0.5
	obj := pointPenaltyAL(n, x, y, c, lam, i, mu)
	grads := make([][]float64, k)
	saved := make([][]float64, k)
	for layer := range grads {
		grads[layer] = make([]float64, n.Dims[layer+1])
		saved[layer] = make([]float64, n.Dims[layer+1])
	}
	for it := 0; it < iters; it++ {
		zGradAL(n, x, y, c, lam, i, mu, grads)
		for layer := 0; layer < k; layer++ {
			copy(saved[layer], c.Z[layer].Row(i))
		}
		improved := false
		for try := 0; try < 12; try++ {
			for layer := 0; layer < k; layer++ {
				z := c.Z[layer].Row(i)
				for d := range z {
					z[d] = saved[layer][d] - step*grads[layer][d]
				}
			}
			if next := pointPenaltyAL(n, x, y, c, lam, i, mu); next < obj {
				obj = next
				improved = true
				step *= 1.2
				break
			}
			step *= 0.5
		}
		if !improved {
			for layer := 0; layer < k; layer++ {
				copy(c.Z[layer].Row(i), saved[layer])
			}
			break
		}
	}
	return obj
}

// zGradAL extends zGrad with the multiplier contributions:
// direct ∂/∂z_k gains +λ_k; the indirect term through layer k+1 gains −λ_{k+1}
// inside the residual coefficient.
func zGradAL(n *Net, x, y []float64, c *Coords, lam *Multipliers, i int, mu float64, grads [][]float64) {
	zGrad(n, x, y, c, i, mu, grads)
	if lam == nil {
		return
	}
	k := n.K()
	// Recompute activations once for the multiplier corrections.
	prev := x
	acts := make([][]float64, k)
	for layer := 0; layer < k; layer++ {
		acts[layer] = make([]float64, n.Dims[layer+1])
		applyLayer(n.Ws[layer], prev, acts[layer])
		prev = c.Z[layer].Row(i)
	}
	for layer := 0; layer < k; layer++ {
		g := grads[layer]
		// Direct: +λ_k.
		l := lam.L[layer].Row(i)
		for d := range g {
			g[d] += l[d]
		}
		// Indirect through layer+1 (only for hidden-to-hidden constraints).
		if layer == k-1 {
			continue
		}
		next := n.Ws[layer+1]
		lNext := lam.L[layer+1].Row(i)
		for j := 0; j < next.Rows; j++ {
			p := acts[layer+1][j]
			dsig := p * (1 - p)
			coef := -lNext[j] * dsig
			row := next.Row(j)
			for d := range g {
				g[d] += coef * row[d]
			}
		}
	}
}

// RunMACAL trains the net with augmented-Lagrangian MAC at a *fixed* penalty
// parameter cfg.Mu0 (no μ schedule needed — the multipliers do the work).
// The unit regressions fit the shifted targets z + λ/μ.
func RunMACAL(n *Net, xs, ys *vec.Matrix, cfg MACConfig) []IterStats {
	if cfg.Mu0 <= 0 {
		cfg.Mu0 = 1
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	if cfg.Eta <= 0 {
		cfg.Eta = 0.5
	}
	if cfg.WEpochs <= 0 {
		cfg.WEpochs = 2
	}
	if cfg.ZIters <= 0 {
		cfg.ZIters = 10
	}
	if n.K() == 0 {
		panic("macnet: RunMACAL needs at least one hidden layer")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	coords := NewCoordsFromForward(n, xs)
	lam := NewMultipliers(n, xs.Rows)
	mu := cfg.Mu0
	var stats []IterStats
	for it := 0; it < cfg.Iters; it++ {
		for ep := 0; ep < cfg.WEpochs; ep++ {
			order := sgd.Order(xs.Rows, cfg.Shuffle, rng)
			trainUnitsPassAL(n, xs, coords, lam, order, cfg.Eta, mu)
			TrainOutputPass(n, ys, coords, order, cfg.Eta)
		}
		for i := 0; i < xs.Rows; i++ {
			ZStepPointAL(n, xs.Row(i), ys.Row(i), coords, lam, i, mu, cfg.ZIters)
		}
		UpdateMultipliers(n, xs, coords, lam, mu)
		stats = append(stats, IterStats{
			Iter: it, Mu: mu,
			EQ:     ALPenalty(n, xs, ys, coords, lam, mu),
			Nested: n.NestedError(xs, ys),
		})
	}
	return stats
}

// trainUnitsPassAL is TrainUnitsPass with the AL-shifted targets z + λ/μ for
// the hidden units.
func trainUnitsPassAL(n *Net, xs *vec.Matrix, c *Coords, lam *Multipliers, order []int, eta, mu float64) {
	k := n.K()
	for _, u := range n.Units() {
		if u.Layer >= k {
			continue // output units fit y, handled by TrainOutputPass
		}
		for _, i := range order {
			in := xs.Row(i)
			if u.Layer > 0 {
				in = c.Z[u.Layer-1].Row(i)
			}
			target := c.Z[u.Layer].At(i, u.Unit) + lam.L[u.Layer].At(i, u.Unit)/mu
			n.UnitSGDStep(u, in, target, eta)
		}
	}
}
