// Package macnet implements the general K-hidden-layer MAC formulation of
// §3.2 for sigmoid deep nets: the nested least-squares objective of eq. (4),
// the auxiliary-coordinate quadratic-penalty objective of eq. (6), the W step
// that splits into independent single-unit regressions, and the Z step — a
// generalised proximal operator per data point solved by gradient descent.
//
// Together with the adapter in parmac.go it demonstrates the paper's claim
// that ParMAC applies to "any situation where MAC applies, i.e. nested
// functions with K layers" (§1), not just binary autoencoders.
package macnet

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sgd"
	"repro/internal/vec"
)

// Net is a fully connected net y = f_{K+1}(...f_1(x)...) where every layer
// computes σ(W·[t;1]) with the logistic σ (eq. 4's running example).
type Net struct {
	// Ws[k] maps layer k's input (plus bias) to its output:
	// dims[k+1] × (dims[k]+1).
	Ws   []*vec.Matrix
	Dims []int // layer widths: input, hidden..., output
}

// NewNet builds a zero net with the given layer widths (at least input and
// output).
func NewNet(dims []int) *Net {
	if len(dims) < 2 {
		panic("macnet: need at least input and output layers")
	}
	ws := make([]*vec.Matrix, len(dims)-1)
	for k := 0; k < len(dims)-1; k++ {
		ws[k] = vec.NewMatrix(dims[k+1], dims[k]+1)
	}
	return &Net{Ws: ws, Dims: append([]int(nil), dims...)}
}

// InitRandom fills all weights with N(0, sigma²) values.
func (n *Net) InitRandom(rng *rand.Rand, sigma float64) {
	for _, w := range n.Ws {
		w.FillGaussian(rng, sigma)
	}
}

// Clone returns a deep copy.
func (n *Net) Clone() *Net {
	c := &Net{Dims: append([]int(nil), n.Dims...)}
	for _, w := range n.Ws {
		c.Ws = append(c.Ws, w.Clone())
	}
	return c
}

// K returns the number of hidden layers.
func (n *Net) K() int { return len(n.Ws) - 1 }

// Sigmoid is the logistic squashing function σ(t) = 1/(1+e^{-t}).
func Sigmoid(t float64) float64 { return 1 / (1 + math.Exp(-t)) }

// applyLayer computes σ(W·[in;1]) into out.
func applyLayer(w *vec.Matrix, in, out []float64) {
	for j := 0; j < w.Rows; j++ {
		row := w.Row(j)
		s := row[len(row)-1] // bias
		for i, v := range in {
			s += row[i] * v
		}
		out[j] = Sigmoid(s)
	}
}

// Forward evaluates the nested net, returning the output (allocated when dst
// is nil).
func (n *Net) Forward(x, dst []float64) []float64 {
	cur := x
	for k, w := range n.Ws {
		out := make([]float64, w.Rows)
		applyLayer(w, cur, out)
		if k == len(n.Ws)-1 {
			if dst != nil {
				copy(dst, out)
				return dst
			}
			return out
		}
		cur = out
	}
	return cur
}

// Activations returns the per-layer activations z_1..z_K and the output.
func (n *Net) Activations(x []float64) (hidden [][]float64, out []float64) {
	cur := x
	for k, w := range n.Ws {
		next := make([]float64, w.Rows)
		applyLayer(w, cur, next)
		if k == len(n.Ws)-1 {
			return hidden, next
		}
		hidden = append(hidden, next)
		cur = next
	}
	return hidden, cur
}

// NestedError is the nested objective of eq. (4):
// ½ Σ_n ‖y_n − f(x_n)‖².
func (n *Net) NestedError(xs, ys *vec.Matrix) float64 {
	var total float64
	out := make([]float64, n.Dims[len(n.Dims)-1])
	for i := 0; i < xs.Rows; i++ {
		n.Forward(xs.Row(i), out)
		total += 0.5 * vec.SqDist(ys.Row(i), out)
	}
	return total
}

// Coords holds the auxiliary coordinates z_{k,n} for a set of points: one
// matrix per hidden layer, rows indexed like the points.
type Coords struct {
	Z []*vec.Matrix // Z[k]: N × dims[k+1], k = 0..K-1
}

// NewCoordsFromForward initialises the coordinates with the net's own
// activations (the standard MAC warm start: the constraints of eq. (5) hold
// exactly, so E_Q equals the nested error).
func NewCoordsFromForward(n *Net, xs *vec.Matrix) *Coords {
	k := n.K()
	c := &Coords{}
	for layer := 0; layer < k; layer++ {
		c.Z = append(c.Z, vec.NewMatrix(xs.Rows, n.Dims[layer+1]))
	}
	for i := 0; i < xs.Rows; i++ {
		hidden, _ := n.Activations(xs.Row(i))
		for layer := 0; layer < k; layer++ {
			copy(c.Z[layer].Row(i), hidden[layer])
		}
	}
	return c
}

// Clone deep-copies the coordinates.
func (c *Coords) Clone() *Coords {
	out := &Coords{}
	for _, z := range c.Z {
		out.Z = append(out.Z, z.Clone())
	}
	return out
}

// PenaltyError is the quadratic-penalty objective of eq. (6):
// ½ Σ_n ‖y_n − f_{K+1}(z_{K,n})‖² + μ/2 Σ_n Σ_k ‖z_{k,n} − f_k(z_{k−1,n})‖².
func PenaltyError(n *Net, xs, ys *vec.Matrix, c *Coords, mu float64) float64 {
	var total float64
	for i := 0; i < xs.Rows; i++ {
		total += pointPenalty(n, xs.Row(i), ys.Row(i), c, i, mu)
	}
	return total
}

// pointPenalty evaluates one point's terms of eq. (6).
func pointPenalty(n *Net, x, y []float64, c *Coords, i int, mu float64) float64 {
	k := n.K()
	var total float64
	prev := x
	buf := make([]float64, maxDim(n))
	for layer := 0; layer < k; layer++ {
		out := buf[:n.Dims[layer+1]]
		applyLayer(n.Ws[layer], prev, out)
		total += 0.5 * mu * vec.SqDist(c.Z[layer].Row(i), out)
		prev = c.Z[layer].Row(i)
	}
	out := buf[:n.Dims[len(n.Dims)-1]]
	applyLayer(n.Ws[k], prev, out)
	total += 0.5 * vec.SqDist(y, out)
	return total
}

func maxDim(n *Net) int {
	m := 0
	for _, d := range n.Dims {
		if d > m {
			m = d
		}
	}
	return m
}

// UnitRef identifies one hidden/output unit: layer k (0-based over Ws) and
// row j of Ws[k]. Each unit is an independent W-step subproblem (§3.2).
type UnitRef struct{ Layer, Unit int }

// Units enumerates every unit of the net, the M independent submodels of the
// W step.
func (n *Net) Units() []UnitRef {
	var out []UnitRef
	for k, w := range n.Ws {
		for j := 0; j < w.Rows; j++ {
			out = append(out, UnitRef{k, j})
		}
	}
	return out
}

// UnitSGDStep performs one SGD update of unit u on sample (in, target): the
// squared loss ½(σ(w·[in;1]) − target)² — a single-layer, single-unit
// regression, trainable "with existing algorithms (logistic regression)".
func (n *Net) UnitSGDStep(u UnitRef, in []float64, target, eta float64) {
	row := n.Ws[u.Layer].Row(u.Unit)
	s := row[len(row)-1]
	for i, v := range in {
		s += row[i] * v
	}
	p := Sigmoid(s)
	g := (p - target) * p * (1 - p)
	for i, v := range in {
		row[i] -= eta * g * v
	}
	row[len(row)-1] -= eta * g
}

// ZStepPoint minimises the eq. (6) terms of one point over its coordinates
// z_1..z_K by gradient descent with backtracking, the "generalised proximal
// operator" of §3.2. It updates c in place and returns the final objective.
func ZStepPoint(n *Net, x, y []float64, c *Coords, i int, mu float64, iters int) float64 {
	k := n.K()
	if k == 0 {
		return pointPenalty(n, x, y, c, i, mu)
	}
	step := 0.5
	obj := pointPenalty(n, x, y, c, i, mu)
	grads := make([][]float64, k)
	for layer := range grads {
		grads[layer] = make([]float64, n.Dims[layer+1])
	}
	saved := make([][]float64, k)
	for layer := range saved {
		saved[layer] = make([]float64, n.Dims[layer+1])
	}
	for it := 0; it < iters; it++ {
		zGrad(n, x, y, c, i, mu, grads)
		for layer := 0; layer < k; layer++ {
			copy(saved[layer], c.Z[layer].Row(i))
		}
		improved := false
		for try := 0; try < 12; try++ {
			for layer := 0; layer < k; layer++ {
				z := c.Z[layer].Row(i)
				for d := range z {
					z[d] = saved[layer][d] - step*grads[layer][d]
				}
			}
			if next := pointPenalty(n, x, y, c, i, mu); next < obj {
				obj = next
				improved = true
				step *= 1.2
				break
			}
			step *= 0.5
		}
		if !improved {
			for layer := 0; layer < k; layer++ {
				copy(c.Z[layer].Row(i), saved[layer])
			}
			break
		}
	}
	return obj
}

// zGrad computes ∂/∂z of the point's penalty terms.
func zGrad(n *Net, x, y []float64, c *Coords, i int, mu float64, grads [][]float64) {
	k := n.K()
	// Forward values a_layer = f_layer(ẑ_{layer-1}) and output.
	prev := x
	acts := make([][]float64, k)
	for layer := 0; layer < k; layer++ {
		acts[layer] = make([]float64, n.Dims[layer+1])
		applyLayer(n.Ws[layer], prev, acts[layer])
		prev = c.Z[layer].Row(i)
	}
	out := make([]float64, n.Dims[len(n.Dims)-1])
	applyLayer(n.Ws[k], prev, out)

	for layer := 0; layer < k; layer++ {
		z := c.Z[layer].Row(i)
		g := grads[layer]
		// Direct term: μ(z_k − a_k).
		for d := range g {
			g[d] = mu * (z[d] - acts[layer][d])
		}
		// Indirect term through the next layer's input.
		var resid []float64
		var weight float64
		var next *vec.Matrix
		var nextOut []float64
		if layer == k-1 {
			next = n.Ws[k]
			nextOut = out
			resid = y
			weight = 1
		} else {
			next = n.Ws[layer+1]
			nextOut = acts[layer+1]
			resid = c.Z[layer+1].Row(i)
			weight = mu
		}
		for j := 0; j < next.Rows; j++ {
			p := nextOut[j]
			diff := p - resid[j] // derivative of ½(resid−p)² wrt p is (p−resid)
			dsig := p * (1 - p)
			row := next.Row(j)
			coef := weight * diff * dsig
			for d := range g {
				g[d] += coef * row[d]
			}
		}
	}
}

// MACConfig drives the serial MAC loop for the net.
type MACConfig struct {
	Mu0      float64
	MuFactor float64
	Iters    int
	Eta      float64 // SGD step for the unit regressions
	WEpochs  int     // SGD passes per unit per W step
	ZIters   int     // gradient iterations per point per Z step
	Seed     int64
	Shuffle  bool

	// Parallel is the goroutine count RunMAC uses for the W step (units are
	// independent single-unit regressions, fanned out in groups) and the Z
	// step (points are independent proximal problems): 0 or 1 serial, < 0
	// every core. Units and points share no mutable state, so the trained
	// net is bit-identical for any value.
	Parallel int
}

// IterStats is one MAC iteration's learning-curve row.
type IterStats struct {
	Iter   int
	Mu     float64
	EQ     float64
	Nested float64
}

// RunMAC trains the net on (xs, ys) with serial MAC and returns the learning
// curve. It is the K-layer analogue of binauto.RunMAC.
func RunMAC(n *Net, xs, ys *vec.Matrix, cfg MACConfig) []IterStats {
	if cfg.Mu0 <= 0 {
		cfg.Mu0 = 1
	}
	if cfg.MuFactor <= 1 {
		cfg.MuFactor = 2
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	if cfg.Eta <= 0 {
		cfg.Eta = 0.5
	}
	if cfg.WEpochs <= 0 {
		cfg.WEpochs = 2
	}
	if cfg.ZIters <= 0 {
		cfg.ZIters = 10
	}
	if n.K() == 0 {
		panic("macnet: RunMAC needs at least one hidden layer")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	workers := core.Cores(cfg.Parallel)
	coords := NewCoordsFromForward(n, xs)
	var stats []IterStats
	mu := cfg.Mu0
	for it := 0; it < cfg.Iters; it++ {
		// W step: every unit independently (hidden units fit the coordinates,
		// output units fit the targets), fanned out over unit groups.
		for ep := 0; ep < cfg.WEpochs; ep++ {
			order := sgd.Order(xs.Rows, cfg.Shuffle, rng)
			TrainUnitsPassParallel(n, xs, coords, order, cfg.Eta, workers)
			TrainOutputPassParallel(n, ys, coords, order, cfg.Eta, workers)
		}
		// Z step: every point independently, chunked over the pool.
		core.ParallelChunks(xs.Rows, core.ClampWorkers(xs.Rows, workers), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				ZStepPoint(n, xs.Row(i), ys.Row(i), coords, i, mu, cfg.ZIters)
			}
		})
		stats = append(stats, IterStats{
			Iter: it, Mu: mu,
			EQ:     PenaltyError(n, xs, ys, coords, mu),
			Nested: n.NestedError(xs, ys),
		})
		mu *= cfg.MuFactor
	}
	return stats
}

// TrainUnitsPass runs one SGD pass of every unit over the given point order,
// using the auxiliary coordinates as single-layer inputs/targets. Exported so
// the ParMAC adapter can reuse it per shard.
func TrainUnitsPass(n *Net, xs *vec.Matrix, c *Coords, order []int, eta float64) {
	k := n.K()
	for _, u := range n.Units() {
		for _, i := range order {
			in := xs.Row(i)
			if u.Layer > 0 {
				in = c.Z[u.Layer-1].Row(i)
			}
			var target float64
			if u.Layer < k {
				target = c.Z[u.Layer].At(i, u.Unit)
			} else {
				// Output layer unit: target comes from y, supplied by the
				// caller through the coords' companion; handled in
				// TrainOutputPass instead.
				continue
			}
			n.UnitSGDStep(u, in, target, eta)
		}
	}
}

// TrainUnitsPassParallel is TrainUnitsPass with the hidden units split into
// contiguous groups over workers goroutines. A unit's pass touches only its
// own weight row and reads xs/coords, which the W step never mutates, so the
// result is bit-identical to the serial pass for any worker count.
func TrainUnitsPassParallel(n *Net, xs *vec.Matrix, c *Coords, order []int, eta float64, workers int) {
	k := n.K()
	var hidden []UnitRef
	for _, u := range n.Units() {
		if u.Layer < k {
			hidden = append(hidden, u)
		}
	}
	core.ParallelChunks(len(hidden), core.Cores(workers), func(_, lo, hi int) {
		for _, u := range hidden[lo:hi] {
			for _, i := range order {
				in := xs.Row(i)
				if u.Layer > 0 {
					in = c.Z[u.Layer-1].Row(i)
				}
				n.UnitSGDStep(u, in, c.Z[u.Layer].At(i, u.Unit), eta)
			}
		}
	})
}

// TrainOutputPassParallel is TrainOutputPass with the output units split
// over workers goroutines; bit-identical to the serial pass for any count.
func TrainOutputPassParallel(n *Net, ys *vec.Matrix, c *Coords, order []int, eta float64, workers int) {
	k := n.K()
	w := n.Ws[k]
	core.ParallelChunks(w.Rows, core.Cores(workers), func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			u := UnitRef{k, j}
			for _, i := range order {
				n.UnitSGDStep(u, c.Z[k-1].Row(i), ys.At(i, j), eta)
			}
		}
	})
}

// TrainOutputPass runs one SGD pass of the output-layer units against ys.
func TrainOutputPass(n *Net, ys *vec.Matrix, c *Coords, order []int, eta float64) {
	k := n.K()
	w := n.Ws[k]
	for j := 0; j < w.Rows; j++ {
		u := UnitRef{k, j}
		for _, i := range order {
			in := c.Z[k-1].Row(i)
			n.UnitSGDStep(u, in, ys.At(i, j), eta)
		}
	}
}
