package macnet

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire encoding of the deep net's circulating submodels (one unit's weight
// vector each), mirroring binauto/wire.go: the TCP fabric gob-serializes
// tokens, so unit submodels carry their complete state — weights plus the
// fixed step size — across process boundaries.

// unitWire is the on-the-wire form of unitSub.
type unitWire struct {
	ID  int
	Ref UnitRef
	W   []float64
	K   int
	Eta float64
}

// GobEncode implements gob.GobEncoder.
func (u *unitSub) GobEncode() ([]byte, error) {
	w := unitWire{ID: u.id, Ref: u.ref, W: u.w, K: u.k, Eta: u.eta}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("macnet: encode unit submodel: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (u *unitSub) GobDecode(b []byte) error {
	var w unitWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("macnet: decode unit submodel: %w", err)
	}
	if len(w.W) == 0 {
		return fmt.Errorf("macnet: unit submodel %d has no weights", w.ID)
	}
	*u = unitSub{id: w.ID, ref: w.Ref, w: w.W, k: w.K, eta: w.Eta}
	return nil
}

func init() {
	gob.Register(&unitSub{})
}
