package macnet

import (
	"repro/internal/core"
	"repro/internal/vec"
)

// This file adapts the K-layer MAC deep net to the ParMAC engine: every
// hidden/output unit becomes one circulating core.Submodel (its weight
// vector), matching the paper's description of the deep-net W step ("a
// separate minimisation over the weights of each hidden unit", §3.2), and
// each shard keeps the auxiliary activations of its own points.

// NetShard is one machine's inputs, targets and auxiliary coordinates.
type NetShard struct {
	X, Y *vec.Matrix
	C    *Coords
}

// NumPoints implements core.Shard.
func (s *NetShard) NumPoints() int { return s.X.Rows }

// unitSub is one unit's weight vector circulating through the ring.
type unitSub struct {
	id  int
	ref UnitRef
	w   []float64 // input weights plus trailing bias
	k   int       // hidden layer count of the net
	eta float64
}

// ID implements core.Submodel.
func (u *unitSub) ID() int { return u.id }

// TrainOn implements core.Submodel: one SGD pass of this unit's single-layer
// regression over the shard.
func (u *unitSub) TrainOn(shard core.Shard, order []int) {
	sh := shard.(*NetShard)
	for _, i := range order {
		var in []float64
		if u.ref.Layer == 0 {
			in = sh.X.Row(i)
		} else {
			in = sh.C.Z[u.ref.Layer-1].Row(i)
		}
		var target float64
		if u.ref.Layer < u.k {
			target = sh.C.Z[u.ref.Layer].At(i, u.ref.Unit)
		} else {
			target = sh.Y.At(i, u.ref.Unit)
		}
		u.step(in, target)
	}
}

func (u *unitSub) step(in []float64, target float64) {
	s := u.w[len(u.w)-1]
	for i, v := range in {
		s += u.w[i] * v
	}
	p := Sigmoid(s)
	g := (p - target) * p * (1 - p)
	for i, v := range in {
		u.w[i] -= u.eta * g * v
	}
	u.w[len(u.w)-1] -= u.eta * g
}

// Clone implements core.Submodel.
func (u *unitSub) Clone() core.Submodel {
	c := *u
	c.w = vec.Clone(u.w)
	return &c
}

// Bytes implements core.Submodel.
func (u *unitSub) Bytes() int { return 8 * len(u.w) }

// ParMACConfig parameterises the distributed net problem.
type ParMACConfig struct {
	Mu0      float64
	MuFactor float64
	Eta      float64
	ZIters   int

	// Parallel is the number of goroutines each machine uses for its
	// shard-local Z step: 0 or 1 serial, < 0 every core. Each point's
	// coordinates are an independent subproblem, so the result is identical
	// for any value.
	Parallel int
}

// ParMACProblem implements core.Problem for the K-layer net.
type ParMACProblem struct {
	dims   []int
	shards []*NetShard
	subs   []*unitSub
	cfg    ParMACConfig
	mu     float64
}

// NewParMACProblem splits (xs, ys) into shards by the given index lists and
// initialises coordinates with the starting net's activations.
func NewParMACProblem(start *Net, xs, ys *vec.Matrix, shardIdx [][]int, cfg ParMACConfig) *ParMACProblem {
	if cfg.Mu0 <= 0 {
		cfg.Mu0 = 1
	}
	if cfg.MuFactor <= 1 {
		cfg.MuFactor = 2
	}
	if cfg.Eta <= 0 {
		cfg.Eta = 0.5
	}
	if cfg.ZIters <= 0 {
		cfg.ZIters = 10
	}
	if start.K() == 0 {
		panic("macnet: ParMAC needs at least one hidden layer")
	}
	p := &ParMACProblem{dims: append([]int(nil), start.Dims...), cfg: cfg, mu: cfg.Mu0}
	for _, idx := range shardIdx {
		sx := vec.NewMatrix(len(idx), xs.Cols)
		sy := vec.NewMatrix(len(idx), ys.Cols)
		for k, i := range idx {
			copy(sx.Row(k), xs.Row(i))
			copy(sy.Row(k), ys.Row(i))
		}
		p.shards = append(p.shards, &NetShard{X: sx, Y: sy, C: NewCoordsFromForward(start, sx)})
	}
	id := 0
	for _, u := range start.Units() {
		row := start.Ws[u.Layer].Row(u.Unit)
		p.subs = append(p.subs, &unitSub{
			id: id, ref: u, w: vec.Clone(row), k: start.K(), eta: cfg.Eta,
		})
		id++
	}
	return p
}

// Submodels implements core.Problem.
func (p *ParMACProblem) Submodels() []core.Submodel {
	out := make([]core.Submodel, len(p.subs))
	for i, s := range p.subs {
		out[i] = s
	}
	return out
}

// NumShards implements core.Problem.
func (p *ParMACProblem) NumShards() int { return len(p.shards) }

// Shard implements core.Problem.
func (p *ParMACProblem) Shard(i int) core.Shard { return p.shards[i] }

// OnIterationStart advances the μ schedule.
func (p *ParMACProblem) OnIterationStart(iter int) {
	p.mu = p.cfg.Mu0
	for i := 0; i < iter; i++ {
		p.mu *= p.cfg.MuFactor
	}
}

// Mu returns the current penalty parameter.
func (p *ParMACProblem) Mu() float64 { return p.mu }

// OnModelSync refreshes the problem's submodel references after fault
// recovery (core.ModelSyncHook).
func (p *ParMACProblem) OnModelSync(model []core.Submodel) {
	for _, sm := range model {
		if u, ok := sm.(*unitSub); ok {
			p.subs[u.id] = u
		}
	}
}

// ZStep implements core.Problem: assemble the machine-local net and run the
// per-point generalised proximal operator, chunked over cfg.Parallel
// goroutines. Unlike the binary autoencoder there is no Gram shortcut here —
// the sigmoid layers make the per-point objective nonlinear in z — so the
// win is purely the multicore fan-out; each worker reuses one before/after
// snapshot buffer across its points instead of allocating two per point.
func (p *ParMACProblem) ZStep(shard int, model []core.Submodel) int {
	net := assembleNet(p.dims, model)
	sh := p.shards[shard]
	coordDim := 0
	for _, z := range sh.C.Z {
		coordDim += z.Cols
	}
	workers := core.Cores(p.cfg.Parallel)
	if sh.X.Rows < core.MinParallelPoints {
		workers = 1
	}
	counts := make([]int, workers)
	core.ParallelChunks(sh.X.Rows, workers, func(w, lo, hi int) {
		before := make([]float64, coordDim)
		for i := lo; i < hi; i++ {
			at := 0
			for _, z := range sh.C.Z {
				at += copy(before[at:], z.Row(i))
			}
			ZStepPoint(net, sh.X.Row(i), sh.Y.Row(i), sh.C, i, p.mu, p.cfg.ZIters)
			if coordsChanged(sh.C, i, before) {
				counts[w]++
			}
		}
	})
	changed := 0
	for _, c := range counts {
		changed += c
	}
	return changed
}

// coordsChanged reports whether point i's coordinates differ from the
// concatenated snapshot in before.
func coordsChanged(c *Coords, i int, before []float64) bool {
	at := 0
	for _, z := range c.Z {
		for _, v := range z.Row(i) {
			if before[at] != v {
				return true
			}
			at++
		}
	}
	return false
}

// AssembleNet builds a Net from the problem's authoritative submodels
// (between iterations), for evaluation.
func (p *ParMACProblem) AssembleNet() *Net {
	return assembleNet(p.dims, p.Submodels())
}

// PenaltyAndNested evaluates E_Q (current μ) and the nested error over all
// shards.
func (p *ParMACProblem) PenaltyAndNested() (eq, nested float64) {
	net := p.AssembleNet()
	for _, sh := range p.shards {
		eq += PenaltyError(net, sh.X, sh.Y, sh.C, p.mu)
		nested += net.NestedError(sh.X, sh.Y)
	}
	return eq, nested
}

func assembleNet(dims []int, model []core.Submodel) *Net {
	net := NewNet(dims)
	for _, sm := range model {
		u, ok := sm.(*unitSub)
		if !ok {
			panic("macnet: foreign submodel")
		}
		copy(net.Ws[u.ref.Layer].Row(u.ref.Unit), u.w)
	}
	return net
}

var _ core.Problem = (*ParMACProblem)(nil)
var _ core.IterationHook = (*ParMACProblem)(nil)
var _ core.ModelSyncHook = (*ParMACProblem)(nil)
