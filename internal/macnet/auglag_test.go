package macnet

import (
	"math"
	"math/rand"
	"testing"
)

func TestALPenaltyReducesToQuadraticWithZeroMultipliers(t *testing.T) {
	n := NewNet([]int{2, 4, 1})
	n.InitRandom(rand.New(rand.NewSource(1)), 0.6)
	xs, ys := toyRegression(20, 2)
	c := NewCoordsFromForward(n, xs)
	// Perturb coordinates so constraints are violated.
	c.Z[0].Add(3, 1, 0.2)
	lam := NewMultipliers(n, xs.Rows)
	for _, mu := range []float64{0.5, 2} {
		if math.Abs(ALPenalty(n, xs, ys, c, lam, mu)-PenaltyError(n, xs, ys, c, mu)) > 1e-12 {
			t.Fatal("zero multipliers must give the quadratic penalty")
		}
	}
}

func TestALGradientMatchesFiniteDifference(t *testing.T) {
	n := NewNet([]int{2, 3, 2, 1})
	n.InitRandom(rand.New(rand.NewSource(3)), 0.7)
	xs, ys := toyRegression(3, 4)
	c := NewCoordsFromForward(n, xs)
	lam := NewMultipliers(n, xs.Rows)
	rng := rand.New(rand.NewSource(5))
	for _, m := range lam.L {
		for j := range m.Data {
			m.Data[j] = rng.NormFloat64() * 0.3
		}
	}
	mu := 0.4
	i := 1
	grads := [][]float64{make([]float64, 3), make([]float64, 2)}
	zGradAL(n, xs.Row(i), ys.Row(i), c, lam, i, mu, grads)
	const h = 1e-6
	for layer := 0; layer < 2; layer++ {
		z := c.Z[layer].Row(i)
		for d := range z {
			orig := z[d]
			z[d] = orig + h
			up := pointPenaltyAL(n, xs.Row(i), ys.Row(i), c, lam, i, mu)
			z[d] = orig - h
			dn := pointPenaltyAL(n, xs.Row(i), ys.Row(i), c, lam, i, mu)
			z[d] = orig
			fd := (up - dn) / (2 * h)
			if math.Abs(fd-grads[layer][d]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("layer %d dim %d: grad %v vs fd %v", layer, d, grads[layer][d], fd)
			}
		}
	}
}

func TestUpdateMultipliersDirection(t *testing.T) {
	n := NewNet([]int{2, 3, 1})
	n.InitRandom(rand.New(rand.NewSource(6)), 0.5)
	xs, _ := toyRegression(5, 7)
	c := NewCoordsFromForward(n, xs)
	c.Z[0].Add(2, 1, 0.5) // positive constraint violation at point 2, unit 1
	lam := NewMultipliers(n, xs.Rows)
	UpdateMultipliers(n, xs, c, lam, 2.0)
	if got := lam.L[0].At(2, 1); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("λ update = %v, want μ·violation = 1.0", got)
	}
	// Unviolated constraints keep zero multipliers.
	if lam.L[0].At(0, 0) != 0 {
		t.Fatal("multiplier moved without violation")
	}
}

func TestZStepPointALDecreasesObjective(t *testing.T) {
	n := NewNet([]int{2, 4, 1})
	n.InitRandom(rand.New(rand.NewSource(8)), 1)
	xs, ys := toyRegression(8, 9)
	c := NewCoordsFromForward(n, xs)
	lam := NewMultipliers(n, xs.Rows)
	rng := rand.New(rand.NewSource(10))
	for j := range lam.L[0].Data {
		lam.L[0].Data[j] = rng.NormFloat64() * 0.2
	}
	for i := 0; i < xs.Rows; i++ {
		before := pointPenaltyAL(n, xs.Row(i), ys.Row(i), c, lam, i, 0.5)
		after := ZStepPointAL(n, xs.Row(i), ys.Row(i), c, lam, i, 0.5, 15)
		if after > before+1e-12 {
			t.Fatalf("point %d: AL Z step increased objective %v -> %v", i, before, after)
		}
	}
}

func TestRunMACALReducesNestedError(t *testing.T) {
	xs, ys := toyRegression(200, 11)
	n := NewNet([]int{2, 6, 1})
	n.InitRandom(rand.New(rand.NewSource(12)), 0.3)
	before := n.NestedError(xs, ys)
	stats := RunMACAL(n, xs, ys, MACConfig{Mu0: 2, Iters: 10, Eta: 1, WEpochs: 3, ZIters: 10, Seed: 12})
	after := stats[len(stats)-1].Nested
	t.Logf("AL nested error %v -> %v", before, after)
	if after >= before {
		t.Fatalf("AL MAC did not reduce the nested error: %v -> %v", before, after)
	}
}

func TestALFeasibilityAtFixedMuBeatsQuadraticPenalty(t *testing.T) {
	// The point of AL: at a FIXED μ, multiplier updates drive the constraint
	// violation far lower than the plain quadratic penalty can.
	xs, ys := toyRegression(150, 13)
	mkNet := func() *Net {
		n := NewNet([]int{2, 5, 1})
		n.InitRandom(rand.New(rand.NewSource(14)), 0.3)
		return n
	}
	const mu = 2.0
	// Quadratic penalty at fixed μ (no schedule: MuFactor ignored by running
	// RunMAC with MuFactor≈1).
	qp := mkNet()
	RunMAC(qp, xs, ys, MACConfig{Mu0: mu, MuFactor: 1.0000001, Iters: 12, Eta: 1, WEpochs: 3, ZIters: 10, Seed: 14})
	cQP := NewCoordsFromForward(qp, xs)
	_ = cQP // forward coords are feasible by construction; measure via a fresh Z pass
	coordsQP := NewCoordsFromForward(qp, xs)
	for i := 0; i < xs.Rows; i++ {
		ZStepPoint(qp, xs.Row(i), ys.Row(i), coordsQP, i, mu, 10)
	}
	vQP := ConstraintViolation(qp, xs, coordsQP)

	al := mkNet()
	RunMACAL(al, xs, ys, MACConfig{Mu0: mu, Iters: 12, Eta: 1, WEpochs: 3, ZIters: 10, Seed: 14})
	coordsAL := NewCoordsFromForward(al, xs)
	lam := NewMultipliers(al, xs.Rows)
	for it := 0; it < 3; it++ {
		for i := 0; i < xs.Rows; i++ {
			ZStepPointAL(al, xs.Row(i), ys.Row(i), coordsAL, lam, i, mu, 10)
		}
		UpdateMultipliers(al, xs, coordsAL, lam, mu)
	}
	vAL := ConstraintViolation(al, xs, coordsAL)
	t.Logf("constraint violation: QP %v vs AL %v (fixed mu=%v)", vQP, vAL, mu)
	if vAL > vQP*1.2 {
		t.Fatalf("AL violation %v should not exceed QP %v at fixed mu", vAL, vQP)
	}
}
