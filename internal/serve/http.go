package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
)

// The JSON API. Codes travel as hex-string words ("0x1a2b…" or bare hex),
// little-endian word order, because JSON numbers cannot carry 64-bit
// payloads exactly.
//
//	POST /v1/search   {"vector":[…]} | {"code":["0x…",…]}, "k": 10
//	GET  /healthz
//	GET  /v1/stats
//	POST /v1/swap     {"version":"v2","index":"/path","model":"/path"}
//	POST /v1/shadow   {"version":"cand","index":…,"model":…} | {"clear":true}
//	POST /v1/promote
//
// Every admin mutation goes through the same atomic-pointer swap the library
// API exposes, so a curl never tears in-flight traffic.

// searchRequest is the wire form of a Query.
type searchRequest struct {
	Vector []float64 `json:"vector,omitempty"`
	Code   []string  `json:"code,omitempty"`
	K      int       `json:"k,omitempty"`
}

type neighborJSON struct {
	Index int `json:"index"`
	Dist  int `json:"dist"`
}

type searchResponse struct {
	Model     string         `json:"model"`
	Neighbors []neighborJSON `json:"neighbors"`
}

type deployRequest struct {
	Version string `json:"version"`
	Index   string `json:"index"`
	Model   string `json:"model,omitempty"`
	Clear   bool   `json:"clear,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// parseSearchRequest decodes and lifts a wire request into a Query. It is
// exercised directly by a fuzz target: arbitrary client bytes must produce a
// Query or an error, never a panic.
func parseSearchRequest(data []byte) (Query, error) {
	var req searchRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return Query{}, badRequest("bad JSON: %v", err)
	}
	q := Query{Vector: req.Vector, K: req.K}
	if len(req.Code) > 0 {
		q.Code = make([]uint64, len(req.Code))
		for i, w := range req.Code {
			s := w
			if len(s) > 2 && (s[:2] == "0x" || s[:2] == "0X") {
				s = s[2:]
			}
			v, err := strconv.ParseUint(s, 16, 64)
			if err != nil {
				return Query{}, badRequest("code word %d: %q is not a hex word", i, w)
			}
			q.Code[i] = v
		}
	}
	return q, nil
}

// FormatCode renders packed words as the hex strings the API accepts —
// shared by the example and tests so clients have one canonical encoding.
func FormatCode(words []uint64) []string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = fmt.Sprintf("0x%x", w)
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already gone; all we can do is record the
		// truncated response (usually a client that hung up mid-body).
		log.Printf("serve: write response: %v", err)
	}
}

func writeErr(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		writeJSON(w, ae.status, errorResponse{Error: ae.msg})
		return
	}
	writeJSON(w, 500, errorResponse{Error: err.Error()})
}

// Handler returns the HTTP mux over this server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, map[string]string{"status": "ok", "model": version(s.Live())})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, s.Stats())
	})
	mux.HandleFunc("POST /v1/swap", func(w http.ResponseWriter, r *http.Request) {
		s.handleDeploy(w, r, false)
	})
	mux.HandleFunc("POST /v1/shadow", func(w http.ResponseWriter, r *http.Request) {
		s.handleDeploy(w, r, true)
	})
	mux.HandleFunc("POST /v1/promote", func(w http.ResponseWriter, r *http.Request) {
		dep, err := s.PromoteShadow()
		if err != nil {
			writeErr(w, badRequest("%v", err))
			return
		}
		writeJSON(w, 200, map[string]string{"live": dep.Version})
	})
	return mux
}

const maxBodyBytes = 16 << 20 // vectors at GIST dimension are ~8 KB; 16 MiB is generous

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	q, err := parseSearchRequest(body)
	if err != nil {
		writeErr(w, err)
		return
	}
	rs, err := s.Search(q)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := searchResponse{Model: rs.Version, Neighbors: make([]neighborJSON, len(rs.Neighbors))}
	for i, n := range rs.Neighbors {
		resp.Neighbors[i] = neighborJSON{Index: n.Index, Dist: n.Dist}
	}
	writeJSON(w, 200, resp)
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request, shadow bool) {
	body, err := readBody(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req deployRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, badRequest("bad JSON: %v", err))
		return
	}
	if shadow && req.Clear {
		s.SetShadow(nil)
		writeJSON(w, 200, map[string]string{"shadow": ""})
		return
	}
	if req.Index == "" {
		writeErr(w, badRequest("index path required"))
		return
	}
	cfg := IndexConfig{Kind: s.opts.IndexKind, Shards: s.opts.Shards, MIHBlocks: s.opts.MIHBlocks}
	dep, err := LoadDeployment(req.Version, req.Index, req.Model, cfg, s.opts.MaxIndexBytes)
	if err != nil {
		writeErr(w, badRequest("%v", err))
		return
	}
	if shadow {
		s.SetShadow(dep)
		writeJSON(w, 200, map[string]string{"shadow": dep.Version})
		return
	}
	old := s.Swap(dep)
	writeJSON(w, 200, map[string]string{"live": dep.Version, "previous": version(old)})
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &apiError{status: 413, msg: "request body too large"}
		}
		return nil, badRequest("read body: %v", err)
	}
	return body, nil
}
