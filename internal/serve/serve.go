// Package serve is the online retrieval tier over the paper's packed binary
// codes: an in-memory sharded Hamming index behind a JSON HTTP API, with
// deadline-aware micro-batching that coalesces concurrent requests into one
// batched scan, atomic hot swap of (model, index) pairs, and a shadow mode
// that mirrors a sample of live queries to a candidate deployment and tracks
// agreement — the serving patterns (batching, shadow/canary rollout) the
// production-ML literature prescribes, applied to the paper's "serve Hamming
// search to millions of users" pitch.
package serve

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binauto"
	"repro/internal/core"
	"repro/internal/retrieval"
)

// Index is the retrieval engine behind a Deployment. Every implementation
// must be immutable-or-snapshotted (safe for concurrent searches while a
// writer publishes new state) and tie-exact: Search returns exactly the
// (Dist, Index)-ordered top-k the linear TopKHammingDist oracle would, so
// the serving tier can swap engines without changing a single result.
type Index interface {
	// Search answers one query with the exact (Dist, Index)-ordered top-k.
	Search(query []uint64, k int) []retrieval.Neighbor
	// SearchBatch answers every query row over a worker pool; row q equals
	// Search(queries.Code(q), k) for any worker count.
	SearchBatch(queries *retrieval.Codes, k, workers int) [][]retrieval.Neighbor
	// L reports the code length in bits.
	L() int
	// N reports the number of indexed codes.
	N() int
	// Words reports the packed words per code.
	Words() int
	// Kind names the engine ("linear", "mih") for stats and logs.
	Kind() string
}

// ShardedIndex splits a packed code set into row ranges so one query fans
// out over shards and merges with retrieval.MergeTopK — the same tie-exact
// merge the chunked scans use, so a sharded search equals the unsharded scan
// for any shard count. Shards alias the original backing array (no copy) and
// are immutable once built; swapping in new codes means building a new index.
type ShardedIndex struct {
	l, n   int
	shards []*retrieval.Codes
	offs   []int
}

// NewShardedIndex slices codes into at most shards row ranges (shards < 1
// means 1; empty code sets get one empty shard).
func NewShardedIndex(codes *retrieval.Codes, shards int) *ShardedIndex {
	if shards < 1 {
		shards = 1
	}
	if shards > codes.N {
		shards = max(codes.N, 1)
	}
	ix := &ShardedIndex{l: codes.L, n: codes.N}
	per := (codes.N + shards - 1) / shards
	if per == 0 {
		per = 1
	}
	for lo := 0; lo < codes.N || len(ix.shards) == 0; lo += per {
		hi := min(lo+per, codes.N)
		ix.shards = append(ix.shards, &retrieval.Codes{
			N: hi - lo, L: codes.L, Words: codes.Words,
			Data: codes.Data[lo*codes.Words : hi*codes.Words],
		})
		ix.offs = append(ix.offs, lo)
		if hi == codes.N {
			break
		}
	}
	return ix
}

// Shards reports the fan-out width.
func (ix *ShardedIndex) Shards() int { return len(ix.shards) }

// L reports the code length in bits.
func (ix *ShardedIndex) L() int { return ix.l }

// N reports the number of indexed codes.
func (ix *ShardedIndex) N() int { return ix.n }

// Words reports the packed words per code.
func (ix *ShardedIndex) Words() int { return (ix.l + 63) / 64 }

// Kind names the engine.
func (ix *ShardedIndex) Kind() string { return "linear" }

// Search runs one query against every shard and merges to a global top-k.
func (ix *ShardedIndex) Search(query []uint64, k int) []retrieval.Neighbor {
	parts := make([][]retrieval.Neighbor, len(ix.shards))
	for s, sh := range ix.shards {
		parts[s] = retrieval.OffsetNeighbors(retrieval.TopKHammingDist(sh, query, k), ix.offs[s])
	}
	return retrieval.MergeTopK(parts, k)
}

// SearchBatch coalesces a batch of queries into one pass: the query loop
// fans out over workers goroutines (the AllTopKHamming shape), each query
// scanning every shard and merging shard results tie-exactly. Output row q
// is identical to Search(queries.Code(q), k) for any worker count.
func (ix *ShardedIndex) SearchBatch(queries *retrieval.Codes, k, workers int) [][]retrieval.Neighbor {
	out := make([][]retrieval.Neighbor, queries.N)
	core.ParallelChunks(queries.N, core.Cores(workers), func(_, lo, hi int) {
		for q := lo; q < hi; q++ {
			out[q] = ix.Search(queries.Code(q), k)
		}
	})
	return out
}

// StreamingMIH is the sublinear engine: a multi-index hashing table set
// (retrieval.MIHIndex) behind an atomic snapshot pointer. Searches load the
// snapshot once and run entirely against it; Add builds a copy-on-write
// child snapshot and publishes it — the same swap discipline the Deployment
// pointer uses, so freshly encoded points become searchable between training
// iterations without a search ever observing a half-built table.
type StreamingMIH struct {
	snap atomic.Pointer[retrieval.MIHIndex]
	mu   sync.Mutex // serialises Add; searches never take it
}

// NewStreamingMIH builds the initial snapshot over codes. blocks ≤ 0 picks
// the substring width automatically from N and L.
func NewStreamingMIH(codes *retrieval.Codes, blocks int) (*StreamingMIH, error) {
	ix, err := retrieval.NewMIHIndex(codes, blocks)
	if err != nil {
		return nil, err
	}
	s := &StreamingMIH{}
	s.snap.Store(ix)
	return s, nil
}

// Add appends freshly encoded points: it builds a child snapshot sharing
// untouched posting lists with the current one and publishes it atomically.
// In-flight searches finish on the snapshot they loaded; new searches see
// the appended points. Ids of the new points start at the previous N.
func (s *StreamingMIH) Add(extra *retrieval.Codes) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next, err := s.snap.Load().WithAppended(extra)
	if err != nil {
		return err
	}
	s.snap.Store(next)
	return nil
}

// L reports the code length in bits.
func (s *StreamingMIH) L() int { return s.snap.Load().L() }

// N reports the number of indexed codes in the current snapshot.
func (s *StreamingMIH) N() int { return s.snap.Load().N() }

// Words reports the packed words per code.
func (s *StreamingMIH) Words() int { return s.snap.Load().Words() }

// Kind names the engine.
func (s *StreamingMIH) Kind() string { return "mih" }

// Occupancy reports the current snapshot's posting-list statistics.
func (s *StreamingMIH) Occupancy() retrieval.MIHOccupancy { return s.snap.Load().Occupancy() }

// Search answers one query against the current snapshot.
func (s *StreamingMIH) Search(query []uint64, k int) []retrieval.Neighbor {
	return s.snap.Load().Search(query, k)
}

// SearchBatch answers a batch against one snapshot — every row of a batch
// sees the same point set even if Add lands mid-scan.
func (s *StreamingMIH) SearchBatch(queries *retrieval.Codes, k, workers int) [][]retrieval.Neighbor {
	return s.snap.Load().SearchBatch(queries, k, workers)
}

// IndexConfig selects and sizes the engine BuildIndex constructs.
type IndexConfig struct {
	// Kind is "linear" (sharded exact scan, the default) or "mih"
	// (multi-index hashing, sublinear at production N).
	Kind string
	// Shards is the linear engine's per-query fan-out width.
	Shards int
	// MIHBlocks is the substring table count for the mih engine (0 = pick
	// from N and L).
	MIHBlocks int
}

// BuildIndex constructs the configured engine over a packed code set.
func BuildIndex(codes *retrieval.Codes, cfg IndexConfig) (Index, error) {
	switch cfg.Kind {
	case "", "linear":
		return NewShardedIndex(codes, cfg.Shards), nil
	case "mih":
		return NewStreamingMIH(codes, cfg.MIHBlocks)
	default:
		return nil, fmt.Errorf("serve: unknown index kind %q (want linear or mih)", cfg.Kind)
	}
}

// Deployment is one immutable (model, index) pair. Model may be nil, in
// which case only raw-code queries can be served. Deployments are swapped
// atomically: in-flight batches keep the snapshot they started with, so a
// swap never tears a request across two versions.
type Deployment struct {
	Version string
	Model   *binauto.Model
	Index   Index
}

// NewDeployment validates that model and index agree on the code length.
func NewDeployment(version string, model *binauto.Model, index Index) (*Deployment, error) {
	if index == nil {
		return nil, errors.New("serve: deployment needs an index")
	}
	if model != nil && model.L() != index.L() {
		return nil, fmt.Errorf("serve: model emits %d-bit codes but index holds %d-bit codes",
			model.L(), index.L())
	}
	return &Deployment{Version: version, Model: model, Index: index}, nil
}

// LoadDeployment reads an index file (written by retrieval.Codes.Save) and
// an optional model JSON from disk, builds the engine cfg selects, and
// enforces maxIndexBytes (≤ 0 means retrieval.DefaultMaxIndexBytes) against
// the index header before any large allocation.
func LoadDeployment(version, indexPath, modelPath string, cfg IndexConfig, maxIndexBytes int64) (*Deployment, error) {
	f, err := os.Open(indexPath)
	if err != nil {
		return nil, fmt.Errorf("serve: open index: %w", err)
	}
	defer f.Close()
	codes, err := retrieval.LoadCodesLimit(f, maxIndexBytes)
	if err != nil {
		return nil, err
	}
	var model *binauto.Model
	if modelPath != "" {
		mf, err := os.Open(modelPath)
		if err != nil {
			return nil, fmt.Errorf("serve: open model: %w", err)
		}
		defer mf.Close()
		if model, err = binauto.Load(mf); err != nil {
			return nil, err
		}
	}
	index, err := BuildIndex(codes, cfg)
	if err != nil {
		return nil, err
	}
	return NewDeployment(version, model, index)
}

// Options tune the server. Zero values mean the documented defaults.
type Options struct {
	// Shards is the fan-out width used when the server itself builds
	// linear indexes (swap endpoint, LoadDeployment callers). Default 1.
	Shards int
	// IndexKind selects the engine the admin endpoints build when loading
	// index files: "linear" (default) or "mih".
	IndexKind string
	// MIHBlocks sizes the mih engine's substring tables (0 = pick from N
	// and L).
	MIHBlocks int
	// Workers bounds the goroutines one batch scan uses (< 0 every core,
	// which is the default).
	Workers int
	// MaxBatch caps how many requests one scan coalesces. Default 64.
	MaxBatch int
	// MaxDelay is how long the batcher holds an under-filled batch waiting
	// for stragglers. 0 (the default) is work-conserving: the batcher
	// flushes as soon as the queue is idle, so a lone request never waits —
	// batches still form naturally whenever requests arrive faster than
	// scans finish.
	MaxDelay time.Duration
	// MaxK bounds the per-request k. Default 1000.
	MaxK int
	// DefaultK is used when a request omits k. Default 10.
	DefaultK int
	// ShadowRate is the fraction of live queries mirrored to the shadow
	// deployment, if one is set. Default 0.1; clamped to [0, 1].
	ShadowRate float64
	// ShadowSeed seeds the sampling of mirrored queries (deterministic for
	// tests). 0 means 1.
	ShadowSeed int64
	// MaxIndexBytes is the budget the swap/shadow admin endpoints enforce
	// when loading index files. ≤ 0 means retrieval.DefaultMaxIndexBytes.
	MaxIndexBytes int64
	// Logf receives shadow-agreement and swap log lines. Default log.Printf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.IndexKind == "" {
		o.IndexKind = "linear"
	}
	if o.Workers == 0 {
		o.Workers = -1
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxK <= 0 {
		o.MaxK = 1000
	}
	if o.DefaultK <= 0 {
		o.DefaultK = 10
	}
	if o.ShadowRate == 0 {
		o.ShadowRate = 0.1
	}
	o.ShadowRate = min(max(o.ShadowRate, 0), 1)
	if o.ShadowSeed == 0 {
		o.ShadowSeed = 1
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Query is one validated search request: exactly one of Vector (to be
// encoded by the live model) or Code (raw packed words) is set.
type Query struct {
	Vector []float64
	Code   []uint64
	K      int
}

// ResultSet is the answer to one Query.
type ResultSet struct {
	Version   string               // deployment that served it
	Neighbors []retrieval.Neighbor // sorted by (dist, index)
}

// apiError is an error with an HTTP status.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// ErrClosed is returned by Search once Close has been called.
var ErrClosed = errors.New("serve: server closed")

// shadowLogEvery throttles shadow-agreement log lines: one line each time the
// cumulative mirrored-query count crosses a multiple of this.
const shadowLogEvery = 100

type pending struct {
	q    Query
	resp chan response
}

type response struct {
	rs  *ResultSet
	err error
}

// Stats is a snapshot of the server counters.
type Stats struct {
	LiveVersion   string `json:"live_version"`
	ShadowVersion string `json:"shadow_version,omitempty"`
	IndexN        int    `json:"index_n"`
	// IndexKind names the live engine; IndexShards is the linear engine's
	// fan-out (0 for other kinds), MIH the mih engine's occupancy summary —
	// posting-list skew is what degrades its pruning, so operators watch the
	// max/mean list lengths here.
	IndexKind       string                  `json:"index_kind,omitempty"`
	IndexShards     int                     `json:"index_shards,omitempty"`
	MIH             *retrieval.MIHOccupancy `json:"mih_occupancy,omitempty"`
	Queries         int64                   `json:"queries"`
	Errors          int64                   `json:"errors"`
	Batches         int64                   `json:"batches"`
	MeanBatch       float64                 `json:"mean_batch"`
	ShadowQueries   int64                   `json:"shadow_queries"`
	ShadowAgreement float64                 `json:"shadow_agreement"` // mean overlap@k in [0,1]
}

// Server owns the live and shadow deployments, the request queue and the
// batcher goroutine. All public methods are safe for concurrent use.
type Server struct {
	opts   Options
	live   atomic.Pointer[Deployment]
	shadow atomic.Pointer[Deployment]

	queue chan *pending
	quit  chan struct{}
	done  chan struct{}

	queries atomic.Int64
	errs    atomic.Int64
	batches atomic.Int64
	batched atomic.Int64 // total requests across all batches

	shadowQueries atomic.Int64
	shadowOverlap atomic.Int64 // sum of per-query overlap in millionths

	shadowMu  sync.Mutex
	shadowRng *rand.Rand
	shadowWG  sync.WaitGroup

	closeOnce sync.Once
}

// New starts a server over the given live deployment.
func New(dep *Deployment, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:      opts,
		queue:     make(chan *pending, 4*opts.MaxBatch),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		shadowRng: rand.New(rand.NewSource(opts.ShadowSeed)),
	}
	s.live.Store(dep)
	go s.run()
	return s
}

// Close stops the batcher after draining queued requests and waits for any
// in-flight shadow mirroring. Searches after Close fail with ErrClosed.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	<-s.done
	s.shadowWG.Wait()
}

// WaitShadow blocks until all shadow mirroring registered so far has
// completed, so Stats reflects every query already answered. Useful before
// reading agreement numbers in tests and rollout tooling.
func (s *Server) WaitShadow() { s.shadowWG.Wait() }

// Live returns the current live deployment.
func (s *Server) Live() *Deployment { return s.live.Load() }

// Shadow returns the current shadow deployment (nil when unset).
func (s *Server) Shadow() *Deployment { return s.shadow.Load() }

// Swap atomically replaces the live deployment and returns the previous one.
// In-flight batches finish on the snapshot they loaded, so no request is
// dropped or served by a torn (model, index) pair.
func (s *Server) Swap(dep *Deployment) *Deployment {
	old := s.live.Swap(dep)
	s.opts.Logf("serve: swapped live deployment %q -> %q (kind=%s N=%d)",
		version(old), dep.Version, dep.Index.Kind(), dep.Index.N())
	return old
}

// SetShadow installs (or, with nil, clears) the shadow deployment and resets
// the agreement counters so the numbers describe exactly one candidate.
func (s *Server) SetShadow(dep *Deployment) {
	s.shadow.Store(dep)
	s.shadowQueries.Store(0)
	s.shadowOverlap.Store(0)
	if dep != nil {
		s.opts.Logf("serve: shadow deployment %q installed (kind=%s N=%d)",
			dep.Version, dep.Index.Kind(), dep.Index.N())
	} else {
		s.opts.Logf("serve: shadow deployment cleared")
	}
}

// PromoteShadow swaps the shadow deployment into live (the canary passed)
// and clears the shadow slot.
func (s *Server) PromoteShadow() (*Deployment, error) {
	dep := s.shadow.Load()
	if dep == nil {
		return nil, errors.New("serve: no shadow deployment to promote")
	}
	s.SetShadow(nil)
	s.Swap(dep)
	return dep, nil
}

func version(d *Deployment) string {
	if d == nil {
		return ""
	}
	return d.Version
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	live := s.live.Load()
	st := Stats{
		LiveVersion:   version(live),
		ShadowVersion: version(s.shadow.Load()),
		Queries:       s.queries.Load(),
		Errors:        s.errs.Load(),
		Batches:       s.batches.Load(),
		ShadowQueries: s.shadowQueries.Load(),
	}
	if live != nil {
		st.IndexN = live.Index.N()
		st.IndexKind = live.Index.Kind()
		switch ix := live.Index.(type) {
		case *ShardedIndex:
			st.IndexShards = ix.Shards()
		case *StreamingMIH:
			occ := ix.Occupancy()
			st.MIH = &occ
		}
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(s.batched.Load()) / float64(st.Batches)
	}
	if st.ShadowQueries > 0 {
		st.ShadowAgreement = float64(s.shadowOverlap.Load()) / 1e6 / float64(st.ShadowQueries)
	}
	return st
}

// validate checks a query against a deployment, resolving K defaults. It is
// run once at enqueue (fast 400s against the then-live deployment) and again
// at flush against the batch's snapshot, so a hot swap between the two can
// only produce an explicit error, never a malformed scan.
func (s *Server) validate(q *Query, dep *Deployment) error {
	if dep == nil {
		return &apiError{status: 503, msg: "no deployment loaded"}
	}
	if (len(q.Vector) == 0) == (len(q.Code) == 0) {
		return badRequest("exactly one of vector and code must be set")
	}
	if q.K == 0 {
		q.K = s.opts.DefaultK
	}
	if q.K < 0 {
		return badRequest("k must be positive, got %d", q.K)
	}
	if q.K > s.opts.MaxK {
		return badRequest("k=%d exceeds the maximum %d", q.K, s.opts.MaxK)
	}
	if len(q.Vector) > 0 {
		if dep.Model == nil {
			return badRequest("deployment %q has no model: send a raw code", dep.Version)
		}
		if len(q.Vector) != dep.Model.D() {
			return badRequest("vector has %d dims, model wants %d", len(q.Vector), dep.Model.D())
		}
		return nil
	}
	if len(q.Code) != dep.Index.Words() {
		return badRequest("code has %d words, index wants %d (L=%d)",
			len(q.Code), dep.Index.Words(), dep.Index.L())
	}
	if top := dep.Index.L() % 64; top != 0 {
		if q.Code[len(q.Code)-1]>>uint(top) != 0 {
			return badRequest("code has bits set above L=%d", dep.Index.L())
		}
	}
	return nil
}

// Search runs one query through the full serving path — validation, the
// micro-batch queue, the batched sharded scan — and blocks until its result
// is ready. This is the method the HTTP handler, the perf scenarios and the
// example all call, so every measurement exercises the real pipeline.
func (s *Server) Search(q Query) (*ResultSet, error) {
	if err := s.validate(&q, s.live.Load()); err != nil {
		s.errs.Add(1)
		return nil, err
	}
	p := &pending{q: q, resp: make(chan response, 1)}
	select {
	case s.queue <- p:
	case <-s.quit:
		return nil, ErrClosed
	}
	select {
	case r := <-p.resp:
		return r.rs, r.err
	case <-s.done:
		// The batcher exited; it drained the queue first, so a response is
		// either already buffered or will never come.
		select {
		case r := <-p.resp:
			return r.rs, r.err
		default:
			return nil, ErrClosed
		}
	}
}

// run is the batcher loop: take one request, coalesce more up to MaxBatch —
// waiting at most MaxDelay, or not at all when MaxDelay is 0 and the queue
// goes idle — then flush the whole batch through one scan.
func (s *Server) run() {
	defer close(s.done)
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.quit:
			s.drain()
			return
		}
		batch := s.collect(first)
		s.flush(batch)
	}
}

// collect gathers a batch starting from first.
func (s *Server) collect(first *pending) []*pending {
	batch := []*pending{first}
	if s.opts.MaxDelay <= 0 {
		// Work-conserving: take whatever is already queued, never wait.
		for len(batch) < s.opts.MaxBatch {
			select {
			case p := <-s.queue:
				batch = append(batch, p)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(s.opts.MaxDelay)
	defer timer.Stop()
	for len(batch) < s.opts.MaxBatch {
		select {
		case p := <-s.queue:
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-s.quit:
			return batch
		}
	}
	return batch
}

// drain serves everything still queued at shutdown so no accepted request is
// dropped.
func (s *Server) drain() {
	for {
		select {
		case p := <-s.queue:
			s.flush(s.collect(p))
		default:
			return
		}
	}
}

// flush answers one batch from a single deployment snapshot: encode vector
// queries with the snapshot's model, run one batched sharded scan at the
// batch's largest k, then slice each request's prefix (the top-k order is a
// prefix of the top-kmax order, so this is exact).
func (s *Server) flush(batch []*pending) {
	dep := s.live.Load()
	s.batches.Add(1)
	s.batched.Add(int64(len(batch)))
	s.queries.Add(int64(len(batch)))

	jobs := make([]flushJob, 0, len(batch))
	queries := retrieval.NewCodes(len(batch), liveL(dep))
	kmax := 0
	for _, p := range batch {
		// Re-validate against the snapshot: a swap between enqueue and flush
		// may have changed L or D.
		if err := s.validate(&p.q, dep); err != nil {
			s.errs.Add(1)
			p.resp <- response{err: err}
			continue
		}
		row := len(jobs)
		if len(p.q.Vector) > 0 {
			encodeInto(dep.Model, p.q.Vector, queries, row)
		} else {
			copy(queries.Code(row), p.q.Code)
		}
		jobs = append(jobs, flushJob{p, row})
		kmax = max(kmax, p.q.K)
	}
	if len(jobs) == 0 {
		return
	}
	queries.N = len(jobs)
	results := dep.Index.SearchBatch(queries, kmax, s.opts.Workers)
	// Sample for the shadow before replying: the cheap synchronous part of
	// mirror (sampling, registering the background search) finishing first
	// means a client that got its answer can rely on the shadow counters
	// eventually covering its query — no window where neither is visible.
	s.mirror(dep, jobs, results)
	for _, j := range jobs {
		ns := results[j.row]
		if len(ns) > j.p.q.K {
			ns = ns[:j.p.q.K]
		}
		j.p.resp <- response{rs: &ResultSet{Version: dep.Version, Neighbors: ns}}
	}
}

// flushJob maps a batched request to its row in the coalesced query set.
type flushJob struct {
	p   *pending
	row int
}

// liveL returns the live code length (NewCodes needs L ≥ 1 even for a batch
// that turns out to be all-error).
func liveL(dep *Deployment) int {
	if dep != nil && dep.Index.L() > 0 {
		return dep.Index.L()
	}
	return 1
}

// encodeInto hashes x with the deployment model into row i of dst.
func encodeInto(m *binauto.Model, x []float64, dst *retrieval.Codes, i int) {
	if m.L() <= 64 {
		dst.SetWord64(i, m.EncodePointWord(x))
		return
	}
	for l := 0; l < m.L(); l++ {
		dst.SetBit(i, l, m.EncodeBit(l, x))
	}
}

// mirror sends a ShadowRate sample of the batch to the shadow deployment on
// a background goroutine and accumulates agreement (overlap between the live
// and shadow top-k id sets). Vector queries are re-encoded by the candidate
// model — the whole point of shadowing a new model; raw-code queries are
// mirrored only when the code lengths agree.
func (s *Server) mirror(live *Deployment, flushed []flushJob, results [][]retrieval.Neighbor) {
	sh := s.shadow.Load()
	if sh == nil || s.opts.ShadowRate <= 0 {
		return
	}
	type mjob struct {
		q       Query
		liveIDs []retrieval.Neighbor
	}
	var jobs []mjob
	s.shadowMu.Lock()
	for _, fj := range flushed {
		if s.shadowRng.Float64() >= s.opts.ShadowRate {
			continue
		}
		q := fj.p.q
		if len(q.Vector) == 0 && len(q.Code) != sh.Index.Words() {
			continue
		}
		if len(q.Vector) > 0 && (sh.Model == nil || len(q.Vector) != sh.Model.D()) {
			continue
		}
		r := results[fj.row]
		if len(r) > q.K {
			r = r[:q.K]
		}
		jobs = append(jobs, mjob{q: q, liveIDs: r})
	}
	s.shadowMu.Unlock()
	if len(jobs) == 0 {
		return
	}
	s.shadowWG.Add(1)
	go func() {
		defer s.shadowWG.Done()
		before := s.shadowQueries.Load()
		for _, j := range jobs {
			code := j.q.Code
			if len(j.q.Vector) > 0 {
				tmp := retrieval.NewCodes(1, sh.Index.L())
				encodeInto(sh.Model, j.q.Vector, tmp, 0)
				code = tmp.Code(0)
			}
			got := sh.Index.Search(code, j.q.K)
			ov := overlap(j.liveIDs, got)
			s.shadowQueries.Add(1)
			s.shadowOverlap.Add(int64(ov * 1e6))
		}
		// Log cumulative agreement, throttled to every shadowLogEvery mirrored
		// queries — one line per batch would swamp the log at production QPS.
		after := s.shadowQueries.Load()
		if before/shadowLogEvery != after/shadowLogEvery {
			agree := float64(s.shadowOverlap.Load()) / 1e6 / float64(after)
			s.opts.Logf("serve: shadow %q vs live %q: %d queries mirrored, cumulative agreement %.3f",
				sh.Version, live.Version, after, agree)
		}
	}()
}

// overlap is |a ∩ b| / max(|a|, |b|, 1) over the index sets — 1 when the
// candidate retrieves exactly the live ids, 0 when disjoint.
func overlap(a, b []retrieval.Neighbor) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[int]struct{}, len(a))
	for _, n := range a {
		set[n.Index] = struct{}{}
	}
	hit := 0
	for _, n := range b {
		if _, ok := set[n.Index]; ok {
			hit++
		}
	}
	return float64(hit) / float64(max(len(a), len(b)))
}
