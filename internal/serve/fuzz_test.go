package serve

import (
	"testing"
)

// FuzzSearchRequest throws arbitrary client bytes at the search-request
// parser — the first thing untrusted traffic touches. The contract: a Query
// or a 400-class apiError, never a panic, and any accepted code words must
// have round-trippable hex forms.
func FuzzSearchRequest(f *testing.F) {
	f.Add([]byte(`{"vector":[1,2,3],"k":5}`))
	f.Add([]byte(`{"code":["0xdeadbeef"],"k":10}`))
	f.Add([]byte(`{"code":["ffff"]}`))
	f.Add([]byte(`{"code":["0x10000000000000000"]}`)) // overflows uint64
	f.Add([]byte(`{"code":[],"vector":[]}`))
	f.Add([]byte(`{"k":-9223372036854775808}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"vector":[1e308,-1e308],"code":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := parseSearchRequest(data)
		if err != nil {
			ae, ok := err.(*apiError)
			if !ok {
				t.Fatalf("parse error is %T, want *apiError", err)
			}
			if ae.status < 400 || ae.status > 499 {
				t.Fatalf("parse error status %d, want 4xx", ae.status)
			}
			return
		}
		// Accepted: the canonical hex rendering must parse back to the same
		// words.
		back, err := parseSearchRequest([]byte(`{"code":["` + joinHex(q.Code) + `"]}`))
		if len(q.Code) == 1 {
			if err != nil || back.Code[0] != q.Code[0] {
				t.Fatalf("hex round trip: %v %v", err, back.Code)
			}
		}
	})
}

func joinHex(words []uint64) string {
	if len(words) == 0 {
		return "0"
	}
	return FormatCode(words[:1])[0]
}
