package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/binauto"
	"repro/internal/dataset"
	"repro/internal/retrieval"
)

func testModel(d, l int, seed int64) *binauto.Model {
	rng := rand.New(rand.NewSource(seed))
	m := binauto.NewModel(d, l, 1e-4)
	m.InitEncoderRandom(rng, 1)
	return m
}

// testDeployment builds a deployment over n random points hashed by a random
// model, returning the flat codes too so tests can run oracle scans.
func testDeployment(version string, n, d, l, shards int, seed int64) (*Deployment, *retrieval.Codes, *dataset.Dataset) {
	ds := dataset.GISTLike(n, d, 4, seed)
	m := testModel(d, l, seed+100)
	codes := m.Encode(ds)
	dep, err := NewDeployment(version, m, NewShardedIndex(codes, shards))
	if err != nil {
		panic(err)
	}
	return dep, codes, ds
}

func quietOpts(o Options) Options {
	o.Logf = func(string, ...any) {}
	return o
}

func TestShardedIndexMatchesSerialScan(t *testing.T) {
	_, codes, _ := testDeployment("v", 500, 16, 16, 1, 1)
	queries := retrieval.NewCodes(30, 16)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < queries.N; i++ {
		queries.SetWord64(i, rng.Uint64()&0xFFFF)
	}
	for _, shards := range []int{1, 3, 7, 16} {
		ix := NewShardedIndex(codes, shards)
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Code(qi)
			want := retrieval.TopKHammingDist(codes, q, 25)
			got := ix.Search(q, 25)
			if len(got) != len(want) {
				t.Fatalf("shards=%d query %d: %d results, want %d", shards, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d query %d rank %d: %+v != %+v", shards, qi, i, got[i], want[i])
				}
			}
		}
		batch := ix.SearchBatch(queries, 25, 4)
		for qi := 0; qi < queries.N; qi++ {
			want := ix.Search(queries.Code(qi), 25)
			for i := range want {
				if batch[qi][i] != want[i] {
					t.Fatalf("SearchBatch shards=%d query %d differs", shards, qi)
				}
			}
		}
	}
}

func TestServerEndToEndHTTP(t *testing.T) {
	dep, codes, ds := testDeployment("v1", 400, 8, 16, 4, 3)
	s := New(dep, quietOpts(Options{ShadowRate: -1}))
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) (int, []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	// Vector query: encode-and-search must equal the oracle scan of h(x).
	x := ds.Point(7, nil)
	vecBody, _ := json.Marshal(map[string]any{"vector": x, "k": 5})
	status, body := post("/v1/search", string(vecBody))
	if status != 200 {
		t.Fatalf("vector search: status %d: %s", status, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Model != "v1" {
		t.Fatalf("served by %q, want v1", sr.Model)
	}
	q := dep.Model.Encode(onePoint{x}).Code(0)
	want := retrieval.TopKHammingDist(codes, q, 5)
	if len(sr.Neighbors) != len(want) {
		t.Fatalf("%d neighbors, want %d", len(sr.Neighbors), len(want))
	}
	for i, n := range sr.Neighbors {
		if n.Index != want[i].Index || n.Dist != want[i].Dist {
			t.Fatalf("neighbor %d: %+v want %+v", i, n, want[i])
		}
	}

	// Raw-code query for the same code must agree.
	codeBody, _ := json.Marshal(map[string]any{"code": FormatCode(q), "k": 5})
	status, body = post("/v1/search", string(codeBody))
	if status != 200 {
		t.Fatalf("code search: status %d: %s", status, body)
	}
	var sr2 searchResponse
	json.Unmarshal(body, &sr2)
	if len(sr2.Neighbors) != len(sr.Neighbors) {
		t.Fatal("raw-code search disagrees with vector search")
	}
	for i := range sr.Neighbors {
		if sr.Neighbors[i] != sr2.Neighbors[i] {
			t.Fatal("raw-code search disagrees with vector search")
		}
	}

	// Health and stats.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Queries != 2 || st.LiveVersion != "v1" || st.IndexN != 400 || st.IndexShards != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

// onePoint adapts a single vector to sgd.Points.
type onePoint struct{ x []float64 }

func (p onePoint) NumPoints() int { return 1 }
func (p onePoint) Point(i int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(p.x))
	}
	copy(dst, p.x)
	return dst
}

func TestServerValidation(t *testing.T) {
	dep, _, _ := testDeployment("v1", 100, 8, 16, 2, 4)
	s := New(dep, quietOpts(Options{MaxK: 50}))
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{`, 400},
		{"empty", `{}`, 400},
		{"both vector and code", `{"vector":[1,2,3,4,5,6,7,8],"code":["0x1"]}`, 400},
		{"negative k", `{"code":["0x1"],"k":-1}`, 400},
		{"k over max", `{"code":["0x1"],"k":51}`, 400},
		{"wrong vector dims", `{"vector":[1,2,3]}`, 400},
		{"wrong code width", `{"code":["0x1","0x2"]}`, 400},
		{"bits above L", `{"code":["0x10000"]}`, 400},
		{"non-hex code", `{"code":["zz"]}`, 400},
		{"valid raw code", `{"code":["0xffff"]}`, 200},
		{"valid k at max", `{"code":["0x1"],"k":50}`, 200},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewBufferString(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

func TestHotSwapUnderLoad(t *testing.T) {
	depA, codesA, _ := testDeployment("a", 300, 8, 16, 2, 5)
	depB, codesB, _ := testDeployment("b", 350, 8, 16, 3, 6)
	oracle := map[string]*retrieval.Codes{"a": codesA, "b": codesB}

	s := New(depA, quietOpts(Options{ShadowRate: -1}))
	defer s.Close()

	const clients, perClient = 8, 60
	var wrong, failed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var sawB atomic.Bool
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				q := []uint64{rng.Uint64() & 0xFFFF}
				rs, err := s.Search(Query{Code: q, K: 7})
				if err != nil {
					failed.Add(1)
					continue
				}
				if rs.Version == "b" {
					sawB.Store(true)
				}
				// The response must be internally consistent: exactly the
				// oracle scan of whichever version served it.
				want := retrieval.TopKHammingDist(oracle[rs.Version], q, 7)
				if len(rs.Neighbors) != len(want) {
					wrong.Add(1)
					continue
				}
				for j := range want {
					if rs.Neighbors[j] != want[j] {
						wrong.Add(1)
						break
					}
				}
			}
		}(c)
	}
	// Swap back and forth while the clients hammer.
	go func() {
		deps := []*Deployment{depB, depA}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Swap(deps[i%2])
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	if failed.Load() != 0 {
		t.Fatalf("%d searches failed during hot swap", failed.Load())
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d responses inconsistent with their deployment", wrong.Load())
	}
	if !sawB.Load() {
		t.Log("warning: no request observed deployment b (swap raced ahead)")
	}
	if st := s.Stats(); st.Queries != clients*perClient {
		t.Fatalf("stats counted %d queries, want %d", st.Queries, clients*perClient)
	}
}

func TestMicroBatchCoalescing(t *testing.T) {
	dep, _, _ := testDeployment("v1", 2000, 8, 16, 2, 7)
	s := New(dep, quietOpts(Options{MaxBatch: 8, MaxDelay: 500 * time.Millisecond, ShadowRate: -1}))
	defer s.Close()

	// 8 concurrent requests with a generous hold window must coalesce into
	// one batch: the batcher waits for stragglers and flushes at MaxBatch.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Search(Query{Code: []uint64{uint64(i)}, K: 3}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Batches != 1 || st.Queries != 8 {
		t.Fatalf("expected one batch of 8, got %d batches / %d queries", st.Batches, st.Queries)
	}

	// An under-filled batch must flush at the deadline, not hang.
	start := time.Now()
	if _, err := s.Search(Query{Code: []uint64{1}, K: 3}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lone request took %v; deadline flush broken", elapsed)
	}
}

func TestWorkConservingFlushDoesNotWait(t *testing.T) {
	dep, _, _ := testDeployment("v1", 2000, 8, 16, 2, 8)
	s := New(dep, quietOpts(Options{MaxDelay: 0, ShadowRate: -1}))
	defer s.Close()
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := s.Search(Query{Code: []uint64{uint64(i)}, K: 3}); err != nil {
			t.Fatal(err)
		}
	}
	// 20 sequential single-stream queries over 2000 codes: with a
	// work-conserving batcher this is well under a second; any per-request
	// hold would show up immediately.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("single-stream latency suggests the batcher is holding: %v", elapsed)
	}
}

func TestShadowAgreementAndPromote(t *testing.T) {
	dep, _, ds := testDeployment("live", 300, 8, 16, 2, 9)
	s := New(dep, quietOpts(Options{ShadowRate: 1}))
	defer s.Close()

	// Identical candidate: agreement must be exactly 1.
	twin, err := NewDeployment("twin", dep.Model.Clone(), dep.Index)
	if err != nil {
		t.Fatal(err)
	}
	s.SetShadow(twin)
	for i := 0; i < 20; i++ {
		if _, err := s.Search(Query{Vector: ds.Point(i, nil), K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	s.shadowWG.Wait()
	st := s.Stats()
	if st.ShadowQueries != 20 {
		t.Fatalf("shadow saw %d queries, want 20", st.ShadowQueries)
	}
	if st.ShadowAgreement < 0.999 {
		t.Fatalf("identical shadow agreement %v, want 1", st.ShadowAgreement)
	}

	// A different candidate model: agreement is measured, then promoted.
	cand, codes2, _ := testDeployment("cand", 300, 8, 16, 2, 10)
	_ = codes2
	s.SetShadow(cand)
	if got := s.Stats().ShadowQueries; got != 0 {
		t.Fatalf("SetShadow must reset counters, got %d", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Search(Query{Vector: ds.Point(i, nil), K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	s.shadowWG.Wait()
	if got := s.Stats().ShadowQueries; got != 10 {
		t.Fatalf("shadow saw %d queries, want 10", got)
	}
	promoted, err := s.PromoteShadow()
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Version != "cand" || version(s.Live()) != "cand" || s.Shadow() != nil {
		t.Fatalf("promote: live=%q shadow=%v", version(s.Live()), s.Shadow())
	}
	if _, err := s.PromoteShadow(); err == nil {
		t.Fatal("second promote should fail: no shadow")
	}
}

func TestSwapAndShadowOverHTTP(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, n, d, l int, seed int64) (string, string) {
		ds := dataset.GISTLike(n, d, 4, seed)
		m := testModel(d, l, seed+50)
		codes := m.Encode(ds)
		ip := filepath.Join(dir, name+".idx")
		mp := filepath.Join(dir, name+".json")
		fi, _ := os.Create(ip)
		if err := codes.Save(fi); err != nil {
			t.Fatal(err)
		}
		fi.Close()
		fm, _ := os.Create(mp)
		if err := m.Save(fm); err != nil {
			t.Fatal(err)
		}
		fm.Close()
		return ip, mp
	}
	ip1, mp1 := write("v1", 120, 8, 16, 11)
	ip2, mp2 := write("v2", 140, 8, 16, 12)

	dep, err := LoadDeployment("v1", ip1, mp1, IndexConfig{Shards: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, quietOpts(Options{Shards: 2, ShadowRate: 1}))
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) (int, map[string]string) {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out := map[string]string{}
		json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	// Shadow v2, then promote it.
	status, out := post("/v1/shadow", fmt.Sprintf(`{"version":"v2","index":%q,"model":%q}`, ip2, mp2))
	if status != 200 || out["shadow"] != "v2" {
		t.Fatalf("shadow: %d %v", status, out)
	}
	status, out = post("/v1/promote", `{}`)
	if status != 200 || out["live"] != "v2" {
		t.Fatalf("promote: %d %v", status, out)
	}
	if st := s.Stats(); st.LiveVersion != "v2" || st.IndexN != 140 {
		t.Fatalf("after promote: %+v", st)
	}

	// Swap straight back to v1 via the admin endpoint.
	status, out = post("/v1/swap", fmt.Sprintf(`{"version":"v1","index":%q,"model":%q}`, ip1, mp1))
	if status != 200 || out["live"] != "v1" || out["previous"] != "v2" {
		t.Fatalf("swap: %d %v", status, out)
	}

	// A bad index path must not disturb the live deployment.
	status, _ = post("/v1/swap", `{"version":"x","index":"/nonexistent"}`)
	if status != 400 {
		t.Fatalf("swap with bad path: status %d", status)
	}
	if version(s.Live()) != "v1" {
		t.Fatal("failed swap replaced the live deployment")
	}
}

func TestDeploymentModelIndexMismatch(t *testing.T) {
	m := testModel(8, 16, 13)
	codes := retrieval.NewCodes(10, 24)
	if _, err := NewDeployment("x", m, NewShardedIndex(codes, 1)); err == nil {
		t.Fatal("expected L mismatch error")
	}
}

func TestSearchAfterClose(t *testing.T) {
	dep, _, _ := testDeployment("v1", 100, 8, 16, 1, 14)
	s := New(dep, quietOpts(Options{}))
	s.Close()
	if _, err := s.Search(Query{Code: []uint64{1}, K: 3}); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	s.Close() // second Close must be a no-op, not a panic
}

func TestRawCodeOnlyDeployment(t *testing.T) {
	_, codes, _ := testDeployment("v1", 100, 8, 16, 1, 15)
	dep, err := NewDeployment("raw", nil, NewShardedIndex(codes, 2))
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, quietOpts(Options{}))
	defer s.Close()
	if _, err := s.Search(Query{Vector: make([]float64, 8), K: 3}); err == nil {
		t.Fatal("vector query against model-less deployment should fail")
	}
	rs, err := s.Search(Query{Code: []uint64{0xABCD}, K: 3})
	if err != nil || len(rs.Neighbors) != 3 {
		t.Fatalf("raw code query: %v %v", err, rs)
	}
}

func TestMIHDeploymentMatchesLinear(t *testing.T) {
	_, codes, ds := testDeployment("v", 600, 16, 32, 1, 16)
	mih, err := BuildIndex(codes, IndexConfig{Kind: "mih"})
	if err != nil {
		t.Fatal(err)
	}
	if mih.Kind() != "mih" || mih.N() != codes.N || mih.L() != codes.L {
		t.Fatalf("mih index shape: kind=%s N=%d L=%d", mih.Kind(), mih.N(), mih.L())
	}
	lin := NewShardedIndex(codes, 3)
	queries := testModel(16, 32, 17).Encode(ds)
	for qi := 0; qi < 20; qi++ {
		q := queries.Code(qi)
		want := lin.Search(q, 10)
		got := mih.Search(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: %+v != %+v", qi, i, got[i], want[i])
			}
		}
	}
	batch := mih.SearchBatch(queries, 10, 4)
	for qi := 0; qi < queries.N; qi++ {
		want := lin.Search(queries.Code(qi), 10)
		for i := range want {
			if batch[qi][i] != want[i] {
				t.Fatalf("SearchBatch query %d differs from linear", qi)
			}
		}
	}
}

func TestStreamingMIHAddSearchable(t *testing.T) {
	ds := dataset.GISTLike(300, 8, 4, 18)
	m := testModel(8, 16, 19)
	codes := m.Encode(ds)
	first := subCodes(codes, 0, 200)
	extra := subCodes(codes, 200, 300)

	sm, err := NewStreamingMIH(first, 0)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment("v1", m, sm)
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, quietOpts(Options{IndexKind: "mih"}))
	defer s.Close()

	q := codes.Code(250) // not yet ingested
	pre, err := s.Search(Query{Code: q, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Streaming ingest between "training iterations": the same server, no
	// swap, must see the new points on the very next query.
	if err := sm.Add(extra); err != nil {
		t.Fatal(err)
	}
	post, err := s.Search(Query{Code: q, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := retrieval.TopKHammingDist(codes, q, 5)
	for i := range want {
		if post.Neighbors[i] != want[i] {
			t.Fatalf("rank %d after Add: %+v want %+v (pre-Add %+v)",
				i, post.Neighbors[i], want[i], pre.Neighbors)
		}
	}
	// The query is a base point, so after ingest an exact match must exist
	// (possibly a lower-indexed duplicate code — ties order by index).
	if post.Neighbors[0].Dist != 0 {
		t.Fatalf("no exact match after Add: %+v", post.Neighbors[0])
	}
	if sm.N() != 300 {
		t.Fatalf("N after Add = %d, want 300", sm.N())
	}
}

func TestStatsReportIndexKindAndOccupancy(t *testing.T) {
	_, codes, _ := testDeployment("v", 200, 8, 16, 1, 20)

	lin, _ := NewDeployment("lin", nil, NewShardedIndex(codes, 2))
	s := New(lin, quietOpts(Options{}))
	st := s.Stats()
	s.Close()
	if st.IndexKind != "linear" || st.IndexShards != 2 || st.MIH != nil {
		t.Fatalf("linear stats: %+v", st)
	}

	sm, err := NewStreamingMIH(codes, 0)
	if err != nil {
		t.Fatal(err)
	}
	mih, _ := NewDeployment("mih", nil, sm)
	s = New(mih, quietOpts(Options{IndexKind: "mih"}))
	defer s.Close()
	st = s.Stats()
	if st.IndexKind != "mih" || st.IndexShards != 0 {
		t.Fatalf("mih stats: %+v", st)
	}
	if st.MIH == nil || st.MIH.Blocks < 1 || st.MIH.Buckets < 1 {
		t.Fatalf("mih occupancy missing: %+v", st.MIH)
	}
	want := sm.Occupancy()
	if *st.MIH != want {
		t.Fatalf("occupancy %+v, want %+v", *st.MIH, want)
	}
}

// subCodes copies rows [lo, hi) of src into a fresh Codes.
func subCodes(src *retrieval.Codes, lo, hi int) *retrieval.Codes {
	out := retrieval.NewCodes(hi-lo, src.L)
	for i := lo; i < hi; i++ {
		out.CopyCode(i-lo, src, i)
	}
	return out
}
