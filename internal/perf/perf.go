// Package perf is the machine-readable performance harness behind
// `parmac-bench -json`: it runs the hot-path micro-benchmarks (Z-step
// solvers, decoder reconstruction, vector kernels, Hamming scan) and a
// serial-vs-parallel Z-step sweep over worker counts, and serialises the
// results as a BENCH_<label>.json. Committing one such file per perf-relevant
// PR gives the repository a perf trajectory — MLPerf's lesson that a speed
// claim only counts when a reproducible harness records it.
package perf

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/binauto"
	"repro/internal/dataset"
	"repro/internal/retrieval"
	"repro/internal/vec"
)

// Result is one micro-benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"` // iterations the harness settled on
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SweepPoint is one worker count of the Z-step scaling sweep.
type SweepPoint struct {
	Workers         int     `json:"workers"`
	NsPerOp         float64 `json:"ns_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// IndexSweepPoint compares the MIH index against the linear popcount scan at
// one (N, k): ns per query, single-threaded, identical query stream. The
// speedup column is what justifies (or vetoes) -index-kind=mih at a given
// scale — MIH only wins once N is large enough for bucket pruning to beat the
// scan's perfect locality.
type IndexSweepPoint struct {
	Index           string  `json:"index"` // "linear" | "mih"
	N               int     `json:"n"`
	K               int     `json:"k"`
	NsPerOp         float64 `json:"ns_per_op"`
	SpeedupVsLinear float64 `json:"speedup_vs_linear,omitempty"`
}

// Report is the full harness output.
type Report struct {
	Label string `json:"label"`
	// GitRev is the commit the harness ran at (parmac-bench stamps it), so a
	// directory of BENCH_*.json files forms a comparable series.
	GitRev     string       `json:"git_rev,omitempty"`
	Timestamp  string       `json:"timestamp"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Quick      bool         `json:"quick"`
	Benchmarks []Result     `json:"benchmarks"`
	ZStepSweep []SweepPoint `json:"zstep_sweep"`
	// WStepSweep scales the fused multi-bit W step (bit groups + pooled
	// decoder normal equations) over worker counts; RetrievalSweep scales
	// the batched Hamming top-k scan over query workers.
	WStepSweep     []SweepPoint `json:"wstep_sweep"`
	RetrievalSweep []SweepPoint `json:"retrieval_sweep"`
	// IndexSweep is the linear-vs-MIH offline throughput grid over N and k.
	IndexSweep []IndexSweepPoint `json:"index_sweep"`
	// ServeScenarios are the MLPerf-Inference-style serving measurements
	// (single-stream latency percentiles, server QPS at a p99 bound, offline
	// throughput) over the parmac-serve pipeline.
	ServeScenarios []ServeScenario `json:"serve_scenarios"`
}

func record(name string, r testing.BenchmarkResult) Result {
	return Result{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// RandomBA builds a deterministic random binary autoencoder — the solver cost
// profile matches a trained one and construction stays cheap at D=128. It is
// the one fixture shared by this harness and the root `go test -bench`
// benchmarks, so BENCH_<label>.json and go-test numbers measure the same
// workloads.
func RandomBA(d, l int, seed int64) *binauto.Model {
	rng := rand.New(rand.NewSource(seed))
	m := binauto.NewModel(d, l, 1e-4)
	m.InitEncoderRandom(rng, 1)
	m.Dec.W.FillGaussian(rng, 0.3)
	for j := range m.Dec.C {
		m.Dec.C[j] = rng.NormFloat64()
	}
	return m
}

// Collect runs the harness. quick shrinks the workloads so a CI smoke run
// finishes in seconds; the recorded shapes stay identical.
func Collect(label string, quick bool) *Report {
	rep := &Report{
		Label:      label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}

	enumL := 12
	if quick {
		enumL = 8
	}

	// Z-step solvers at SIFT dimension (D=128).
	{
		ds := dataset.GISTLike(64, 128, 8, 7)
		m := RandomBA(128, enumL, 7)
		k := binauto.NewZKernel(m, 0.5, binauto.ZEnumerate)
		s := k.NewSolver()
		z := m.Encode(ds)
		buf := make([]float64, ds.D)
		rep.Benchmarks = append(rep.Benchmarks, record(
			fmt.Sprintf("ZStepEnumerate/L=%d,D=128", enumL),
			testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s.Solve(ds.Point(i%ds.N, buf), z, i%ds.N)
				}
			})))
	}
	{
		ds := dataset.GISTLike(64, 128, 8, 8)
		m := RandomBA(128, 32, 8)
		k := binauto.NewZKernel(m, 0.5, binauto.ZAlternate)
		s := k.NewSolver()
		z := m.Encode(ds)
		buf := make([]float64, ds.D)
		rep.Benchmarks = append(rep.Benchmarks, record(
			"ZStepAlternate/L=32,D=128",
			testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s.Solve(ds.Point(i%ds.N, buf), z, i%ds.N)
				}
			})))
	}

	// Kernel construction (the cost the per-iteration cache hoists).
	{
		m := RandomBA(128, 32, 9)
		rep.Benchmarks = append(rep.Benchmarks, record(
			"NewZKernel/L=32,D=128",
			testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					binauto.NewZKernel(m, 0.5, binauto.ZAlternate)
				}
			})))
	}

	// Packed-code decoder reconstruction.
	{
		m := RandomBA(128, 32, 10)
		z := retrieval.NewCodes(256, 32)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < z.N; i++ {
			z.SetWord64(i, rng.Uint64()&0xFFFFFFFF)
		}
		dst := make([]float64, 128)
		rep.Benchmarks = append(rep.Benchmarks, record(
			"DecoderReconstruct/L=32,D=128",
			testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.Dec.Reconstruct(z, i%z.N, dst)
				}
			})))
	}

	// Vector kernels at SIFT/GIST dimensions.
	for _, d := range []int{128, 960} {
		a := make([]float64, d)
		c := make([]float64, d)
		for i := range a {
			a[i] = float64(i%7) * 0.25
			c[i] = float64(i%5) * 0.5
		}
		var sink float64
		rep.Benchmarks = append(rep.Benchmarks, record(
			fmt.Sprintf("VecDot/D=%d", d),
			testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sink += vec.Dot(a, c)
				}
			})))
		_ = sink
	}

	// Packed Hamming linear scan (the retrieval hot path).
	{
		n := 100000
		if quick {
			n = 10000
		}
		base := retrieval.NewCodes(n, 64)
		rng := rand.New(rand.NewSource(12))
		for i := 0; i < n; i++ {
			base.SetWord64(i, rng.Uint64())
		}
		query := []uint64{rng.Uint64()}
		rep.Benchmarks = append(rep.Benchmarks, record(
			fmt.Sprintf("TopKHamming/N=%d,L=64,k=50", n),
			testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					retrieval.TopKHamming(base, query, 50)
				}
			})))
	}

	// W step: exact decoder fit, dense reference vs popcount-Gram WKernel.
	{
		n, l := 4000, 32
		if quick {
			n = 800
		}
		ds := dataset.GISTLike(n, 128, 8, 14)
		m := RandomBA(128, l, 14)
		z := retrieval.NewCodes(n, l)
		rng := rand.New(rand.NewSource(15))
		for i := 0; i < n; i++ {
			z.SetWord64(i, rng.Uint64()&((1<<uint(l))-1))
		}
		rep.Benchmarks = append(rep.Benchmarks, record(
			fmt.Sprintf("FitDecoderDense/N=%d,L=%d,D=128", n, l),
			testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := m.FitDecoderExactDense(ds, z, 1e-4); err != nil {
						b.Fatal(err)
					}
				}
			})))
		rep.Benchmarks = append(rep.Benchmarks, record(
			fmt.Sprintf("FitDecoderPopcount/N=%d,L=%d,D=128", n, l),
			testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := m.FitDecoderExactParallel(ds, z, 1e-4, 1); err != nil {
						b.Fatal(err)
					}
				}
			})))
	}

	// Full W step (auto-tune + SVM passes + decoder fit) on byte-quantised
	// SIFT-like data: the serial per-bit reference vs the fused multi-bit
	// trainer, then the fused trainer's core sweep. Each op starts from a
	// pristine model clone so every measurement does identical work.
	{
		n, l := 2000, 16
		if quick {
			n, l = 500, 8
		}
		ds := dataset.SIFTLike(n, 128, 8, 16)
		z := retrieval.NewCodes(n, l)
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < n; i++ {
			z.SetWord64(i, rng.Uint64()&((1<<uint(l))-1))
		}
		pristine := binauto.NewModel(128, l, 1e-5)
		cfg := &binauto.MACConfig{L: l, SVMLambda: 1e-5, SVMEpochs: 2, DecLambda: 1e-4}
		rep.Benchmarks = append(rep.Benchmarks, record(
			fmt.Sprintf("WStepSerial/N=%d,L=%d,D=128", n, l),
			testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					m := pristine.Clone()
					wrng := rand.New(rand.NewSource(18))
					b.StartTimer()
					if err := binauto.TrainWStepSerial(m, ds, z, cfg, wrng); err != nil {
						b.Fatal(err)
					}
				}
			})))
		var fusedSerialNs float64
		for _, workers := range []int{1, 2, 4, 8} {
			w := workers
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					m := pristine.Clone()
					wrng := rand.New(rand.NewSource(18))
					b.StartTimer()
					if err := binauto.TrainWStepFused(m, ds, z, cfg, wrng, w); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			if w == 1 {
				fusedSerialNs = ns
				rep.Benchmarks = append(rep.Benchmarks, record(
					fmt.Sprintf("WStepFused/N=%d,L=%d,D=128", n, l), res))
			}
			sp := SweepPoint{Workers: w, NsPerOp: ns}
			if fusedSerialNs > 0 {
				sp.SpeedupVsSerial = fusedSerialNs / ns
			}
			rep.WStepSweep = append(rep.WStepSweep, sp)
		}
	}

	// Batched Hamming retrieval: per-query serial loop vs the query-parallel
	// pool (per-op work identical at every worker count).
	{
		n, q := 100000, 16
		if quick {
			n, q = 10000, 8
		}
		base := retrieval.NewCodes(n, 64)
		queries := retrieval.NewCodes(q, 64)
		rng := rand.New(rand.NewSource(19))
		for i := 0; i < n; i++ {
			base.SetWord64(i, rng.Uint64())
		}
		for i := 0; i < q; i++ {
			queries.SetWord64(i, rng.Uint64())
		}
		var serialNs float64
		for _, workers := range []int{1, 2, 4, 8} {
			w := workers
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					retrieval.AllTopKHamming(base, queries, 50, w)
				}
			})
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			if w == 1 {
				serialNs = ns
				rep.Benchmarks = append(rep.Benchmarks, record(
					fmt.Sprintf("AllTopKHamming/N=%d,Q=%d,k=50", n, q), res))
			}
			sp := SweepPoint{Workers: w, NsPerOp: ns}
			if serialNs > 0 {
				sp.SpeedupVsSerial = serialNs / ns
			}
			rep.RetrievalSweep = append(rep.RetrievalSweep, sp)
		}
	}

	// Serial-vs-parallel full Z step at engine-iteration scale.
	{
		n := 4000
		if quick {
			n = 800
		}
		ds := dataset.GISTLike(n, 64, 8, 13)
		m := RandomBA(64, 16, 13)
		init := m.Encode(ds)
		var serialNs float64
		for _, workers := range []int{1, 2, 4, 8} {
			w := workers
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					z := init.Clone()
					b.StartTimer()
					binauto.RunZStepParallel(m, ds, z, 0.5, binauto.ZAlternate, w)
				}
			})
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			if workers == 1 {
				serialNs = ns
			}
			sp := SweepPoint{Workers: workers, NsPerOp: ns}
			if serialNs > 0 {
				sp.SpeedupVsSerial = serialNs / ns
			}
			rep.ZStepSweep = append(rep.ZStepSweep, sp)
		}
	}

	// Linear scan vs multi-index hashing, single-threaded, over N and k.
	rep.IndexSweep = collectIndexSweep(quick)

	// MLPerf-Inference-style serving scenarios over the parmac-serve stack.
	rep.ServeScenarios = CollectServe(quick)
	return rep
}

// collectIndexSweep measures one query against the linear oracle and the MIH
// index at each (N, k). Both paths see the same query stream and both return
// tie-exact identical neighbor lists; only the ns/op differ.
func collectIndexSweep(quick bool) []IndexSweepPoint {
	ns := []int{50000, 200000, 1000000}
	if quick {
		ns = []int{10000, 50000}
	}
	const nq = 64
	var out []IndexSweepPoint
	for _, n := range ns {
		base := retrieval.NewCodes(n, 64)
		rng := rand.New(rand.NewSource(41))
		for i := 0; i < n; i++ {
			base.SetWord64(i, rng.Uint64())
		}
		queries := make([][]uint64, nq)
		for i := range queries {
			queries[i] = []uint64{rng.Uint64()}
		}
		mih, err := retrieval.NewMIHIndex(base, 0)
		if err != nil {
			panic(err)
		}
		searcher := mih.NewSearcher()
		for _, k := range []int{1, 10, 100} {
			k := k
			lin := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					retrieval.TopKHammingDist(base, queries[i%nq], k)
				}
			})
			linNs := float64(lin.T.Nanoseconds()) / float64(lin.N)
			out = append(out, IndexSweepPoint{
				Index: "linear", N: n, K: k, NsPerOp: linNs, SpeedupVsLinear: 1,
			})
			mres := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					searcher.Search(queries[i%nq], k)
				}
			})
			mihNs := float64(mres.T.Nanoseconds()) / float64(mres.N)
			sp := IndexSweepPoint{Index: "mih", N: n, K: k, NsPerOp: mihNs}
			if mihNs > 0 {
				sp.SpeedupVsLinear = linNs / mihNs
			}
			out = append(out, sp)
		}
	}
	return out
}

// Write serialises the report to BENCH_<label>.json under dir and returns the
// path.
func (r *Report) Write(dir string) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", r.Label))
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
