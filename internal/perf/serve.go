package perf

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/retrieval"
	"repro/internal/serve"
)

// MLPerf-Inference-style serving scenarios over the parmac-serve pipeline
// (validation → micro-batch queue → sharded multicore scan), reported in the
// BENCH JSON next to the micro-benchmarks:
//
//   - single_stream: one query in flight at a time; the latency percentiles
//     are the figure of merit.
//   - server: open-loop Poisson arrivals at a target QPS; the figure of
//     merit is the highest rate whose p99 stays under the bound.
//   - offline: every query available up front; throughput is the figure of
//     merit and the batcher is free to coalesce maximally.
//
// The scenarios exercise serve.Server.Search — the exact path the HTTP
// handler calls — so the numbers measure the real serving stack minus JSON.

// ServeScenario is one scenario measurement.
type ServeScenario struct {
	Scenario  string  `json:"scenario"`
	Index     string  `json:"index"` // "linear" | "mih"
	IndexN    int     `json:"index_n"`
	Shards    int     `json:"shards,omitempty"` // linear only
	Queries   int     `json:"queries"`
	K         int     `json:"k"`
	P50Ms     float64 `json:"p50_ms,omitempty"`
	P90Ms     float64 `json:"p90_ms,omitempty"`
	P99Ms     float64 `json:"p99_ms,omitempty"`
	QPS       float64 `json:"qps"`
	TargetQPS float64 `json:"target_qps,omitempty"`   // server only
	P99Bound  float64 `json:"p99_bound_ms,omitempty"` // server only
	MetBound  bool    `json:"met_bound,omitempty"`    // server only
	MeanBatch float64 `json:"mean_batch"`
}

const (
	serveK        = 10
	serveShards   = 4
	serveP99Bound = 50.0 // ms — the "server QPS at a p99 bound" target
)

// serveFixture builds a raw-code server over n random 64-bit codes using the
// requested index kind ("linear" or "mih").
func serveFixture(n int, kind string) (*serve.Server, *retrieval.Codes) {
	base := retrieval.NewCodes(n, 64)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < n; i++ {
		base.SetWord64(i, rng.Uint64())
	}
	ix, err := serve.BuildIndex(base, serve.IndexConfig{Kind: kind, Shards: serveShards})
	if err != nil {
		panic(err)
	}
	dep, err := serve.NewDeployment("bench", nil, ix)
	if err != nil {
		panic(err)
	}
	s := serve.New(dep, serve.Options{
		IndexKind:  kind,
		ShadowRate: -1,
		Logf:       func(string, ...any) {},
	})
	queries := retrieval.NewCodes(4096, 64)
	for i := 0; i < queries.N; i++ {
		queries.SetWord64(i, rng.Uint64())
	}
	return s, queries
}

func percentileMs(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(lat)))) - 1
	i = min(max(i, 0), len(lat)-1)
	return float64(lat[i]) / 1e6
}

func scenarioStats(sc ServeScenario, lat []time.Duration, elapsed time.Duration, st serve.Stats) ServeScenario {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	sc.P50Ms = percentileMs(lat, 0.50)
	sc.P90Ms = percentileMs(lat, 0.90)
	sc.P99Ms = percentileMs(lat, 0.99)
	if elapsed > 0 {
		sc.QPS = float64(len(lat)) / elapsed.Seconds()
	}
	sc.MeanBatch = st.MeanBatch
	return sc
}

// CollectServe runs the three scenarios for each index kind at each scale and
// returns their measurements. Full mode's largest N (one million codes) is
// where MIH's sublinear probing pays for its bucket overhead; the smaller N
// is kept so the trajectory shows where the crossover sits.
func CollectServe(quick bool) []ServeScenario {
	ns, single, perRate, offline := []int{50000, 1000000}, 600, 400, 2048
	if quick {
		ns, single, perRate, offline = []int{5000}, 120, 100, 256
	}
	var out []ServeScenario
	for _, n := range ns {
		for _, kind := range []string{"linear", "mih"} {
			out = append(out, runServeScenarios(n, kind, single, perRate, offline)...)
		}
	}
	return out
}

// runServeScenarios measures single_stream, the server rate ladder, and
// offline for one (N, index kind) fixture.
func runServeScenarios(n int, kind string, single, perRate, offline int) []ServeScenario {
	shards := serveShards
	if kind != "linear" {
		shards = 0
	}
	var out []ServeScenario

	// Single-stream: sequential queries, one in flight.
	{
		s, queries := serveFixture(n, kind)
		lat := make([]time.Duration, 0, single)
		start := time.Now()
		for i := 0; i < single; i++ {
			q := serve.Query{Code: queries.Code(i % queries.N), K: serveK}
			t0 := time.Now()
			if _, err := s.Search(q); err != nil {
				panic(err)
			}
			lat = append(lat, time.Since(t0))
		}
		elapsed := time.Since(start)
		st := s.Stats()
		s.Close()
		out = append(out, scenarioStats(ServeScenario{
			Scenario: "single_stream", Index: kind, IndexN: n, Shards: shards,
			Queries: single, K: serveK,
		}, lat, elapsed, st))
	}

	// Server: open-loop Poisson arrivals over a ladder of target rates; a
	// rate point meets the scenario when its p99 stays under the bound. The
	// ladder is anchored at this fixture's own single-stream service rate, so
	// each index kind is pushed to its own limit.
	meanMs := out[0].P50Ms
	if meanMs <= 0 {
		meanMs = 0.1
	}
	serviceQPS := 1000 / meanMs
	for _, mult := range []float64{0.25, 0.5, 1} {
		target := serviceQPS * mult
		s, queries := serveFixture(n, kind)
		lat := make([]time.Duration, perRate)
		var wg sync.WaitGroup
		rng := rand.New(rand.NewSource(37))
		start := time.Now()
		for i := 0; i < perRate; i++ {
			gap := time.Duration(rng.ExpFloat64() / target * float64(time.Second))
			time.Sleep(gap)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				q := serve.Query{Code: queries.Code(i % queries.N), K: serveK}
				t0 := time.Now()
				if _, err := s.Search(q); err != nil {
					panic(err)
				}
				lat[i] = time.Since(t0)
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := s.Stats()
		s.Close()
		sc := scenarioStats(ServeScenario{
			Scenario: "server", Index: kind, IndexN: n, Shards: shards,
			Queries: perRate, K: serveK,
			TargetQPS: target, P99Bound: serveP99Bound,
		}, lat, elapsed, st)
		sc.MetBound = sc.P99Ms <= serveP99Bound
		out = append(out, sc)
	}

	// Offline: everything in flight at once; the batcher coalesces freely
	// and throughput is all that matters.
	{
		s, queries := serveFixture(n, kind)
		var wg sync.WaitGroup
		lat := make([]time.Duration, offline)
		start := time.Now()
		for i := 0; i < offline; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				q := serve.Query{Code: queries.Code(i % queries.N), K: serveK}
				t0 := time.Now()
				if _, err := s.Search(q); err != nil {
					panic(err)
				}
				lat[i] = time.Since(t0)
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := s.Stats()
		s.Close()
		out = append(out, scenarioStats(ServeScenario{
			Scenario: "offline", Index: kind, IndexN: n, Shards: shards,
			Queries: offline, K: serveK,
		}, lat, elapsed, st))
	}
	return out
}
