package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClustersShapeAndDeterminism(t *testing.T) {
	cfg := ClusterConfig{N: 100, D: 8, Clusters: 4, Seed: 42}
	a, la := Clusters(cfg)
	b, lb := Clusters(cfg)
	if a.N != 100 || a.D != 8 {
		t.Fatalf("shape %dx%d", a.N, a.D)
	}
	for i := 0; i < a.N; i++ {
		if la[i] != lb[i] {
			t.Fatal("labels not deterministic")
		}
		pa, pb := a.Point(i, nil), b.Point(i, nil)
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatal("points not deterministic")
			}
		}
		if la[i] < 0 || la[i] >= 4 {
			t.Fatalf("label out of range: %d", la[i])
		}
	}
	c, _ := Clusters(ClusterConfig{N: 100, D: 8, Clusters: 4, Seed: 43})
	if a.Point(0, nil)[0] == c.Point(0, nil)[0] {
		t.Fatal("different seeds should differ")
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	ds, _ := Clusters(ClusterConfig{N: 50, D: 6, Clusters: 3, Seed: 1})
	q := ds.Quantize()
	if !q.ByteBacked() {
		t.Fatal("Quantize must produce byte-backed dataset")
	}
	if q.MemoryBytes() != 50*6 {
		t.Fatalf("byte footprint = %d", q.MemoryBytes())
	}
	if ds.MemoryBytes() != 50*6*8 {
		t.Fatalf("float footprint = %d", ds.MemoryBytes())
	}
	// Quantisation error bounded by half a step of the range.
	m := ds.Matrix()
	lo, hi := m.Data[0], m.Data[0]
	for _, v := range m.Data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	step := (hi - lo) / 255
	buf := make([]float64, 6)
	for i := 0; i < 50; i++ {
		orig := ds.Point(i, nil)
		got := q.Point(i, buf)
		for j := range orig {
			if math.Abs(orig[j]-got[j]) > step {
				t.Fatalf("quantisation error %v exceeds step %v", math.Abs(orig[j]-got[j]), step)
			}
		}
	}
}

func TestPointAliasingAndCopy(t *testing.T) {
	ds, _ := Clusters(ClusterConfig{N: 10, D: 4, Clusters: 2, Seed: 2})
	dst := make([]float64, 4)
	p := ds.Point(3, dst)
	if &p[0] != &dst[0] {
		t.Fatal("Point must use provided dst")
	}
	alias := ds.Point(3, nil)
	if alias[0] != dst[0] {
		t.Fatal("copies disagree")
	}
}

func TestSubset(t *testing.T) {
	ds, _ := Clusters(ClusterConfig{N: 20, D: 3, Clusters: 2, Seed: 3})
	sub := ds.Subset([]int{5, 7, 9})
	if sub.N != 3 || sub.D != 3 {
		t.Fatal("subset shape wrong")
	}
	want := ds.Point(7, nil)
	got := sub.Point(1, nil)
	for j := range want {
		if want[j] != got[j] {
			t.Fatal("subset content wrong")
		}
	}
}

func TestShardIndicesEqual(t *testing.T) {
	shards := ShardIndices(10, 4, nil)
	sizes := []int{3, 3, 2, 2}
	seen := map[int]bool{}
	for i, s := range shards {
		if len(s) != sizes[i] {
			t.Fatalf("shard %d size %d, want %d", i, len(s), sizes[i])
		}
		for _, idx := range s {
			if seen[idx] {
				t.Fatalf("index %d in two shards", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("union covers %d of 10", len(seen))
	}
}

func TestShardSizesWeighted(t *testing.T) {
	// α = (1, 3): machine 2 is 3× faster so gets 3× the data (§4.3).
	sizes := ShardSizes(100, 2, []float64{1, 3})
	if sizes[0] != 25 || sizes[1] != 75 {
		t.Fatalf("weighted sizes = %v", sizes)
	}
}

func TestShardSizesProperty(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		p := int(pRaw)%16 + 1
		sizes := ShardSizes(n, p, nil)
		total := 0
		minSz, maxSz := sizes[0], sizes[0]
		for _, s := range sizes {
			total += s
			if s < minSz {
				minSz = s
			}
			if s > maxSz {
				maxSz = s
			}
		}
		// Exact cover and near-perfect balance.
		return total == n && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShardSizesWeightedProperty(t *testing.T) {
	f := func(nRaw uint16, w1, w2, w3 uint8) bool {
		n := int(nRaw)%3000 + 3
		w := []float64{float64(w1%7 + 1), float64(w2%7 + 1), float64(w3%7 + 1)}
		sizes := ShardSizes(n, 3, w)
		total := 0
		wsum := w[0] + w[1] + w[2]
		for i, s := range sizes {
			total += s
			exact := float64(n) * w[i] / wsum
			if math.Abs(float64(s)-exact) > 1 {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffledShardIndicesCoverAll(t *testing.T) {
	shards := ShuffledShardIndices(37, 5, nil, 7)
	seen := map[int]bool{}
	for _, s := range shards {
		for _, idx := range s {
			if seen[idx] {
				t.Fatal("duplicate index")
			}
			seen[idx] = true
		}
	}
	if len(seen) != 37 {
		t.Fatalf("covered %d of 37", len(seen))
	}
}

func TestTrainTestSplit(t *testing.T) {
	tr, te := TrainTestSplit(100, 80, 1)
	if len(tr) != 80 || len(te) != 20 {
		t.Fatal("split sizes wrong")
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, tr...), te...) {
		if seen[i] {
			t.Fatal("overlap between train and test")
		}
		seen[i] = true
	}
}

func TestStreamProducesFreshBatches(t *testing.T) {
	s := NewStream(ClusterConfig{N: 0, D: 4, Clusters: 2, Seed: 9})
	b1 := s.Next(10)
	b2 := s.Next(10)
	if b1.N != 10 || b2.N != 10 {
		t.Fatal("batch size wrong")
	}
	same := true
	for j := 0; j < 4; j++ {
		if b1.Point(0, nil)[j] != b2.Point(0, nil)[j] {
			same = false
		}
	}
	if same {
		t.Fatal("stream batches should differ")
	}
}

func TestSIFTLikeIsByteBacked(t *testing.T) {
	ds := SIFTLike(64, 16, 4, 11)
	if !ds.ByteBacked() {
		t.Fatal("SIFTLike must be byte-backed")
	}
	if ds.N != 64 || ds.D != 16 {
		t.Fatal("shape wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, _ := Clusters(ClusterConfig{N: 25, D: 4, Clusters: 3, Seed: 30})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != 25 || back.D != 4 {
		t.Fatalf("shape %dx%d", back.N, back.D)
	}
	for i := 0; i < 25; i++ {
		a, b := ds.Point(i, nil), back.Point(i, nil)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("point %d dim %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestLoadCSVSkipsHeader(t *testing.T) {
	ds, err := LoadCSV(strings.NewReader("x,y\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 2 || ds.D != 2 || ds.Point(1, nil)[0] != 3 {
		t.Fatalf("parsed %dx%d", ds.N, ds.D)
	}
}

func TestLoadCSVRejectsBadInput(t *testing.T) {
	cases := []string{
		"",              // empty
		"a,b\n",         // header only
		"1,2\n3\n",      // ragged
		"1,2\n3,oops\n", // non-numeric past the header
	}
	for i, c := range cases {
		if _, err := LoadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestManifoldGeneratorProperties(t *testing.T) {
	base, queries := ManifoldWithQueries(100, 10, 8, 3, 31)
	if base.N != 100 || queries.N != 10 || base.D != 8 {
		t.Fatal("shapes wrong")
	}
	// Deterministic.
	b2, _ := ManifoldWithQueries(100, 10, 8, 3, 31)
	for j, v := range base.Point(0, nil) {
		if b2.Point(0, nil)[j] != v {
			t.Fatal("manifold not deterministic")
		}
	}
	// Bounded by sin(±1) plus noise.
	for i := 0; i < base.N; i++ {
		for _, v := range base.Point(i, nil) {
			if math.Abs(v) > 1.5 {
				t.Fatalf("value %v out of range", v)
			}
		}
	}
}
