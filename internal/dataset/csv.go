package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/vec"
)

// LoadCSV reads a dataset of float features from CSV: one point per row, one
// feature per column, no header detection beyond skipping a first row that
// fails to parse. This is the ingestion path for users bringing their own
// descriptors instead of the synthetic benchmarks.
func LoadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate manually for a better error
	var rows [][]float64
	dims := -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line+1, err)
		}
		line++
		vals := make([]float64, len(rec))
		ok := true
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				ok = false
				break
			}
			vals[j] = v
		}
		if !ok {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("dataset: csv line %d: non-numeric field", line)
		}
		if dims == -1 {
			dims = len(vals)
		} else if len(vals) != dims {
			return nil, fmt.Errorf("dataset: csv line %d has %d fields, want %d", line, len(vals), dims)
		}
		rows = append(rows, vals)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: csv contains no data rows")
	}
	m := vec.NewMatrix(len(rows), dims)
	for i, row := range rows {
		copy(m.Row(i), row)
	}
	return FromMatrix(m), nil
}

// WriteCSV writes the dataset as CSV (one point per row), the inverse of
// LoadCSV.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rec := make([]string, ds.D)
	buf := make([]float64, ds.D)
	for i := 0; i < ds.N; i++ {
		x := ds.Point(i, buf)
		for j, v := range x {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
