// Package dataset provides the benchmark data substrate for the ParMAC
// reproduction. The paper evaluates on CIFAR (GIST-320), SIFT-10K, SIFT-1M
// and SIFT-1B image-feature sets; those are proprietary-scale downloads we do
// not ship, so this package generates seeded synthetic analogues with the
// same statistical properties that matter to the experiments: clustered,
// redundant, high-dimensional real vectors, optionally stored byte-quantised
// exactly like the SIFT-1B handling described in §8.4.
//
// It also implements the data-distribution mechanics ParMAC needs:
// contiguous and weighted sharding for load balancing (§4.3) and streaming
// sources that add and remove points over time.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vec"
)

// Dataset is a set of N points in R^D. Features are stored either as float64
// or byte-quantised (one byte per feature, as the paper stores SIFT-1B);
// byte-backed datasets dequantise points on demand, matching the paper's
// "convert each feature only as needed" strategy.
type Dataset struct {
	N, D int

	x     *vec.Matrix // float storage; nil when byte-backed
	bytes []uint8     // byte storage; nil when float-backed
	// Dequantisation maps b -> lo + (hi-lo)*b/255.
	lo, hi float64
}

// FromMatrix wraps an N×D float matrix (not copied).
func FromMatrix(x *vec.Matrix) *Dataset {
	return &Dataset{N: x.Rows, D: x.Cols, x: x}
}

// FromBytes wraps byte-quantised storage with the given dequantisation range.
func FromBytes(n, d int, b []uint8, lo, hi float64) *Dataset {
	if len(b) != n*d {
		panic(fmt.Sprintf("dataset: FromBytes needs %d bytes, got %d", n*d, len(b)))
	}
	return &Dataset{N: n, D: d, bytes: b, lo: lo, hi: hi}
}

// ByteBacked reports whether features are stored quantised.
func (ds *Dataset) ByteBacked() bool { return ds.bytes != nil }

// NumPoints returns N; together with Point it satisfies the sample-access
// interface the SGD trainers consume.
func (ds *Dataset) NumPoints() int { return ds.N }

// Point writes point i into dst (allocated when nil) and returns it.
// For float-backed datasets with dst == nil, the returned slice aliases the
// underlying storage and must not be modified.
func (ds *Dataset) Point(i int, dst []float64) []float64 {
	if ds.x != nil {
		row := ds.x.Row(i)
		if dst == nil {
			return row
		}
		copy(dst, row)
		return dst
	}
	if dst == nil {
		dst = make([]float64, ds.D)
	}
	scale := (ds.hi - ds.lo) / 255
	off := i * ds.D
	for j := 0; j < ds.D; j++ {
		dst[j] = ds.lo + scale*float64(ds.bytes[off+j])
	}
	return dst
}

// Matrix materialises the dataset as a float matrix (a copy for byte-backed
// data, the underlying matrix otherwise).
func (ds *Dataset) Matrix() *vec.Matrix {
	if ds.x != nil {
		return ds.x
	}
	m := vec.NewMatrix(ds.N, ds.D)
	for i := 0; i < ds.N; i++ {
		ds.Point(i, m.Row(i))
	}
	return m
}

// Quantize returns a byte-backed copy of ds using the dataset's min/max range.
func (ds *Dataset) Quantize() *Dataset {
	m := ds.Matrix()
	lo, hi := m.Data[0], m.Data[0]
	for _, v := range m.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	return ds.QuantizeRange(lo, hi)
}

// QuantizeRange returns a byte-backed copy with a caller-fixed range, so
// different datasets (e.g. a base set and its queries) share one consistent
// quantisation grid. Values outside [lo, hi] saturate.
func (ds *Dataset) QuantizeRange(lo, hi float64) *Dataset {
	if hi <= lo {
		panic("dataset: QuantizeRange needs hi > lo")
	}
	m := ds.Matrix()
	b := make([]uint8, ds.N*ds.D)
	scale := 255 / (hi - lo)
	for i, v := range m.Data {
		q := (v - lo) * scale
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		b[i] = uint8(q + 0.5)
	}
	return FromBytes(ds.N, ds.D, b, lo, hi)
}

// Subset returns a new float-backed dataset with the given rows (copied).
func (ds *Dataset) Subset(idx []int) *Dataset {
	m := vec.NewMatrix(len(idx), ds.D)
	for k, i := range idx {
		ds.Point(i, m.Row(k))
	}
	return FromMatrix(m)
}

// MemoryBytes reports the approximate storage footprint of the features,
// used to reproduce the paper's byte-vs-float accounting (§8.4).
func (ds *Dataset) MemoryBytes() int {
	if ds.bytes != nil {
		return len(ds.bytes)
	}
	return 8 * len(ds.x.Data)
}

// ClusterConfig parameterises the synthetic Gaussian-mixture generator.
type ClusterConfig struct {
	N, D     int     // points and dimensionality
	Clusters int     // mixture components; >= 1
	Spread   float64 // within-cluster standard deviation
	Radius   float64 // standard deviation of cluster centres
	Seed     int64
}

// Clusters draws N points from a Gaussian mixture with randomly placed
// centres. It returns the dataset and the component assignment of each point.
// The mixture gives the data the neighbourhood structure that makes binary
// hashing measurable (near points should receive near codes) and the
// redundance the paper relies on for "few epochs suffice" (§8.2).
func Clusters(cfg ClusterConfig) (*Dataset, []int) {
	if cfg.Clusters < 1 {
		cfg.Clusters = 1
	}
	if cfg.Spread <= 0 {
		cfg.Spread = 0.3
	}
	if cfg.Radius <= 0 {
		cfg.Radius = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centres := vec.NewMatrix(cfg.Clusters, cfg.D)
	centres.FillGaussian(rng, cfg.Radius)
	x := vec.NewMatrix(cfg.N, cfg.D)
	labels := make([]int, cfg.N)
	for i := 0; i < cfg.N; i++ {
		c := rng.Intn(cfg.Clusters)
		labels[i] = c
		row := x.Row(i)
		centre := centres.Row(c)
		for j := 0; j < cfg.D; j++ {
			row[j] = centre[j] + rng.NormFloat64()*cfg.Spread
		}
	}
	return FromMatrix(x), labels
}

// SIFTLike generates a byte-quantised dataset mimicking SIFT descriptors:
// clustered, non-negative, stored one byte per feature.
func SIFTLike(n, d int, clusters int, seed int64) *Dataset {
	ds, _ := Clusters(ClusterConfig{N: n, D: d, Clusters: clusters, Spread: 0.25, Radius: 1, Seed: seed})
	return ds.Quantize()
}

// GISTLike generates a float dataset mimicking GIST features (CIFAR in the
// paper): clustered real vectors.
func GISTLike(n, d int, clusters int, seed int64) *Dataset {
	ds, _ := Clusters(ClusterConfig{N: n, D: d, Clusters: clusters, Spread: 0.35, Radius: 1, Seed: seed})
	return ds
}

// ManifoldConfig parameterises the nonlinear-manifold generator.
type ManifoldConfig struct {
	N, D   int
	Latent int     // intrinsic dimensionality (default 3)
	Noise  float64 // additive feature noise (default 0.05)
	Seed   int64
}

// Manifold draws points from a smooth low-dimensional manifold embedded by
// random sinusoids, x_j = sin(f_j·u + φ_j) + ε. Real image descriptors
// (GIST/SIFT) concentrate near such manifolds, and this generator reproduces
// the regime where learned binary autoencoders match or beat the PCA-based
// hashes — the comparison regime of the paper's Fig. 12 (see EXPERIMENTS.md
// for the honest caveat about baseline margins on synthetic data).
func Manifold(cfg ManifoldConfig) *Dataset {
	if cfg.Latent <= 0 {
		cfg.Latent = 3
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	freqs := vec.NewMatrix(cfg.D, cfg.Latent)
	freqs.FillGaussian(rng, 1.2)
	phase := make([]float64, cfg.D)
	for j := range phase {
		phase[j] = rng.Float64() * 2 * math.Pi
	}
	x := vec.NewMatrix(cfg.N, cfg.D)
	u := make([]float64, cfg.Latent)
	for i := 0; i < cfg.N; i++ {
		for k := range u {
			u[k] = rng.NormFloat64()
		}
		for j := 0; j < cfg.D; j++ {
			x.Set(i, j, math.Sin(vec.Dot(freqs.Row(j), u)+phase[j])+rng.NormFloat64()*cfg.Noise)
		}
	}
	return FromMatrix(x)
}

// ManifoldWithQueries draws a base set and queries from one manifold.
func ManifoldWithQueries(n, q, d, latent int, seed int64) (base, queries *Dataset) {
	all := Manifold(ManifoldConfig{N: n + q, D: d, Latent: latent, Seed: seed})
	baseIdx := make([]int, n)
	queryIdx := make([]int, q)
	for i := range baseIdx {
		baseIdx[i] = i
	}
	for i := range queryIdx {
		queryIdx[i] = n + i
	}
	return all.Subset(baseIdx), all.Subset(queryIdx)
}

// WithQueries draws base and query sets from one mixture (same cluster
// centres), the correct protocol for retrieval benchmarks: queries must come
// from the distribution of the indexed data. quantize stores both sets one
// byte per feature on a shared grid (the SIFT storage convention).
func WithQueries(n, q, d, clusters int, seed int64, quantize bool) (base, queries *Dataset) {
	all, _ := Clusters(ClusterConfig{N: n + q, D: d, Clusters: clusters, Spread: 0.25, Radius: 1, Seed: seed})
	baseIdx := make([]int, n)
	queryIdx := make([]int, q)
	for i := range baseIdx {
		baseIdx[i] = i
	}
	for i := range queryIdx {
		queryIdx[i] = n + i
	}
	base = all.Subset(baseIdx)
	queries = all.Subset(queryIdx)
	if quantize {
		m := all.Matrix()
		lo, hi := m.Data[0], m.Data[0]
		for _, v := range m.Data {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi == lo {
			hi = lo + 1
		}
		base = base.QuantizeRange(lo, hi)
		queries = queries.QuantizeRange(lo, hi)
	}
	return base, queries
}

// TrainTestSplit splits [0,n) into a train part of size nTrain and a test
// part with the remainder, shuffled deterministically by seed.
func TrainTestSplit(n, nTrain int, seed int64) (train, test []int) {
	if nTrain > n {
		panic("dataset: nTrain > n")
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	return idx[:nTrain], idx[nTrain:]
}
