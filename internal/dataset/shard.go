package dataset

import (
	"fmt"
	"math/rand"
)

// ShardIndices splits point indices {0..n-1} into p disjoint contiguous
// shards whose sizes are proportional to weights (machine processing powers
// α_p from §4.3). weights == nil means identical machines, i.e. equal N/P
// portions. Every shard is non-empty as long as n >= p.
func ShardIndices(n, p int, weights []float64) [][]int {
	if p <= 0 {
		panic("dataset: need at least one shard")
	}
	if weights != nil && len(weights) != p {
		panic(fmt.Sprintf("dataset: %d weights for %d shards", len(weights), p))
	}
	sizes := ShardSizes(n, p, weights)
	out := make([][]int, p)
	start := 0
	for i, sz := range sizes {
		out[i] = make([]int, sz)
		for k := 0; k < sz; k++ {
			out[i][k] = start + k
		}
		start += sz
	}
	return out
}

// ShardSizes computes the per-shard point counts for ShardIndices: the
// largest-remainder apportionment of n points proportional to weights.
func ShardSizes(n, p int, weights []float64) []int {
	sizes := make([]int, p)
	if weights == nil {
		base := n / p
		rem := n % p
		for i := range sizes {
			sizes[i] = base
			if i < rem {
				sizes[i]++
			}
		}
		return sizes
	}
	var total float64
	for _, w := range weights {
		if w <= 0 {
			panic("dataset: shard weights must be positive")
		}
		total += w
	}
	assigned := 0
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, p)
	for i, w := range weights {
		exact := float64(n) * w / total
		sizes[i] = int(exact)
		assigned += sizes[i]
		fracs[i] = frac{i, exact - float64(sizes[i])}
	}
	// Distribute the remainder to the largest fractional parts.
	for assigned < n {
		best := 0
		for i := 1; i < p; i++ {
			if fracs[i].f > fracs[best].f {
				best = i
			}
		}
		sizes[fracs[best].i]++
		fracs[best].f = -1
		assigned++
	}
	return sizes
}

// ShuffledShardIndices is ShardIndices applied to a seeded permutation of the
// points, so each machine receives a random subset (the paper assumes data
// are randomly distributed over machines, §4.2).
func ShuffledShardIndices(n, p int, weights []float64, seed int64) [][]int {
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	shards := ShardIndices(n, p, weights)
	for _, s := range shards {
		for k := range s {
			s[k] = perm[s[k]]
		}
	}
	return shards
}

// Stream produces batches of fresh synthetic points drawn from the same
// mixture, supporting the streaming extension of §4.3 (new data are collected
// over time; old data are discarded).
type Stream struct {
	cfg  ClusterConfig
	rng  *rand.Rand
	next int64
}

// NewStream creates a stream of points from the given mixture configuration.
func NewStream(cfg ClusterConfig) *Stream {
	return &Stream{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), next: cfg.Seed + 1}
}

// Next returns a batch of n fresh points.
func (s *Stream) Next(n int) *Dataset {
	cfg := s.cfg
	cfg.N = n
	cfg.Seed = s.next
	s.next++
	ds, _ := Clusters(cfg)
	return ds
}
