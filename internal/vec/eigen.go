package vec

import (
	"math"
	"sort"
)

// EigSym computes the full eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. It returns eigenvalues in descending order and
// the matching eigenvectors as the columns of the returned matrix. a is not
// modified.
//
// Jacobi is quadratic-convergent and unconditionally stable; the matrices the
// library diagonalises (covariance D×D for PCA, L×L Grams for ITQ and the
// relaxed Z step) are small, so its O(n³) sweeps are cheap.
func EigSym(a *Matrix) (vals []float64, vecs *Matrix) {
	if a.Rows != a.Cols {
		panic("vec: EigSym of non-square matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-13*(1+frobNorm(w)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for k, i := range idx {
		sortedVals[k] = vals[i]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, k, v.At(r, i))
		}
	}
	return sortedVals, sortedVecs
}

// rotate applies the Jacobi rotation J(p,q,c,s) to w (two-sided) and
// accumulates it into v (one-sided): w ← JᵀwJ, v ← vJ.
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

func frobNorm(m *Matrix) float64 { return Norm(m.Data) }

// SVDThin computes a thin singular value decomposition A = U·diag(s)·Vᵀ for a
// small matrix with Rows >= Cols, via the eigendecomposition of AᵀA. Singular
// values are returned in descending order. U is Rows×Cols, V is Cols×Cols.
//
// Columns of U whose singular value is numerically zero are left as zero
// vectors; callers that need a full orthonormal U (none in this repository)
// must complete the basis themselves.
func SVDThin(a *Matrix) (u *Matrix, s []float64, v *Matrix) {
	if a.Rows < a.Cols {
		panic("vec: SVDThin requires Rows >= Cols")
	}
	gram := a.Gram() // AᵀA, Cols×Cols
	evals, evecs := EigSym(gram)
	n := a.Cols
	s = make([]float64, n)
	for i := range s {
		if evals[i] > 0 {
			s[i] = math.Sqrt(evals[i])
		}
	}
	v = evecs
	// U = A·V·diag(1/s)
	u = Mul(a, v)
	for j := 0; j < n; j++ {
		if s[j] > 1e-12*s[0] {
			inv := 1 / s[j]
			for i := 0; i < u.Rows; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		} else {
			for i := 0; i < u.Rows; i++ {
				u.Set(i, j, 0)
			}
		}
	}
	return u, s, v
}

// Procrustes returns the orthogonal matrix R minimising ‖A - B·R‖_F, i.e. the
// solution of the orthogonal Procrustes problem R = U·Vᵀ where BᵀA = U·S·Vᵀ.
// Used by the ITQ baseline's rotation update. When BᵀA is (numerically) rank
// deficient the U factor is re-orthonormalised so the result is always a true
// orthogonal matrix (any completion of the null space is optimal).
func Procrustes(a, b *Matrix) *Matrix {
	m := TMul(b, a) // BᵀA, square when A and B share the code width
	if m.Rows != m.Cols {
		panic("vec: Procrustes requires matching column counts")
	}
	u, _, v := SVDThin(m)
	OrthonormalizeColumns(u)
	return Mul(u, v.Transpose())
}

// OrthonormalizeColumns applies modified Gram–Schmidt to the columns of m in
// place. Columns that become numerically zero (or were zero, as SVDThin
// leaves them for null singular values) are replaced by unit basis vectors
// orthogonalised against the columns already processed, so the result always
// has fully orthonormal columns.
func OrthonormalizeColumns(m *Matrix) {
	col := make([]float64, m.Rows)
	setCol := func(j int, c []float64) {
		for i := 0; i < m.Rows; i++ {
			m.Set(i, j, c[i])
		}
	}
	orthogonalize := func(c []float64, upto int) {
		for k := 0; k < upto; k++ {
			prev := m.Col(k, nil)
			Axpy(-Dot(prev, c), prev, c)
		}
	}
	for j := 0; j < m.Cols; j++ {
		m.Col(j, col)
		orthogonalize(col, j)
		n := Norm(col)
		if n < 1e-8 {
			// Replace with a basis vector not spanned by earlier columns.
			for e := 0; e < m.Rows; e++ {
				for i := range col {
					col[i] = 0
				}
				col[e] = 1
				orthogonalize(col, j)
				n = Norm(col)
				if n >= 1e-8 {
					break
				}
			}
		}
		Scale(1/n, col)
		setCol(j, col)
	}
}
