package vec

import "testing"

// Micro-benchmarks of the innermost Z-step kernels at the paper's feature
// dimensions (SIFT D=128, GIST D=960). dotNaive is the pre-optimisation
// reference — single accumulator, no bounds-check-elimination hint — kept
// here so `go test -bench Dot ./internal/vec` shows the win directly.

func benchVecs(n int) ([]float64, []float64) {
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		b[i] = float64(i%5) * 0.5
	}
	return a, b
}

// dotNaive is Dot as it was before the 4-accumulator unroll and the
// len-equality hint: the floating adds form one serial dependency chain and
// every b[i] is bounds-checked.
func dotNaive(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func BenchmarkDotNaive128(bb *testing.B) {
	a, b := benchVecs(128)
	var s float64
	for i := 0; i < bb.N; i++ {
		s += dotNaive(a, b)
	}
	_ = s
}

func BenchmarkDot128(bb *testing.B) {
	a, b := benchVecs(128)
	var s float64
	for i := 0; i < bb.N; i++ {
		s += Dot(a, b)
	}
	_ = s
}

func BenchmarkDot960(bb *testing.B) {
	a, b := benchVecs(960)
	var s float64
	for i := 0; i < bb.N; i++ {
		s += Dot(a, b)
	}
	_ = s
}

func BenchmarkAxpy128(bb *testing.B) {
	a, b := benchVecs(128)
	for i := 0; i < bb.N; i++ {
		Axpy(0.5, a, b)
	}
}

func BenchmarkSqDist128(bb *testing.B) {
	a, b := benchVecs(128)
	var s float64
	for i := 0; i < bb.N; i++ {
		s += SqDist(a, b)
	}
	_ = s
}

func BenchmarkSqNorm128(bb *testing.B) {
	a, _ := benchVecs(128)
	var s float64
	for i := 0; i < bb.N; i++ {
		s += SqNorm(a)
	}
	_ = s
}

func BenchmarkMulVec32x128(bb *testing.B) {
	m := NewMatrix(32, 128)
	for i := range m.Data {
		m.Data[i] = float64(i%9) * 0.1
	}
	x, _ := benchVecs(128)
	dst := make([]float64, 32)
	for i := 0; i < bb.N; i++ {
		m.MulVec(x, dst)
	}
}

func BenchmarkCholeskySolve32(bb *testing.B) {
	const n = 32
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.01 * float64((i*j)%11)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		a.Add(i, i, float64(n))
	}
	ch, err := NewCholesky(a)
	if err != nil {
		bb.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%3) - 1
	}
	dst := make([]float64, n)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		ch.Solve(b, dst)
	}
}
