package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotAxpyScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 4-10+18 {
		t.Fatalf("Dot = %v, want 12", got)
	}
	y := Clone(b)
	Axpy(2, a, y)
	want := []float64{6, -1, 12}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	Scale(0.5, y)
	if y[0] != 3 || y[1] != -0.5 || y[2] != 6 {
		t.Fatalf("Scale result %v", y)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, 4}
	if SqNorm(x) != 25 || Norm(x) != 5 {
		t.Fatalf("SqNorm/Norm wrong: %v %v", SqNorm(x), Norm(x))
	}
	if SqDist([]float64{1, 1}, []float64{4, 5}) != 25 {
		t.Fatal("SqDist wrong")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 || m.At(1, 1) != 3 {
		t.Fatal("At/Set broken")
	}
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must alias storage")
	}
	c := m.Col(0, nil)
	if c[0] != 1 || c[1] != 9 {
		t.Fatalf("Col = %v", c)
	}
	cl := m.Clone()
	cl.Set(0, 0, 100)
	if m.At(0, 0) == 100 {
		t.Fatal("Clone must not alias")
	}
}

func TestMulVecAndTMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	z := m.TMulVec([]float64{1, 2}, nil)
	want := []float64{9, 12, 15}
	for i := range want {
		if z[i] != want[i] {
			t.Fatalf("TMulVec = %v", z)
		}
	}
}

func TestMulAgainstTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 3)
	b := NewMatrix(4, 5)
	a.FillGaussian(rng, 1)
	b.FillGaussian(rng, 1)
	// TMul(a,b) must equal Mul(aᵀ, b).
	got := TMul(a, b)
	want := Mul(a.Transpose(), b)
	if MaxAbsDiff(got, want) > 1e-12 {
		t.Fatal("TMul disagrees with explicit transpose multiply")
	}
}

func TestIdentityAndAddScaledIdentity(t *testing.T) {
	id := Identity(3)
	m := NewMatrix(3, 3)
	m.FillGaussian(rand.New(rand.NewSource(2)), 1)
	prod := Mul(id, m)
	if MaxAbsDiff(prod, m) != 0 {
		t.Fatal("I·M != M")
	}
	m2 := m.Clone()
	m2.AddScaledIdentity(1.5)
	for i := 0; i < 3; i++ {
		if !almostEq(m2.At(i, i), m.At(i, i)+1.5, 1e-15) {
			t.Fatal("AddScaledIdentity wrong")
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		g := NewMatrix(n+3, n)
		g.FillGaussian(rng, 1)
		a := g.Gram()
		a.AddScaledIdentity(0.5) // ensure PD
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue, nil)
		x, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotPD {
		t.Fatalf("want ErrNotPD, got %v", err)
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewMatrix(8, 5)
	g.FillGaussian(rng, 1)
	a := g.Gram()
	a.AddScaledIdentity(1)
	bm := NewMatrix(5, 3)
	bm.FillGaussian(rng, 1)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.SolveMatrix(bm)
	back := Mul(a, x)
	if MaxAbsDiff(back, bm) > 1e-8 {
		t.Fatal("SolveMatrix residual too large")
	}
}

func TestEigSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(10)
		g := NewMatrix(n+2, n)
		g.FillGaussian(rng, 1)
		a := g.Gram()
		vals, vecs := EigSym(a)
		// Check descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-10 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
		// Check A·v = λ·v per pair.
		for j := 0; j < n; j++ {
			v := vecs.Col(j, nil)
			av := a.MulVec(v, nil)
			for i := 0; i < n; i++ {
				if !almostEq(av[i], vals[j]*v[i], 1e-7*(1+math.Abs(vals[0]))) {
					t.Fatalf("trial %d eigenpair %d violated: %v vs %v", trial, j, av[i], vals[j]*v[i])
				}
			}
		}
		// Check orthonormality VᵀV = I.
		vtv := vecs.Gram()
		if MaxAbsDiff(vtv, Identity(n)) > 1e-9 {
			t.Fatal("eigenvectors not orthonormal")
		}
	}
}

func TestSVDThinReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		rows := 5 + rng.Intn(8)
		cols := 2 + rng.Intn(4)
		a := NewMatrix(rows, cols)
		a.FillGaussian(rng, 1)
		u, s, v := SVDThin(a)
		// Reconstruct U·diag(s)·Vᵀ.
		us := u.Clone()
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				us.Set(i, j, us.At(i, j)*s[j])
			}
		}
		rec := Mul(us, v.Transpose())
		if MaxAbsDiff(rec, a) > 1e-8 {
			t.Fatalf("trial %d: SVD reconstruction error %v", trial, MaxAbsDiff(rec, a))
		}
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1]+1e-10 {
				t.Fatalf("singular values not descending: %v", s)
			}
		}
	}
}

func TestProcrustesIsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(20, 4)
	b := NewMatrix(20, 4)
	a.FillGaussian(rng, 1)
	b.FillGaussian(rng, 1)
	r := Procrustes(a, b)
	if MaxAbsDiff(r.Gram(), Identity(4)) > 1e-8 {
		t.Fatal("Procrustes result not orthogonal")
	}
}

func TestProcrustesRecoversRotation(t *testing.T) {
	// If A = B·R0 exactly, Procrustes must recover R0.
	rng := rand.New(rand.NewSource(8))
	b := NewMatrix(30, 3)
	b.FillGaussian(rng, 1)
	g := NewMatrix(6, 3)
	g.FillGaussian(rng, 1)
	_, _, r0 := SVDThin(g) // an orthogonal 3×3
	a := Mul(b, r0)
	r := Procrustes(a, b)
	if MaxAbsDiff(r, r0) > 1e-8 {
		t.Fatalf("rotation not recovered, diff %v", MaxAbsDiff(r, r0))
	}
}

// Property: ‖x‖² is invariant to applying an orthogonal matrix.
func TestQuickOrthogonalNormInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := NewMatrix(8, 5)
	g.FillGaussian(rng, 1)
	_, _, v := SVDThin(g) // orthogonal 5×5
	f := func(raw [5]float64) bool {
		x := raw[:]
		for i := range x {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.Abs(x[i]) > 1e6 {
				x[i] = 1
			}
		}
		y := v.MulVec(x, nil)
		return almostEq(SqNorm(y), SqNorm(x), 1e-6*(1+SqNorm(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestQuickDotBilinear(t *testing.T) {
	sanitize := func(x *[6]float64) {
		for i := range x {
			if math.IsNaN(x[i]) || math.Abs(x[i]) > 1e6 {
				x[i] = math.Mod(x[i], 1e3)
				if math.IsNaN(x[i]) {
					x[i] = 0
				}
			}
		}
	}
	f := func(a, b, c [6]float64, alpha int8) bool {
		sanitize(&a)
		sanitize(&b)
		sanitize(&c)
		al := float64(alpha)
		ax := make([]float64, 6)
		for i := range ax {
			ax[i] = al*a[i] + b[i]
		}
		lhs := Dot(ax, c[:])
		rhs := al*Dot(a[:], c[:]) + Dot(b[:], c[:])
		scale := 1 + math.Abs(lhs) + math.Abs(rhs)
		return almostEq(lhs, rhs, 1e-9*scale) || math.IsNaN(lhs) == math.IsNaN(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(64, 320)
	m.FillGaussian(rng, 1)
	x := make([]float64, 320)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, dst)
	}
}

func BenchmarkCholesky16(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := NewMatrix(32, 16)
	g.FillGaussian(rng, 1)
	a := g.Gram()
	a.AddScaledIdentity(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMulVecMatchesDotBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, shape := range []struct{ r, c int }{{1, 5}, {2, 8}, {7, 13}, {32, 128}, {33, 127}} {
		m := NewMatrix(shape.r, shape.c)
		m.FillGaussian(rng, 1)
		x := make([]float64, shape.c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(x, nil)
		for i := 0; i < shape.r; i++ {
			if want := Dot(m.Row(i), x); got[i] != want {
				t.Fatalf("%dx%d row %d: MulVec %v != Dot %v (must be bitwise equal)", shape.r, shape.c, i, got[i], want)
			}
		}
	}
}
