// Package vec provides the small dense linear-algebra kernels used by the
// ParMAC reproduction: vectors, row-major matrices, Cholesky solves, a Jacobi
// symmetric eigensolver and a small-matrix SVD. It replaces the GSL/BLAS
// substrate of the original C++ implementation (paper §7) with pure Go.
//
// Everything here is deliberately simple: the factorisations ParMAC needs are
// tiny (L×L for the relaxed Z step, D×D for PCA), so clarity beats blocked
// kernels.
package vec

import (
	"fmt"
	"math"
	"math/rand"
)

// Dot returns the inner product of a and b. The slices must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)] // proves len(b) == len(a): eliminates the b[i] bounds check
	// Four accumulators break the serial add dependency chain; this is the
	// innermost kernel of the Z step's W·(x−c) and h(x) products.
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	y = y[:len(x)] // proves len(y) == len(x): eliminates the y[i] bounds check
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// SqNorm returns the squared Euclidean norm of x.
func SqNorm(x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * x[i]
		s1 += x[i+1] * x[i+1]
		s2 += x[i+2] * x[i+2]
		s3 += x[i+3] * x[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		s += x[i] * x[i]
	}
	return s
}

// Norm returns the Euclidean norm of x.
func Norm(x []float64) float64 { return math.Sqrt(SqNorm(x)) }

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)] // proves len(b) == len(a): eliminates the b[i] bounds check
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Clone returns a fresh copy of x.
func Clone(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Matrix is a dense row-major matrix. Row i occupies
// Data[i*Cols : (i+1)*Cols]. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("vec: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into dst (allocated if nil) and returns it.
func (m *Matrix) Col(j int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.At(i, j)
	}
	return dst
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// MulVec computes dst = M·x. dst is allocated when nil; it must not alias x.
// Rows are processed in pairs sharing the loads of x, with each row summed in
// exactly Dot's order, so dst[i] is bitwise-identical to Dot(m.Row(i), x).
func (m *Matrix) MulVec(x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vec: MulVec needs len(x)=%d, got %d", m.Cols, len(x)))
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	i := 0
	for ; i+2 <= m.Rows; i += 2 {
		r0 := m.Row(i)[:len(x)]
		r1 := m.Row(i + 1)[:len(x)]
		var a0, a1, a2, a3, b0, b1, b2, b3 float64
		j := 0
		for ; j+4 <= len(x); j += 4 {
			x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3]
			a0 += r0[j] * x0
			a1 += r0[j+1] * x1
			a2 += r0[j+2] * x2
			a3 += r0[j+3] * x3
			b0 += r1[j] * x0
			b1 += r1[j+1] * x1
			b2 += r1[j+2] * x2
			b3 += r1[j+3] * x3
		}
		s0 := (a0 + a1) + (a2 + a3)
		s1 := (b0 + b1) + (b2 + b3)
		for ; j < len(x); j++ {
			s0 += r0[j] * x[j]
			s1 += r1[j] * x[j]
		}
		dst[i], dst[i+1] = s0, s1
	}
	if i < m.Rows {
		dst[i] = Dot(m.Row(i), x)
	}
	return dst
}

// TMulVec computes dst = Mᵀ·x. dst is allocated when nil; it must not alias x.
func (m *Matrix) TMulVec(x, dst []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("vec: TMulVec needs len(x)=%d, got %d", m.Rows, len(x)))
	}
	if dst == nil {
		dst = make([]float64, m.Cols)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
	return dst
}

// Mul computes A·B into a new matrix.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("vec: Mul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		cr := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			Axpy(ar[k], b.Row(k), cr)
		}
	}
	return c
}

// TMul computes Aᵀ·B into a new matrix.
func TMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("vec: TMul shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Cols, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		br := b.Row(i)
		for k := 0; k < a.Cols; k++ {
			Axpy(ar[k], br, c.Row(k))
		}
	}
	return c
}

// Transpose returns Aᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Gram computes AᵀA (Cols×Cols, symmetric).
func (m *Matrix) Gram() *Matrix { return TMul(m, m) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// AddMatrix adds o into m elementwise; the shapes must match. It is the
// reduction step of shard-parallel accumulations (per-goroutine partial
// matrices summed in worker order, so the result is deterministic for a
// fixed worker count).
func (m *Matrix) AddMatrix(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("vec: AddMatrix shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	Axpy(1, o.Data, m.Data)
}

// AddScaledIdentity adds alpha to the diagonal of a square matrix in place.
func (m *Matrix) AddScaledIdentity(alpha float64) {
	if m.Rows != m.Cols {
		panic("vec: AddScaledIdentity on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Add(i, i, alpha)
	}
}

// FillGaussian fills m with N(0, sigma²) samples from rng.
func (m *Matrix) FillGaussian(rng *rand.Rand, sigma float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sigma
	}
}

// MaxAbsDiff returns max |a_ij - b_ij|; the matrices must share a shape.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("vec: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}
