package vec

import (
	"errors"
	"math"
)

// ErrNotPD reports that a matrix passed to Cholesky was not (numerically)
// positive definite.
var ErrNotPD = errors.New("vec: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ and can solve linear systems A·x = b.
type Cholesky struct {
	n  int
	l  *Matrix // lower triangular, including diagonal
	lt *Matrix // Lᵀ: row i holds column i of L, so back-substitution reads rows
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read. It returns ErrNotPD when a pivot is not
// positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("vec: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPD
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return &Cholesky{n: n, l: l, lt: l.Transpose()}, nil
}

// Solve computes x such that A·x = b, writing into dst (allocated when nil).
// b and dst may alias.
func (c *Cholesky) Solve(b, dst []float64) []float64 {
	if len(b) != c.n {
		panic("vec: Cholesky.Solve dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, c.n)
	}
	// Forward substitution: L·y = b. Row i of L is contiguous, so the inner
	// reduction is a Dot over slices instead of indexed At calls.
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		dst[i] = (b[i] - Dot(row[:i], dst[:i])) / row[i]
	}
	// Back substitution: Lᵀ·x = y, reading rows of the stored transpose.
	for i := c.n - 1; i >= 0; i-- {
		row := c.lt.Row(i)
		dst[i] = (dst[i] - Dot(row[i+1:], dst[i+1:])) / row[i]
	}
	return dst
}

// SolveMatrix solves A·X = B column by column, returning X with B's shape.
func (c *Cholesky) SolveMatrix(b *Matrix) *Matrix {
	if b.Rows != c.n {
		panic("vec: Cholesky.SolveMatrix dimension mismatch")
	}
	x := NewMatrix(b.Rows, b.Cols)
	col := make([]float64, c.n)
	for j := 0; j < b.Cols; j++ {
		b.Col(j, col)
		c.Solve(col, col)
		for i := 0; i < c.n; i++ {
			x.Set(i, j, col[i])
		}
	}
	return x
}

// SolveSPD is a convenience wrapper that factors a and solves a single
// right-hand side.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Solve(b, nil), nil
}
