package vec

import (
	"errors"
	"math"
)

// ErrNotPD reports that a matrix passed to Cholesky was not (numerically)
// positive definite.
var ErrNotPD = errors.New("vec: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ and can solve linear systems A·x = b.
type Cholesky struct {
	n int
	l *Matrix // lower triangular, including diagonal
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read. It returns ErrNotPD when a pivot is not
// positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("vec: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPD
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve computes x such that A·x = b, writing into dst (allocated when nil).
// b and dst may alias.
func (c *Cholesky) Solve(b, dst []float64) []float64 {
	if len(b) != c.n {
		panic("vec: Cholesky.Solve dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, c.n)
	}
	// Forward substitution: L·y = b.
	for i := 0; i < c.n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l.At(i, k) * dst[k]
		}
		dst[i] = sum / c.l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	for i := c.n - 1; i >= 0; i-- {
		sum := dst[i]
		for k := i + 1; k < c.n; k++ {
			sum -= c.l.At(k, i) * dst[k]
		}
		dst[i] = sum / c.l.At(i, i)
	}
	return dst
}

// SolveMatrix solves A·X = B column by column, returning X with B's shape.
func (c *Cholesky) SolveMatrix(b *Matrix) *Matrix {
	if b.Rows != c.n {
		panic("vec: Cholesky.SolveMatrix dimension mismatch")
	}
	x := NewMatrix(b.Rows, b.Cols)
	col := make([]float64, c.n)
	for j := 0; j < b.Cols; j++ {
		b.Col(j, col)
		c.Solve(col, col)
		for i := 0; i < c.n; i++ {
			x.Set(i, j, col[i])
		}
	}
	return x
}

// SolveSPD is a convenience wrapper that factors a and solves a single
// right-hand side.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Solve(b, nil), nil
}
