package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// DetRandAnalyzer enforces the determinism contract the training kernels
// have carried since PR 1: a fixed seed must reproduce the same model bit
// for bit, across transports and worker counts. Global math/rand functions
// draw from a process-wide source that other goroutines advance, and
// time.Now is different on every run — both silently break the parity tests.
// Randomness must arrive as an injected, seeded *rand.Rand (see
// sgd.Order, core.WorkerSeed); rand.New/rand.NewSource are therefore fine.
//
// The check applies to the deterministic-kernel packages only, matched by
// package base name: binauto, macnet, svm, sgd.
var DetRandAnalyzer = &Analyzer{
	Name: "detrand",
	Doc: "deterministic kernel packages must not call global math/rand " +
		"functions or time.Now; inject a seeded *rand.Rand instead",
	Run: runDetRand,
}

// detRandPackages are the package base names with a bit-reproducibility
// contract.
var detRandPackages = map[string]bool{
	"binauto": true, "macnet": true, "svm": true, "sgd": true,
}

// globalRandFuncs are the math/rand package-level functions that consume the
// shared global source. Constructors (New, NewSource) and method calls on an
// injected *rand.Rand are allowed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions, should it ever be imported here.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"UintN": true, "Uint": true, "Uint32N": true, "Uint64N": true, "N": true,
}

func runDetRand(pass *Pass) error {
	if !detRandPackages[path.Base(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.AllTyped() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Info, call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			// Methods on an injected *rand.Rand are the sanctioned pattern.
			if f.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch f.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[f.Name()] {
					pass.Reportf(call.Pos(),
						"global rand.%s in deterministic kernel package %s: inject a seeded *rand.Rand instead",
						f.Name(), pass.Pkg.Name())
				}
			case "time":
				if f.Name() == "Now" {
					pass.Reportf(call.Pos(),
						"time.Now in deterministic kernel package %s breaks bit-reproducibility; thread time in from the caller",
						pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
