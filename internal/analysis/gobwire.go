package analysis

import (
	"bytes"
	"go/ast"
	"go/types"
)

// GobWireAnalyzer enforces the wire-format discipline from PR 1: every
// locally declared type registered with gob.Register crosses the cluster
// fabric, so its byte format is a compatibility contract between worker and
// coordinator processes of different builds. The repo's mechanism for
// keeping that contract is a golden-file decode test (serialize_test.go
// style): committed bytes that must keep decoding. A registered type no
// golden test references can drift silently — exactly the regression this
// analyzer makes impossible.
//
// A type counts as covered when some _test.go file of the package both
// mentions the type identifier and contains the string "golden" (the
// checkGolden helper convention).
var GobWireAnalyzer = &Analyzer{
	Name: "gobwire",
	Doc: "every locally declared type passed to gob.Register must be " +
		"referenced by a golden-file decode test",
	Run: runGobWire,
}

func runGobWire(pass *Pass) error {
	// Which test files look like golden-file tests, and which identifiers
	// does each test file mention?
	type testFile struct {
		golden bool
		idents map[string]bool
	}
	var tests []testFile
	for _, f := range append(append([]*ast.File{}, pass.TestFiles...), pass.XTestFiles...) {
		tf := testFile{
			golden: bytes.Contains(bytes.ToLower(pass.Src(f)), []byte("golden")),
			idents: map[string]bool{},
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				tf.idents[id.Name] = true
			}
			return true
		})
		tests = append(tests, tf)
	}
	covered := func(name string) bool {
		for _, tf := range tests {
			if tf.golden && tf.idents[name] {
				return true
			}
		}
		return false
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Info, call)
			if len(call.Args) == 0 || (!isPkgFunc(f, "encoding/gob", "Register") &&
				!isPkgFunc(f, "encoding/gob", "RegisterName")) {
				return true
			}
			arg := call.Args[len(call.Args)-1]
			tn := namedTypeOf(pass, arg)
			// Builtin and foreign registrations (gob.Register(int(0)) in the
			// transport) are not this package's wire contract.
			if tn == nil || tn.Obj().Pkg() != pass.Pkg {
				return true
			}
			if !covered(tn.Obj().Name()) {
				pass.Reportf(call.Pos(),
					"wire type %s is gob-registered but no golden-file decode test references it; pin its byte format (see binauto/serialize_test.go)",
					tn.Obj().Name())
			}
			return true
		})
	}
	return nil
}

// namedTypeOf unwraps the registered value expression (&T{}, T{}, T(nil)) to
// the named type being registered.
func namedTypeOf(pass *Pass, e ast.Expr) *types.Named {
	t := pass.Info.Types[e].Type
	for t != nil {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
	return nil
}
