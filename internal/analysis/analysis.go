// Package analysis is parmac-vet: a suite of project-specific static
// analyzers that mechanically enforce the invariants the parallel
// training/serving stack rests on — worker counts clamped through
// core.ClampWorkers/core.Cores, worker-count-invariant float reductions,
// atomic fields never accessed plainly, decode-sized allocations bounded by a
// budget, injected seeded randomness in deterministic kernels, and
// golden-tested gob wire types.
//
// The framework mirrors the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Diagnostic) but is self-hosted on the standard library only: packages
// are loaded via `go list -export` and type-checked with go/types, so the
// checker needs nothing outside the Go toolchain. Swapping an analyzer onto
// the upstream multichecker is a mechanical port of its Run function.
//
// See README.md in this directory for the catalogue of invariants, which PR
// introduced each one, and how to suppress a false positive.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check, mirroring the upstream
// go/analysis.Analyzer shape.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //parmac:vet ignore=<name> suppression comments.
	Name string
	// Doc is a one-paragraph description: the invariant, and why it exists.
	Doc string
	// Run reports this analyzer's diagnostics for one package via
	// Pass.Report.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work, mirroring the upstream
// go/analysis.Pass shape.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's compiled (non-test) files.
	Files []*ast.File
	// TestFiles are the package's in-package _test.go files, type-checked
	// together with Files — invariants hold in test helpers too.
	TestFiles []*ast.File
	// XTestFiles are the external (package foo_test) files, parsed but NOT
	// type-checked; analyzers may only inspect them syntactically.
	XTestFiles []*ast.File
	// Pkg and Info describe Files+TestFiles.
	Pkg  *types.Package
	Info *types.Info
	// Src returns the raw source of any parsed file (including XTestFiles).
	Src func(*ast.File) []byte

	report func(Diagnostic)
}

// AllTyped returns every type-checked file (Files then TestFiles).
func (p *Pass) AllTyped() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	return append(out, p.TestFiles...)
}

// Report records one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the runner
	Position token.Position
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// All returns the full parmac-vet suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ClampWorkersAnalyzer,
		FloatOrderAnalyzer,
		AtomicFieldAnalyzer,
		BoundedMakeAnalyzer,
		DetRandAnalyzer,
		GobWireAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer selection against All.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
