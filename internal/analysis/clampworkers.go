package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ClampWorkersAnalyzer enforces the worker-sizing invariant from PR 4: a
// caller-supplied worker count must pass through core.ClampWorkers or
// core.Cores before it reaches core.ParallelChunks or bounds a
// goroutine-spawning loop. Raw knob values are legal inputs (-1 means every
// core, 0 means serial), so handing one straight to a pool either spawns a
// nonsense goroutine count or silently serialises; the clamp helpers are
// where that contract lives.
var ClampWorkersAnalyzer = &Analyzer{
	Name: "clampworkers",
	Doc: "caller-supplied worker counts must be resolved by core.ClampWorkers " +
		"or core.Cores before spawning goroutines or entering core.ParallelChunks",
	Run: runClampWorkers,
}

// workerParamNames are the identifier names the goroutine-loop check treats
// as worker-count knobs when they appear as function parameters.
var workerParamNames = map[string]bool{
	"workers": true, "nworkers": true, "numWorkers": true, "nWorkers": true,
	"cores": true, "ncores": true, "numCores": true,
}

func runClampWorkers(pass *Pass) error {
	for _, file := range pass.AllTyped() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Resolution and inspection both span the whole declaration,
			// nested closures included: objects are matched by identity, so a
			// count clamped in the enclosing function stays resolved inside a
			// closure that captures it.
			resolved := clampResolvedObjects(pass, fd.Body)
			safe := func(e ast.Expr) bool { return clampSafeExpr(pass, e, resolved) }

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.CallExpr:
					f := calleeFunc(pass.Info, s)
					if isPkgFunc(f, "core", "ParallelChunks") && len(s.Args) >= 2 && !safe(s.Args[1]) {
						pass.Reportf(s.Args[1].Pos(),
							"worker count %q reaches core.ParallelChunks without core.ClampWorkers/core.Cores",
							types.ExprString(s.Args[1]))
					}
				case *ast.ForStmt:
					if bound := goLoopWorkerBound(pass, fd, s); bound != nil && !safe(bound) {
						pass.Reportf(bound.Pos(),
							"goroutine loop bounded by raw worker count %q; resolve it with core.ClampWorkers/core.Cores first",
							types.ExprString(bound))
					}
				}
				return true
			})
		}
	}
	return nil
}

// clampResolvedObjects computes the set of objects in one function body that
// are known to hold a resolved worker count: assigned (anywhere in the body)
// from core.ClampWorkers/core.Cores, from a constant, or from another
// resolved object. Optimistic any-assignment semantics — a count that was
// clamped once and then capped further still counts as resolved.
func clampResolvedObjects(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	resolved := map[types.Object]bool{}
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil || resolved[obj] {
					continue
				}
				if clampSafeExpr(pass, as.Rhs[i], resolved) {
					resolved[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			return resolved
		}
	}
}

// clampSafeExpr reports whether e is an acceptable worker count: a constant,
// a direct call to the clamp helpers, or a resolved identifier.
func clampSafeExpr(pass *Pass, e ast.Expr, resolved map[types.Object]bool) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		f := calleeFunc(pass.Info, x)
		return isPkgFunc(f, "core", "ClampWorkers") || isPkgFunc(f, "core", "Cores")
	case *ast.Ident:
		if obj := pass.Info.Uses[x]; obj != nil {
			return resolved[obj]
		}
	}
	return false
}

// goLoopWorkerBound returns the loop bound expression when s is a for loop
// of the shape `for i := 0; i < workers; i++ { … go … }` whose bound is a
// parameter of the enclosing function named like a worker knob.
func goLoopWorkerBound(pass *Pass, fn ast.Node, s *ast.ForStmt) ast.Expr {
	if s.Cond == nil {
		return nil
	}
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.LSS && cmp.Op != token.LEQ) {
		return nil
	}
	id, ok := ast.Unparen(cmp.Y).(*ast.Ident)
	if !ok || !workerParamNames[id.Name] {
		return nil
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || !isParamOf(fn, v) {
		return nil
	}
	spawns := false
	ast.Inspect(s.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			spawns = true
		}
		return !spawns
	})
	if !spawns {
		return nil
	}
	return cmp.Y
}

// isParamOf reports whether v is declared in fn's signature (parameters or
// named results), by position.
func isParamOf(fn ast.Node, v *types.Var) bool {
	var sig *ast.FuncType
	switch f := fn.(type) {
	case *ast.FuncDecl:
		sig = f.Type
	case *ast.FuncLit:
		sig = f.Type
	default:
		return false
	}
	return v.Pos() >= sig.Pos() && v.Pos() <= sig.End()
}
