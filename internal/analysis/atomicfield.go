package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicFieldAnalyzer enforces the hot-swap invariant from PR 6: once any
// code path accesses a struct field through sync/atomic
// (atomic.AddInt64(&s.n, 1) and friends), every other access to that field
// must be atomic too — a plain read can observe a torn or stale value, and a
// plain write can be lost. This is the pitfall the serve package avoids with
// typed atomics (atomic.Pointer, atomic.Int64), whose fields cannot be read
// plainly at all; the analyzer covers the residual address-based style,
// where the compiler offers no such protection.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic functions anywhere must " +
		"never also be read or written plainly",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: collect fields whose address feeds a sync/atomic call, and the
	// selector positions already under atomic protection.
	atomicFields := map[*types.Var]bool{}
	blessed := map[token.Pos]bool{}
	for _, file := range pass.AllTyped() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := selectedField(pass, sel); f != nil {
					atomicFields[f] = true
					blessed[sel.Sel.Pos()] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other selector resolving to one of those fields is a plain
	// access.
	for _, file := range pass.AllTyped() {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[sel.Sel.Pos()] {
				return true
			}
			if f := selectedField(pass, sel); f != nil && atomicFields[f] {
				pass.Reportf(sel.Pos(),
					"plain access to field %s.%s, which is accessed via sync/atomic elsewhere; use the atomic API for every access",
					fieldOwner(f), f.Name())
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a package-level function of
// sync/atomic.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(pass.Info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" &&
		f.Type().(*types.Signature).Recv() == nil
}

// selectedField returns the struct field a selector expression denotes, or
// nil when it selects a method, package member, or unresolved name.
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// fieldOwner renders the declaring struct's type name for diagnostics.
func fieldOwner(f *types.Var) string {
	if f.Pkg() == nil {
		return "?"
	}
	// Walk the package scope for a named type whose underlying struct holds
	// this exact field object.
	scope := f.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return tn.Name()
			}
		}
	}
	return f.Pkg().Name()
}
