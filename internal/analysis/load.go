package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader turns package patterns into type-checked syntax using only the
// Go toolchain: one `go list -export -deps -test` walk yields, for every
// dependency (including test-only ones such as testing), the export-data
// file the build cache already holds, and go/types checks the target
// packages from source against those exports. This is the slice of
// golang.org/x/tools/go/packages the analyzers actually need, without the
// dependency.

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // GoFiles, type-checked
	TestFiles  []*ast.File // TestGoFiles, type-checked together with Files
	XTestFiles []*ast.File // XTestGoFiles, parsed only
	Pkg        *types.Package
	Info       *types.Info
	Sources    map[*ast.File][]byte
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath   string
	ForTest      string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// goList runs the go tool in dir and decodes its -json package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load type-checks the packages matching patterns (resolved relative to dir,
// like the go tool) and returns them in listing order. Explicit directory
// patterns may name packages under testdata — that is how analyzer fixtures
// are loaded.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// One walk with -deps -test surfaces export data for everything any
	// target or its test files import. Test variants ("pkg [pkg.test]")
	// shadow nothing: only plain import paths enter the export map.
	deps, err := goList(dir, append([]string{"-export", "-deps", "-test", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	meta := map[string]*listedPackage{}
	for _, p := range deps {
		if p.ForTest != "" || strings.Contains(p.ImportPath, " ") {
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		meta[p.ImportPath] = p
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e)
	})

	var out []*Package
	for _, t := range targets {
		p := meta[t.ImportPath]
		if p == nil {
			return nil, fmt.Errorf("analysis: %q listed but not resolved", t.ImportPath)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		lp, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// typeCheck parses and checks one listed package. In-package test files are
// checked together with the package sources; their extra imports are covered
// by the -test dependency walk whenever the package has a test binary.
func typeCheck(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Package, error) {
	lp := &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Sources:    map[*ast.File][]byte{},
	}
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			path := filepath.Join(p.Dir, name)
			src, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			lp.Sources[f] = src
			files = append(files, f)
		}
		return files, nil
	}
	var err error
	if lp.Files, err = parse(p.GoFiles); err != nil {
		return nil, err
	}
	if lp.TestFiles, err = parse(p.TestGoFiles); err != nil {
		return nil, err
	}
	if lp.XTestFiles, err = parse(p.XTestGoFiles); err != nil {
		return nil, err
	}

	lp.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	all := append(append([]*ast.File{}, lp.Files...), lp.TestFiles...)
	pkg, err := conf.Check(p.ImportPath, fset, all, lp.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %v", p.ImportPath, err)
	}
	lp.Pkg = pkg
	return lp, nil
}
