package analysis

import (
	"go/ast"
	"regexp"
	"testing"
)

// The fixtures under testdata/src mirror x/tools' analysistest convention: a
// trailing comment of the form
//
//	// want `regex`
//
// marks a line that must produce a diagnostic matching the regex; every other
// line must stay silent. The testdata directory is invisible to go build
// wildcards, so fixtures deliberately exhibiting violations never reach the
// real parmac-vet gate.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// testFixture runs one analyzer over fixture package patterns and checks the
// produced diagnostics against the // want expectations, both directions.
func testFixture(t *testing.T, a *Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type loc struct {
		file string
		line int
	}
	want := map[loc]*regexp.Regexp{}
	for _, pkg := range pkgs {
		files := append(append(append([]*ast.File{}, pkg.Files...),
			pkg.TestFiles...), pkg.XTestFiles...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regex %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					want[loc{pos.Filename, pos.Line}] = re
				}
			}
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %v declares no // want expectations", patterns)
	}

	matched := map[loc]bool{}
	for _, d := range diags {
		l := loc{d.Position.Filename, d.Position.Line}
		re, ok := want[l]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("%s: message %q does not match want /%s/", d.Position, d.Message, re)
			continue
		}
		matched[l] = true
	}
	for l, re := range want {
		if !matched[l] {
			t.Errorf("%s:%d: expected diagnostic /%s/, got none", l.file, l.line, re)
		}
	}
}

func TestClampWorkersFixture(t *testing.T) {
	testFixture(t, ClampWorkersAnalyzer, "./testdata/src/clampworkers")
}

func TestFloatOrderFixture(t *testing.T) {
	testFixture(t, FloatOrderAnalyzer, "./testdata/src/floatorder")
}

func TestAtomicFieldFixture(t *testing.T) {
	testFixture(t, AtomicFieldAnalyzer, "./testdata/src/atomicfield")
}

func TestBoundedMakeFixture(t *testing.T) {
	testFixture(t, BoundedMakeAnalyzer, "./testdata/src/boundedmake")
}

func TestDetRandFixture(t *testing.T) {
	testFixture(t, DetRandAnalyzer, "./testdata/src/detrand/...")
}

func TestGobWireFixture(t *testing.T) {
	testFixture(t, GobWireAnalyzer, "./testdata/src/gobwire")
}
