package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrderAnalyzer enforces the bit-identical-reduction invariant from
// PR 5: inside a core.ParallelChunks closure, a floating-point `+=` (or any
// compound float assignment) into storage shared across chunks makes the
// summation order — and therefore the result — depend on the worker count.
// The sanctioned pattern is binauto.WKernel's: accumulate into per-chunk (or
// per-worker) slots addressed by a closure-local index, then reduce serially
// in fixed chunk order on a grid that depends only on N.
//
// Integer accumulators are exempt: integer addition is exactly associative,
// so any interleaving yields the same value.
var FloatOrderAnalyzer = &Analyzer{
	Name: "floatorder",
	Doc: "float accumulation into cross-chunk shared storage inside a " +
		"core.ParallelChunks closure is worker-count dependent; reduce " +
		"per-chunk slots on a fixed grid instead (see binauto.WKernel)",
	Run: runFloatOrder,
}

func runFloatOrder(pass *Pass) error {
	for _, file := range pass.AllTyped() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 3 {
				return true
			}
			if !isPkgFunc(calleeFunc(pass.Info, call), "core", "ParallelChunks") {
				return true
			}
			closure, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkChunkClosure(pass, closure)
			return true
		})
	}
	return nil
}

// checkChunkClosure flags unordered float accumulation in one chunk closure.
func checkChunkClosure(pass *Pass, closure *ast.FuncLit) {
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= closure.Pos() && obj.Pos() <= closure.End()
	}
	ast.Inspect(closure.Body, func(n ast.Node) bool {
		var lhs ast.Expr
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.ASSIGN || s.Tok == token.DEFINE || len(s.Lhs) != 1 {
				return true
			}
			lhs = s.Lhs[0]
		case *ast.IncDecStmt:
			lhs = s.X
		default:
			return true
		}
		t := pass.Info.Types[lhs].Type
		if t == nil || !isFloat(t) {
			return true
		}
		root := rootObject(pass.Info, lhs)
		if root == nil || local(root) {
			return true
		}
		// Indexed writes into shared storage are the sanctioned per-slot
		// pattern — but only when the slot index is derived from closure
		// state (the worker id, or a chunk index computed from lo/hi). An
		// index captured from outside the closure is shared too.
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && indexUsesLocal(pass, idx.Index, local) {
			return true
		}
		pass.Reportf(lhs.Pos(),
			"float accumulation into %q shared across ParallelChunks chunks: summation order depends on the worker count; use per-chunk slots reduced on a fixed grid (binauto.WKernel pattern)",
			types.ExprString(lhs))
		return true
	})
}

// indexUsesLocal reports whether the index expression mentions any object
// declared inside the closure (its parameters or locals).
func indexUsesLocal(pass *Pass, index ast.Expr, local func(types.Object) bool) bool {
	found := false
	ast.Inspect(index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && local(pass.Info.Uses[id]) {
			found = true
		}
		return !found
	})
	return found
}
