package analysis

import (
	"go/ast"
	"go/types"
)

// BoundedMakeAnalyzer generalizes the hardened-LoadCodes pattern from PR 6:
// an allocation whose size comes from decoded input (gob/json/binary.Read, a
// byte-order header read, or a parsed request parameter) must be preceded by
// a bound check, or an attacker-controlled header sizes the allocation. The
// taint analysis is intraprocedural and string-keyed: a value is tainted by
// flowing (through assignments and conversions) from a decode source, and
// sanitized once it appears in any comparison (an if/for/switch condition)
// or under the min builtin at the allocation site. len/cap of decoded data
// do not taint — they are bounded by bytes actually received, which is
// exactly the property the streamed LoadCodes loader relies on.
var BoundedMakeAnalyzer = &Analyzer{
	Name: "boundedmake",
	Doc: "make() sized by a decoded or request-supplied value needs a bound " +
		"check against a budget first (the hardened LoadCodes pattern)",
	Run: runBoundedMake,
}

// taintSources lists package-level or method callees whose outputs (or
// pointed-to arguments) are attacker-controlled. Key: package path suffix;
// value: function or method names and which argument is the decode target
// (-1 means the return value is the source).
type taintSource struct {
	pkg  string
	name string
	arg  int // index of the pointer argument decoded into; -1 = return value
}

var taintSources = []taintSource{
	{"encoding/gob", "Decode", 0},     // (*Decoder).Decode(&v)
	{"encoding/json", "Decode", 0},    // (*Decoder).Decode(&v)
	{"encoding/json", "Unmarshal", 1}, // json.Unmarshal(b, &v)
	{"encoding/binary", "Read", 2},    // binary.Read(r, order, &v)
	{"encoding/binary", "Uint16", -1}, // order.Uint16(b) header reads
	{"encoding/binary", "Uint32", -1},
	{"encoding/binary", "Uint64", -1},
	{"encoding/binary", "ReadUvarint", -1},
	{"encoding/binary", "ReadVarint", -1},
	{"strconv", "Atoi", -1},
	{"strconv", "ParseInt", -1},
	{"strconv", "ParseUint", -1},
	{"strconv", "ParseFloat", -1},
}

func runBoundedMake(pass *Pass) error {
	for _, file := range pass.AllTyped() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBoundedMakes(pass, fd.Body)
		}
	}
	return nil
}

func checkBoundedMakes(pass *Pass, body *ast.BlockStmt) {
	tainted := map[string]bool{}

	// Seed: decode targets and header-read results.
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			src := matchTaintSource(pass, s)
			if src == nil || src.arg < 0 || src.arg >= len(s.Args) {
				return true
			}
			if key := taintKey(pass, s.Args[src.arg]); key != "" {
				tainted[key] = true
			}
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if src := matchTaintSource(pass, call); src != nil && src.arg == -1 {
					for _, lhs := range s.Lhs {
						if key := taintKey(pass, lhs); key != "" {
							tainted[key] = true
						}
					}
				}
			}
		}
		return true
	})

	// Propagate through assignments until fixed point.
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				key := taintKey(pass, lhs)
				if key == "" || tainted[key] {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				} else {
					continue
				}
				if mentionsTaint(pass, rhs, tainted) {
					tainted[key] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	if len(tainted) == 0 {
		return
	}

	// Sanitize: any tainted key that appears in a condition is considered
	// bound-checked (flow-insensitively; this is a convention gate, not a
	// verifier).
	checked := map[string]bool{}
	markChecked := func(cond ast.Expr) {
		if cond == nil {
			return
		}
		ast.Inspect(cond, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if key := taintKey(pass, e); key != "" && tainted[key] {
					checked[key] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			markChecked(s.Cond)
		case *ast.ForStmt:
			markChecked(s.Cond)
		case *ast.SwitchStmt:
			markChecked(s.Tag)
		case *ast.CaseClause:
			for _, e := range s.List {
				markChecked(e)
			}
		}
		return true
	})

	// Report unguarded makes.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isBuiltinCall(pass, call, "make") || len(call.Args) < 2 {
			return true
		}
		for _, size := range call.Args[1:] {
			if key := unguardedTaint(pass, size, tainted, checked); key != "" {
				pass.Reportf(size.Pos(),
					"make sized by %q, which flows from decoded input with no bound check against a budget (see retrieval.LoadCodesLimit)",
					key)
			}
		}
		return true
	})
}

// matchTaintSource resolves the called function against the source table.
func matchTaintSource(pass *Pass, call *ast.CallExpr) *taintSource {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return nil
	}
	for i := range taintSources {
		s := &taintSources[i]
		if f.Name() == s.name && pathMatches(f.Pkg().Path(), s.pkg) {
			return s
		}
	}
	return nil
}

// taintKey renders an lvalue-ish expression as a stable string key: idents
// and dotted selector paths rooted in an ident ("hdr", "w.L"). Anything else
// (calls, indexing) keys as "" and is not tracked.
func taintKey(pass *Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return ""
		}
		return x.Name
	case *ast.SelectorExpr:
		// Skip package-qualified names; a package is not a local value.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := pass.Info.Uses[id].(*types.PkgName); isPkg {
				return ""
			}
		}
		base := taintKey(pass, x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.UnaryExpr:
		return taintKey(pass, x.X)
	case *ast.CallExpr:
		// Conversions like int(n) or uint64(n) keep the key of their single
		// operand; real calls break the chain (len/cap deliberately so).
		if len(x.Args) == 1 {
			if _, isConv := pass.Info.Types[x.Fun]; isConv && pass.Info.Types[x.Fun].IsType() {
				return taintKey(pass, x.Args[0])
			}
		}
		return ""
	}
	return ""
}

// mentionsTaint reports whether expr references any tainted key, ignoring
// subexpressions under len/cap (bounded by data actually received).
func mentionsTaint(pass *Pass, e ast.Expr, tainted map[string]bool) bool {
	found := false
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		if e == nil || found {
			return
		}
		if key := taintKey(pass, e); key != "" {
			// A key taints if it, or any prefix path of it, is tainted: w.L
			// is tainted when w is.
			if taintedByPrefix(key, tainted) {
				found = true
				return
			}
		}
		switch x := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.SelectorExpr:
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X)
			walk(x.Index)
		case *ast.CallExpr:
			if isBuiltinCall(pass, x, "len") || isBuiltinCall(pass, x, "cap") {
				return // len/cap of tainted data is bounded
			}
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return found
}

// isBuiltinCall reports whether call invokes the named predeclared builtin.
func isBuiltinCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func taintedByPrefix(key string, tainted map[string]bool) bool {
	for {
		if tainted[key] {
			return true
		}
		i := lastDot(key)
		if i < 0 {
			return false
		}
		key = key[:i]
	}
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// unguardedTaint returns the first tainted-and-unchecked key a make size
// expression mentions, or "". Subexpressions under the min builtin are
// considered bounded.
func unguardedTaint(pass *Pass, e ast.Expr, tainted, checked map[string]bool) string {
	var bad string
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		if e == nil || bad != "" {
			return
		}
		if key := taintKey(pass, e); key != "" && taintedByPrefix(key, tainted) {
			if !checkedByPrefix(key, checked) {
				bad = key
			}
			return
		}
		switch x := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X)
			walk(x.Index)
		case *ast.CallExpr:
			if isBuiltinCall(pass, x, "min") || isBuiltinCall(pass, x, "len") ||
				isBuiltinCall(pass, x, "cap") {
				return // bounded by construction
			}
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return bad
}

func checkedByPrefix(key string, checked map[string]bool) bool {
	for {
		if checked[key] {
			return true
		}
		i := lastDot(key)
		if i < 0 {
			return false
		}
		key = key[:i]
	}
}
