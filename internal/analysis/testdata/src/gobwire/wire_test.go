package gobwire

import "testing"

// TestCoveredGolden stands in for a golden-file decode test: it mentions the
// Covered identifier and the file contains the word "golden", which is the
// coverage convention the analyzer checks for.
func TestCoveredGolden(t *testing.T) {
	if (Covered{A: 1}).A != 1 {
		t.Fatal("fixture")
	}
}
