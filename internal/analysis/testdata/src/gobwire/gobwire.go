// Package gobwire is the parmac-vet fixture for the gobwire analyzer: every
// locally declared type passed to gob.Register must be referenced by a
// golden-file decode test in the same package.
package gobwire

import "encoding/gob"

// Covered is referenced by the golden test in wire_test.go.
type Covered struct{ A int }

// Uncovered has no golden test pinning its byte format.
type Uncovered struct{ B int }

func init() {
	gob.Register(Covered{})
	gob.Register(&Uncovered{}) // want `wire type Uncovered is gob-registered but no golden-file decode test references it`
	gob.Register(int(0))       // builtin registrations are not a local wire contract
}
