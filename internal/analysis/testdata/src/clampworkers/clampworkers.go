// Package clampworkers is the parmac-vet fixture for the clampworkers
// analyzer: caller-supplied worker counts must be resolved by
// core.ClampWorkers or core.Cores before reaching core.ParallelChunks or
// bounding a goroutine-spawning loop.
package clampworkers

import "repro/internal/core"

func rawCount(n, workers int) {
	core.ParallelChunks(n, workers, func(w, lo, hi int) {}) // want `worker count "workers" reaches core.ParallelChunks`
}

func inlineClamp(n, workers int) {
	core.ParallelChunks(n, core.ClampWorkers(n, workers), func(w, lo, hi int) {})
}

func inlineCores(n, workers int) {
	core.ParallelChunks(n, core.Cores(workers), func(w, lo, hi int) {})
}

func resolvedOnce(n, workers int) {
	workers = core.ClampWorkers(n, workers)
	core.ParallelChunks(n, workers, func(w, lo, hi int) {})
}

// resolvedBeforeCapture shows object-identity tracking: a count clamped in
// the enclosing function stays resolved inside a closure that captures it.
func resolvedBeforeCapture(n, workers int) {
	w := core.Cores(workers)
	run := func() {
		core.ParallelChunks(n, w, func(w, lo, hi int) {})
	}
	run()
}

func constantCount(n int) {
	core.ParallelChunks(n, 4, func(w, lo, hi int) {})
}

func rawGoLoop(workers int, ch chan int) {
	for i := 0; i < workers; i++ { // want `goroutine loop bounded by raw worker count "workers"`
		go func() { ch <- i }()
	}
}

func resolvedGoLoop(workers int, ch chan int) {
	workers = core.Cores(workers)
	for i := 0; i < workers; i++ {
		go func() { ch <- i }()
	}
}

// plainLoop spawns nothing, so the bound does not need resolving.
func plainLoop(workers int) int {
	s := 0
	for i := 0; i < workers; i++ {
		s += i
	}
	return s
}

func suppressed(n, workers int) {
	//parmac:vet ignore=clampworkers fixture exercising the suppression directive
	core.ParallelChunks(n, workers, func(w, lo, hi int) {})
}
