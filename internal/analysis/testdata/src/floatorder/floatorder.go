// Package floatorder is the parmac-vet fixture for the floatorder analyzer:
// float accumulation into cross-chunk shared storage inside a
// core.ParallelChunks closure makes the summation order depend on the worker
// count; the sanctioned pattern is per-chunk slots reduced on a fixed grid.
package floatorder

import "repro/internal/core"

func sharedScalar(xs []float64, workers int) float64 {
	var sum float64
	core.ParallelChunks(len(xs), core.Cores(workers), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want `float accumulation into "sum" shared across ParallelChunks chunks`
		}
	})
	return sum
}

func sharedSlot(xs []float64, workers int) float64 {
	acc := make([]float64, 1)
	core.ParallelChunks(len(xs), core.Cores(workers), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			acc[0] += xs[i] // want `float accumulation into "acc\[0\]" shared across ParallelChunks chunks`
		}
	})
	return acc[0]
}

// perWorkerSlots is the binauto.WKernel pattern: each chunk writes its own
// slot (indexed by closure state), then a serial fixed-order reduce follows.
func perWorkerSlots(xs []float64, workers int) float64 {
	w := core.Cores(workers)
	parts := make([]float64, w)
	core.ParallelChunks(len(xs), w, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			parts[worker] += xs[i]
		}
	})
	var sum float64
	for _, p := range parts {
		sum += p
	}
	return sum
}

// integerCounter is exempt: integer addition is exactly associative.
func integerCounter(xs []float64, workers int, counts []int64) int {
	total := 0
	core.ParallelChunks(len(xs), core.Cores(workers), func(w, lo, hi int) {
		n := 0
		for i := lo; i < hi; i++ {
			if xs[i] > 0 {
				n++
			}
		}
		counts[w] = int64(n)
	})
	for _, c := range counts {
		total += int(c)
	}
	return total
}

// closureLocal accumulates into a chunk-local variable, which is fine.
func closureLocal(xs []float64, workers int, out []float64) {
	core.ParallelChunks(len(xs), core.Cores(workers), func(w, lo, hi int) {
		var local float64
		for i := lo; i < hi; i++ {
			local += xs[i]
		}
		out[w] = local
	})
}
