// Package boundedmake is the parmac-vet fixture for the boundedmake
// analyzer: an allocation sized by a decoded or request-supplied value needs
// a bound check against a budget first (the hardened LoadCodes pattern).
package boundedmake

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"strconv"
)

const maxElems = 1 << 20

func unbounded(dec *gob.Decoder) ([]float64, error) {
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, err
	}
	return make([]float64, n), nil // want `make sized by "n", which flows from decoded input`
}

func bounded(dec *gob.Decoder) ([]float64, error) {
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, err
	}
	if n < 0 || n > maxElems {
		return nil, errors.New("header out of budget")
	}
	return make([]float64, n), nil
}

func unboundedHeader(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	return make([]byte, n) // want `make sized by "n", which flows from decoded input`
}

// taintThroughArithmetic follows the value through assignments and
// conversions: words derives from the decoded count.
func taintThroughArithmetic(dec *gob.Decoder) ([]uint64, error) {
	var rows int
	if err := dec.Decode(&rows); err != nil {
		return nil, err
	}
	words := (rows + 63) / 64
	return make([]uint64, words), nil // want `make sized by "words", which flows from decoded input`
}

func boundedByMin(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	return make([]byte, min(n, maxElems))
}

// lenOfPayload is bounded by the bytes actually received, so it never taints.
func lenOfPayload(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func parsedButChecked(s string) ([]int, error) {
	k, err := strconv.Atoi(s)
	if err != nil || k <= 0 || k > maxElems {
		return nil, errors.New("bad k")
	}
	return make([]int, k), nil
}

const maxTableBits = 16

// postingTablesUnbounded is the MIH posting-list build pattern gone wrong: a
// dense substring table sized 1<<bits where bits came off the wire. A lying
// header turns this into a multi-gigabyte allocation before the first id is
// even read.
func postingTablesUnbounded(dec *gob.Decoder) ([][]int32, error) {
	var bits int
	if err := dec.Decode(&bits); err != nil {
		return nil, err
	}
	return make([][]int32, 1<<uint(bits)), nil // want `make sized by "bits", which flows from decoded input`
}

// postingTablesBounded is the accepted shape (retrieval.NewMIHIndex): the
// substring width is range-checked against the block-width cap before the
// dense table is allocated.
func postingTablesBounded(dec *gob.Decoder) ([][]int32, error) {
	var bits int
	if err := dec.Decode(&bits); err != nil {
		return nil, err
	}
	if bits < 1 || bits > maxTableBits {
		return nil, errors.New("table width out of range")
	}
	return make([][]int32, 1<<uint(bits)), nil
}
