// Package atomicfield is the parmac-vet fixture for the atomicfield
// analyzer: once any code path accesses a struct field through sync/atomic,
// every access to that field must be atomic.
package atomicfield

import "sync/atomic"

type stats struct {
	hits  int64 // accessed via sync/atomic below
	plain int64 // never touched atomically
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) snapshot() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) torn() int64 {
	return s.hits // want `plain access to field stats.hits`
}

func (s *stats) lost() {
	s.hits = 0 // want `plain access to field stats.hits`
}

func (s *stats) unrelated() int64 {
	s.plain++
	return s.plain
}
