// Package binauto (under testdata/src/detrand) is the parmac-vet fixture for
// the detrand analyzer: the package base name matches a deterministic-kernel
// package, so global math/rand functions and time.Now are banned here.
package binauto

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `global rand.Intn in deterministic kernel package binauto`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle in deterministic kernel package binauto`
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic kernel package binauto`
}

// injected is the sanctioned pattern: a seeded *rand.Rand passed in, with
// constructors rand.New/rand.NewSource explicitly allowed.
func injected(rng *rand.Rand) int {
	return rng.Intn(10)
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
