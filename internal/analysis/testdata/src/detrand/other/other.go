// Package other shows detrand's scope: the determinism contract applies only
// to the kernel packages (binauto, macnet, svm, sgd), so global randomness
// and wall-clock reads here are legal — and the fixture asserts no
// diagnostics fire.
package other

import (
	"math/rand"
	"time"
)

func timestamp() time.Time {
	return time.Now()
}

func jitter() float64 {
	return rand.Float64()
}
