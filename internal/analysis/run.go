package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is the suppression marker: a comment of the form
//
//	//parmac:vet ignore=clampworkers[,floatorder] <reason>
//
// on the flagged line, or on the line directly above it, silences the named
// analyzers for that line. The reason is free text but should say why the
// invariant holds anyway.
const ignoreDirective = "//parmac:vet ignore="

// suppressions maps file -> line -> set of analyzer names silenced there.
type suppressions map[string]map[int]map[string]bool

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[pos.Filename] = byLine
				}
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					// The directive covers its own line and the next one, so
					// it works both trailing and as a lead-in comment.
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if byLine[line] == nil {
							byLine[line] = map[string]bool{}
						}
						byLine[line][n] = true
					}
				}
			}
		}
	}
	return sup
}

func (s suppressions) covers(pos token.Position, analyzer string) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer]
}

// Run executes every analyzer over every package and returns the surviving
// diagnostics sorted by position. Analyzer errors abort the run: a check that
// cannot run is a broken gate, not a clean one.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		parsed := append(append(append([]*ast.File{}, pkg.Files...),
			pkg.TestFiles...), pkg.XTestFiles...)
		sup := collectSuppressions(pkg.Fset, parsed)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				TestFiles:  pkg.TestFiles,
				XTestFiles: pkg.XTestFiles,
				Pkg:        pkg.Pkg,
				Info:       pkg.Info,
				Src:        func(f *ast.File) []byte { return pkg.Sources[f] },
			}
			pass.report = func(d Diagnostic) {
				d.Analyzer = a.Name
				d.Position = pkg.Fset.Position(d.Pos)
				if sup.covers(d.Position, a.Name) {
					return
				}
				all = append(all, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := all[i].Position, all[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}
