package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared AST/type helpers for the analyzers.

// calleeFunc resolves the *types.Func a call invokes, through selectors and
// parentheses. Nil for builtins, conversions, and calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function pkgSuffix.name,
// where pkgSuffix matches the defining package's import path exactly or as a
// trailing "/…" component (so "core" matches both repro/internal/core and a
// fixture's local core package).
func isPkgFunc(f *types.Func, pkgSuffix, name string) bool {
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	// Methods are not package-level functions.
	if f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return pathMatches(f.Pkg().Path(), pkgSuffix)
}

func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// rootObject follows an lvalue expression to the object its storage is
// rooted in: a[i].f -> a, (*p).x -> p. Nil when the root is not a plain
// identifier (a function call result, for example).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			// pkg.Name roots in the named object; expr.field roots in expr.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return info.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
