// Package sgd implements the stochastic-gradient-descent core shared by the
// ParMAC submodel trainers: Bottou's step-size schedule, the automatic η0
// tuning on a small leading sample described in §8.1 of the paper ("the SGD
// step size is tuned automatically in each iteration by examining the first
// 1000 datapoints"), and the sample-ordering helpers used for within-machine
// minibatch shuffling (§4.3).
package sgd

import (
	"math"
	"math/rand"
)

// Points is the read-only sample access interface shared by trainers. It is
// satisfied by *dataset.Dataset and by the shard views in internal/binauto.
type Points interface {
	NumPoints() int
	// Point writes point i into dst (allocated when nil) and returns it.
	Point(i int, dst []float64) []float64
}

// Schedule is Bottou's SVM-SGD learning-rate schedule
//
//	η_t = η0 / (1 + λ·η0·t)
//
// which satisfies the Robbins–Monro conditions required for the ParMAC
// convergence guarantee (§6): η_t → 0, Σ η_t = ∞, Σ η_t² < ∞.
type Schedule struct {
	Eta0   float64
	Lambda float64
	t      float64
}

// NewSchedule returns a schedule starting at step count t=0.
func NewSchedule(eta0, lambda float64) *Schedule {
	if eta0 <= 0 {
		panic("sgd: eta0 must be positive")
	}
	return &Schedule{Eta0: eta0, Lambda: lambda}
}

// Next returns the current learning rate and advances the step counter.
func (s *Schedule) Next() float64 {
	eta := s.Eta0 / (1 + s.Lambda*s.Eta0*s.t)
	s.t++
	return eta
}

// Peek returns the current learning rate without advancing.
func (s *Schedule) Peek() float64 {
	return s.Eta0 / (1 + s.Lambda*s.Eta0*s.t)
}

// Steps reports how many steps have been taken.
func (s *Schedule) Steps() float64 { return s.t }

// SetSteps sets the step counter; used when a circulating submodel resumes
// training on another machine and must continue its schedule where it left
// off.
func (s *Schedule) SetSteps(t float64) { s.t = t }

// Eta0Ladder returns the multiplicative candidate ladder lo, lo·factor, …, up
// to hi that TuneEta0 searches. Exposed so fused trainers that evaluate many
// submodels per candidate (one data pass shared by all of them) draw exactly
// the same candidates as the per-submodel TuneEta0 search.
func Eta0Ladder(lo, hi, factor float64) []float64 {
	if lo <= 0 || hi < lo || factor <= 1 {
		panic("sgd: invalid TuneEta0 range")
	}
	var out []float64
	for eta := lo; eta <= hi*(1+1e-12); eta *= factor {
		out = append(out, eta)
	}
	return out
}

// PickEta0 applies TuneEta0's selection rule to precomputed losses, one per
// ladder candidate: the lowest finite loss wins, ties keep the earlier
// (smaller) candidate, and etas[0] is returned when every loss is non-finite.
func PickEta0(etas, losses []float64) float64 {
	if len(etas) == 0 || len(etas) != len(losses) {
		panic("sgd: PickEta0 needs one loss per candidate")
	}
	best := etas[0]
	bestLoss := math.Inf(1)
	for i, eta := range etas {
		loss := losses[i]
		if !math.IsNaN(loss) && !math.IsInf(loss, 0) && loss < bestLoss {
			bestLoss = loss
			best = eta
		}
	}
	return best
}

// TuneEta0 picks η0 by a multiplicative line search over candidates
// lo, lo·factor, …, up to hi. trial(η0) must run a short training pass from
// the *current* parameters on a small sample (without mutating them) and
// return the resulting loss; TuneEta0 returns the candidate with the lowest
// finite loss. This mirrors the calibration pass of Bottou's sgd code used by
// the paper. If every candidate produces a non-finite loss, lo is returned.
func TuneEta0(lo, hi, factor float64, trial func(eta0 float64) float64) float64 {
	etas := Eta0Ladder(lo, hi, factor)
	losses := make([]float64, len(etas))
	for i, eta := range etas {
		losses[i] = trial(eta)
	}
	return PickEta0(etas, losses)
}

// TuningSampleSize returns min(n, 1000): the paper examines the first 1000
// points when auto-tuning the step size.
func TuningSampleSize(n int) int {
	if n < 1000 {
		return n
	}
	return 1000
}

// Order returns the index sequence for one pass over n samples. With
// shuffle=false it is 0..n-1 in order (the deterministic "incremental
// gradient" regime whose convergence §6 cites); with shuffle=true it is a
// fresh permutation from rng.
func Order(n int, shuffle bool, rng *rand.Rand) []int {
	if !shuffle {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return rng.Perm(n)
}

// Minibatches partitions an index order into batches of the given size (the
// last batch may be short). size <= 0 yields a single batch.
func Minibatches(order []int, size int) [][]int {
	if size <= 0 || size >= len(order) {
		return [][]int{order}
	}
	var out [][]int
	for start := 0; start < len(order); start += size {
		end := start + size
		if end > len(order) {
			end = len(order)
		}
		out = append(out, order[start:end])
	}
	return out
}
