package sgd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleDecreasesAndRobbinsMonro(t *testing.T) {
	s := NewSchedule(0.5, 0.1)
	prev := math.Inf(1)
	var sum, sumSq float64
	for i := 0; i < 10000; i++ {
		eta := s.Next()
		if eta > prev {
			t.Fatalf("schedule not monotone at step %d", i)
		}
		prev = eta
		sum += eta
		sumSq += eta * eta
	}
	// η_t ~ 1/(λt): partial sums diverge (grow with horizon); squares converge.
	if sum < 50 {
		t.Fatalf("Σηt = %v, expected divergent-looking growth", sum)
	}
	if sumSq > 10 {
		t.Fatalf("Ση²t = %v, expected bounded", sumSq)
	}
}

func TestSchedulePeekAndSetSteps(t *testing.T) {
	s := NewSchedule(1, 1)
	if s.Peek() != 1 {
		t.Fatal("initial rate should be eta0")
	}
	s.Next()
	if s.Steps() != 1 {
		t.Fatal("step count wrong")
	}
	s.SetSteps(9)
	want := 1.0 / (1 + 9)
	if s.Peek() != want {
		t.Fatalf("after SetSteps Peek=%v want %v", s.Peek(), want)
	}
}

func TestScheduleZeroLambdaIsConstant(t *testing.T) {
	s := NewSchedule(0.3, 0)
	for i := 0; i < 5; i++ {
		if s.Next() != 0.3 {
			t.Fatal("λ=0 schedule must be constant")
		}
	}
}

func TestTuneEta0PicksMinimum(t *testing.T) {
	// Loss is a parabola in log(eta) minimised near eta=0.04.
	got := TuneEta0(1e-4, 1, 2, func(eta float64) float64 {
		return math.Pow(math.Log(eta)-math.Log(0.04), 2)
	})
	if got < 0.02 || got > 0.08 {
		t.Fatalf("TuneEta0 = %v, want near 0.04", got)
	}
}

func TestTuneEta0SkipsNaN(t *testing.T) {
	got := TuneEta0(0.01, 1, 10, func(eta float64) float64 {
		if eta > 0.05 {
			return math.NaN() // diverged
		}
		return 1 / eta // prefers larger among stable ones
	})
	if got != 0.01 && got != 0.1 {
		// only 0.01, 0.1, 1 are candidates; 0.1 and 1 are NaN.
	}
	if got != 0.01 {
		t.Fatalf("TuneEta0 = %v, want 0.01", got)
	}
}

func TestTuneEta0AllNaNFallsBackToLo(t *testing.T) {
	got := TuneEta0(0.5, 8, 2, func(float64) float64 { return math.NaN() })
	if got != 0.5 {
		t.Fatalf("fallback = %v, want lo", got)
	}
}

func TestTuningSampleSize(t *testing.T) {
	if TuningSampleSize(10) != 10 || TuningSampleSize(5000) != 1000 {
		t.Fatal("TuningSampleSize wrong")
	}
}

func TestOrderSequential(t *testing.T) {
	o := Order(5, false, nil)
	for i, v := range o {
		if v != i {
			t.Fatalf("sequential order wrong: %v", o)
		}
	}
}

func TestOrderShuffledIsPermutation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		o := Order(n, true, rand.New(rand.NewSource(seed)))
		seen := make([]bool, n)
		for _, v := range o {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(o) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinibatches(t *testing.T) {
	o := Order(10, false, nil)
	b := Minibatches(o, 3)
	if len(b) != 4 {
		t.Fatalf("got %d batches", len(b))
	}
	if len(b[3]) != 1 {
		t.Fatalf("last batch size %d", len(b[3]))
	}
	total := 0
	for _, batch := range b {
		total += len(batch)
	}
	if total != 10 {
		t.Fatal("batches do not cover order")
	}
	if len(Minibatches(o, 0)) != 1 {
		t.Fatal("size<=0 should give one batch")
	}
	if len(Minibatches(o, 100)) != 1 {
		t.Fatal("oversized batch should give one batch")
	}
}
