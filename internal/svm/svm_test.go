package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sgd"
	"repro/internal/vec"
)

// separable builds a linearly separable two-cluster problem and its labels.
func separable(n, d int, seed int64) (*dataset.Dataset, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := vec.NewMatrix(n, d)
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		y := 1.0
		if i%2 == 0 {
			y = -1
		}
		labels[i] = y
		row := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = rng.NormFloat64() * 0.3
		}
		row[0] += 2 * y // separation along the first axis
	}
	return dataset.FromMatrix(x), labels
}

func TestLinearLearnsSeparableData(t *testing.T) {
	ds, labels := separable(400, 5, 1)
	lab := func(i int) float64 { return labels[i] }
	m := NewLinear(5, 1e-4)
	m.AutoTune(ds, lab)
	rng := rand.New(rand.NewSource(2))
	buf := make([]float64, 5)
	for epoch := 0; epoch < 5; epoch++ {
		m.TrainPass(ds, lab, sgd.Order(ds.N, true, rng), buf)
	}
	if acc := m.Accuracy(ds, lab, nil); acc < 0.98 {
		t.Fatalf("accuracy = %v, want >= 0.98", acc)
	}
}

func TestStepRegularisesAlways(t *testing.T) {
	m := NewLinear(2, 0.5)
	m.W[0] = 1
	// Large margin: no hinge update, but the regulariser must still shrink w.
	m.Step([]float64{10, 0}, 1, 0.1)
	if m.W[0] != 1*(1-0.1*0.5) {
		t.Fatalf("W after regularised step = %v", m.W[0])
	}
	if m.B != 0 {
		t.Fatal("bias must not change without a margin violation")
	}
}

func TestStepHingeUpdate(t *testing.T) {
	m := NewLinear(1, 0)
	m.Step([]float64{2}, 1, 0.5) // margin 0 < 1 → violation
	if m.W[0] != 1 || m.B != 0.5 {
		t.Fatalf("update wrong: w=%v b=%v", m.W[0], m.B)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewLinear(3, 0.1)
	m.W[1] = 5
	m.Sched.Next()
	c := m.Clone()
	c.W[1] = -1
	c.Sched.Next()
	if m.W[1] != 5 {
		t.Fatal("Clone shares weights")
	}
	if m.Sched.Steps() != 1 || c.Sched.Steps() != 2 {
		t.Fatal("Clone shares schedule")
	}
}

func TestBytes(t *testing.T) {
	if NewLinear(7, 0).Bytes() != 64 {
		t.Fatal("Bytes accounting wrong")
	}
}

func TestAvgLossZeroOnPerfectLargeMargin(t *testing.T) {
	ds, labels := separable(50, 3, 3)
	lab := func(i int) float64 { return labels[i] }
	m := NewLinear(3, 0)
	m.W[0] = 100 // margins far beyond 1
	if loss := m.AvgLoss(ds, lab, nil); loss != 0 {
		t.Fatalf("loss = %v, want 0", loss)
	}
}

func TestAutoTuneDoesNotMutateModel(t *testing.T) {
	ds, labels := separable(200, 4, 4)
	lab := func(i int) float64 { return labels[i] }
	m := NewLinear(4, 1e-3)
	m.W[2] = 0.7
	m.AutoTune(ds, lab)
	if m.W[2] != 0.7 || m.B != 0 {
		t.Fatal("AutoTune must not change parameters")
	}
	if m.Sched.Eta0 <= 0 {
		t.Fatal("AutoTune must set a positive eta0")
	}
	if m.Sched.Steps() != 0 {
		t.Fatal("AutoTune must reset the schedule")
	}
}

func TestKernelMapValuesInUnitInterval(t *testing.T) {
	ds := dataset.GISTLike(100, 6, 4, 5)
	k := NewKernelMap(ds, 16, 6)
	if k.Centres.Rows != 16 {
		t.Fatal("centre count wrong")
	}
	if k.Sigma <= 0 {
		t.Fatal("sigma must be positive")
	}
	buf := make([]float64, 6)
	feat := k.Apply(ds.Point(0, buf), nil)
	for _, v := range feat {
		if v <= 0 || v > 1 {
			t.Fatalf("kernel value %v out of (0,1]", v)
		}
	}
}

func TestKernelMapSelfCentreIsOne(t *testing.T) {
	ds := dataset.GISTLike(10, 4, 2, 7)
	k := &KernelMap{Centres: ds.Matrix().Clone(), Sigma: 1}
	feat := k.Apply(ds.Point(3, nil), nil)
	if math.Abs(feat[3]-1) > 1e-12 {
		t.Fatalf("k(x,x) = %v, want 1", feat[3])
	}
}

func TestKernelTransformQuantised(t *testing.T) {
	ds := dataset.GISTLike(60, 5, 3, 8)
	k := NewKernelMap(ds, 8, 9)
	q := k.Transform(ds, true)
	if !q.ByteBacked() {
		t.Fatal("quantised transform must be byte-backed")
	}
	if q.N != 60 || q.D != 8 {
		t.Fatalf("transform shape %dx%d", q.N, q.D)
	}
	f := k.Transform(ds, false)
	// Quantisation error small relative to the [0,1] range.
	for i := 0; i < q.N; i++ {
		a := q.Point(i, nil)
		b := f.Point(i, nil)
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1.0/128 {
				t.Fatalf("quantisation error %v too large", math.Abs(a[j]-b[j]))
			}
		}
	}
}

func TestKernelisedSVMSolvesNonlinearProblem(t *testing.T) {
	// Concentric classes: not linearly separable in input space, separable
	// after RBF expansion.
	rng := rand.New(rand.NewSource(10))
	n := 400
	x := vec.NewMatrix(n, 2)
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		r := 0.5
		y := -1.0
		if i%2 == 0 {
			r = 2.0
			y = 1
		}
		labels[i] = y
		theta := rng.Float64() * 2 * math.Pi
		x.Set(i, 0, r*math.Cos(theta)+rng.NormFloat64()*0.05)
		x.Set(i, 1, r*math.Sin(theta)+rng.NormFloat64()*0.05)
	}
	ds := dataset.FromMatrix(x)
	lab := func(i int) float64 { return labels[i] }

	lin := NewLinear(2, 1e-4)
	lin.AutoTune(ds, lab)
	buf2 := make([]float64, 2)
	for e := 0; e < 5; e++ {
		lin.TrainPass(ds, lab, sgd.Order(n, true, rng), buf2)
	}
	linAcc := lin.Accuracy(ds, lab, nil)

	k := NewKernelMap(ds, 64, 11)
	kds := k.Transform(ds, false)
	km := NewLinear(64, 1e-5)
	km.AutoTune(kds, lab)
	buf64 := make([]float64, 64)
	for e := 0; e < 10; e++ {
		km.TrainPass(kds, lab, sgd.Order(n, true, rng), buf64)
	}
	kAcc := km.Accuracy(kds, lab, nil)
	if kAcc < 0.95 {
		t.Fatalf("kernel accuracy = %v, want >= 0.95", kAcc)
	}
	if kAcc <= linAcc {
		t.Fatalf("kernel (%v) should beat linear (%v) on rings", kAcc, linAcc)
	}
}
