// Package svm implements the hash-function submodels of the binary
// autoencoder: linear SVMs trained by SGD on the hinge loss (the per-bit
// encoder submodels of §3.1) and the RBF-network kernel expansion used for
// the nonlinear hash function of §8.4. Training follows Bottou's SGD with the
// η0 auto-calibration pass the paper describes in §8.1.
package svm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/sgd"
	"repro/internal/vec"
)

// Linear is a linear SVM y = sign(w·x + b) with L2 regularisation λ/2·‖w‖².
// It carries its own SGD schedule so a circulating ParMAC submodel continues
// its learning-rate decay across machines.
type Linear struct {
	W      []float64
	B      float64
	Lambda float64
	Sched  *sgd.Schedule
}

// NewLinear creates a zero-initialised SVM for d-dimensional inputs.
func NewLinear(d int, lambda float64) *Linear {
	return &Linear{W: make([]float64, d), Lambda: lambda, Sched: sgd.NewSchedule(1e-2, lambda)}
}

// Margin returns w·x + b.
func (m *Linear) Margin(x []float64) float64 { return vec.Dot(m.W, x) + m.B }

// Predict returns the binary decision Margin(x) >= 0, the bit convention of
// the BA encoder h(x) = step(Ax).
func (m *Linear) Predict(x []float64) bool { return m.Margin(x) >= 0 }

// Clone returns a deep copy (including schedule state), used for the
// redundant per-machine submodel copies that ParMAC's fault tolerance relies
// on (§4.3).
func (m *Linear) Clone() *Linear {
	c := &Linear{W: vec.Clone(m.W), B: m.B, Lambda: m.Lambda}
	s := *m.Sched
	c.Sched = &s
	return c
}

// Bytes returns the serialised parameter size, used by the communication
// accounting (t_c^W is per-submodel in §5.1).
func (m *Linear) Bytes() int { return 8 * (len(m.W) + 1) }

// Step performs one SGD update with learning rate eta on sample (x, y),
// y ∈ {-1,+1}: regularise w, and add η·y·x when the margin is violated.
func (m *Linear) Step(x []float64, y, eta float64) {
	vec.Scale(1-eta*m.Lambda, m.W)
	if y*m.Margin(x) < 1 {
		vec.Axpy(eta*y, x, m.W)
		m.B += eta * y
	}
}

// StepFused performs the same SGD update as Step, bit for bit, in fewer
// memory passes over w: the regularisation scaling and the margin dot product
// fuse into one walk (each product reads the just-scaled, just-rounded
// weight, exactly the value Scale would have stored, and the partial sums
// follow vec.Dot's four-accumulator order), so only a violated margin pays a
// second pass for the Axpy. This is the inner statement of the fused
// multi-bit W step, where w stays hot in cache while x is shared by all bits.
func (m *Linear) StepFused(x []float64, y, eta float64) {
	w := m.W
	if len(x) != len(w) {
		panic(fmt.Sprintf("svm: StepFused length mismatch %d vs %d", len(x), len(w)))
	}
	x = x[:len(w)] // proves len(x) == len(w): eliminates the x[i] bounds check
	c := 1 - eta*m.Lambda
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(w); i += 4 {
		w0 := w[i] * c
		w1 := w[i+1] * c
		w2 := w[i+2] * c
		w3 := w[i+3] * c
		w[i], w[i+1], w[i+2], w[i+3] = w0, w1, w2, w3
		s0 += w0 * x[i]
		s1 += w1 * x[i+1]
		s2 += w2 * x[i+2]
		s3 += w3 * x[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(w); i++ {
		w[i] *= c
		s += w[i] * x[i]
	}
	if y*(s+m.B) < 1 {
		vec.Axpy(eta*y, x, w)
		m.B += eta * y
	}
}

// TrainPass runs one stochastic pass over the given sample order, advancing
// the carried schedule. label(i) must return ±1 for point order[k]=i. It
// calls Step, the reference update; TrainPassFused is the faster equivalent.
func (m *Linear) TrainPass(pts sgd.Points, label func(i int) float64, order []int, buf []float64) {
	for _, i := range order {
		x := pts.Point(i, buf)
		m.Step(x, label(i), m.Sched.Next())
	}
}

// TrainPassFused is TrainPass through StepFused: the same pass bit for bit,
// with one fewer memory walk over w per update.
func (m *Linear) TrainPassFused(pts sgd.Points, label func(i int) float64, order []int, buf []float64) {
	for _, i := range order {
		x := pts.Point(i, buf)
		m.StepFused(x, label(i), m.Sched.Next())
	}
}

// AvgLoss returns the mean regularised hinge loss over the points listed in
// idx (all points when idx == nil).
func (m *Linear) AvgLoss(pts sgd.Points, label func(i int) float64, idx []int) float64 {
	n := pts.NumPoints()
	if idx == nil {
		idx = sgd.Order(n, false, nil)
	}
	if len(idx) == 0 {
		return 0
	}
	buf := make([]float64, len(m.W))
	var loss float64
	for _, i := range idx {
		x := pts.Point(i, buf)
		h := 1 - label(i)*m.Margin(x)
		if h > 0 {
			loss += h
		}
	}
	return loss/float64(len(idx)) + 0.5*m.Lambda*vec.SqNorm(m.W)
}

// The η0 calibration range of AutoTune (paper §8.1). TuneLadder exposes the
// resulting candidate ladder so fused multi-bit tuners search exactly the
// same candidates; change the range here and both paths move together.
const (
	tuneEta0Lo     = 1e-4
	tuneEta0Hi     = 16
	tuneEta0Factor = 4
)

// TuneLadder returns AutoTune's η0 candidate ladder.
func TuneLadder() []float64 {
	return sgd.Eta0Ladder(tuneEta0Lo, tuneEta0Hi, tuneEta0Factor)
}

// AutoTune calibrates the schedule's η0 by trial passes over the first
// min(n,1000) points (paper §8.1), leaving the model parameters untouched.
func (m *Linear) AutoTune(pts sgd.Points, label func(i int) float64) {
	n := sgd.TuningSampleSize(pts.NumPoints())
	if n == 0 {
		return
	}
	sample := sgd.Order(n, false, nil)
	buf := make([]float64, len(m.W))
	best := sgd.TuneEta0(tuneEta0Lo, tuneEta0Hi, tuneEta0Factor, func(eta0 float64) float64 {
		trial := m.Clone()
		trial.Sched = sgd.NewSchedule(eta0, m.Lambda)
		trial.TrainPass(pts, label, sample, buf)
		return trial.AvgLoss(pts, label, sample)
	})
	m.Sched.Eta0 = best
	m.Sched.Lambda = m.Lambda
	m.Sched.SetSteps(0)
}

// Accuracy returns the fraction of points in idx (all when nil) whose sign is
// predicted correctly.
func (m *Linear) Accuracy(pts sgd.Points, label func(i int) float64, idx []int) float64 {
	if idx == nil {
		idx = sgd.Order(pts.NumPoints(), false, nil)
	}
	if len(idx) == 0 {
		return 0
	}
	buf := make([]float64, len(m.W))
	correct := 0
	for _, i := range idx {
		x := pts.Point(i, buf)
		if (m.Margin(x) >= 0) == (label(i) > 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(idx))
}

// KernelMap is the fixed RBF feature expansion of §8.4: m Gaussian radial
// basis functions with shared bandwidth σ and fixed centres; applying it
// turns a kernel SVM into a linear SVM over kernel values. Values lie in
// (0,1] and, as in the paper, can be stored one byte each.
type KernelMap struct {
	Centres *vec.Matrix // m×D
	Sigma   float64
}

// RandomCentres picks m centres at random from ds (paper: "picked at random
// from the training set").
func RandomCentres(ds *dataset.Dataset, m int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	c := vec.NewMatrix(m, ds.D)
	for k := 0; k < m; k++ {
		ds.Point(rng.Intn(ds.N), c.Row(k))
	}
	return c
}

// MedianSigma estimates a bandwidth as the median pairwise distance over a
// random sample, the standard heuristic replacing the paper's offline trial
// runs (they fixed σ=160 for raw SIFT bytes).
func MedianSigma(ds *dataset.Dataset, sample int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	if sample > ds.N {
		sample = ds.N
	}
	if sample < 2 {
		return 1
	}
	var dists []float64
	a := make([]float64, ds.D)
	b := make([]float64, ds.D)
	for t := 0; t < sample; t++ {
		i, j := rng.Intn(ds.N), rng.Intn(ds.N)
		if i == j {
			continue
		}
		da := ds.Point(i, a)
		db := ds.Point(j, b)
		dists = append(dists, math.Sqrt(vec.SqDist(da, db)))
	}
	if len(dists) == 0 {
		return 1
	}
	// Median by partial selection.
	for i := 0; i < len(dists); i++ {
		for j := i + 1; j < len(dists); j++ {
			if dists[j] < dists[i] {
				dists[i], dists[j] = dists[j], dists[i]
			}
		}
	}
	s := dists[len(dists)/2]
	if s <= 0 {
		return 1
	}
	return s
}

// NewKernelMap builds an RBF map with m random centres and median-heuristic
// bandwidth.
func NewKernelMap(ds *dataset.Dataset, m int, seed int64) *KernelMap {
	return &KernelMap{Centres: RandomCentres(ds, m, seed), Sigma: MedianSigma(ds, 256, seed+1)}
}

// Apply writes the kernel feature vector of x into dst (allocated when nil):
// dst[k] = exp(-‖x-c_k‖² / (2σ²)).
func (k *KernelMap) Apply(x, dst []float64) []float64 {
	m := k.Centres.Rows
	if dst == nil {
		dst = make([]float64, m)
	}
	inv := 1 / (2 * k.Sigma * k.Sigma)
	for j := 0; j < m; j++ {
		dst[j] = math.Exp(-vec.SqDist(x, k.Centres.Row(j)) * inv)
	}
	return dst
}

// Transform maps a whole dataset through the kernel expansion. With quantize
// set, features are stored one byte each in [0,1], exactly the paper's
// memory-saving representation (§8.4).
func (k *KernelMap) Transform(ds *dataset.Dataset, quantize bool) *dataset.Dataset {
	out := vec.NewMatrix(ds.N, k.Centres.Rows)
	buf := make([]float64, ds.D)
	for i := 0; i < ds.N; i++ {
		k.Apply(ds.Point(i, buf), out.Row(i))
	}
	f := dataset.FromMatrix(out)
	if quantize {
		// Kernel values live in (0,1]; quantising against that fixed range
		// keeps base and query sets on one grid.
		return f.QuantizeRange(0, 1)
	}
	return f
}
