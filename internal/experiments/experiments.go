// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5 examples and §8). Each driver regenerates the
// corresponding rows/series as plain-text tables; EXPERIMENTS.md records how
// the outputs compare to the paper, and cmd/parmac-bench and the root bench
// suite invoke the same drivers.
//
// Workloads use the synthetic dataset substitutes documented in DESIGN.md §1
// at scaled-down sizes (the scale used is printed in each table's notes).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RunConfig controls experiment scale.
type RunConfig struct {
	// Quick shrinks workloads for tests and smoke benches.
	Quick bool
	Seed  int64
}

// Experiment is one regenerable paper artefact.
type Experiment struct {
	ID    string // e.g. "fig10"
	Title string
	Run   func(cfg RunConfig) []*Table
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All lists the registered experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunAndPrint runs one experiment and renders its tables.
func RunAndPrint(id string, cfg RunConfig, w io.Writer) error {
	e, ok := ByID(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", id)
	}
	for _, t := range e.Run(cfg) {
		t.Fprint(w)
	}
	return nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func g(v float64) string  { return fmt.Sprintf("%.4g", v) }
