package experiments

import (
	"fmt"

	"repro/internal/speedup"
)

// Fig. 4: the typical theoretical speedup curve, N=10⁶, M=512, e=1, t_r^W=1,
// t_r^Z=5, t_c^W=10³ (ρ1=0.0025, ρ2=0.0005, ρ=0.003). The paper's plot runs
// P up to 2000 and marks the divisors of M and the global maximum P*₁.
func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "typical theoretical speedup curve S(P)",
		Run: func(cfg RunConfig) []*Table {
			p := speedup.Params{N: 1e6, M: 512, E: 1, TWr: 1, TZr: 5, TWc: 1e3}
			t := &Table{
				ID:      "fig4",
				Title:   "S(P) for N=1e6, M=512, e=1, tWr=1, tZr=5, tWc=1e3",
				Columns: []string{"P", "S(P)", "regime"},
			}
			ps := []int{1, 32, 64, 128, 256, 512, 640, 768, 1024, 1131, 1280, 1600, 2000}
			if cfg.Quick {
				ps = []int{1, 64, 512, 1131, 2000}
			}
			for _, pp := range ps {
				regime := "P<=M (near perfect)"
				if pp > p.M {
					regime = "P>M (harmonic)"
				}
				t.AddRow(d(pp), f1(p.Speedup(float64(pp))), regime)
			}
			pStar, sStar := p.GlobalMax()
			t.Notes = append(t.Notes,
				fmt.Sprintf("rho1=%.4f rho2=%.4f rho=%.4f (paper: 0.0025/0.0005/0.003)", p.Rho1(), p.Rho2(), p.Rho()),
				fmt.Sprintf("global max S*=%.1f at P*=%.0f (> M=512, as the paper predicts)", sStar, pStar),
			)
			return []*Table{t}
		},
	})
}

// Fig. 5: the grid of theoretical speedup curves: N=50000, e∈{1,8},
// t_c^W∈{1,100,1000}, t_r^Z∈{1,100}, M∈{1..512}, P∈1..128.
func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "theoretical speedup grid over (e, tWc, tZr, M)",
		Run: func(cfg RunConfig) []*Table {
			ms := []int{1, 4, 16, 64, 256, 512}
			ps := []int{1, 32, 64, 96, 128}
			type combo struct {
				e        int
				tWc, tZr float64
			}
			combos := []combo{
				{1, 1, 1}, {8, 1, 1},
				{1, 1, 100}, {8, 1, 100},
				{1, 100, 1}, {8, 100, 1},
				{1, 1000, 100}, {8, 1000, 100},
			}
			if cfg.Quick {
				combos = combos[:2]
				ms = []int{4, 64}
			}
			var out []*Table
			for _, c := range combos {
				t := &Table{
					ID:      "fig5",
					Title:   fmt.Sprintf("S(P): N=50000, e=%d, tWc=%g, tZr=%g (tWr=1)", c.e, c.tWc, c.tZr),
					Columns: append([]string{"M \\ P"}, cols(ps)...),
				}
				for _, m := range ms {
					p := speedup.Params{N: 50000, M: m, E: c.e, TWr: 1, TWc: c.tWc, TZr: c.tZr}
					row := []string{d(m)}
					for _, pp := range ps {
						row = append(row, f1(p.Speedup(float64(pp))))
					}
					t.AddRow(row...)
				}
				t.Notes = append(t.Notes, "near-perfect speedups require M >= P; large tWc or e and small tZr flatten the curves (paper §5.3)")
				out = append(out, t)
			}
			return out
		},
	})
}

func cols(ps []int) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = fmt.Sprintf("P=%d", p)
	}
	return out
}
