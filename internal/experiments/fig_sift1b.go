package experiments

import (
	"fmt"

	"repro/internal/binauto"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pca"
	"repro/internal/retrieval"
	"repro/internal/sim"
	"repro/internal/svm"
)

// The SIFT-1B experiments (§8.4): train a BA with linear and RBF-kernel hash
// functions on a byte-quantised SIFT-like set, report recall@R learning
// curves (Fig. 11), the final recall@R-vs-R comparison against the tPCA
// initialisation (Fig. 12), and the recall/time table of §8.4. Quality runs
// on a scaled synthetic workload (the real 100M-point set does not fit this
// reproduction); times come from the simulated clusters at the paper's full
// N = 10⁸, M = 2L = 128 scale.

type sift1bRun struct {
	name        string
	recallCurve []float64 // recall@R=rq per iteration
	ebaCurve    []float64
	bestRecall  float64
	// Codes of the early-stopped model (the paper stops on validation
	// precision decrease, §3.1/§8.1; we keep the best-validated iterate).
	finalBase  *retrieval.Codes
	finalQuery *retrieval.Codes
}

type sift1bSetup struct {
	n, d, l, m, iters, queries, rq int
	ds                             *dataset.Dataset
	queriesDS                      *dataset.Dataset
	trueNN                         []int
}

func newSIFT1BSetup(cfg RunConfig) *sift1bSetup {
	s := &sift1bSetup{n: 6000, d: 32, l: 16, m: 96, iters: 10, queries: 100, rq: 10}
	if cfg.Quick {
		s.n, s.iters, s.queries = 1500, 5, 40
	}
	b, q := dataset.ManifoldWithQueries(s.n, s.queries, s.d, 5, cfg.Seed+41)
	// Byte storage on a shared grid, like the real SIFT sets (§8.4).
	s.ds = b.QuantizeRange(-1.3, 1.3)
	s.queriesDS = q.QuantizeRange(-1.3, 1.3)
	truth := retrieval.GroundTruth(s.ds, s.queriesDS, 1)
	s.trueNN = make([]int, s.queries)
	for q := range truth {
		s.trueNN[q] = truth[q][0]
	}
	return s
}

// train runs ParMAC on the (optionally kernel-expanded) features and records
// the recall learning curve.
func (s *sift1bSetup) train(kernel bool, cfg RunConfig) sift1bRun {
	feats := s.ds
	qfeats := s.queriesDS
	name := "linear SVM"
	if kernel {
		name = "kernel SVM (RBF)"
		km := svm.NewKernelMap(s.ds, s.m, cfg.Seed+43)
		// Bandwidth widened over the median heuristic; tuned on trial runs
		// exactly as the paper tuned its σ=160 (§8.4).
		km.Sigma *= 2
		feats = km.Transform(s.ds, true) // byte-quantised kernel values (§8.4)
		qfeats = km.Transform(s.queriesDS, true)
	}
	p := 8
	shards := dataset.ShuffledShardIndices(s.n, p, nil, cfg.Seed+44)
	prob := binauto.NewParMACProblem(feats, shards, binauto.ParMACConfig{
		L: s.l, Mu0: 1e-4, MuFactor: 2, SVMLambda: 1e-4,
		ZMethod: binauto.ZAlternate, Seed: cfg.Seed + 45,
	})
	eng := core.New(prob, core.Config{P: p, Epochs: 2, Shuffle: true, Seed: cfg.Seed + 46})
	defer eng.Shutdown()

	run := sift1bRun{name: name}
	for it := 0; it < s.iters; it++ {
		eng.Iterate()
		model := prob.AssembleModel()
		base := model.Encode(feats)
		qc := model.Encode(qfeats)
		rec := retrieval.RecallAtR(base, qc, s.trueNN, []int{s.rq})[0]
		_, eba := prob.Stats()
		run.recallCurve = append(run.recallCurve, rec)
		run.ebaCurve = append(run.ebaCurve, eba)
		if rec >= run.bestRecall {
			run.bestRecall = rec
			run.finalBase, run.finalQuery = base, qc
		}
	}
	return run
}

// simHours estimates the full-scale training time on the two simulated
// systems of tab1, in simulated hours (1 time unit = 1 µs of t_r^W on the
// distributed system). The kernel model's larger encoder input (m=2000 vs
// D=128 features) slows both the W-step passes and the per-point hash
// evaluations of the Z step; the multipliers below are fitted the same way
// the paper fits t_c^W and t_r^Z (§8.3).
func simHours(kernel, shared bool, iters int) float64 {
	cfg := sim.Config{
		P: 128, N: 100000000, M: 128, Epochs: 2,
		TWr: 1, TWc: 1e4, TZr: 40, Seed: 1,
	}
	if kernel {
		cfg.TWr *= 8
		cfg.TZr *= 2.6
	}
	if shared {
		// The UCM shared-memory system: half the processors, but newer CPUs
		// and shared-memory transport. Constants fitted so the per-iteration
		// ratio matches the paper's measured 29.30/6 vs 11.04/10 hours
		// (≈4.4× per iteration at half the processors, ≈2.7× end to end).
		cfg.P = 64
		cfg.TWr *= 0.125
		cfg.TWc *= 0.10
		cfg.TZr *= 0.125
	}
	perIter := sim.Run(cfg).T
	const unitsPerHour = 3.6e9 // 1 unit = 1 µs
	return perIter * float64(iters) / unitsPerHour
}

// Fig. 11: recall@R learning curves for linear vs RBF hash functions on the
// two systems.
func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "SIFT-1B learning curves: linear vs kernel hash",
		Run: func(cfg RunConfig) []*Table {
			s := newSIFT1BSetup(cfg)
			lin := s.train(false, cfg)
			rbf := s.train(true, cfg)
			t := &Table{ID: "fig11",
				Title:   fmt.Sprintf("recall@R=%d and E_BA per iteration (scaled SIFT-1B analogue, N=%d)", s.rq, s.n),
				Columns: []string{"iter", "recall lin", "recall RBF", "E_BA lin", "E_BA RBF"}}
			for it := 0; it < len(lin.recallCurve); it++ {
				t.AddRow(d(it), f3(lin.recallCurve[it]), f3(rbf.recallCurve[it]),
					f1(lin.ebaCurve[it]), f1(rbf.ebaCurve[it]))
			}
			t.Notes = append(t.Notes,
				"the RBF hash should end above the linear one in recall (paper Fig. 11 right)",
				"learning curves are identical across the two simulated systems by construction (paper: 'essentially identical')")
			return []*Table{t}
		},
	})
}

// Fig. 12: recall@R over R for tPCA (initialisation), linear and RBF hashes.
func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "recall@R vs R: tPCA vs linear vs kernel hash",
		Run: func(cfg RunConfig) []*Table {
			s := newSIFT1BSetup(cfg)
			lin := s.train(false, cfg)
			rbf := s.train(true, cfg)
			tp := pca.FitTPCA(s.ds, s.l)
			tpBase := tp.Encode(s.ds)
			tpQ := tp.Encode(s.queriesDS)

			rs := []int{1, 2, 5, 10, 20, 50, 100, 200, 500}
			if cfg.Quick {
				rs = []int{1, 10, 100}
			}
			t := &Table{ID: "fig12",
				Title:   "recall@R (scaled SIFT-1B analogue)",
				Columns: []string{"R", "tPCA", "linear BA", "RBF BA"}}
			tpRec := retrieval.RecallAtR(tpBase, tpQ, s.trueNN, rs)
			linRec := retrieval.RecallAtR(lin.finalBase, lin.finalQuery, s.trueNN, rs)
			rbfRec := retrieval.RecallAtR(rbf.finalBase, rbf.finalQuery, s.trueNN, rs)
			for i, r := range rs {
				t.AddRow(d(r), f3(tpRec[i]), f3(linRec[i]), f3(rbfRec[i]))
			}
			t.Notes = append(t.Notes, "expected ordering at moderate R: RBF >= linear >= tPCA (paper Fig. 12)")
			return []*Table{t}
		},
	})
}

// §8.4 table: recall@R=100-equivalent and training time for the four
// (hash, system) combinations.
func init() {
	register(Experiment{
		ID:    "tab-sift1b",
		Title: "SIFT-1B: recall and training time per hash/system",
		Run: func(cfg RunConfig) []*Table {
			s := newSIFT1BSetup(cfg)
			lin := s.train(false, cfg)
			rbf := s.train(true, cfg)
			iters := 6 // the paper ran 6 iterations on the distributed system
			t := &Table{ID: "tab-sift1b",
				Title:   "final recall (scaled run) and simulated full-scale time (hours)",
				Columns: []string{"hash function", "recall@R", "hours distrib.", "hours shared"}}
			t.AddRow("linear SVM", f3(lin.bestRecall),
				f2(simHours(false, false, iters)), f2(simHours(false, true, 10)))
			t.AddRow("kernel SVM", f3(rbf.bestRecall),
				f2(simHours(true, false, iters)), f2(simHours(true, true, 10)))
			t.Notes = append(t.Notes,
				"paper: linear 61.5% / 29.30h / 11.04h; kernel 66.1% / 83.44h / 32.19h",
				"shape to match: kernel beats linear in recall, costs ~3x time; shared system ~3x faster")
			return []*Table{t}
		},
	})
}
