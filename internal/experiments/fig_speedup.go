package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/speedup"
)

// Fig. 10: strong-scaling speedups for the three workloads, measured on the
// simulated cluster (top row of the figure) and predicted by the closed-form
// model (bottom row). The parameters are the paper's §8.3 fits: M = 2L
// effective submodels, t_r^W = 1, t_c^W = 10⁴, t_r^Z = 200 (CIFAR) / 40
// (SIFT). The experimental curves add 5% service-time noise, standing in for
// the real machines' runtime variation.
func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "strong-scaling speedup: simulated experiment vs theory",
		Run:   runFig10,
	})
}

type fig10Workload struct {
	name string
	n    int
	m    int
	tZr  float64
	ps   []int
}

func fig10Workloads(quick bool) []fig10Workload {
	ws := []fig10Workload{
		{"CIFAR (N=50K, M=32)", 50000, 32, 200, []int{1, 2, 4, 8, 16, 32, 64, 96, 128}},
		{"SIFT-1M (N=1M, M=32)", 1000000, 32, 40, []int{1, 2, 4, 8, 16, 32, 64, 96, 128}},
		{"SIFT-1B (N=100M, M=128)", 100000000, 128, 40, []int{1, 32, 128, 256, 512, 768, 1024}},
	}
	if quick {
		for i := range ws {
			ws[i].ps = []int{1, 8, 32, 128}
		}
		ws[1].n = 200000
	}
	return ws
}

func runFig10(cfg RunConfig) []*Table {
	var out []*Table
	epochs := []int{1, 2, 4, 8}
	if cfg.Quick {
		epochs = []int{1, 8}
	}
	for _, w := range fig10Workloads(cfg.Quick) {
		for _, view := range []string{"experiment (simulated cluster)", "theory (closed form)"} {
			t := &Table{
				ID:      "fig10",
				Title:   fmt.Sprintf("%s — %s", w.name, view),
				Columns: append([]string{"e \\ P"}, cols(w.ps)...),
			}
			for _, e := range epochs {
				row := []string{d(e)}
				for _, p := range w.ps {
					var s float64
					if view[0] == 'e' {
						c := sim.Config{
							P: p, N: w.n, M: w.m, Epochs: e,
							TWr: 1, TWc: 1e4, TZr: w.tZr,
							Noise: 0.05, Seed: cfg.Seed + int64(p) + int64(e)*1000,
						}
						s = sim.SerialTime(c) / sim.Run(c).T
					} else {
						th := speedup.Params{N: w.n, M: w.m, E: e, TWr: 1, TWc: 1e4, TZr: w.tZr}
						s = th.Speedup(float64(p))
					}
					row = append(row, f1(s))
				}
				t.AddRow(row...)
			}
			t.Notes = append(t.Notes,
				"near-perfect for P <= M, flattening with more epochs; theory matches the simulated schedule (paper Fig. 10)")
			out = append(out, t)
		}
	}
	return out
}

// Fig. 13: communication vs computation time as P=16 processors are spread
// over 1..16 nodes. Inter-node hops cost t_c^W = 500, intra-node hops 50
// (the paper's shared-memory system was measured 3–4× faster end to end).
func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "comm/comp split vs nodes x processors-per-node",
		Run: func(cfg RunConfig) []*Table {
			t := &Table{
				ID:      "fig13",
				Title:   "P=16 split across nodes (RBF model workload, one iteration)",
				Columns: []string{"config", "comm time", "comp time", "total T"},
			}
			n := 20000
			if cfg.Quick {
				n = 5000
			}
			for _, procs := range []int{16, 8, 4, 2, 1} {
				nodes := 16 / procs
				r := sim.Run(sim.Config{
					P: 16, N: n, M: 128, Epochs: 2,
					TWr: 1, TWc: 500, TZr: 5,
					ProcsPerNode: procs, IntraTWc: 50, Seed: cfg.Seed,
				})
				t.AddRow(fmt.Sprintf("%dx%d", nodes, procs), g(r.CommTime), g(r.CompTime), g(r.T))
			}
			t.Notes = append(t.Notes,
				"computation constant, communication grows toward the pure-distributed 16x1 configuration (paper Fig. 13)",
				"comm/comp columns are totals across the 16 machines; total T is the makespan")
			return []*Table{t}
		},
	})
}

// Table 1: the paper lists the two physical systems' hardware. Our substitute
// prints the simulated systems' cost-model constants, which play the same
// role in every runtime experiment.
func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "simulated system parameters (replaces hardware spec table)",
		Run: func(cfg RunConfig) []*Table {
			t := &Table{
				ID:      "tab1",
				Title:   "cost-model constants of the two simulated systems",
				Columns: []string{"parameter", "distributed (TSCC-like)", "shared-memory (UCM-like)"},
			}
			t.AddRow("tWr (W compute / submodel / point)", "1.0", "0.125")
			t.AddRow("tWc (W comm / submodel hop)", "10000", "1000")
			t.AddRow("tZr (Z compute / point / submodel)", "40", "5")
			t.AddRow("processors used", "128", "64")
			t.AddRow("per-iteration speed (fitted)", "1x", "~4.4x")
			t.Notes = append(t.Notes,
				"paper reports the shared-memory system 3-4x faster end to end (§8.1, §8.4); constants fitted to its measured hours",
				"original Table 1 lists Xeon E5-2670 vs E5-2699v3 hardware we do not have; see DESIGN.md §1")
			return []*Table{t}
		},
	})
}
