package experiments

import (
	"fmt"

	"repro/internal/binauto"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/retrieval"
)

// learnWorkload is a scaled stand-in for one of the paper's image-retrieval
// benchmarks (DESIGN.md §1 documents the substitution).
type learnWorkload struct {
	name     string
	n, d, l  int
	clusters int
	queries  int
	kTrue    int // K true Euclidean neighbours
	kRet     int // k retrieved Hamming neighbours
	mu0      float64
	muFactor float64
	iters    int
}

func sift10kLike(quick bool) learnWorkload {
	w := learnWorkload{
		name: "SIFT-10K analogue", n: 2000, d: 32, l: 8, clusters: 10,
		queries: 50, kTrue: 50, kRet: 50, mu0: 1e-4, muFactor: 2, iters: 10,
	}
	if quick {
		w.n, w.iters, w.queries = 600, 4, 20
	}
	return w
}

func cifarLike(quick bool) learnWorkload {
	w := learnWorkload{
		name: "CIFAR analogue", n: 4000, d: 48, l: 8, clusters: 10,
		queries: 50, kTrue: 100, kRet: 50, mu0: 5e-3, muFactor: 1.5, iters: 10,
	}
	if quick {
		w.n, w.iters, w.queries = 800, 4, 20
	}
	return w
}

// curveRow is one learning-curve sample (one MAC iteration).
type curveRow struct {
	iter      int
	eq, eba   float64
	precision float64
}

// runCurve trains a ParMAC BA with the given parallelism settings and
// records the per-iteration learning curve, the content of Figs. 7–9.
func runCurve(w learnWorkload, p, epochs int, shuffle bool, seed int64) []curveRow {
	ds, queries := dataset.WithQueries(w.n, w.queries, w.d, w.clusters, seed, true)
	truth := retrieval.GroundTruth(ds, queries, w.kTrue)

	shards := dataset.ShuffledShardIndices(w.n, p, nil, seed+1)
	prob := binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
		L: w.l, Mu0: w.mu0, MuFactor: w.muFactor, SVMLambda: 1e-4, Seed: seed,
	})
	eng := core.New(prob, core.Config{P: p, Epochs: epochs, Shuffle: shuffle, Seed: seed})
	defer eng.Shutdown()

	val := &binauto.Validation{Base: ds, Queries: queries, Truth: truth, K: w.kRet}
	rows := make([]curveRow, 0, w.iters)
	for it := 0; it < w.iters; it++ {
		eng.Iterate()
		eq, eba := prob.Stats()
		rows = append(rows, curveRow{
			iter: it, eq: eq, eba: eba,
			precision: val.Score(prob.AssembleModel()),
		})
	}
	return rows
}

func curveTable(id, title string, series map[string][]curveRow, order []string) *Table {
	t := &Table{ID: id, Title: title,
		Columns: []string{"config", "iter", "E_Q", "E_BA", "precision"}}
	for _, name := range order {
		for _, r := range series[name] {
			t.AddRow(name, d(r.iter), f1(r.eq), f1(r.eba), f3(r.precision))
		}
	}
	return t
}

func lastRow(rows []curveRow) curveRow { return rows[len(rows)-1] }

// Fig. 7: SIFT-10K learning curves — the effect of the number of epochs e in
// the W step at P=1, and of the number of machines P at fixed e.
func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "SIFT-10K learning curves: epochs and machines",
		Run: func(cfg RunConfig) []*Table {
			w := sift10kLike(cfg.Quick)
			epochs := []int{1, 2, 4, 8}
			machines := []int{1, 4, 8}
			if cfg.Quick {
				epochs = []int{1, 8}
				machines = []int{1, 4}
			}

			series := map[string][]curveRow{}
			var order []string
			for _, e := range epochs {
				name := fmt.Sprintf("P=1 e=%d", e)
				series[name] = runCurve(w, 1, e, false, cfg.Seed)
				order = append(order, name)
			}
			t1 := curveTable("fig7", w.name+": varying epochs at P=1", series, order)
			t1.Notes = append(t1.Notes, "few epochs cause only a small degradation (paper §8.2)")

			series2 := map[string][]curveRow{}
			var order2 []string
			for _, e := range []int{1, 8} {
				for _, p := range machines {
					name := fmt.Sprintf("P=%d e=%d", p, e)
					series2[name] = runCurve(w, p, e, false, cfg.Seed)
					order2 = append(order2, name)
				}
			}
			t2 := curveTable("fig7", w.name+": varying machines at fixed epochs", series2, order2)
			t2.Notes = append(t2.Notes, "curves for different P nearly coincide (paper Fig. 7 right)")
			return []*Table{t1, t2}
		},
	})
}

// Fig. 8: CIFAR learning curves, same protocol at CIFAR-like shape.
func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "CIFAR learning curves: epochs and machines",
		Run: func(cfg RunConfig) []*Table {
			w := cifarLike(cfg.Quick)
			epochs := []int{1, 2, 4, 8}
			machines := []int{1, 8, 16}
			if cfg.Quick {
				epochs = []int{2, 8}
				machines = []int{1, 8}
			}
			series := map[string][]curveRow{}
			var order []string
			for _, e := range epochs {
				name := fmt.Sprintf("P=1 e=%d", e)
				series[name] = runCurve(w, 1, e, false, cfg.Seed)
				order = append(order, name)
			}
			t1 := curveTable("fig8", w.name+": varying epochs at P=1", series, order)

			series2 := map[string][]curveRow{}
			var order2 []string
			for _, e := range []int{2, 8} {
				for _, p := range machines {
					name := fmt.Sprintf("P=%d e=%d", p, e)
					series2[name] = runCurve(w, p, e, false, cfg.Seed)
					order2 = append(order2, name)
				}
			}
			t2 := curveTable("fig8", w.name+": varying machines at fixed epochs", series2, order2)
			return []*Table{t1, t2}
		},
	})
}

// Fig. 9: the effect of minibatch/ring shuffling in the W step (§4.3): with
// shuffling on, E_Q is generally lower at no extra cost.
func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "effect of shuffling in the W step",
		Run: func(cfg RunConfig) []*Table {
			w := cifarLike(cfg.Quick)
			configs := []struct {
				p, e int
			}{{1, 2}, {8, 2}, {8, 8}}
			if cfg.Quick {
				configs = configs[:2]
			}
			seeds := []int64{cfg.Seed, cfg.Seed + 100, cfg.Seed + 200}
			if cfg.Quick {
				seeds = seeds[:1]
			}
			t := &Table{ID: "fig9",
				Title:   w.name + ": shuffled vs unshuffled W step (final values, mean over seeds)",
				Columns: []string{"config", "E_Q plain", "E_Q shuffled", "E_BA plain", "E_BA shuffled", "prec plain", "prec shuffled"}}
			for _, c := range configs {
				var plain, shuf curveRow
				for _, seed := range seeds {
					p := lastRow(runCurve(w, c.p, c.e, false, seed))
					s := lastRow(runCurve(w, c.p, c.e, true, seed))
					plain.eq += p.eq / float64(len(seeds))
					plain.eba += p.eba / float64(len(seeds))
					plain.precision += p.precision / float64(len(seeds))
					shuf.eq += s.eq / float64(len(seeds))
					shuf.eba += s.eba / float64(len(seeds))
					shuf.precision += s.precision / float64(len(seeds))
				}
				t.AddRow(fmt.Sprintf("P=%d e=%d", c.p, c.e),
					f1(plain.eq), f1(shuf.eq), f1(plain.eba), f1(shuf.eba),
					f3(plain.precision), f3(shuf.precision))
			}
			t.Notes = append(t.Notes, "shuffling generally reduces E_Q with no increase in runtime (paper §8.2)")
			return []*Table{t}
		},
	})
}

// Fig. 3: one epoch of the synchronous W step with P=4 machines and M=12
// submodels: which submodels each machine trains at each clock tick.
func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "synchronous W-step schedule (P=4, M=12)",
		Run: func(cfg RunConfig) []*Table {
			const P, M = 4, 12
			t := &Table{ID: "fig3",
				Title:   "submodels trained per machine per tick (one epoch + final copy round)",
				Columns: []string{"tick", "machine 1", "machine 2", "machine 3", "machine 4"}}
			block := M / P
			for tick := 1; tick <= P+1; tick++ {
				row := []string{d(tick)}
				for m := 0; m < P; m++ {
					// Block b starts at machine b and moves one step per tick.
					b := ((m-(tick-1))%P + P) % P
					lo, hi := b*block+1, b*block+block
					if tick == P+1 {
						row = append(row, fmt.Sprintf("holds %d-%d (done)", lo, hi))
					} else {
						row = append(row, fmt.Sprintf("train %d-%d", lo, hi))
					}
				}
				t.AddRow(row...)
			}
			t.Notes = append(t.Notes, "after P ticks every submodel has been updated on the whole dataset (paper Fig. 3)")
			return []*Table{t}
		},
	})
}
