package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() RunConfig { return RunConfig{Quick: true, Seed: 7} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "tab1", "tab-sift1b"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a  bb", "1  2", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestRunAndPrintUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAndPrint("nope", quickCfg(), &buf); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestFig3ScheduleIsAPermutationPerTick(t *testing.T) {
	e, _ := ByID("fig3")
	tabs := e.Run(quickCfg())
	if len(tabs) != 1 || len(tabs[0].Rows) != 5 {
		t.Fatalf("fig3 shape wrong: %d tables", len(tabs))
	}
	// In each training tick, the four machines must train disjoint blocks
	// covering 1..12.
	for tick := 0; tick < 4; tick++ {
		row := tabs[0].Rows[tick]
		seen := map[string]bool{}
		for _, cell := range row[1:] {
			if seen[cell] {
				t.Fatalf("tick %d: duplicate block %q", tick+1, cell)
			}
			seen[cell] = true
		}
		if len(seen) != 4 {
			t.Fatalf("tick %d: %d distinct blocks", tick+1, len(seen))
		}
	}
}

func TestFig4CurveShape(t *testing.T) {
	e, _ := ByID("fig4")
	tab := e.Run(quickCfg())[0]
	// S(64) ≈ 64 (near perfect), S at the max P* > 512, and decline after.
	vals := map[int]float64{}
	for _, r := range tab.Rows {
		p, _ := strconv.Atoi(r[0])
		s, _ := strconv.ParseFloat(r[1], 64)
		vals[p] = s
	}
	if vals[64] < 60 {
		t.Fatalf("S(64) = %v, want near perfect", vals[64])
	}
	if vals[1131] <= 512 {
		t.Fatalf("S at P*=1131 = %v, should exceed M=512", vals[1131])
	}
	if vals[2000] >= vals[1131] {
		t.Fatalf("speedup should decline past the max: %v vs %v", vals[2000], vals[1131])
	}
}

func TestFig5Tables(t *testing.T) {
	e, _ := ByID("fig5")
	tabs := e.Run(quickCfg())
	if len(tabs) < 2 {
		t.Fatalf("fig5 produced %d tables", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Fatal("empty fig5 table")
		}
	}
}

func TestFig7LearningCurvesImprove(t *testing.T) {
	e, _ := ByID("fig7")
	tabs := e.Run(quickCfg())
	if len(tabs) != 2 {
		t.Fatalf("fig7 tables = %d", len(tabs))
	}
	// Within each config the E_BA at the last iteration should not exceed
	// the first by much (training works).
	first := map[string]float64{}
	last := map[string]float64{}
	for _, r := range tabs[0].Rows {
		v, _ := strconv.ParseFloat(r[3], 64)
		if _, ok := first[r[0]]; !ok {
			first[r[0]] = v
		}
		last[r[0]] = v
	}
	for cfg, f := range first {
		if last[cfg] > f*1.2 {
			t.Fatalf("config %s: E_BA worsened %v -> %v", cfg, f, last[cfg])
		}
	}
}

func TestFig9ShuffleNotMuchWorse(t *testing.T) {
	e, _ := ByID("fig9")
	tab := e.Run(quickCfg())[0]
	for _, r := range tab.Rows {
		plain, _ := strconv.ParseFloat(r[1], 64)
		shuf, _ := strconv.ParseFloat(r[2], 64)
		if shuf > 1.5*plain {
			t.Fatalf("config %s: shuffled E_Q %v much worse than plain %v", r[0], shuf, plain)
		}
	}
}

func TestFig10SpeedupShape(t *testing.T) {
	e, _ := ByID("fig10")
	tabs := e.Run(quickCfg())
	if len(tabs) != 6 { // 3 workloads × (experiment, theory)
		t.Fatalf("fig10 tables = %d", len(tabs))
	}
	// First workload, experiment table, e=1 row: S(8) ≈ 8 within noise.
	exp := tabs[0]
	row := exp.Rows[0]
	s8, _ := strconv.ParseFloat(row[2], 64) // P=8 column
	if s8 < 6.5 || s8 > 8.5 {
		t.Fatalf("simulated S(8) = %v, want ≈8", s8)
	}
	// Theory and experiment agree within 25% at each grid point of the
	// first workload.
	th := tabs[1]
	for ri := range exp.Rows {
		for ci := 1; ci < len(exp.Rows[ri]); ci++ {
			a, _ := strconv.ParseFloat(exp.Rows[ri][ci], 64)
			b, _ := strconv.ParseFloat(th.Rows[ri][ci], 64)
			if b == 0 {
				continue
			}
			if a/b > 1.3 || b/a > 1.3 {
				t.Fatalf("sim %v vs theory %v diverge at row %d col %d", a, b, ri, ci)
			}
		}
	}
}

func TestFig11RBFBeatsLinearEventually(t *testing.T) {
	e, _ := ByID("fig11")
	tab := e.Run(quickCfg())[0]
	// Compare the best (early-stopped) recall over each curve, the quantity
	// tab-sift1b reports.
	var lin, rbf float64
	for _, row := range tab.Rows {
		l, _ := strconv.ParseFloat(row[1], 64)
		r, _ := strconv.ParseFloat(row[2], 64)
		if l > lin {
			lin = l
		}
		if r > rbf {
			rbf = r
		}
	}
	t.Logf("best recall: linear %v, RBF %v", lin, rbf)
	if rbf < lin-0.1 {
		t.Fatalf("RBF recall %v clearly below linear %v", rbf, lin)
	}
}

func TestFig12MonotoneInR(t *testing.T) {
	e, _ := ByID("fig12")
	tab := e.Run(quickCfg())[0]
	for col := 1; col <= 3; col++ {
		prev := -1.0
		for _, r := range tab.Rows {
			v, _ := strconv.ParseFloat(r[col], 64)
			if v < prev {
				t.Fatalf("recall not monotone in R at col %d: %v < %v", col, v, prev)
			}
			prev = v
		}
	}
}

func TestFig13CommOrdering(t *testing.T) {
	e, _ := ByID("fig13")
	tab := e.Run(quickCfg())[0]
	prev := -1.0
	for _, r := range tab.Rows {
		comm, _ := strconv.ParseFloat(r[1], 64)
		if comm < prev {
			t.Fatalf("comm time should grow toward distributed configs: %v after %v", comm, prev)
		}
		prev = comm
	}
}

func TestTabSIFT1BShape(t *testing.T) {
	e, _ := ByID("tab-sift1b")
	tab := e.Run(quickCfg())[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	linH, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	kerH, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
	linShared, _ := strconv.ParseFloat(tab.Rows[0][3], 64)
	if kerH <= linH {
		t.Fatalf("kernel hours %v should exceed linear %v", kerH, linH)
	}
	// Shared-memory runs more iterations in the paper but is still faster
	// per unit work; just require it not be slower than distributed.
	if linShared > linH {
		t.Fatalf("shared %v should not exceed distributed %v", linShared, linH)
	}
}

func TestTab1Prints(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAndPrint("tab1", quickCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tWc") {
		t.Fatal("tab1 output missing parameters")
	}
}
