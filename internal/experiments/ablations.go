package experiments

import (
	"fmt"
	"time"

	"repro/internal/binauto"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/speedup"
)

// Ablations of the design choices DESIGN.md calls out. They are not paper
// figures; they quantify the trade-offs the paper discusses in prose.

// abl-z: exact Gray-code enumeration vs relaxed+alternating optimisation in
// the Z step (§3.1 offers both; the paper enumerates up to L=16 and
// alternates beyond). Compares final objectives and per-point solve cost.
func init() {
	register(Experiment{
		ID:    "abl-z",
		Title: "ablation: exact vs alternating Z step",
		Run: func(cfg RunConfig) []*Table {
			n, d, l := 1200, 24, 10
			if cfg.Quick {
				n = 400
			}
			ds, _ := dataset.WithQueries(n, 1, d, 8, cfg.Seed, true)
			t := &Table{ID: "abl-z",
				Title:   fmt.Sprintf("BA L=%d, N=%d: Z-step solver comparison", l, n),
				Columns: []string{"solver", "final E_Q", "final E_BA", "Z µs/point"}}
			for _, m := range []binauto.ZMethod{binauto.ZEnumerate, binauto.ZAlternate} {
				name := "enumerate (exact)"
				if m == binauto.ZAlternate {
					name = "alternate (approx)"
				}
				shards := dataset.ShardIndices(n, 4, nil)
				prob := binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
					L: l, Mu0: 1e-3, MuFactor: 2, ZMethod: m, Seed: cfg.Seed,
				})
				eng := core.New(prob, core.Config{P: 4, Epochs: 1, Seed: cfg.Seed})
				start := time.Now()
				eng.Run(6)
				elapsed := time.Since(start)
				eng.Shutdown()
				eq, eba := prob.Stats()
				perPoint := float64(elapsed.Microseconds()) / float64(6*n)
				t.AddRow(name, f1(eq), f1(eba), f2(perPoint))
			}
			t.Notes = append(t.Notes,
				"alternating trades a small E_Q gap for per-point cost independent of 2^L",
				"timing includes the W step; the Z step dominates at these sizes")
			return []*Table{t}
		},
	})
}

// abl-groups: how many circulating decoder submodels to form (§5.4 groups
// the D decoders into L groups so all M = 2L units are equal-sized). The
// choice does not change the learning problem, only the parallelism and
// message sizes — exactly what the table shows.
func init() {
	register(Experiment{
		ID:    "abl-groups",
		Title: "ablation: decoder submodel grouping (§5.4)",
		Run: func(cfg RunConfig) []*Table {
			n, d, l := 1000, 32, 8
			if cfg.Quick {
				n = 400
			}
			ds, _ := dataset.WithQueries(n, 1, d, 8, cfg.Seed, true)
			t := &Table{ID: "abl-groups",
				Title:   fmt.Sprintf("BA L=%d, D=%d: decoder grouping", l, d),
				Columns: []string{"groups G", "submodels M", "final E_BA", "bytes/iter", "theory S(P=16)"}}
			for _, g := range []int{1, l / 2, l, d} {
				shards := dataset.ShardIndices(n, 4, nil)
				prob := binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
					L: l, Mu0: 1e-3, MuFactor: 2, DecoderGroups: g, Seed: cfg.Seed,
				})
				eng := core.New(prob, core.Config{P: 4, Epochs: 1, Seed: cfg.Seed})
				res := eng.Run(5)
				eng.Shutdown()
				_, eba := prob.Stats()
				m := l + g
				th := speedup.Params{N: n, M: m, E: 1, TWr: 1, TWc: 100, TZr: 10}
				t.AddRow(d2(g), d2(m), f1(eba), d2(int(res[4].ModelBytes)), f1(th.Speedup(16)))
			}
			t.Notes = append(t.Notes,
				"G=L (the §5.4 default) balances submodel sizes and doubles W-step parallelism vs a single decoder unit",
				"quality is grouping-independent (same updates, different packaging)")
			return []*Table{t}
		},
	})
}

// abl-within: e circulation epochs vs e within-machine passes with a single
// circulation (§4.2's two-communication-round W step).
func init() {
	register(Experiment{
		ID:    "abl-within",
		Title: "ablation: circulation epochs vs within-machine passes (§4.2)",
		Run: func(cfg RunConfig) []*Table {
			n, d, l := 1200, 24, 8
			if cfg.Quick {
				n = 400
			}
			ds, _ := dataset.WithQueries(n, 1, d, 8, cfg.Seed, true)
			t := &Table{ID: "abl-within",
				Title:   "4 total passes per W step, packaged two ways",
				Columns: []string{"schedule", "final E_Q", "final E_BA", "model hops/iter"}}
			type sched struct {
				name           string
				epochs, within int
			}
			for _, s := range []sched{
				{"e=4 circulation epochs", 4, 1},
				{"e=1 epoch x 4 within-machine passes", 1, 4},
			} {
				shards := dataset.ShardIndices(n, 4, nil)
				prob := binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
					L: l, Mu0: 1e-3, MuFactor: 2, Seed: cfg.Seed,
				})
				eng := core.New(prob, core.Config{P: 4, Epochs: s.epochs, Within: s.within, Seed: cfg.Seed})
				res := eng.Run(5)
				eng.Shutdown()
				eq, eba := prob.Stats()
				t.AddRow(s.name, f1(eq), f1(eba), d2(int(res[4].ModelMessages)))
			}
			t.Notes = append(t.Notes,
				"within-machine passes cut the W-step communication to ~2 rounds at a small shuffling loss (paper §4.2)")
			return []*Table{t}
		},
	})
}

func d2(v int) string { return fmt.Sprintf("%d", v) }
