package sim

import "math"

// RunSynchronous executes the *synchronous* schedule of §5.1 directly: an
// imaginary clock ticks, and at each tick every machine processes its ⌈M/P⌉
// portion of submodels on its N/P points and then sends it to its successor;
// after P·e ticks plus a final copy round the W step ends, and the Z step
// runs in parallel. This is the schedule the closed-form T(P) of eq. (9) is
// derived from, so the two must agree exactly for homogeneous machines —
// tested in sync_test.go. The asynchronous Run is the realistic engine-like
// variant; this one exists to validate the theory end of the bridge.
func RunSynchronous(cfg Config) Result {
	if cfg.P <= 0 || cfg.M <= 0 || cfg.N <= 0 {
		panic("sim: P, M, N must be positive")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	p := float64(cfg.P)
	n := float64(cfg.N)
	m := float64(cfg.M)
	e := float64(cfg.Epochs)
	portion := math.Ceil(m / p) // submodels per machine per tick

	var res Result
	if cfg.P == 1 {
		// No communication on a single machine (eq. 10).
		res.TW = m * n * e * cfg.TWr
		res.CompTime = res.TW
	} else {
		// Tick time: process the portion, then send it (eq. 8's derivation).
		tick := portion * (cfg.TWr*n/p + cfg.TWc)
		res.TW = tick*p*e + portion*cfg.TWc*p // e epochs + final copy round
		res.CommTime = (portion*cfg.TWc)*p*e*p + portion*cfg.TWc*p*p
		res.CompTime = portion * (cfg.TWr * n / p) * p * e * p
		res.Hops = int(portion * p * (e*p + p - 1))
	}
	res.TZ = m * n / p * cfg.TZr // eq. (7)
	res.CompTime += m * n * cfg.TZr
	res.T = res.TW + res.TZ
	return res
}

// SynchronousSpeedup sweeps machine counts under the synchronous schedule.
func SynchronousSpeedup(cfg Config, ps []int) []float64 {
	t1 := SerialTime(cfg)
	out := make([]float64, len(ps))
	for i, p := range ps {
		c := cfg
		c.P = p
		out[i] = t1 / RunSynchronous(c).T
	}
	return out
}
