package sim

import (
	"math"
	"testing"

	"repro/internal/speedup"
)

func TestSynchronousMatchesClosedFormExactly(t *testing.T) {
	// RunSynchronous implements the schedule eq. (9) was derived from, so
	// T(P) must match the speedup package to machine precision.
	cases := []Config{
		{P: 4, N: 50000, M: 32, Epochs: 1, TWr: 1, TWc: 100, TZr: 10},
		{P: 16, N: 50000, M: 32, Epochs: 8, TWr: 1, TWc: 1000, TZr: 200},
		{P: 7, N: 10000, M: 5, Epochs: 2, TWr: 2, TWc: 50, TZr: 3}, // M < P, non-divisible
		{P: 1, N: 1000, M: 8, Epochs: 3, TWr: 1, TWc: 100, TZr: 1},
	}
	for ci, cfg := range cases {
		th := speedup.Params{N: cfg.N, M: cfg.M, E: cfg.Epochs, TWr: cfg.TWr, TWc: cfg.TWc, TZr: cfg.TZr}
		got := RunSynchronous(cfg).T
		want := th.T(cfg.P)
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("case %d: sync T=%v, closed form %v", ci, got, want)
		}
	}
}

func TestSynchronousSpeedupMatchesTheoryCurve(t *testing.T) {
	cfg := Config{N: 100000, M: 64, Epochs: 1, TWr: 1, TWc: 500, TZr: 20}
	th := speedup.Params{N: cfg.N, M: cfg.M, E: cfg.Epochs, TWr: cfg.TWr, TWc: cfg.TWc, TZr: cfg.TZr}
	ps := []int{2, 8, 32, 64, 100, 256}
	got := SynchronousSpeedup(cfg, ps)
	for i, p := range ps {
		want := th.Speedup(float64(p))
		if math.Abs(got[i]-want) > 1e-9*want {
			t.Fatalf("P=%d: sync speedup %v vs theory %v", p, got[i], want)
		}
	}
}

func TestAsyncNeverSlowerThanSynchronous(t *testing.T) {
	// The synchronous schedule idles machines at tick boundaries; the
	// asynchronous queues cannot do worse (the paper's footnote 3: the
	// synchronous estimate "is an upper bound").
	for _, cfg := range []Config{
		{P: 8, N: 50000, M: 32, Epochs: 1, TWr: 1, TWc: 100, TZr: 10, Seed: 1},
		{P: 12, N: 20000, M: 7, Epochs: 2, TWr: 1, TWc: 1000, TZr: 1, Seed: 2}, // M not divisible by P
		{P: 32, N: 50000, M: 8, Epochs: 1, TWr: 1, TWc: 2000, TZr: 1, Seed: 3}, // P >> M
	} {
		async := Run(cfg).T
		sync := RunSynchronous(cfg).T
		if async > sync*(1+1e-9) {
			t.Fatalf("async T=%v exceeds synchronous bound %v (cfg %+v)", async, sync, cfg)
		}
	}
}
