// Package sim is a discrete-event simulator of the ParMAC schedule under the
// cost model of §5.1. It replaces the paper's physical clusters (Table 1):
// this reproduction runs on a single CPU, so wall-clock scaling measurements
// are impossible — instead we execute the actual asynchronous W-step queue
// discipline (each machine: receive a submodel, train it on the local shard,
// send it to the successor) and the embarrassingly parallel Z step in virtual
// time, parameterised by the same constants the paper's model uses:
//
//	t_r^W  computation time per submodel and data point in the W step
//	t_c^W  communication time per submodel hop
//	t_r^Z  computation time per data point and submodel in the Z step
//
// plus per-machine speed factors α_p (load balancing, §4.3), optional noise
// (machines "do vary for various reasons", §4.3), and a node topology with
// distinct intra-node and inter-node communication costs (§8.5 / Fig. 13).
//
// The simulated speedups are the "experimental" curves of Fig. 10; the
// closed-form model of internal/speedup gives its "theory" curves.
package sim

import (
	"container/heap"
	"math/rand"

	"repro/internal/dataset"
)

// Config describes one simulated ParMAC deployment and workload.
type Config struct {
	P      int // machines
	N      int // total training points
	M      int // circulating (effective equal-size) submodels
	Epochs int // e

	TWr float64 // W-step compute per submodel per point
	TWc float64 // W-step communication per submodel hop (inter-node)
	TZr float64 // Z-step compute per point per submodel

	// Alphas are per-machine relative speeds α_p (§4.3); nil means identical
	// machines. Shards are sized proportionally to α_p, the paper's load
	// balancing rule.
	Alphas []float64

	// Noise is the coefficient of variation of a multiplicative jitter on
	// every service time (0 = deterministic). Models the runtime variation
	// the paper attributes to ventilation, co-tenant processes, etc.
	Noise float64
	Seed  int64

	// Shuffle randomises the ring at each epoch (§4.3).
	Shuffle bool

	// ProcsPerNode > 0 places machines on nodes of that size; hops between
	// machines in the same node cost IntraTWc instead of TWc (§8.5). 0
	// means all machines share one node... with TWc used everywhere.
	ProcsPerNode int
	IntraTWc     float64
}

// Result reports the virtual-time outcome of one simulated iteration.
type Result struct {
	TW float64 // W-step makespan
	TZ float64 // Z-step makespan
	T  float64 // TW + TZ

	CommTime float64 // total machine time spent receiving/sending
	CompTime float64 // total machine time spent training + Z step
	IdleTime float64 // total machine idle time during the W step

	Hops int // submodel transfers
}

// event is a token arrival at a machine.
type event struct {
	time    float64
	machine int
	tok     *simToken
}

type simToken struct {
	id    int
	step  int
	route []int
	train int
}

type eventQueue []event

func (q eventQueue) Len() int      { return len(q) }
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	// Deterministic tie-breaking.
	if q[i].machine != q[j].machine {
		return q[i].machine < q[j].machine
	}
	return q[i].tok.id < q[j].tok.id
}
func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Run simulates one ParMAC iteration (W step + Z step) and returns its
// virtual-time result.
func Run(cfg Config) Result {
	if cfg.P <= 0 || cfg.M <= 0 || cfg.N <= 0 {
		panic("sim: P, M, N must be positive")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	alphas := cfg.Alphas
	if alphas == nil {
		alphas = make([]float64, cfg.P)
		for i := range alphas {
			alphas[i] = 1
		}
	}
	if len(alphas) != cfg.P {
		panic("sim: len(Alphas) must equal P")
	}
	shardSizes := dataset.ShardSizes(cfg.N, cfg.P, alphas)

	jitter := func() float64 {
		if cfg.Noise <= 0 {
			return 1
		}
		j := 1 + rng.NormFloat64()*cfg.Noise
		if j < 0.05 {
			j = 0.05
		}
		return j
	}

	routes := buildRoutes(cfg, rng)

	// Event-driven W step: each machine is a FIFO server. Serving one token
	// costs the receive/send overhead plus, on training visits, a pass over
	// the local shard. Communication does not overlap computation (§5.1).
	var q eventQueue
	for id := range routes {
		tok := &simToken{id: id, route: routes[id], train: cfg.Epochs * cfg.P}
		heap.Push(&q, event{time: 0, machine: tok.route[0], tok: tok})
	}
	nextFree := make([]float64, cfg.P)
	var res Result
	for q.Len() > 0 {
		ev := heap.Pop(&q).(event)
		m := ev.machine
		start := ev.time
		if nextFree[m] > start {
			start = nextFree[m]
		} else {
			res.IdleTime += start - nextFree[m]
		}
		service := 0.0
		if ev.tok.step > 0 { // the initial placement is free
			c := cfg.hopCost(ev.tok.route[ev.tok.step-1], m) * jitter()
			service += c
			res.CommTime += c
		}
		if ev.tok.step < ev.tok.train {
			c := cfg.TWr * float64(shardSizes[m]) / alphas[m] * jitter()
			service += c
			res.CompTime += c
		}
		done := start + service
		nextFree[m] = done
		ev.tok.step++
		if ev.tok.step < len(ev.tok.route) {
			res.Hops++
			heap.Push(&q, event{time: done, machine: ev.tok.route[ev.tok.step], tok: ev.tok})
		}
	}
	for _, t := range nextFree {
		if t > res.TW {
			res.TW = t
		}
	}

	// Z step: perfectly parallel, makespan of the slowest machine (eq. 7
	// generalised to heterogeneous shards).
	for m := 0; m < cfg.P; m++ {
		c := float64(cfg.M) * float64(shardSizes[m]) * cfg.TZr / alphas[m] * jitter()
		res.CompTime += c
		if c > res.TZ {
			res.TZ = c
		}
	}
	res.T = res.TW + res.TZ
	return res
}

// hopCost is the communication cost of moving one submodel from machine a to
// machine b, honouring the node topology of §8.5.
func (cfg Config) hopCost(a, b int) float64 {
	if a == b {
		return 0 // staying put costs nothing (single-machine ring)
	}
	if cfg.ProcsPerNode <= 0 || cfg.IntraTWc <= 0 {
		return cfg.TWc
	}
	if a/cfg.ProcsPerNode == b/cfg.ProcsPerNode {
		return cfg.IntraTWc
	}
	return cfg.TWc
}

// buildRoutes mirrors the engine's itineraries: e training epochs over a
// (possibly per-epoch shuffled) ring, then a final round of P−1 copy hops.
func buildRoutes(cfg Config, rng *rand.Rand) [][]int {
	p, e := cfg.P, cfg.Epochs
	succ := make([][]int, e+1)
	for ep := 0; ep <= e; ep++ {
		order := make([]int, p)
		for i := range order {
			order[i] = i
		}
		if cfg.Shuffle {
			rng.Shuffle(p, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		s := make([]int, p)
		for i, r := range order {
			s[r] = order[(i+1)%p]
		}
		succ[ep] = s
	}
	routes := make([][]int, cfg.M)
	for id := 0; id < cfg.M; id++ {
		home := id % p
		route := make([]int, 0, (e+1)*p-1)
		cur := home
		for v := 0; v < (e+1)*p-1; v++ {
			route = append(route, cur)
			ep := (v + 1) / p
			if ep > e {
				ep = e
			}
			cur = succ[ep][cur]
		}
		routes[id] = route
	}
	return routes
}

// SerialTime is the single-machine reference T(1) of eq. (10): no
// communication, M·e passes for the W step plus the Z step.
func SerialTime(cfg Config) float64 {
	n, m, e := float64(cfg.N), float64(cfg.M), float64(cfg.Epochs)
	if cfg.Epochs <= 0 {
		e = 1
	}
	return m*n*e*cfg.TWr + m*n*cfg.TZr
}

// Speedup sweeps machine counts and returns the simulated strong-scaling
// speedup S(P) = T(1)/T(P) for each (the Fig. 10 "experiment" curves).
func Speedup(cfg Config, ps []int) []float64 {
	t1 := SerialTime(cfg)
	out := make([]float64, len(ps))
	for i, p := range ps {
		c := cfg
		c.P = p
		c.Alphas = nil // homogeneous sweep
		r := Run(c)
		out[i] = t1 / r.T
	}
	return out
}
