package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/speedup"
)

func baseCfg() Config {
	return Config{P: 8, N: 50000, M: 32, Epochs: 1, TWr: 1, TWc: 100, TZr: 10, Seed: 1}
}

func TestDeterministicWithoutNoise(t *testing.T) {
	a, b := Run(baseCfg()), Run(baseCfg())
	if a.T != b.T || a.TW != b.TW || a.TZ != b.TZ {
		t.Fatal("noise-free simulation must be deterministic")
	}
}

func TestHopsAccounting(t *testing.T) {
	cfg := baseCfg()
	r := Run(cfg)
	// Each of M tokens makes (e+1)P−2 paid hops (initial placement is free).
	want := cfg.M * ((cfg.Epochs+1)*cfg.P - 2)
	if r.Hops != want {
		t.Fatalf("hops = %d, want %d", r.Hops, want)
	}
}

func TestZStepMakespan(t *testing.T) {
	cfg := baseCfg()
	r := Run(cfg)
	// Equal machines: TZ = M·(N/P)·tZr exactly (eq. 7).
	want := float64(cfg.M) * float64(cfg.N) / float64(cfg.P) * cfg.TZr
	if math.Abs(r.TZ-want) > 1e-6*want {
		t.Fatalf("TZ = %v, want %v", r.TZ, want)
	}
}

func TestSimTracksTheoryModel(t *testing.T) {
	// The asynchronous simulation must stay close to the §5.1 synchronous
	// model (which is an upper bound up to edge effects).
	cfg := baseCfg()
	th := speedup.Params{N: cfg.N, M: cfg.M, E: cfg.Epochs, TWr: cfg.TWr, TWc: cfg.TWc, TZr: cfg.TZr}
	for _, p := range []int{2, 4, 8, 16, 32} {
		c := cfg
		c.P = p
		got := SerialTime(c) / Run(c).T
		want := th.Speedup(float64(p))
		if math.Abs(got-want) > 0.25*want {
			t.Fatalf("P=%d: sim speedup %v vs theory %v", p, got, want)
		}
	}
}

func TestNearPerfectSpeedupRegime(t *testing.T) {
	// Cheap communication, P ≤ M: S(P) ≈ P (§5.2).
	cfg := Config{N: 100000, M: 64, Epochs: 1, TWr: 1, TWc: 1, TZr: 10, Seed: 2}
	ss := Speedup(cfg, []int{2, 8, 32, 64})
	wants := []float64{2, 8, 32, 64}
	for i, s := range ss {
		if s < 0.9*wants[i] || s > wants[i]+1e-9 {
			t.Fatalf("S(%v) = %v, want ≈ perfect", wants[i], s)
		}
	}
}

func TestSpeedupSaturatesBeyondM(t *testing.T) {
	// P ≫ M with costly communication: speedup must fall off its peak
	// (Fig. 4's shape).
	cfg := Config{N: 50000, M: 8, Epochs: 1, TWr: 1, TWc: 1000, TZr: 1, Seed: 3}
	ss := Speedup(cfg, []int{4, 8, 64, 256})
	if !(ss[1] > ss[0]) {
		t.Fatalf("speedup should still grow to P=M: %v", ss)
	}
	if ss[3] >= ss[2] {
		t.Fatalf("speedup should decay for P ≫ M with expensive comm: %v", ss)
	}
}

func TestMoreEpochsLowerSpeedup(t *testing.T) {
	// §8.3: more epochs → more communication → flatter speedups.
	mk := func(e int) float64 {
		cfg := Config{N: 50000, M: 32, Epochs: e, TWr: 1, TWc: 10000, TZr: 200, Seed: 4}
		return Speedup(cfg, []int{64})[0]
	}
	if s1, s8 := mk(1), mk(8); s8 >= s1 {
		t.Fatalf("e=8 speedup %v should be below e=1 %v", s8, s1)
	}
}

func TestHeterogeneousMachinesBalancedByAlphas(t *testing.T) {
	// §4.3: loading machines proportionally to α equalises their runtime;
	// the makespan with a 2×-fast machine (and proportional shard) should
	// be close to the homogeneous-equivalent capacity.
	base := Config{P: 4, N: 40000, M: 16, Epochs: 1, TWr: 1, TWc: 0.001, TZr: 1, Seed: 5}
	hom := Run(base)
	het := base
	het.Alphas = []float64{2, 1, 1, 1} // total capacity 5 vs 4
	r := Run(het)
	// More capacity → faster iteration; balancing must realise most of it.
	if r.T >= hom.T {
		t.Fatalf("heterogeneous-balanced run (%v) should beat homogeneous (%v)", r.T, hom.T)
	}
	ratio := hom.T / r.T
	if ratio < 1.1 || ratio > 1.4 { // ideal 5/4 = 1.25
		t.Fatalf("capacity ratio realised %v, want ≈1.25", ratio)
	}
}

func TestNoiseChangesButStaysClose(t *testing.T) {
	cfg := baseCfg()
	cfg.Noise = 0.1
	a := Run(cfg)
	cfg.Seed = 99
	b := Run(cfg)
	if a.T == b.T {
		t.Fatal("noisy runs with different seeds should differ")
	}
	clean := Run(baseCfg())
	if math.Abs(a.T-clean.T) > 0.3*clean.T {
		t.Fatalf("10%% noise moved runtime too much: %v vs %v", a.T, clean.T)
	}
}

func TestNodeTopologyCommSplit(t *testing.T) {
	// Fig. 13: with P=16 fixed, fewer processors per node → more inter-node
	// hops → more communication time, while computation stays constant.
	mk := func(procsPerNode int) Result {
		return Run(Config{
			P: 16, N: 20000, M: 32, Epochs: 1, TWr: 1, TWc: 500, TZr: 1,
			ProcsPerNode: procsPerNode, IntraTWc: 50, Seed: 6,
		})
	}
	shared := mk(16) // 1×16: all intra-node
	distrib := mk(1) // 16×1: all inter-node
	mid := mk(4)     // 4×4
	if !(shared.CommTime < mid.CommTime && mid.CommTime < distrib.CommTime) {
		t.Fatalf("comm time ordering wrong: %v %v %v", shared.CommTime, mid.CommTime, distrib.CommTime)
	}
	if math.Abs(shared.CompTime-distrib.CompTime) > 1e-6*shared.CompTime {
		t.Fatalf("computation time must not depend on topology: %v vs %v", shared.CompTime, distrib.CompTime)
	}
}

func TestShuffledRingSameWorkload(t *testing.T) {
	cfg := baseCfg()
	cfg.Shuffle = true
	r := Run(cfg)
	want := cfg.M * ((cfg.Epochs+1)*cfg.P - 2)
	if r.Hops != want {
		t.Fatalf("shuffled hops = %d, want %d", r.Hops, want)
	}
	// Total compute identical to unshuffled (same visits).
	clean := Run(baseCfg())
	if math.Abs(r.CompTime-clean.CompTime) > 1e-6*clean.CompTime {
		t.Fatal("shuffling must not change total computation")
	}
}

func TestSerialTimeMatchesPaperFormula(t *testing.T) {
	cfg := Config{N: 1000, M: 10, Epochs: 3, TWr: 2, TZr: 5}
	want := 10.0*1000*3*2 + 10.0*1000*5
	if got := SerialTime(cfg); got != want {
		t.Fatalf("T(1) = %v, want %v", got, want)
	}
}

func TestSingleMachineSimNoComm(t *testing.T) {
	cfg := Config{P: 1, N: 1000, M: 4, Epochs: 2, TWr: 1, TWc: 100, TZr: 2, Seed: 7}
	r := Run(cfg)
	if r.CommTime != 0 {
		t.Fatalf("P=1 should have no communication, got %v", r.CommTime)
	}
	// route length (e+1)·1−1 = 2 training visits, 0 tail.
	want := 4.0*2*1000*1 + 4.0*1000*2
	if math.Abs(r.T-want) > 1e-9 {
		t.Fatalf("T = %v, want %v", r.T, want)
	}
}

func TestQuickSimSpeedupBounded(t *testing.T) {
	// Property: the simulated speedup never exceeds P (work conservation).
	f := func(pRaw, mRaw, eRaw uint8, twc uint16) bool {
		cfg := Config{
			P:      int(pRaw)%32 + 1,
			N:      2000,
			M:      int(mRaw)%64 + 1,
			Epochs: int(eRaw)%4 + 1,
			TWr:    1,
			TWc:    float64(twc%2000) + 1,
			TZr:    3,
			Seed:   int64(pRaw) + int64(mRaw),
		}
		s := SerialTime(cfg) / Run(cfg).T
		return s > 0 && s <= float64(cfg.P)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
