package binauto

import (
	"math/bits"

	"repro/internal/core"
	"repro/internal/linreg"
	"repro/internal/retrieval"
	"repro/internal/sgd"
	"repro/internal/vec"
)

// WKernel is the W-step mirror of the Z step's ZKernel: the per-codes
// precomputation behind the exact decoder fit ("f ← least-squares fit to
// (Z,X)", Fig. 1). The normal equations of that fit are
//
//	(Z̃ᵀZ̃ + λI)·W̃ = Z̃ᵀX,   Z̃ = [Z 1]
//
// and both sides decompose into quantities a packed-code layout computes
// without ever materialising Z as floats:
//
//   - the Gram matrix Z̃ᵀZ̃ is pure bit counting. Over the 0/1 features the
//     decoder consumes, entry (a,b) is popcount(col_a ∧ col_b) on the
//     column-major transpose — the same identity that gives ±1 codes
//     row-dot(a,b) = N − 2·popcount(col_a ⊕ col_b) — so the L²/2 column dots
//     cost N/64 word-popcounts each instead of N float multiplies. The
//     counts are integers, so the result is bitwise identical to the float
//     accumulation it replaces.
//   - the cross-products Z̃ᵀX accumulate x_i into the rows named by the set
//     bits of z_i (plus the bias row), one point read each, sharded over a
//     core.ParallelChunks pool with per-goroutine partial matrices reduced
//     in worker order.
//
// The solve itself goes through linreg.SolveNormal, the factorisation path
// FitExact uses, and the cross-products accumulate on a fixed chunk grid
// (crossChunk), so the fitted decoder is bit-for-bit identical for every
// worker count — and bit-for-bit the dense materialise-and-solve reference
// whenever N fits one chunk. A kernel is immutable after construction; Cross
// may be called concurrently.
type WKernel struct {
	L, N int
	z    *retrieval.Codes // row-major codes (borrowed; not mutated)
	cols [][]uint64       // column-major transpose, one N-bit set per bit
}

// NewWKernel builds the packed-column view of z. O(N·L/64 + Σ popcount).
func NewWKernel(z *retrieval.Codes) *WKernel {
	return &WKernel{L: z.L, N: z.N, z: z, cols: z.Columns()}
}

// Gram returns the bias-augmented normal-equation matrix Z̃ᵀZ̃,
// (L+1)×(L+1), assembled entirely from popcounts.
func (k *WKernel) Gram() *vec.Matrix {
	g := vec.NewMatrix(k.L+1, k.L+1)
	for a := 0; a < k.L; a++ {
		for b := a; b < k.L; b++ {
			v := float64(retrieval.PopcountAndWords(k.cols[a], k.cols[b]))
			g.Set(a, b, v)
			g.Set(b, a, v)
		}
		// Bias column: Σ_i z_ia·1 = popcount(col_a).
		ones := float64(retrieval.PopcountWords(k.cols[a]))
		g.Set(a, k.L, ones)
		g.Set(k.L, a, ones)
	}
	g.Set(k.L, k.L, float64(k.N))
	return g
}

// crossChunk is the fixed accumulation granule of Cross. Chunk boundaries
// depend only on N — never on the worker count — so the summation order, and
// therefore the fitted decoder, is bitwise identical for every Parallel
// setting; the knob stays a pure speed knob. One chunk covers N ≤ crossChunk,
// where the result is additionally bitwise the dense straight accumulation.
const crossChunk = 2048

// Cross accumulates the cross-products Z̃ᵀX ((L+1)×d) over pts with up to
// workers goroutines. The points are summed in fixed crossChunk-sized
// partial matrices reduced in chunk order (see crossChunk for the
// determinism contract); workers only decides how many chunks are in flight
// at once. Skipping a zero bit adds exactly the ±0 the dense path adds, so
// per chunk the accumulation matches the dense X̃ᵀY walk term for term.
func (k *WKernel) Cross(pts sgd.Points, d, workers int) *vec.Matrix {
	nchunks := (k.N + crossChunk - 1) / crossChunk
	if nchunks == 0 {
		return vec.NewMatrix(k.L+1, d)
	}
	parts := make([]*vec.Matrix, nchunks)
	core.ParallelChunks(nchunks, core.Cores(workers), func(_, lo, hi int) {
		buf := make([]float64, d)
		for c := lo; c < hi; c++ {
			acc := vec.NewMatrix(k.L+1, d)
			pHi := (c + 1) * crossChunk
			if pHi > k.N {
				pHi = k.N
			}
			k.accumulateCross(pts, c*crossChunk, pHi, acc, buf)
			parts[c] = acc
		}
	})
	total := parts[0]
	for _, p := range parts[1:] {
		total.AddMatrix(p)
	}
	return total
}

// accumulateCross adds Σ_{i∈[lo,hi)} z̃_i·x_iᵀ into acc: walk the set bits of
// code i (ascending), add x_i to each named row, then to the bias row.
func (k *WKernel) accumulateCross(pts sgd.Points, lo, hi int, acc *vec.Matrix, buf []float64) {
	for i := lo; i < hi; i++ {
		x := pts.Point(i, buf)
		for wi, w := range k.z.Code(i) {
			base := wi * 64
			for w != 0 {
				vec.Axpy(1, x, acc.Row(base+bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		vec.Axpy(1, x, acc.Row(k.L))
	}
}

// FitDecoder solves the ridge normal equations for the exact decoder over
// (pts, z) with up to workers goroutines for the cross-product accumulation.
func (k *WKernel) FitDecoder(pts sgd.Points, d int, lambda float64, workers int) (*Decoder, error) {
	gram := k.Gram()
	cross := k.Cross(pts, d, workers)
	sol, err := linreg.SolveNormal(gram, cross, lambda, k.N)
	if err != nil {
		return nil, err
	}
	dec := NewDecoder(k.L, d)
	for row := 0; row < k.L; row++ {
		copy(dec.W.Row(row), sol.Row(row))
	}
	copy(dec.C, sol.Row(k.L))
	return dec, nil
}

// NormalStats writes the kernel's flattened Gram ((L+1)² entries) and
// cross-products ((L+1)·d entries) into dst, the wire layout the distributed
// fit AllReduce-sums across shards. dst must have gram+cross length.
func (k *WKernel) NormalStats(pts sgd.Points, d, workers int, dst []float64) {
	gramLen := (k.L + 1) * (k.L + 1)
	if len(dst) != gramLen+(k.L+1)*d {
		panic("binauto: NormalStats length mismatch")
	}
	copy(dst[:gramLen], k.Gram().Data)
	copy(dst[gramLen:], k.Cross(pts, d, workers).Data)
}
