package binauto

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/retrieval"
	"repro/internal/sgd"
)

// encodersEqualBitwise demands bitwise-equal encoder weights, biases and
// schedule state (η0 selection and step counts), plus a bitwise decoder.
func encodersEqualBitwise(t *testing.T, a, b *Model, context string) {
	t.Helper()
	if !modelsEqual(a, b) {
		t.Fatalf("%s: model parameters differ", context)
	}
	for l := range a.Enc {
		sa, sb := a.Enc[l].Sched, b.Enc[l].Sched
		if sa.Eta0 != sb.Eta0 || sa.Steps() != sb.Steps() {
			t.Fatalf("%s: bit %d schedule differs: eta0 %v vs %v, steps %v vs %v",
				context, l, sa.Eta0, sb.Eta0, sa.Steps(), sb.Steps())
		}
	}
}

// TestTrainWStepFusedMatchesSerialBitForBit: at Parallel=1 and Shuffle=false
// the fused multi-bit trainer must reproduce TrainWStepSerial exactly —
// auto-tuned η0 per bit, every SVM weight, and the decoder.
func TestTrainWStepFusedMatchesSerialBitForBit(t *testing.T) {
	for _, byteBacked := range []bool{false, true} {
		ds := dataset.GISTLike(300, 20, 4, 51)
		if byteBacked {
			ds = dataset.SIFTLike(300, 20, 4, 51)
		}
		z := randomCodesW(300, 9, 52)
		cfg := &MACConfig{L: 9, SVMLambda: 1e-5, SVMEpochs: 3, DecLambda: 1e-3}

		serial := NewModel(20, 9, cfg.SVMLambda)
		if err := TrainWStepSerial(serial, ds, z, cfg, rand.New(rand.NewSource(53))); err != nil {
			t.Fatal(err)
		}
		fused := NewModel(20, 9, cfg.SVMLambda)
		if err := TrainWStepFused(fused, ds, z, cfg, rand.New(rand.NewSource(53)), 1); err != nil {
			t.Fatal(err)
		}
		encodersEqualBitwise(t, serial, fused, "fused vs serial")
	}
}

// TestTrainWStepFusedSecondRoundMatches: MAC re-enters the W step every
// iteration with warm SVMs; the equivalence must hold from a non-zero
// starting state too (the auto-tune clones the current weights).
func TestTrainWStepFusedSecondRoundMatches(t *testing.T) {
	ds := dataset.GISTLike(250, 12, 4, 61)
	z := randomCodesW(250, 6, 62)
	z2 := randomCodesW(250, 6, 63)
	cfg := &MACConfig{L: 6, SVMLambda: 1e-5, SVMEpochs: 2, DecLambda: 1e-3}

	serial := NewModel(12, 6, cfg.SVMLambda)
	fused := NewModel(12, 6, cfg.SVMLambda)
	for _, codes := range []*retrieval.Codes{z, z2} {
		if err := TrainWStepSerial(serial, ds, codes, cfg, rand.New(rand.NewSource(64))); err != nil {
			t.Fatal(err)
		}
		if err := TrainWStepFused(fused, ds, codes, cfg, rand.New(rand.NewSource(64)), 1); err != nil {
			t.Fatal(err)
		}
	}
	encodersEqualBitwise(t, serial, fused, "second round")
}

// TestTrainWStepFusedParallelBitIdentical: bit-group parallelism must be a
// pure speed knob — any worker count, with and without shuffling, produces
// the same model as the fused serial pass. Run under -race (CI does) this
// also proves the bit groups share nothing mutable.
func TestTrainWStepFusedParallelBitIdentical(t *testing.T) {
	for _, shuffle := range []bool{false, true} {
		ds := dataset.SIFTLike(400, 16, 4, 71)
		z := randomCodesW(400, 10, 72)
		cfg := &MACConfig{L: 10, SVMLambda: 1e-5, SVMEpochs: 2, DecLambda: 1e-3, Shuffle: shuffle}

		ref := NewModel(16, 10, cfg.SVMLambda)
		if err := TrainWStepFused(ref, ds, z, cfg, rand.New(rand.NewSource(73)), 1); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 10, -1} {
			m := NewModel(16, 10, cfg.SVMLambda)
			if err := TrainWStepFused(m, ds, z, cfg, rand.New(rand.NewSource(73)), workers); err != nil {
				t.Fatal(err)
			}
			encodersEqualBitwise(t, ref, m, "parallel vs fused serial")
		}
	}
}

// TestRunMACParallelKnobBitIdentical: the MACConfig.Parallel knob must not
// change what RunMAC computes (Shuffle=false), only how fast.
func TestRunMACParallelKnobBitIdentical(t *testing.T) {
	ds := dataset.GISTLike(300, 12, 4, 81)
	run := func(parallel int) (*Model, *retrieval.Codes, []IterStats) {
		return RunMAC(ds, MACConfig{
			L: 8, Mu0: 1e-3, MuFactor: 2, Iters: 4, SVMEpochs: 2, Seed: 82,
			Parallel: parallel,
		})
	}
	m1, z1, s1 := run(0)
	m2, z2, s2 := run(4)
	if !modelsEqual(m1, m2) {
		t.Fatal("RunMAC model depends on the Parallel knob")
	}
	if !z1.Equal(z2) {
		t.Fatal("RunMAC codes depend on the Parallel knob")
	}
	if len(s1) != len(s2) {
		t.Fatalf("learning curves differ in length: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].EQ != s2[i].EQ || s1[i].EBA != s2[i].EBA || s1[i].ZChanged != s2[i].ZChanged || s1[i].Stopped != s2[i].Stopped {
			t.Fatalf("iteration %d stats differ: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

// TestZStepFoldedHashEqualMatchesOracle: the HashEqual flag the Z step folds
// into its result must agree with the independent codesEqualHash re-encode,
// serial and parallel, across μ values that do and do not reach z = h(X).
func TestZStepFoldedHashEqualMatchesOracle(t *testing.T) {
	ds := dataset.GISTLike(200, 10, 3, 91)
	m := randomModel(10, 8, 92)
	for _, mu := range []float64{1e-4, 0.5, 100} {
		for _, workers := range []int{1, 4} {
			z := m.Encode(ds) // start at z = h(X) so large μ keeps it there
			perturbCodes(z, 93)
			res := NewZKernel(m, mu, ZEnumerate).RunStats(ds, z, workers)
			if want := codesEqualHash(m, ds, z); res.HashEqual != want {
				t.Fatalf("mu=%g workers=%d: folded HashEqual=%v, oracle=%v",
					mu, workers, res.HashEqual, want)
			}
		}
	}
}

// TestZStepHashEqualWithIdleWorkers is the regression test for the
// fewer-chunks-than-workers geometry: ParallelChunks(1089, 34) creates only
// 33 chunks (chunk size ⌈1089/34⌉ = 33), so one worker slot never runs; its
// untouched result entry must not veto HashEqual.
func TestZStepHashEqualWithIdleWorkers(t *testing.T) {
	ds := dataset.GISTLike(1089, 8, 3, 101)
	m := randomModel(8, 6, 102)
	z := m.Encode(ds) // start at z = h(X)
	// A huge μ makes keeping z = h(X) optimal everywhere.
	res := NewZKernel(m, 1e6, ZEnumerate).RunStats(ds, z, 34)
	if res.Changed != 0 {
		t.Fatalf("huge-mu Z step changed %d codes", res.Changed)
	}
	if !res.HashEqual {
		t.Fatal("HashEqual false despite z == h(X): idle worker slot vetoed the fold")
	}
	if !codesEqualHash(m, ds, z) {
		t.Fatal("oracle disagrees: codes do not equal the hash")
	}
}

// perturbCodes flips a few bits deterministically.
func perturbCodes(z *retrieval.Codes, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for n := 0; n < z.N/4; n++ {
		i := rng.Intn(z.N)
		b := rng.Intn(z.L)
		z.SetBit(i, b, !z.Bit(i, b))
	}
}

// TestValidationScoreParallelMatchesSerial: the scoring pool must not change
// the score, for both the precision and the recall protocols.
func TestValidationScoreParallelMatchesSerial(t *testing.T) {
	base := dataset.GISTLike(300, 10, 3, 95)
	queries := dataset.GISTLike(40, 10, 3, 96)
	truth := retrieval.GroundTruth(base, queries, 10)
	m := randomModel(10, 8, 97)
	for _, useRecall := range []bool{false, true} {
		v := &Validation{Base: base, Queries: queries, Truth: truth, K: 10, UseRecall: useRecall}
		serial := v.Score(m)
		v.Parallel = -1
		parallel := v.Score(m)
		if math.IsNaN(serial) || serial != parallel {
			t.Fatalf("useRecall=%v: serial score %v != parallel score %v", useRecall, serial, parallel)
		}
	}
}

// TestEncodeParallelBitIdentical: the chunked encoder must match Encode for
// any worker count.
func TestEncodeParallelBitIdentical(t *testing.T) {
	ds := dataset.SIFTLike(500, 12, 4, 98)
	m := randomModel(12, 10, 99)
	want := m.Encode(ds)
	for _, workers := range []int{0, 2, 7, -1} {
		if got := m.EncodeParallel(ds, workers); !got.Equal(want) {
			t.Fatalf("workers=%d: EncodeParallel differs from Encode", workers)
		}
	}
}

// TestEta0LadderMatchesAutoTuneSearch pins the refactored TuneEta0 pieces:
// the ladder times the per-candidate trial losses through PickEta0 must be
// the same selection TuneEta0 makes.
func TestEta0LadderMatchesAutoTuneSearch(t *testing.T) {
	trial := func(eta float64) float64 {
		// An arbitrary bumpy objective with a unique minimum inside the range.
		return math.Abs(math.Log(eta) - math.Log(0.1))
	}
	etas := sgd.Eta0Ladder(1e-4, 16, 4)
	losses := make([]float64, len(etas))
	for i, e := range etas {
		losses[i] = trial(e)
	}
	if got, want := sgd.PickEta0(etas, losses), sgd.TuneEta0(1e-4, 16, 4, trial); got != want {
		t.Fatalf("PickEta0 %v != TuneEta0 %v", got, want)
	}
}
