package binauto

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/retrieval"
	"repro/internal/vec"
)

func makeShards(n, d, l, p int, seed int64) []*Shard {
	ds := dataset.GISTLike(n, d, 4, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	var shards []*Shard
	for _, idx := range dataset.ShardIndices(n, p, nil) {
		z := retrieval.NewCodes(len(idx), l)
		for i := range idx {
			for b := 0; b < l; b++ {
				z.SetBit(i, b, rng.Intn(2) == 1)
			}
		}
		shards = append(shards, &Shard{X: NewShardPoints(ds, idx), Z: z})
	}
	return shards
}

func TestDistributedFitMatchesSerialOracle(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		shards := makeShards(200, 6, 4, p, int64(p)*100)
		// Vary the per-machine cross-product pool with the shard count to
		// cover both serial and chunked accumulation.
		dist, stats, err := FitDecoderExactDistributed(shards, 4, 6, 0.1, p)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := fitDecoderExactSerialOracle(shards, 4, 6, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if vec.MaxAbsDiff(dist.W, oracle.W) > 1e-8 {
			t.Fatalf("P=%d: distributed W differs from oracle by %v", p, vec.MaxAbsDiff(dist.W, oracle.W))
		}
		for j := range dist.C {
			if diff := dist.C[j] - oracle.C[j]; diff > 1e-8 || diff < -1e-8 {
				t.Fatalf("P=%d: bias differs", p)
			}
		}
		if p > 1 && stats.Bytes == 0 {
			t.Fatal("distributed fit should move bytes")
		}
	}
}

func TestDistributedFitCommunicationCost(t *testing.T) {
	// §6's point: the exact aggregation moves Gram-matrix-sized messages,
	// far larger than the submodels ParMAC circulates.
	l, d := 8, 16
	shards := makeShards(300, d, l, 4, 7)
	_, stats, err := FitDecoderExactDistributed(shards, l, d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	perMachine := 8 * ((l+1)*(l+1) + (l+1)*d)
	// 3 non-root contributions (the root's own is free).
	if stats.Bytes < int64(3*perMachine) {
		t.Fatalf("bytes = %d, want >= %d", stats.Bytes, 3*perMachine)
	}
}

func TestDistributedFitImprovesReconstruction(t *testing.T) {
	// Plugging the exact decoder into a model must give the optimal
	// reconstruction for the current codes: no perturbation improves it.
	shards := makeShards(150, 5, 4, 3, 9)
	dec, _, err := FitDecoderExactDistributed(shards, 4, 5, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(5, 4, 0)
	m.Dec = dec
	var base float64
	for _, sh := range shards {
		base += m.EQ(sh.X, sh.Z, 0)
	}
	m2 := m.Clone()
	m2.Dec.W.Add(1, 1, 0.05)
	var pert float64
	for _, sh := range shards {
		pert += m2.EQ(sh.X, sh.Z, 0)
	}
	if pert < base-1e-9 {
		t.Fatal("exact distributed decoder is not optimal")
	}
}
