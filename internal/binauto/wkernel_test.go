package binauto

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/retrieval"
	"repro/internal/vec"
)

// randomCodesW builds n random l-bit codes.
func randomCodesW(n, l int, seed int64) *retrieval.Codes {
	rng := rand.New(rand.NewSource(seed))
	z := retrieval.NewCodes(n, l)
	for i := 0; i < n; i++ {
		for b := 0; b < l; b++ {
			z.SetBit(i, b, rng.Intn(2) == 1)
		}
	}
	return z
}

// floatGramOracle accumulates the bias-augmented Gram matrix Z̃ᵀZ̃ the dense
// path computes: materialise the 0/1 features and multiply.
func floatGramOracle(z *retrieval.Codes) *vec.Matrix {
	xt := vec.NewMatrix(z.N, z.L+1)
	cp := CodesPoints{z}
	for i := 0; i < z.N; i++ {
		cp.Point(i, xt.Row(i)[:z.L])
		xt.Set(i, z.L, 1)
	}
	return xt.Gram()
}

// TestPopcountGramMatchesFloatGram: the popcount Gram must equal the float
// accumulation exactly — both sides are integer counts, so not even a ULP of
// slack is allowed.
func TestPopcountGramMatchesFloatGram(t *testing.T) {
	for _, tc := range []struct {
		n, l int
	}{{1, 3}, {63, 8}, {64, 8}, {65, 8}, {500, 16}, {300, 33}, {200, 64}} {
		z := randomCodesW(tc.n, tc.l, int64(tc.n*100+tc.l))
		got := NewWKernel(z).Gram()
		want := floatGramOracle(z)
		if d := vec.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("N=%d L=%d: popcount Gram differs from float Gram by %g", tc.n, tc.l, d)
		}
	}
}

// TestFitDecoderPopcountMatchesDense: for N within one accumulation chunk
// the kernel fit must be bit-for-bit the dense reference for EVERY worker
// count (same integers into the same solve path, fixed summation order).
func TestFitDecoderPopcountMatchesDense(t *testing.T) {
	for _, byteBacked := range []bool{false, true} {
		ds := dataset.GISTLike(400, 24, 4, 31)
		if byteBacked {
			ds = dataset.SIFTLike(400, 24, 4, 31)
		}
		z := randomCodesW(400, 12, 32)
		ref := NewModel(24, 12, 1e-5)
		if err := ref.FitDecoderExactDense(ds, z, 1e-3); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8, -1} {
			par := NewModel(24, 12, 1e-5)
			if err := par.FitDecoderExactParallel(ds, z, 1e-3, workers); err != nil {
				t.Fatal(err)
			}
			if d := vec.MaxAbsDiff(par.Dec.W, ref.Dec.W); d != 0 {
				t.Fatalf("byteBacked=%v workers=%d: popcount fit not bitwise equal to dense (|Δ|=%g)", byteBacked, workers, d)
			}
			for j := range par.Dec.C {
				if par.Dec.C[j] != ref.Dec.C[j] {
					t.Fatalf("byteBacked=%v workers=%d: bias %d differs bitwise", byteBacked, workers, j)
				}
			}
		}
	}
}

// TestFitDecoderChunkedLargeN: beyond one chunk the summation order differs
// from the straight dense walk, so the fits agree to 1e-9 — but across
// worker counts the chunk grid is fixed, so they agree bit for bit.
func TestFitDecoderChunkedLargeN(t *testing.T) {
	n := crossChunk + 500
	ds := dataset.GISTLike(n, 16, 4, 33)
	z := randomCodesW(n, 10, 34)
	dense := NewModel(16, 10, 1e-5)
	if err := dense.FitDecoderExactDense(ds, z, 1e-3); err != nil {
		t.Fatal(err)
	}
	ref := NewModel(16, 10, 1e-5)
	if err := ref.FitDecoderExactParallel(ds, z, 1e-3, 1); err != nil {
		t.Fatal(err)
	}
	if d := vec.MaxAbsDiff(ref.Dec.W, dense.Dec.W); d > 1e-9 {
		t.Fatalf("chunked fit drifted from dense by %g > 1e-9", d)
	}
	for _, workers := range []int{2, 5, -1} {
		par := NewModel(16, 10, 1e-5)
		if err := par.FitDecoderExactParallel(ds, z, 1e-3, workers); err != nil {
			t.Fatal(err)
		}
		if d := vec.MaxAbsDiff(par.Dec.W, ref.Dec.W); d != 0 {
			t.Fatalf("workers=%d: fit depends on worker count (|Δ|=%g)", workers, d)
		}
	}
}

// TestWKernelColumnsRoundTrip pins the transpose: bit i of column l must be
// Bit(i, l), including across the 64-point word boundary.
func TestWKernelColumnsRoundTrip(t *testing.T) {
	z := randomCodesW(130, 10, 7)
	cols := z.Columns()
	for l := 0; l < z.L; l++ {
		for i := 0; i < z.N; i++ {
			got := cols[l][i/64]&(1<<(uint(i)%64)) != 0
			if got != z.Bit(i, l) {
				t.Fatalf("column %d bit %d: transpose %v, codes %v", l, i, got, z.Bit(i, l))
			}
		}
	}
}

// TestFitDecoderExactDelegates: the public FitDecoderExact must be the
// serial kernel path (and therefore the dense result, bit for bit).
func TestFitDecoderExactDelegates(t *testing.T) {
	ds := dataset.GISTLike(150, 10, 3, 41)
	z := randomCodesW(150, 6, 42)
	a := NewModel(10, 6, 1e-5)
	if err := a.FitDecoderExact(ds, z, 1e-3); err != nil {
		t.Fatal(err)
	}
	b := NewModel(10, 6, 1e-5)
	if err := b.FitDecoderExactDense(ds, z, 1e-3); err != nil {
		t.Fatal(err)
	}
	if d := vec.MaxAbsDiff(a.Dec.W, b.Dec.W); d != 0 {
		t.Fatalf("FitDecoderExact drifted from the dense reference (|Δ|=%g)", d)
	}
}
