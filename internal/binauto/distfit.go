package binauto

import (
	"sync"

	"repro/internal/cluster"
	"repro/internal/linreg"
	"repro/internal/vec"
)

// This file implements the exact-gradient alternative sketched in §6: instead
// of stochastic updates while circulating, "each machine computes the exact
// sum of per-point gradients ... then we aggregate these P partial gradients
// into one exact gradient ... easily implemented with MPI functions". For the
// linear decoder the aggregation is even stronger: the normal equations
// decompose over shards, so AllReduce-summing the per-shard Gram matrices
// Z̃ᵀZ̃ and cross-products Z̃ᵀX yields the *exact* least-squares decoder with
// two reductions — at the price the paper notes ("far slower than SGD" per
// byte moved, since the Gram matrices are much larger than a submodel).
//
// It doubles as an ablation: ParMAC's circulating-SGD decoder vs the exact
// distributed fit.

// FitDecoderExactDistributed computes the exact ridge least-squares decoder
// over all shards by distributed reduction: each shard contributes its local
// Z̃ᵀZ̃ and Z̃ᵀX over the in-process fabric, rank 0 aggregates and solves, and
// the result is returned together with the bytes moved.
func FitDecoderExactDistributed(shards []*Shard, l, d int, lambda float64) (*Decoder, cluster.Stats, error) {
	p := len(shards)
	if p == 0 {
		panic("binauto: no shards")
	}
	net := cluster.NewNetwork(p)
	gramLen := (l + 1) * (l + 1)
	crossLen := (l + 1) * d

	var wg sync.WaitGroup
	var solved *Decoder
	var solveErr error
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := net.Comm(rank)
			sh := shards[rank]
			// Local augmented statistics.
			local := make([]float64, gramLen+crossLen)
			gram := local[:gramLen]
			cross := local[gramLen:]
			zt := make([]float64, l+1)
			xbuf := make([]float64, d)
			cp := CodesPoints{sh.Z}
			for i := 0; i < sh.NumPoints(); i++ {
				cp.Point(i, zt[:l])
				zt[l] = 1
				x := sh.X.Point(i, xbuf)
				for a := 0; a <= l; a++ {
					if zt[a] == 0 {
						continue
					}
					for b := 0; b <= l; b++ {
						gram[a*(l+1)+b] += zt[a] * zt[b]
					}
					for j := 0; j < d; j++ {
						cross[a*d+j] += zt[a] * x[j]
					}
				}
			}
			total := comm.Reduce(0, 1, local, cluster.OpSum)
			if rank != 0 {
				return
			}
			// Solve (Z̃ᵀZ̃ + λI)·W̃ = Z̃ᵀX at the root (ridge on every row
			// including the bias, matching linreg.FitExact).
			g := &vec.Matrix{Rows: l + 1, Cols: l + 1, Data: total[:gramLen]}
			g.AddScaledIdentity(lambda)
			ch, err := vec.NewCholesky(g)
			if err != nil {
				g.AddScaledIdentity(1e-8 * float64(g.At(l, l))) // N is at (l,l)
				ch, err = vec.NewCholesky(g)
				if err != nil {
					solveErr = err
					return
				}
			}
			rhs := &vec.Matrix{Rows: l + 1, Cols: d, Data: total[gramLen:]}
			sol := ch.SolveMatrix(rhs)
			dec := NewDecoder(l, d)
			for row := 0; row < l; row++ {
				copy(dec.W.Row(row), sol.Row(row))
			}
			copy(dec.C, sol.Row(l))
			solved = dec
		}(rank)
	}
	wg.Wait()
	return solved, net.Stats(), solveErr
}

// fitDecoderExactSerialOracle computes the same fit serially for tests.
func fitDecoderExactSerialOracle(shards []*Shard, l, d int, lambda float64) (*Decoder, error) {
	total := 0
	for _, sh := range shards {
		total += sh.NumPoints()
	}
	zm := vec.NewMatrix(total, l)
	xm := vec.NewMatrix(total, d)
	at := 0
	xbuf := make([]float64, d)
	for _, sh := range shards {
		cp := CodesPoints{sh.Z}
		for i := 0; i < sh.NumPoints(); i++ {
			cp.Point(i, zm.Row(at))
			copy(xm.Row(at), sh.X.Point(i, xbuf))
			at++
		}
	}
	fit, err := linreg.FitExact(zm, xm, lambda)
	if err != nil {
		return nil, err
	}
	return &Decoder{W: fit.W, C: fit.C}, nil
}
