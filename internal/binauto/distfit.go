package binauto

import (
	"sync"

	"repro/internal/cluster"
	"repro/internal/linreg"
	"repro/internal/vec"
)

// This file implements the exact-gradient alternative sketched in §6: instead
// of stochastic updates while circulating, "each machine computes the exact
// sum of per-point gradients ... then we aggregate these P partial gradients
// into one exact gradient ... easily implemented with MPI functions". For the
// linear decoder the aggregation is even stronger: the normal equations
// decompose over shards, so AllReduce-summing the per-shard Gram matrices
// Z̃ᵀZ̃ and cross-products Z̃ᵀX yields the *exact* least-squares decoder with
// two reductions — at the price the paper notes ("far slower than SGD" per
// byte moved, since the Gram matrices are much larger than a submodel).
//
// It doubles as an ablation: ParMAC's circulating-SGD decoder vs the exact
// distributed fit.

// FitDecoderExactDistributed computes the exact ridge least-squares decoder
// over all shards by distributed reduction: each shard assembles its local
// Z̃ᵀZ̃ and Z̃ᵀX through the same popcount-Gram WKernel the serial fit uses
// (workers goroutines per machine for the cross-products, core.Cores
// semantics), AllReduce-sums them over the in-process fabric, and rank 0
// solves via linreg.SolveNormal — the identical path, so distributed and
// serial fits agree to summation rounding.
func FitDecoderExactDistributed(shards []*Shard, l, d int, lambda float64, workers int) (*Decoder, cluster.Stats, error) {
	p := len(shards)
	if p == 0 {
		panic("binauto: no shards")
	}
	net := cluster.NewNetwork(p)
	gramLen := (l + 1) * (l + 1)
	crossLen := (l + 1) * d

	var wg sync.WaitGroup
	var solved *Decoder
	var solveErr error
	totalPoints := 0
	for _, sh := range shards {
		totalPoints += sh.NumPoints()
	}
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm := net.Comm(rank)
			sh := shards[rank]
			// Local augmented statistics in the shared wire layout.
			local := make([]float64, gramLen+crossLen)
			NewWKernel(sh.Z).NormalStats(sh.X, d, workers, local)
			total := comm.Reduce(0, 1, local, cluster.OpSum)
			if rank != 0 {
				return
			}
			// Solve (Z̃ᵀZ̃ + λI)·W̃ = Z̃ᵀX at the root (ridge on every row
			// including the bias, matching linreg.FitExact).
			g := &vec.Matrix{Rows: l + 1, Cols: l + 1, Data: total[:gramLen]}
			rhs := &vec.Matrix{Rows: l + 1, Cols: d, Data: total[gramLen:]}
			sol, err := linreg.SolveNormal(g, rhs, lambda, totalPoints)
			if err != nil {
				solveErr = err
				return
			}
			dec := NewDecoder(l, d)
			for row := 0; row < l; row++ {
				copy(dec.W.Row(row), sol.Row(row))
			}
			copy(dec.C, sol.Row(l))
			solved = dec
		}(rank)
	}
	wg.Wait()
	return solved, net.Stats(), solveErr
}

// fitDecoderExactSerialOracle computes the same fit serially for tests.
func fitDecoderExactSerialOracle(shards []*Shard, l, d int, lambda float64) (*Decoder, error) {
	total := 0
	for _, sh := range shards {
		total += sh.NumPoints()
	}
	zm := vec.NewMatrix(total, l)
	xm := vec.NewMatrix(total, d)
	at := 0
	xbuf := make([]float64, d)
	for _, sh := range shards {
		cp := CodesPoints{sh.Z}
		for i := 0; i < sh.NumPoints(); i++ {
			cp.Point(i, zm.Row(at))
			copy(xm.Row(at), sh.X.Point(i, xbuf))
			at++
		}
	}
	fit, err := linreg.FitExact(zm, xm, lambda)
	if err != nil {
		return nil, err
	}
	return &Decoder{W: fit.W, C: fit.C}, nil
}
