package binauto

import (
	"math"
	"math/bits"

	"repro/internal/retrieval"
	"repro/internal/sgd"
	"repro/internal/vec"
)

// ZMethod selects how the per-point binary proximal operator
//
//	min_{z ∈ {0,1}^L}  ‖x − f(z)‖² + μ‖z − h(x)‖²
//
// is solved (§3.1): exactly by enumeration for small L, or approximately by
// alternating optimisation over bits initialised from the truncated relaxed
// solution for larger L.
type ZMethod int

const (
	// ZAuto picks ZEnumerate when L <= EnumLimit, ZAlternate otherwise —
	// the paper's policy ("enumeration for SIFT-10K and SIFT-1M, alternating
	// optimisation otherwise").
	ZAuto ZMethod = iota
	// ZEnumerate searches all 2^L codes exactly, walking a Gray code so each
	// candidate costs O(D).
	ZEnumerate
	// ZAlternate solves the relaxed problem in [0,1]^L, truncates, then
	// alternates single-bit flips to a local minimum.
	ZAlternate
)

// EnumLimit is the largest L for which ZAuto enumerates. 2^16 candidates per
// point matches the paper's use of enumeration at L=16.
const EnumLimit = 16

// ZSolver solves the Z step for a fixed model and μ. Constructing it factors
// the L×L system of the relaxed initialisation once, so per-point solves are
// O(L²) + the bit-flip passes.
type ZSolver struct {
	Model  *Model
	Mu     float64
	Method ZMethod

	bSqNorm []float64     // ‖B_l‖², l = 0..L-1
	chol    *vec.Cholesky // factor of (WWᵀ + μI), for the relaxed init
	// scratch
	h    []bool
	r    []float64
	rhs  []float64
	zRel []float64
	xmc  []float64
}

// NewZSolver prepares a solver for the given model and penalty value.
func NewZSolver(m *Model, mu float64, method ZMethod) *ZSolver {
	l, d := m.L(), m.D()
	if method == ZAuto {
		if l <= EnumLimit {
			method = ZEnumerate
		} else {
			method = ZAlternate
		}
	}
	if method == ZEnumerate && l > 24 {
		panic("binauto: enumeration is exponential in L; use ZAlternate for L > 24")
	}
	if l > 64 {
		panic("binauto: code length limited to 64 bits (one packed word)")
	}
	s := &ZSolver{
		Model: m, Mu: mu, Method: method,
		bSqNorm: make([]float64, l),
		h:       make([]bool, l),
		r:       make([]float64, d),
		rhs:     make([]float64, l),
		zRel:    make([]float64, l),
		xmc:     make([]float64, d),
	}
	for i := 0; i < l; i++ {
		s.bSqNorm[i] = vec.SqNorm(m.Dec.W.Row(i))
	}
	if method == ZAlternate {
		// G = W·Wᵀ + μI (L×L), SPD for μ > 0.
		g := vec.NewMatrix(l, l)
		for i := 0; i < l; i++ {
			for j := i; j < l; j++ {
				v := vec.Dot(m.Dec.W.Row(i), m.Dec.W.Row(j))
				g.Set(i, j, v)
				g.Set(j, i, v)
			}
		}
		jitter := mu
		if jitter <= 0 {
			jitter = 1e-8
		}
		g.AddScaledIdentity(jitter)
		ch, err := vec.NewCholesky(g)
		if err != nil {
			g.AddScaledIdentity(1e-6 * (1 + vec.Norm(g.Data)))
			ch, err = vec.NewCholesky(g)
			if err != nil {
				panic("binauto: relaxed Z system not factorisable")
			}
		}
		s.chol = ch
	}
	return s
}

// Solve optimises code i of z for input x in place. It returns true when the
// code changed. Not safe for concurrent use; create one solver per goroutine.
func (s *ZSolver) Solve(x []float64, z *retrieval.Codes, i int) bool {
	s.Model.EncodePoint(x, s.h)
	switch s.Method {
	case ZEnumerate:
		return s.solveEnum(x, z, i)
	default:
		return s.solveAlt(x, z, i)
	}
}

// solveEnum walks all 2^L codes in Gray-code order, maintaining the residual
// r = x − c − Σ_l z_l B_l incrementally so each candidate costs O(D).
func (s *ZSolver) solveEnum(x []float64, z *retrieval.Codes, i int) bool {
	m := s.Model
	l := m.L()
	d := m.D()
	// Start at z = 0.
	for j := 0; j < d; j++ {
		s.r[j] = x[j] - m.Dec.C[j]
	}
	err := vec.SqNorm(s.r)
	ham := 0
	for b := 0; b < l; b++ {
		if s.h[b] {
			ham++ // z_b = 0 differs from h_b = 1
		}
	}
	var cur uint64 // current code, bit b = z_b
	best := cur
	bestObj := err + s.Mu*float64(ham)

	total := uint64(1) << uint(l)
	for k := uint64(1); k < total; k++ {
		flip := bits.TrailingZeros64(k) // Gray code flips this bit
		row := m.Dec.W.Row(flip)
		on := cur&(1<<uint(flip)) == 0 // flipping 0→1?
		if on {
			// r' = r − B; ‖r'‖² = ‖r‖² − 2 r·B + ‖B‖².
			err += -2*vec.Dot(s.r, row) + s.bSqNorm[flip]
			vec.Axpy(-1, row, s.r)
			cur |= 1 << uint(flip)
		} else {
			err += 2*vec.Dot(s.r, row) + s.bSqNorm[flip]
			vec.Axpy(1, row, s.r)
			cur &^= 1 << uint(flip)
		}
		nowOne := cur&(1<<uint(flip)) != 0
		if nowOne == s.h[flip] {
			ham--
		} else {
			ham++
		}
		if obj := err + s.Mu*float64(ham); obj < bestObj {
			bestObj = obj
			best = cur
		}
	}
	return s.store(best, z, i)
}

// solveAlt initialises z from the truncated relaxed solution
// (WWᵀ + μI)z = W(x−c) + μh and then alternates single-bit flips until no
// flip decreases the objective (§3.1).
func (s *ZSolver) solveAlt(x []float64, z *retrieval.Codes, i int) bool {
	m := s.Model
	l, d := m.L(), m.D()
	for j := 0; j < d; j++ {
		s.xmc[j] = x[j] - m.Dec.C[j]
	}
	// rhs = W(x−c) + μh.
	for b := 0; b < l; b++ {
		s.rhs[b] = vec.Dot(m.Dec.W.Row(b), s.xmc)
		if s.h[b] {
			s.rhs[b] += s.Mu
		}
	}
	s.chol.Solve(s.rhs, s.zRel)
	var cur uint64
	for b := 0; b < l; b++ {
		if s.zRel[b] >= 0.5 {
			cur |= 1 << uint(b)
		}
	}
	// Residual for the truncated code.
	copy(s.r, s.xmc)
	for b := 0; b < l; b++ {
		if cur&(1<<uint(b)) != 0 {
			vec.Axpy(-1, m.Dec.W.Row(b), s.r)
		}
	}
	const maxPasses = 32
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for b := 0; b < l; b++ {
			row := m.Dec.W.Row(b)
			isOne := cur&(1<<uint(b)) != 0
			var dErr float64
			if isOne {
				// flipping 1→0: r' = r + B.
				dErr = 2*vec.Dot(s.r, row) + s.bSqNorm[b]
			} else {
				dErr = -2*vec.Dot(s.r, row) + s.bSqNorm[b]
			}
			// Flipping breaks a match with h (+μ) or restores one (−μ).
			dHam := s.Mu
			if isOne != s.h[b] {
				dHam = -s.Mu
			}
			if dErr+dHam < -1e-12 {
				if isOne {
					vec.Axpy(1, row, s.r)
					cur &^= 1 << uint(b)
				} else {
					vec.Axpy(-1, row, s.r)
					cur |= 1 << uint(b)
				}
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return s.store(cur, z, i)
}

// store writes the code and reports whether it changed.
func (s *ZSolver) store(code uint64, z *retrieval.Codes, i int) bool {
	l := s.Model.L()
	changed := false
	for b := 0; b < l; b++ {
		v := code&(1<<uint(b)) != 0
		if z.Bit(i, b) != v {
			changed = true
			z.SetBit(i, b, v)
		}
	}
	return changed
}

// PointObjective evaluates ‖x − f(z_i)‖² + μ‖z_i − h(x)‖² for diagnostics and
// tests.
func PointObjective(m *Model, x []float64, z *retrieval.Codes, i int, mu float64) float64 {
	rec := m.Dec.Reconstruct(z, i, nil)
	obj := vec.SqDist(x, rec)
	for l := range m.Enc {
		if z.Bit(i, l) != m.Enc[l].Predict(x) {
			obj += mu
		}
	}
	return obj
}

// RunZStep runs the solver over every point of pts, returning how many codes
// changed. This is the whole Z step of MAC; in ParMAC each machine calls it
// on its own shard with no communication (§4.1).
func RunZStep(m *Model, pts sgd.Points, z *retrieval.Codes, mu float64, method ZMethod) int {
	s := NewZSolver(m, mu, method)
	buf := make([]float64, m.D())
	changed := 0
	for i := 0; i < pts.NumPoints(); i++ {
		if s.Solve(pts.Point(i, buf), z, i) {
			changed++
		}
	}
	return changed
}

// BruteForceZ solves one point by explicit search over all 2^L codes; test
// oracle for the Gray-code enumeration.
func BruteForceZ(m *Model, x []float64, mu float64) (uint64, float64) {
	l := m.L()
	if l > 20 {
		panic("binauto: BruteForceZ limited to small L")
	}
	z := retrieval.NewCodes(1, l)
	best := uint64(0)
	bestObj := math.Inf(1)
	for code := uint64(0); code < 1<<uint(l); code++ {
		for b := 0; b < l; b++ {
			z.SetBit(0, b, code&(1<<uint(b)) != 0)
		}
		if obj := PointObjective(m, x, z, 0, mu); obj < bestObj {
			bestObj = obj
			best = code
		}
	}
	return best, bestObj
}
