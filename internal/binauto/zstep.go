package binauto

import (
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/retrieval"
	"repro/internal/sgd"
	"repro/internal/vec"
)

// ZMethod selects how the per-point binary proximal operator
//
//	min_{z ∈ {0,1}^L}  ‖x − f(z)‖² + μ‖z − h(x)‖²
//
// is solved (§3.1): exactly by enumeration for small L, or approximately by
// alternating optimisation over bits initialised from the truncated relaxed
// solution for larger L.
type ZMethod int

const (
	// ZAuto picks ZEnumerate when L <= EnumLimit, ZAlternate otherwise —
	// the paper's policy ("enumeration for SIFT-10K and SIFT-1M, alternating
	// optimisation otherwise").
	ZAuto ZMethod = iota
	// ZEnumerate searches all 2^L codes exactly, walking a Gray code so each
	// candidate costs O(L) against the decoder Gram matrix.
	ZEnumerate
	// ZAlternate solves the relaxed problem in [0,1]^L, truncates, then
	// alternates single-bit flips to a local minimum.
	ZAlternate
)

// EnumLimit is the largest L for which ZAuto enumerates. 2^16 candidates per
// point matches the paper's use of enumeration at L=16.
const EnumLimit = 16

// ZKernel is the per-(model, μ) precomputation shared by every Z solve: the
// decoder Gram matrix G = W·Wᵀ and, for the alternating method, the Cholesky
// factor of (G + μI) used by the relaxed initialisation. Both solvers work
// against G instead of the D-dimensional residual: with the residual
// r = x − c − Σ_l z_l B_l, flipping bit b changes the error by ∓2 B_b·r + G_bb,
// and the vector q = W·r can be maintained incrementally at O(L) per flip
// (q ∓= G column b). That turns every candidate evaluation from O(D) into
// O(L) — a 10–60× inner-loop reduction at the paper's D=128–960, L=8–32 —
// while computing exactly the same quantities.
//
// A kernel is immutable after construction and safe for concurrent use;
// per-goroutine scratch lives in the ZSolvers it hands out.
type ZKernel struct {
	Model  *Model
	Mu     float64
	Method ZMethod

	gram *vec.Matrix   // G = W·Wᵀ (L×L, symmetric)
	chol *vec.Cholesky // factor of (G + μI), for the relaxed init (ZAlternate)

	// The L per-bit SVM weight rows gathered into one contiguous L×D matrix
	// (plus biases), so h(x) is a blocked matvec instead of L pointer-chased
	// dot products. MulVec reproduces Dot's summation order per row, so the
	// bits equal svm.Linear.Predict exactly.
	encW *vec.Matrix
	encB []float64
}

// NewZKernel precomputes the shared Z-step state for the given model and
// penalty value: O(L²·D) once, amortised over every point solved with it.
func NewZKernel(m *Model, mu float64, method ZMethod) *ZKernel {
	l := m.L()
	if method == ZAuto {
		if l <= EnumLimit {
			method = ZEnumerate
		} else {
			method = ZAlternate
		}
	}
	if method == ZEnumerate && l > 24 {
		panic("binauto: enumeration is exponential in L; use ZAlternate for L > 24")
	}
	if l > 64 {
		panic("binauto: code length limited to 64 bits (one packed word)")
	}
	// Snapshot the model: callers (assembleModel in particular) hand in
	// weight slices aliased with live submodels, and the Gram/Cholesky/
	// encoder state derived below must never drift from Model if those are
	// later mutated in place.
	k := &ZKernel{Model: m.Clone(), Mu: mu, Method: method}
	m = k.Model
	k.encW = vec.NewMatrix(l, m.D())
	k.encB = make([]float64, l)
	for i, e := range m.Enc {
		copy(k.encW.Row(i), e.W)
		k.encB[i] = e.B
	}
	// G = W·Wᵀ (L×L, symmetric).
	g := vec.NewMatrix(l, l)
	for i := 0; i < l; i++ {
		for j := i; j < l; j++ {
			v := vec.Dot(m.Dec.W.Row(i), m.Dec.W.Row(j))
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	k.gram = g
	if method == ZAlternate {
		// (G + μI), SPD for μ > 0. Factored on a copy so gram stays pure G.
		a := g.Clone()
		jitter := mu
		if jitter <= 0 {
			jitter = 1e-8
		}
		a.AddScaledIdentity(jitter)
		ch, err := vec.NewCholesky(a)
		if err != nil {
			a.AddScaledIdentity(1e-6 * (1 + vec.Norm(a.Data)))
			ch, err = vec.NewCholesky(a)
			if err != nil {
				panic("binauto: relaxed Z system not factorisable")
			}
		}
		k.chol = ch
	}
	return k
}

// NewSolver returns a solver sharing this kernel's precomputation. Solvers
// are cheap (scratch slices only); create one per goroutine.
func (k *ZKernel) NewSolver() *ZSolver {
	l, d := k.Model.L(), k.Model.D()
	return &ZSolver{
		Model: k.Model, Mu: k.Mu, Method: k.Method, k: k,
		t:    make([]float64, l),
		q:    make([]float64, l),
		rhs:  make([]float64, l),
		zRel: make([]float64, l),
		xmc:  make([]float64, d),
	}
}

// ZStepResult is what a full Z-step run learns while touching every point.
type ZStepResult struct {
	// Changed counts codes changed by the step.
	Changed int
	// HashEqual reports whether, after the step, z_i == h(x_i) for every
	// point — the constraint half of MAC's stopping criterion. The solver
	// computes h(x_i) for every solve anyway, so folding the comparison here
	// saves RunMAC a full re-encode of the dataset per iteration.
	HashEqual bool
}

// Run solves every point of pts with up to workers goroutines (one solver
// each) and returns how many codes changed. Points are independent, so the
// result is bit-identical to a serial pass regardless of workers.
func (k *ZKernel) Run(pts sgd.Points, z *retrieval.Codes, workers int) int {
	return k.RunStats(pts, z, workers).Changed
}

// RunStats is Run with the folded z == h(X) check included in the result.
func (k *ZKernel) RunStats(pts sgd.Points, z *retrieval.Codes, workers int) ZStepResult {
	n := pts.NumPoints()
	workers = core.ClampWorkers(n, workers)
	if workers <= 1 {
		return k.runChunk(pts, z, 0, n)
	}
	parts := make([]ZStepResult, workers)
	for w := range parts {
		// ParallelChunks may run fewer chunks than workers; entries that get
		// no chunk must not veto the AND-fold below.
		parts[w].HashEqual = true
	}
	core.ParallelChunks(n, workers, func(w, lo, hi int) {
		parts[w] = k.runChunk(pts, z, lo, hi)
	})
	total := ZStepResult{HashEqual: true}
	for _, p := range parts {
		total.Changed += p.Changed
		total.HashEqual = total.HashEqual && p.HashEqual
	}
	return total
}

// runChunk solves points [lo, hi) with one solver, tallying changes and the
// code-equals-hash flag.
func (k *ZKernel) runChunk(pts sgd.Points, z *retrieval.Codes, lo, hi int) ZStepResult {
	s := k.NewSolver()
	buf := make([]float64, k.Model.D())
	res := ZStepResult{HashEqual: true}
	for i := lo; i < hi; i++ {
		if s.Solve(pts.Point(i, buf), z, i) {
			res.Changed++
		}
		if z.Word64(i) != s.HashWord() {
			res.HashEqual = false
		}
	}
	return res
}

// ZSolver solves the Z step for a fixed model and μ, carrying per-goroutine
// scratch over a shared ZKernel. Not safe for concurrent use; create one
// solver per goroutine with ZKernel.NewSolver.
type ZSolver struct {
	Model  *Model
	Mu     float64
	Method ZMethod

	k *ZKernel
	// scratch
	hw      uint64    // packed h(x) of the point being solved
	t       []float64 // W·(x−c)
	q       []float64 // W·r, maintained incrementally across flips
	rhs     []float64
	zRel    []float64
	xmc     []float64
	lastObj float64
}

// NewZSolver prepares a solver for the given model and penalty value. It
// builds a private kernel; callers solving many points across goroutines (or
// repeatedly for the same μ) should build one ZKernel and share it.
func NewZSolver(m *Model, mu float64, method ZMethod) *ZSolver {
	return NewZKernel(m, mu, method).NewSolver()
}

// Kernel returns the shared precomputation this solver draws from.
func (s *ZSolver) Kernel() *ZKernel { return s.k }

// Solve optimises code i of z for input x in place. It returns true when the
// code changed. Not safe for concurrent use; create one solver per goroutine.
func (s *ZSolver) Solve(x []float64, z *retrieval.Codes, i int) bool {
	s.hw = s.encodeWord(x)
	switch s.Method {
	case ZEnumerate:
		return s.solveEnum(x, z, i)
	default:
		return s.solveAlt(x, z, i)
	}
}

// encodeWord computes h(x) packed into a word through the kernel's gathered
// encoder matrix — bit l equals Model.Enc[l].Predict(x) exactly.
func (s *ZSolver) encodeWord(x []float64) uint64 {
	k := s.k
	k.encW.MulVec(x, s.rhs)
	var w uint64
	for l, b := range k.encB {
		if s.rhs[l]+b >= 0 {
			w |= 1 << uint(l)
		}
	}
	return w
}

// LastObjective returns the objective value of the code chosen by the most
// recent Solve, as accumulated incrementally through the Gram identities —
// the quantity the property tests check against PointObjective.
func (s *ZSolver) LastObjective() float64 { return s.lastObj }

// HashWord returns h(x) of the most recent Solve as a packed word — bitwise
// the model's EncodePointWord of that point. The Z-step runners compare it
// against the stored code to fold MAC's z == h(X) stopping check into the
// pass that already computed it.
func (s *ZSolver) HashWord() uint64 { return s.hw }

// begin loads the point into scratch: xmc = x − c, t = q = W·(x−c) (the only
// O(L·D) work of a solve), and returns ‖x−c‖², the error at z = 0.
func (s *ZSolver) begin(x []float64) float64 {
	m := s.Model
	for j, c := range m.Dec.C {
		s.xmc[j] = x[j] - c
	}
	m.Dec.W.MulVec(s.xmc, s.t)
	copy(s.q, s.t)
	return vec.SqNorm(s.xmc)
}

// flipTo applies flipping bit b of cur to the incremental state: it returns
// the new code and error, updating q = W·r at O(L) via the Gram column. The
// update loops are written out (α = ±1) — this is the innermost statement of
// the 2^L enumeration walk.
func (s *ZSolver) flipTo(cur uint64, b int, err float64) (uint64, float64) {
	grow := s.k.gram.Row(b)
	q := s.q[:len(grow)]
	mask := uint64(1) << uint(b)
	if cur&mask == 0 {
		// 0→1: r' = r − B_b; ‖r'‖² = ‖r‖² − 2 B_b·r + G_bb.
		err += -2*q[b] + grow[b]
		for j, g := range grow {
			q[j] -= g
		}
		return cur | mask, err
	}
	err += 2*q[b] + grow[b]
	for j, g := range grow {
		q[j] += g
	}
	return cur &^ mask, err
}

// solveEnum walks all 2^L codes in Gray-code order. The error of each
// candidate follows from its predecessor at O(L) via the Gram identities.
func (s *ZSolver) solveEnum(x []float64, z *retrieval.Codes, i int) bool {
	l := s.Model.L()
	err := s.begin(x)
	ham := bits.OnesCount64(s.hw) // z = 0 differs from h wherever h is 1
	var cur uint64
	best := cur
	bestObj := err + s.Mu*float64(ham)

	total := uint64(1) << uint(l)
	for k := uint64(1); k < total; k++ {
		flip := bits.TrailingZeros64(k) // Gray code flips this bit
		cur, err = s.flipTo(cur, flip, err)
		if cur&(1<<uint(flip)) != 0 == (s.hw&(1<<uint(flip)) != 0) {
			ham--
		} else {
			ham++
		}
		if obj := err + s.Mu*float64(ham); obj < bestObj {
			bestObj = obj
			best = cur
		}
	}
	s.lastObj = bestObj
	return s.store(best, z, i)
}

// solveAlt initialises z from the truncated relaxed solution
// (G + μI)z = W(x−c) + μh and then alternates single-bit flips until no flip
// decreases the objective (§3.1). A flip candidate costs O(1) — the error
// delta is ∓2 q_b + G_bb — and only accepted flips pay the O(L) q update, so
// a full pass is O(L²) instead of O(L·D).
func (s *ZSolver) solveAlt(x []float64, z *retrieval.Codes, i int) bool {
	l := s.Model.L()
	err := s.begin(x)
	// rhs = W(x−c) + μh.
	copy(s.rhs, s.t)
	for b := 0; b < l; b++ {
		if s.hw&(1<<uint(b)) != 0 {
			s.rhs[b] += s.Mu
		}
	}
	s.k.chol.Solve(s.rhs, s.zRel)
	var cur uint64
	for b := 0; b < l; b++ {
		if s.zRel[b] >= 0.5 {
			// Raise the bit through the incremental state so q and err track
			// the truncated initial code.
			cur, err = s.flipTo(cur, b, err)
		}
	}
	ham := bits.OnesCount64(cur ^ s.hw)
	g := s.k.gram
	const maxPasses = 32
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for b := 0; b < l; b++ {
			mask := uint64(1) << uint(b)
			isOne := cur&mask != 0
			var dErr float64
			if isOne {
				// flipping 1→0: r' = r + B_b.
				dErr = 2*s.q[b] + g.At(b, b)
			} else {
				dErr = -2*s.q[b] + g.At(b, b)
			}
			// Flipping breaks a match with h (+μ) or restores one (−μ).
			dHam := s.Mu
			if isOne != (s.hw&mask != 0) {
				dHam = -s.Mu
			}
			if dErr+dHam < -1e-12 {
				cur, err = s.flipTo(cur, b, err)
				if dHam < 0 {
					ham--
				} else {
					ham++
				}
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	s.lastObj = err + s.Mu*float64(ham)
	return s.store(cur, z, i)
}

// store writes the packed code in one word compare-and-write and reports
// whether it changed (L <= 64, enforced by NewZKernel).
func (s *ZSolver) store(code uint64, z *retrieval.Codes, i int) bool {
	if z.Word64(i) == code {
		return false
	}
	z.SetWord64(i, code)
	return true
}

// PointObjective evaluates ‖x − f(z_i)‖² + μ‖z_i − h(x)‖² for diagnostics and
// tests.
func PointObjective(m *Model, x []float64, z *retrieval.Codes, i int, mu float64) float64 {
	rec := m.Dec.Reconstruct(z, i, nil)
	obj := vec.SqDist(x, rec)
	for l := range m.Enc {
		if z.Bit(i, l) != m.Enc[l].Predict(x) {
			obj += mu
		}
	}
	return obj
}

// RunZStep runs the solver serially over every point of pts, returning how
// many codes changed. This is the whole Z step of MAC; in ParMAC each machine
// calls it on its own shard with no communication (§4.1).
func RunZStep(m *Model, pts sgd.Points, z *retrieval.Codes, mu float64, method ZMethod) int {
	return NewZKernel(m, mu, method).Run(pts, z, 1)
}

// RunZStepParallel is RunZStep over a pool of workers goroutines (one solver
// each; workers <= 1 runs serially, workers < 0 uses every core). Codes are
// independent per point, so the output is bit-identical to RunZStep.
func RunZStepParallel(m *Model, pts sgd.Points, z *retrieval.Codes, mu float64, method ZMethod, workers int) int {
	return NewZKernel(m, mu, method).Run(pts, z, core.Cores(workers))
}

// BruteForceZ solves one point by explicit search over all 2^L codes; test
// oracle for the Gray-code enumeration.
func BruteForceZ(m *Model, x []float64, mu float64) (uint64, float64) {
	l := m.L()
	if l > 20 {
		panic("binauto: BruteForceZ limited to small L")
	}
	z := retrieval.NewCodes(1, l)
	best := uint64(0)
	bestObj := math.Inf(1)
	for code := uint64(0); code < 1<<uint(l); code++ {
		for b := 0; b < l; b++ {
			z.SetBit(0, b, code&(1<<uint(b)) != 0)
		}
		if obj := PointObjective(m, x, z, 0, mu); obj < bestObj {
			bestObj = obj
			best = code
		}
	}
	return best, bestObj
}
