package binauto

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/retrieval"
	"repro/internal/sgd"
	"repro/internal/svm"
	"repro/internal/vec"
)

// This file is the fused W step: the production replacement for
// TrainWStepSerial (which is kept as the bit-for-bit reference). The serial
// W step makes L+... full passes over the data — one per bit-SVM per epoch,
// plus the η0 calibration trials — reading every point L times per pass
// round. The fused trainer inverts the loop nest: one pts.Point read per
// point visit feeds the updates of every bit, the η0 ladder is evaluated for
// all bits inside one shared pass per candidate, and the per-step SVM update
// uses svm.StepFused (scale and margin dot in a single walk over w).
//
// Equivalence contract: each bit's sequence of (sample, label, η) updates is
// exactly the serial one, so the trained encoders are bit-for-bit identical
// to TrainWStepSerial whenever the per-bit sample orders coincide — always
// for the calibration passes (deterministic leading sample) and for training
// passes when cfg.Shuffle is false. With cfg.Shuffle set, the fused step
// draws ONE permutation per epoch shared by every bit (the serial reference
// draws a fresh permutation per bit per epoch); both are valid stochastic
// orders, but the realisations differ.
//
// Parallelism: bits are split into contiguous groups over cfg-many
// goroutines, each with its own point buffer and scratch; bits never share
// mutable state, so the result is bit-identical to the fused serial pass for
// any worker count. The decoder fit runs on the popcount-Gram WKernel with
// the same worker budget.

// TrainWStepFused performs the serial W step of Fig. 1 — auto-tune and train
// the L per-bit SVMs, then refit the decoder exactly — as a fused single
// pass per epoch over the data, with up to workers goroutines (0/1 serial,
// < 0 every core) over bit groups.
func TrainWStepFused(m *Model, pts sgd.Points, z *retrieval.Codes, cfg *MACConfig, rng *rand.Rand, workers int) error {
	n := pts.NumPoints()
	l := m.L()
	// Orders are drawn up front on the caller's goroutine: one per epoch,
	// shared by every bit, so rng consumption is independent of the worker
	// count and the bit-group fan-out sees only read-only order slices.
	orders := make([][]int, cfg.SVMEpochs)
	for ep := range orders {
		orders[ep] = sgd.Order(n, cfg.Shuffle, rng)
	}
	workers = core.Cores(workers)
	bitWorkers := workers
	if bitWorkers > l {
		bitWorkers = l
	}
	core.ParallelChunks(l, bitWorkers, func(_, lo, hi int) {
		buf := make([]float64, m.D())
		autoTuneFusedBits(m, pts, z, lo, hi, buf)
		for _, order := range orders {
			trainPassFusedBits(m, pts, z, lo, hi, order, buf)
		}
	})
	return m.FitDecoderExactParallel(pts, z, cfg.DecLambda, workers)
}

// trainPassFusedBits runs one SGD pass of bits [lo, hi) over the given
// order: each point is read once and fed to every bit's StepFused with that
// bit's own schedule — the same (sample, label, η) sequence per bit as the
// serial per-bit TrainPass.
func trainPassFusedBits(m *Model, pts sgd.Points, z *retrieval.Codes, lo, hi int, order []int, buf []float64) {
	for _, i := range order {
		x := pts.Point(i, buf)
		for b := lo; b < hi; b++ {
			y := -1.0
			if z.Bit(i, b) {
				y = 1
			}
			e := m.Enc[b]
			e.StepFused(x, y, e.Sched.Next())
		}
	}
}

// autoTuneFusedBits reproduces svm.Linear.AutoTune for bits [lo, hi) with
// the data passes shared: for each η0 candidate of the common ladder, one
// trial-training pass and one loss pass over the leading sample update all
// bits' trial models, instead of each bit re-reading the sample per
// candidate. Per bit, the trial sequence, hinge-loss accumulation and
// selection rule are exactly AutoTune's, so the chosen η0 values are
// identical.
func autoTuneFusedBits(m *Model, pts sgd.Points, z *retrieval.Codes, lo, hi int, buf []float64) {
	n := sgd.TuningSampleSize(pts.NumPoints())
	if n == 0 {
		return
	}
	etas := svm.TuneLadder() // AutoTune's ladder, from the one definition
	nb := hi - lo
	trials := make([]*svm.Linear, nb)
	hinge := make([]float64, nb)
	losses := make([][]float64, nb)
	for j := range losses {
		losses[j] = make([]float64, len(etas))
	}
	for ci, eta0 := range etas {
		for j := range trials {
			e := m.Enc[lo+j]
			t := e.Clone()
			t.Sched = sgd.NewSchedule(eta0, e.Lambda)
			trials[j] = t
		}
		// Trial pass over the leading sample (AutoTune's sample order is
		// 0..n-1, no rng).
		for i := 0; i < n; i++ {
			x := pts.Point(i, buf)
			for j, t := range trials {
				y := -1.0
				if z.Bit(i, lo+j) {
					y = 1
				}
				t.StepFused(x, y, t.Sched.Next())
			}
		}
		// Hinge-loss pass, accumulated per bit in sample order like AvgLoss.
		for j := range hinge {
			hinge[j] = 0
		}
		for i := 0; i < n; i++ {
			x := pts.Point(i, buf)
			for j, t := range trials {
				y := -1.0
				if z.Bit(i, lo+j) {
					y = 1
				}
				if h := 1 - y*t.Margin(x); h > 0 {
					hinge[j] += h
				}
			}
		}
		for j, t := range trials {
			losses[j][ci] = hinge[j]/float64(n) + 0.5*t.Lambda*vec.SqNorm(t.W)
		}
	}
	for j := 0; j < nb; j++ {
		e := m.Enc[lo+j]
		e.Sched.Eta0 = sgd.PickEta0(etas, losses[j])
		e.Sched.Lambda = e.Lambda
		e.Sched.SetSteps(0)
	}
}
