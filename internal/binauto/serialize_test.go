package binauto

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := dataset.GISTLike(120, 6, 4, 21)
	m, _, _ := RunMAC(ds, MACConfig{L: 5, Mu0: 1e-3, Iters: 3, SVMEpochs: 2, Seed: 21})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.L() != m.L() || back.D() != m.D() {
		t.Fatal("shape lost")
	}
	// The loaded model must produce identical codes and reconstructions.
	a, b := m.Encode(ds), back.Encode(ds)
	if !a.Equal(b) {
		t.Fatal("codes differ after round trip")
	}
	if m.EBA(ds) != back.EBA(ds) {
		t.Fatal("EBA differs after round trip")
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		``,
		`{"l":0,"d":3}`,
		`{"l":2,"d":3,"encoder":[{"w":[1,2,3],"b":0}],"decoder":{"w":[[1,2,3],[4,5,6]],"c":[0,0,0]}}`, // one encoder for L=2
		`{"l":1,"d":3,"encoder":[{"w":[1,2],"b":0}],"decoder":{"w":[[1,2,3]],"c":[0,0,0]}}`,           // encoder width mismatch
		`{"l":1,"d":3,"encoder":[{"w":[1,2,3],"b":0}],"decoder":{"w":[[1,2]],"c":[0,0,0]}}`,           // decoder row width mismatch
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}
