package binauto

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sgd"
	"repro/internal/svm"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := dataset.GISTLike(120, 6, 4, 21)
	m, _, _ := RunMAC(ds, MACConfig{L: 5, Mu0: 1e-3, Iters: 3, SVMEpochs: 2, Seed: 21})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.L() != m.L() || back.D() != m.D() {
		t.Fatal("shape lost")
	}
	// The loaded model must produce identical codes and reconstructions.
	a, b := m.Encode(ds), back.Encode(ds)
	if !a.Equal(b) {
		t.Fatal("codes differ after round trip")
	}
	if m.EBA(ds) != back.EBA(ds) {
		t.Fatal("EBA differs after round trip")
	}
}

// checkGolden compares got against the named golden file, rewriting it under
// -update. Golden files pin the wire/disk formats: an accidental change to
// either fails here instead of silently breaking cross-version clusters or
// saved models.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file (%d vs %d bytes).\nIf the change is intentional, regenerate with -update and flag it in the PR: old workers cannot talk to new coordinators across a format change.", name, len(got), len(want))
	}
}

// fixedModel builds a deterministic 2-bit, 3-dimensional model by hand.
func fixedModel() *Model {
	m := &Model{Dec: NewDecoder(2, 3)}
	for b := 0; b < 2; b++ {
		lin := svm.NewLinear(3, 1e-5)
		for j := range lin.W {
			lin.W[j] = float64(b+1) * (0.25 + float64(j)/8)
		}
		lin.B = -0.5 * float64(b)
		m.Enc = append(m.Enc, lin)
	}
	for l := 0; l < 2; l++ {
		for d := 0; d < 3; d++ {
			m.Dec.W.Set(l, d, float64(l)-float64(d)/4)
		}
	}
	m.Dec.C = []float64{0.125, -0.25, 0.5}
	return m
}

func TestModelJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedModel().Save(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "model.golden.json", buf.Bytes())
}

// fixedEncoderSub/fixedDecoderSub are deterministic circulating submodels
// with non-trivial optimiser state (schedule mid-decay, auto-tune armed).
func fixedEncoderSub() *encoderSub {
	lin := svm.NewLinear(3, 1e-5)
	lin.W = []float64{0.5, -1.25, 2}
	lin.B = 0.75
	lin.Sched = sgd.NewSchedule(0.02, 1e-5)
	lin.Sched.SetSteps(137)
	return &encoderSub{id: 1, bit: 1, svm: lin, tuned: true}
}

func fixedDecoderSub() *decoderSub {
	d := newDecoderSub(3, 2, []int{0, 2}, 1e-4)
	for i := range d.w.Data {
		d.w.Data[i] = float64(i) - 1.5
	}
	d.c = []float64{0.25, -0.75}
	d.sched = sgd.NewSchedule(0.005, 1e-4)
	d.sched.SetSteps(42)
	d.tuned = true
	return d
}

func TestSubmodelGobRoundTrip(t *testing.T) {
	// Submodels travel as core.Submodel interface values inside tokens, so
	// the round trip must go through the interface machinery (registration +
	// GobEncode/GobDecode), exactly as the TCP transport does.
	subs := []core.Submodel{fixedEncoderSub(), fixedDecoderSub()}
	for _, orig := range subs {
		var buf bytes.Buffer
		src := orig
		if err := gob.NewEncoder(&buf).Encode(&src); err != nil {
			t.Fatalf("%T: encode: %v", orig, err)
		}
		var back core.Submodel
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
			t.Fatalf("%T: decode: %v", orig, err)
		}
		if !reflect.DeepEqual(orig, back) {
			t.Fatalf("%T: round trip lost state:\norig %#v\nback %#v", orig, orig, back)
		}
	}
}

func TestSubmodelGobCarriesOptimiserState(t *testing.T) {
	var buf bytes.Buffer
	var src core.Submodel = fixedEncoderSub()
	if err := gob.NewEncoder(&buf).Encode(&src); err != nil {
		t.Fatal(err)
	}
	var back core.Submodel
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
		t.Fatal(err)
	}
	e := back.(*encoderSub)
	if !e.tuned {
		t.Fatal("auto-tune flag lost: the submodel would re-tune on the next machine")
	}
	if got := e.svm.Sched.Steps(); got != 137 {
		t.Fatalf("schedule position lost: %v steps, want 137 — learning-rate decay would restart", got)
	}
}

// TestSubmodelWireGolden decodes byte streams committed when the wire format
// was defined. Gob descriptor IDs are assigned in process-global first-use
// order, so encoded bytes are not stable across runs — but decodability of
// old bytes is exactly the compatibility that matters: a worker built today
// must understand tokens from the committed format. -update re-captures the
// current encoding.
func TestSubmodelWireGolden(t *testing.T) {
	cases := []struct {
		file string
		want core.Submodel
		into core.Submodel
	}{
		{"encoder_sub.golden.hex", fixedEncoderSub(), &encoderSub{}},
		{"decoder_sub.golden.hex", fixedDecoderSub(), &decoderSub{}},
	}
	for _, c := range cases {
		if *update {
			raw, err := c.want.(gob.GobEncoder).GobEncode()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.file, []byte(hex.EncodeToString(raw)+"\n"))
			continue
		}
		hexBytes, err := os.ReadFile(filepath.Join("testdata", c.file))
		if err != nil {
			t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
		}
		raw, err := hex.DecodeString(strings.TrimSpace(string(hexBytes)))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.into.(gob.GobDecoder).GobDecode(raw); err != nil {
			t.Fatalf("%s: committed wire bytes no longer decode — the format drifted incompatibly: %v", c.file, err)
		}
		if !reflect.DeepEqual(c.into, c.want) {
			t.Fatalf("%s: committed wire bytes decode to different state:\ngot  %#v\nwant %#v", c.file, c.into, c.want)
		}
	}
}

func TestSubmodelDecodeRejectsMalformed(t *testing.T) {
	bad := decoderWire{ID: 3, Dims: []int{0, 2}, L: 2, W: []float64{1}, C: []float64{0, 0}, Eta0: 0.01}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&bad); err != nil {
		t.Fatal(err)
	}
	var d decoderSub
	if err := d.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("inconsistent decoder shape must not decode")
	}
	var e encoderSub
	badEnc := encoderWire{ID: 0, W: []float64{1}, Eta0: 0}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&badEnc); err != nil {
		t.Fatal(err)
	}
	if err := e.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("invalid schedule must not decode")
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		``,
		`{"l":0,"d":3}`,
		`{"l":2,"d":3,"encoder":[{"w":[1,2,3],"b":0}],"decoder":{"w":[[1,2,3],[4,5,6]],"c":[0,0,0]}}`, // one encoder for L=2
		`{"l":1,"d":3,"encoder":[{"w":[1,2],"b":0}],"decoder":{"w":[[1,2,3]],"c":[0,0,0]}}`,           // encoder width mismatch
		`{"l":1,"d":3,"encoder":[{"w":[1,2,3],"b":0}],"decoder":{"w":[[1,2]],"c":[0,0,0]}}`,           // decoder row width mismatch
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}
