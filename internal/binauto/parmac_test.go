package binauto

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/retrieval"
)

func buildProblem(n, d, l, p int, seed int64) (*ParMACProblem, *dataset.Dataset) {
	ds := dataset.GISTLike(n, d, 6, seed)
	shards := dataset.ShardIndices(n, p, nil)
	prob := NewParMACProblem(ds, shards, ParMACConfig{
		L: l, Mu0: 1e-3, MuFactor: 2, SVMLambda: 1e-4, Seed: seed,
	})
	return prob, ds
}

func TestParMACProblemShapes(t *testing.T) {
	prob, _ := buildProblem(120, 10, 6, 3, 1)
	if prob.NumShards() != 3 {
		t.Fatalf("shards = %d", prob.NumShards())
	}
	subs := prob.Submodels()
	if len(subs) != 12 { // L encoders + L decoder groups
		t.Fatalf("submodels = %d, want 12", len(subs))
	}
	for i, sm := range subs {
		if sm.ID() != i {
			t.Fatalf("submodel %d has ID %d", i, sm.ID())
		}
	}
	total := 0
	for i := 0; i < 3; i++ {
		total += prob.Shard(i).NumPoints()
	}
	if total != 120 {
		t.Fatalf("shard points = %d", total)
	}
}

func TestDecoderGroupsPartitionDimensions(t *testing.T) {
	prob, _ := buildProblem(60, 10, 4, 2, 2)
	seen := map[int]bool{}
	for _, dsub := range prob.decs {
		for _, dim := range dsub.dims {
			if seen[dim] {
				t.Fatalf("dimension %d in two groups", dim)
			}
			seen[dim] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("groups cover %d of 10 dims", len(seen))
	}
	// Groups are balanced within 1.
	minSz, maxSz := len(prob.decs[0].dims), len(prob.decs[0].dims)
	for _, dsub := range prob.decs {
		if len(dsub.dims) < minSz {
			minSz = len(dsub.dims)
		}
		if len(dsub.dims) > maxSz {
			maxSz = len(dsub.dims)
		}
	}
	if maxSz-minSz > 1 {
		t.Fatalf("group sizes unbalanced: %d..%d", minSz, maxSz)
	}
}

func TestAssembleModelRoundTrip(t *testing.T) {
	prob, _ := buildProblem(50, 8, 4, 2, 3)
	// Stamp recognisable values into submodels.
	prob.encs[2].svm.W[3] = 42
	prob.decs[1].w.Set(2, 0, 7) // bit 2, first owned dim of group 1
	dim := prob.decs[1].dims[0]
	prob.decs[1].c[0] = -5
	m := prob.AssembleModel()
	if m.Enc[2].W[3] != 42 {
		t.Fatal("encoder weights lost in assembly")
	}
	if m.Dec.W.At(2, dim) != 7 {
		t.Fatal("decoder weights misplaced in assembly")
	}
	if m.Dec.C[dim] != -5 {
		t.Fatal("decoder bias misplaced in assembly")
	}
}

func TestMuScheduleAdvances(t *testing.T) {
	prob, _ := buildProblem(40, 6, 4, 2, 4)
	prob.OnIterationStart(0)
	if prob.Mu() != 1e-3 {
		t.Fatalf("mu(0) = %v", prob.Mu())
	}
	prob.OnIterationStart(3)
	if prob.Mu() != 1e-3*8 {
		t.Fatalf("mu(3) = %v", prob.Mu())
	}
}

func TestParMACRunImprovesEQ(t *testing.T) {
	prob, _ := buildProblem(300, 8, 6, 4, 5)
	eng := core.New(prob, core.Config{P: 4, Epochs: 1, Seed: 5})
	defer eng.Shutdown()

	prob.OnIterationStart(0)
	eq0, eba0 := prob.Stats()
	eng.Run(6)
	_, eba1 := prob.Stats()
	if eba1 > eba0 {
		t.Fatalf("ParMAC did not reduce E_BA: %v -> %v", eba0, eba1)
	}
	_ = eq0
}

func TestParMACDeterministicNoShuffle(t *testing.T) {
	run := func() *retrieval.Codes {
		prob, _ := buildProblem(150, 6, 4, 3, 6)
		eng := core.New(prob, core.Config{P: 3, Epochs: 2, Seed: 6})
		defer eng.Shutdown()
		eng.Run(3)
		return prob.GatherCodes()
	}
	if !run().Equal(run()) {
		t.Fatal("ParMAC with fixed seed and no shuffle must be deterministic")
	}
}

func TestParMACSingleMachineDeterministicWithShuffle(t *testing.T) {
	run := func() *retrieval.Codes {
		prob, _ := buildProblem(100, 6, 4, 1, 7)
		eng := core.New(prob, core.Config{P: 1, Epochs: 2, Shuffle: true, Seed: 7})
		defer eng.Shutdown()
		eng.Run(2)
		return prob.GatherCodes()
	}
	if !run().Equal(run()) {
		t.Fatal("P=1 shuffled runs with one seed must be identical")
	}
}

func TestParMACQualityComparableToSerialMAC(t *testing.T) {
	// §8.2: "ParMAC gives almost identical results to MAC". Compare final
	// E_BA between serial MAC (exact W step) and ParMAC (stochastic W step)
	// on the same data.
	n, d, l := 400, 8, 6
	ds := dataset.GISTLike(n, d, 6, 8)

	_, _, serialStats := RunMAC(ds, MACConfig{
		L: l, Mu0: 1e-3, MuFactor: 2, Iters: 8, SVMEpochs: 3, Seed: 8,
	})
	serialEBA := serialStats[len(serialStats)-1].EBA

	shards := dataset.ShardIndices(n, 4, nil)
	prob := NewParMACProblem(ds, shards, ParMACConfig{
		L: l, Mu0: 1e-3, MuFactor: 2, SVMLambda: 1e-4, Seed: 8,
	})
	eng := core.New(prob, core.Config{P: 4, Epochs: 2, Seed: 8})
	defer eng.Shutdown()
	eng.Run(8)
	_, parmacEBA := prob.Stats()

	t.Logf("serial E_BA %.1f vs ParMAC E_BA %.1f", serialEBA, parmacEBA)
	if parmacEBA > 1.5*serialEBA+1 {
		t.Fatalf("ParMAC E_BA %v too far above serial %v", parmacEBA, serialEBA)
	}
}

func TestParMACMoreEpochsNotWorse(t *testing.T) {
	// §8.2: more epochs solve the W step more exactly; few epochs cause only
	// small degradation. Check e=4 is not dramatically worse than e=1 (both
	// should land close).
	finalEBA := func(epochs int) float64 {
		prob, _ := buildProblem(300, 8, 4, 4, 9)
		eng := core.New(prob, core.Config{P: 4, Epochs: epochs, Seed: 9})
		defer eng.Shutdown()
		eng.Run(6)
		_, eba := prob.Stats()
		return eba
	}
	e1, e4 := finalEBA(1), finalEBA(4)
	t.Logf("E_BA: e=1 %.1f, e=4 %.1f", e1, e4)
	if e4 > 1.5*e1+1 {
		t.Fatalf("more epochs should not hurt badly: e1=%v e4=%v", e1, e4)
	}
}

func TestParMACWithFaultInjection(t *testing.T) {
	prob, _ := buildProblem(200, 6, 4, 4, 10)
	eng := core.New(prob, core.Config{
		P: 4, Epochs: 2, Replicas: true, Seed: 10,
		Fail: core.FailureInjection{Mode: core.FailDropToken, Rank: 2, Iteration: 1, AfterTok: 5},
	})
	defer eng.Shutdown()
	res := eng.Run(4)
	if len(res[1].Failures) != 1 || !res[1].Failures[0].Recovered {
		t.Fatalf("failure not recovered: %+v", res[1].Failures)
	}
	if res[3].AliveMachines != 3 {
		t.Fatalf("alive = %d", res[3].AliveMachines)
	}
	// Training must still produce a usable model.
	m := prob.AssembleModel()
	if m == nil || len(m.Enc) != 4 {
		t.Fatal("model incomplete after failure")
	}
}

func TestParMACStreamingAddShard(t *testing.T) {
	ds := dataset.GISTLike(200, 6, 4, 11)
	shards := dataset.ShardIndices(150, 2, nil) // first 150 points on 2 machines
	prob := NewParMACProblem(ds, shards, ParMACConfig{L: 4, Mu0: 1e-3, Seed: 11})
	eng := core.New(prob, core.Config{P: 2, Epochs: 1, Seed: 11, MaxMachines: 3})
	defer eng.Shutdown()
	eng.Run(2)

	// Stream in the remaining 50 points on a new machine.
	extra := make([]int, 50)
	for i := range extra {
		extra[i] = 150 + i
	}
	shardIdx := prob.AddShard(NewShardPoints(ds, extra))
	eng.AddMachine(shardIdx)
	res := eng.Iterate()
	if res.AliveMachines != 3 {
		t.Fatalf("alive = %d", res.AliveMachines)
	}
	if prob.GatherCodes().N != 200 {
		t.Fatalf("codes = %d, want 200", prob.GatherCodes().N)
	}
}

func TestGatherCodesOrdering(t *testing.T) {
	ds := dataset.GISTLike(30, 5, 2, 12)
	shards := dataset.ShardIndices(30, 3, nil)
	initZ := retrieval.NewCodes(30, 4)
	for i := 0; i < 30; i++ {
		initZ.SetBit(i, i%4, true)
	}
	prob := NewParMACProblem(ds, shards, ParMACConfig{L: 4, InitZ: initZ, Seed: 12})
	got := prob.GatherCodes()
	// Contiguous shards preserve the original order.
	for i := 0; i < 30; i++ {
		for b := 0; b < 4; b++ {
			if got.Bit(i, b) != initZ.Bit(i, b) {
				t.Fatalf("code %d bit %d lost", i, b)
			}
		}
	}
}
