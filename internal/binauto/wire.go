package binauto

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/sgd"
	"repro/internal/svm"
	"repro/internal/vec"
)

// Wire encoding of the BA's circulating submodels, used when ParMAC runs
// across OS processes (cluster/tcp): instead of passing pointers, the fabric
// gob-serializes tokens, and the submodels inside them serialize through
// these GobEncoder/GobDecoder implementations. The encoding must carry the
// full training state — parameters AND optimiser state (SGD schedule
// position, the per-iteration auto-tune flag) — so a submodel resumes on the
// next machine exactly where it left off, byte-for-byte equal to the
// in-process run. Wire structs are versioned by shape: changing them breaks
// the golden-file tests in serialize_test.go, which is the point.

// encoderWire is the on-the-wire form of encoderSub.
type encoderWire struct {
	ID, Bit     int
	W           []float64
	B           float64
	Lambda      float64
	Eta0        float64
	SchedLambda float64
	Steps       float64
	Tuned       bool
}

// GobEncode implements gob.GobEncoder.
func (e *encoderSub) GobEncode() ([]byte, error) {
	w := encoderWire{
		ID: e.id, Bit: e.bit,
		W: e.svm.W, B: e.svm.B, Lambda: e.svm.Lambda,
		Eta0: e.svm.Sched.Eta0, SchedLambda: e.svm.Sched.Lambda, Steps: e.svm.Sched.Steps(),
		Tuned: e.tuned,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("binauto: encode encoder submodel: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (e *encoderSub) GobDecode(b []byte) error {
	var w encoderWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("binauto: decode encoder submodel: %w", err)
	}
	if w.Eta0 <= 0 {
		return fmt.Errorf("binauto: encoder submodel %d has invalid schedule eta0 %v", w.ID, w.Eta0)
	}
	lin := &svm.Linear{W: w.W, B: w.B, Lambda: w.Lambda, Sched: sgd.NewSchedule(w.Eta0, w.SchedLambda)}
	lin.Sched.SetSteps(w.Steps)
	*e = encoderSub{id: w.ID, bit: w.Bit, svm: lin, tuned: w.Tuned}
	return nil
}

// decoderWire is the on-the-wire form of decoderSub.
type decoderWire struct {
	ID          int
	Dims        []int
	L           int // rows of the weight matrix
	W           []float64
	C           []float64
	Lambda      float64
	Eta0        float64
	SchedLambda float64
	Steps       float64
	Tuned       bool
}

// GobEncode implements gob.GobEncoder.
func (d *decoderSub) GobEncode() ([]byte, error) {
	w := decoderWire{
		ID: d.id, Dims: d.dims, L: d.w.Rows, W: d.w.Data, C: d.c, Lambda: d.lambda,
		Eta0: d.sched.Eta0, SchedLambda: d.sched.Lambda, Steps: d.sched.Steps(),
		Tuned: d.tuned,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("binauto: encode decoder submodel: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (d *decoderSub) GobDecode(b []byte) error {
	var w decoderWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("binauto: decode decoder submodel: %w", err)
	}
	if w.L <= 0 || len(w.W) != w.L*len(w.Dims) || len(w.C) != len(w.Dims) {
		return fmt.Errorf("binauto: decoder submodel %d has inconsistent shape (L=%d dims=%d w=%d c=%d)",
			w.ID, w.L, len(w.Dims), len(w.W), len(w.C))
	}
	if w.Eta0 <= 0 {
		return fmt.Errorf("binauto: decoder submodel %d has invalid schedule eta0 %v", w.ID, w.Eta0)
	}
	sched := sgd.NewSchedule(w.Eta0, w.SchedLambda)
	sched.SetSteps(w.Steps)
	*d = decoderSub{
		id: w.ID, dims: w.Dims,
		w: &vec.Matrix{Rows: w.L, Cols: len(w.Dims), Data: w.W},
		c: w.C, lambda: w.Lambda, sched: sched, tuned: w.Tuned,
	}
	return nil
}

func init() {
	gob.Register(&encoderSub{})
	gob.Register(&decoderSub{})
}
