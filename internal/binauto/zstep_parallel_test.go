package binauto

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/retrieval"
)

// TestRunZStepParallelBitIdentical runs the Z step serially and with several
// worker counts, for both solver methods, and demands bit-identical codes and
// equal change counts. Run under -race (CI does) this also proves the workers
// share nothing but the read-only kernel.
func TestRunZStepParallelBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		l      int
		method ZMethod
	}{
		{"enumerate-L10", 10, ZEnumerate},
		{"alternate-L24", 24, ZAlternate},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := randomModel(16, tc.l, 42)
			ds := dataset.GISTLike(500, 16, 4, 43)
			init := m.Encode(ds)
			serial := init.Clone()
			wantChanged := RunZStep(m, ds, serial, 0.5, tc.method)
			for _, workers := range []int{2, 3, 8, -1} {
				par := init.Clone()
				changed := RunZStepParallel(m, ds, par, 0.5, tc.method, workers)
				if changed != wantChanged {
					t.Fatalf("workers=%d: changed %d, serial %d", workers, changed, wantChanged)
				}
				if !par.Equal(serial) {
					t.Fatalf("workers=%d: codes differ from serial pass", workers)
				}
			}
		})
	}
}

// TestZKernelSharedAcrossSolvers exercises the hoisted construction: one
// kernel, many solvers, same answers as independently constructed solvers.
func TestZKernelSharedAcrossSolvers(t *testing.T) {
	m := randomModel(8, 12, 7)
	ds := dataset.GISTLike(40, 8, 3, 8)
	k := NewZKernel(m, 0.25, ZAlternate)
	zShared := retrieval.NewCodes(ds.N, 12)
	zFresh := retrieval.NewCodes(ds.N, 12)
	for i := 0; i < ds.N; i++ {
		x := ds.Point(i, nil)
		k.NewSolver().Solve(x, zShared, i)
		NewZSolver(m, 0.25, ZAlternate).Solve(x, zFresh, i)
	}
	if !zShared.Equal(zFresh) {
		t.Fatal("solvers over a shared kernel disagree with per-call construction")
	}
}

// TestZKernelSnapshotsModel pins the staleness contract: NewZKernel clones
// the model, so mutating the caller's weights in place afterwards neither
// perturbs an existing kernel's answers nor slips past the modelsEqual guard
// that decides whether ParMACProblem.zKernel may reuse its cache.
func TestZKernelSnapshotsModel(t *testing.T) {
	m := randomModel(8, 10, 21)
	ds := dataset.GISTLike(30, 8, 3, 22)
	k := NewZKernel(m, 0.25, ZEnumerate)
	zBefore := retrieval.NewCodes(ds.N, 10)
	for i := 0; i < ds.N; i++ {
		k.NewSolver().Solve(ds.Point(i, nil), zBefore, i)
	}
	if !modelsEqual(k.Model, m) {
		t.Fatal("freshly built kernel does not compare equal to its source model")
	}
	for _, e := range m.Enc {
		e.W[0] += 1
	}
	m.Dec.W.Set(0, 0, m.Dec.W.At(0, 0)+1)
	if modelsEqual(k.Model, m) {
		t.Fatal("in-place weight mutation not detected: kernel aliases the live model")
	}
	zAfter := retrieval.NewCodes(ds.N, 10)
	for i := 0; i < ds.N; i++ {
		k.NewSolver().Solve(ds.Point(i, nil), zAfter, i)
	}
	if !zAfter.Equal(zBefore) {
		t.Fatal("kernel answers changed after mutating the source model")
	}
}

// TestGramObjectiveMatchesPointObjective is the property test of the Gram
// rework: the objective value the solver accumulates incrementally (O(L) per
// flip against G = W·Wᵀ) must match the O(D) PointObjective evaluation of
// the chosen code to 1e-9, over random models, methods and penalty values.
func TestGramObjectiveMatchesPointObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		d := 4 + rng.Intn(12)
		l := 2 + rng.Intn(9) // enumeration stays cheap up to L=10
		mu := []float64{0, 1e-3, 0.5, 3}[trial%4]
		method := []ZMethod{ZEnumerate, ZAlternate}[trial%2]
		m := randomModel(d, l, int64(1000+trial))
		ds := dataset.GISTLike(6, d, 2, int64(2000+trial))
		k := NewZKernel(m, mu, method)
		s := k.NewSolver()
		z := retrieval.NewCodes(ds.N, l)
		for i := 0; i < ds.N; i++ {
			x := ds.Point(i, nil)
			s.Solve(x, z, i)
			want := PointObjective(m, x, z, i, mu)
			if diff := math.Abs(s.LastObjective() - want); diff > 1e-9 {
				t.Fatalf("trial %d (L=%d D=%d mu=%g method=%d) point %d: incremental objective %v vs direct %v (|Δ|=%g)",
					trial, l, d, mu, method, i, s.LastObjective(), want, diff)
			}
		}
	}
}

// TestParMACParallelMatchesSerial trains the full distributed BA with and
// without Z-step parallelism and requires identical codes and models — the
// knob must be a pure speed knob.
func TestParMACParallelMatchesSerial(t *testing.T) {
	ds := dataset.GISTLike(240, 8, 4, 77)
	build := func(parallel int) *ParMACProblem {
		shards := dataset.ShardIndices(ds.N, 3, nil)
		return NewParMACProblem(ds, shards, ParMACConfig{
			L: 8, Mu0: 1e-3, Seed: 77, Parallel: parallel,
		})
	}
	run := func(p *ParMACProblem) *retrieval.Codes {
		for it := 0; it < 3; it++ {
			p.OnIterationStart(it)
			model := p.Submodels()
			for sh := 0; sh < p.NumShards(); sh++ {
				p.ZStep(sh, model)
			}
		}
		return p.GatherCodes()
	}
	serial := run(build(0))
	parallel := run(build(4))
	if !serial.Equal(parallel) {
		t.Fatal("ParMAC Z step with Parallel=4 diverged from serial")
	}
}
