package binauto

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/svm"
	"repro/internal/vec"
)

// modelJSON is the on-disk form of a trained binary autoencoder.
type modelJSON struct {
	L   int         `json:"l"`
	D   int         `json:"d"`
	Enc []encJSON   `json:"encoder"`
	Dec decoderJSON `json:"decoder"`
}

type encJSON struct {
	W []float64 `json:"w"`
	B float64   `json:"b"`
}

type decoderJSON struct {
	W [][]float64 `json:"w"` // L rows of D
	C []float64   `json:"c"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	out := modelJSON{L: m.L(), D: m.D()}
	for _, e := range m.Enc {
		out.Enc = append(out.Enc, encJSON{W: e.W, B: e.B})
	}
	for l := 0; l < m.L(); l++ {
		out.Dec.W = append(out.Dec.W, m.Dec.W.Row(l))
	}
	out.Dec.C = m.Dec.C
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("binauto: decode model: %w", err)
	}
	if in.L <= 0 || in.D <= 0 || len(in.Enc) != in.L || len(in.Dec.W) != in.L || len(in.Dec.C) != in.D {
		return nil, fmt.Errorf("binauto: malformed model (L=%d D=%d)", in.L, in.D)
	}
	m := &Model{Dec: NewDecoder(in.L, in.D)}
	for _, e := range in.Enc {
		if len(e.W) != in.D {
			return nil, fmt.Errorf("binauto: encoder width %d, want %d", len(e.W), in.D)
		}
		lin := svm.NewLinear(in.D, 0)
		copy(lin.W, e.W)
		lin.B = e.B
		m.Enc = append(m.Enc, lin)
	}
	for l := 0; l < in.L; l++ {
		if len(in.Dec.W[l]) != in.D {
			return nil, fmt.Errorf("binauto: decoder row width %d, want %d", len(in.Dec.W[l]), in.D)
		}
		copy(m.Dec.W.Row(l), in.Dec.W[l])
	}
	m.Dec.C = vec.Clone(in.Dec.C)
	return m, nil
}
