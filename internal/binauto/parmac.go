package binauto

import (
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/retrieval"
	"repro/internal/sgd"
	"repro/internal/svm"
	"repro/internal/vec"
)

// This file adapts the binary autoencoder to the ParMAC engine (§4): the L
// per-bit SVMs and the decoder become circulating core.Submodels, each data
// shard keeps its own auxiliary codes, and the Z step runs shard-locally.
//
// The decoder's D single-dimension regressors are grouped into DecoderGroups
// circulating units. With the default of L groups of ≈D/L dimensions each,
// the effective number of equal-size submodels is M = 2L, the figure §5.4
// uses in the speedup model.

// Shard is one machine's portion of the data and its auxiliary coordinates.
// The codes never leave the shard; only submodels move (§4.1).
type Shard struct {
	X sgd.Points
	Z *retrieval.Codes
}

// NumPoints implements core.Shard.
func (s *Shard) NumPoints() int { return s.X.NumPoints() }

// ParMACConfig parameterises the distributed BA problem.
type ParMACConfig struct {
	L        int
	Mu0      float64
	MuFactor float64

	SVMLambda float64
	DecLambda float64

	// DecoderGroups is the number of circulating decoder submodels the D
	// output dimensions are grouped into; 0 means L (§5.4's equal-size
	// grouping).
	DecoderGroups int

	// Parallel is the number of goroutines each machine uses for its
	// shard-local Z step: 0 or 1 runs serially, < 0 uses every core
	// (GOMAXPROCS). Points are independent, so any value produces codes
	// bit-identical to the serial pass.
	Parallel int

	ZMethod ZMethod
	Seed    int64

	// InitZ overrides the tPCA code initialisation (optional).
	InitZ *retrieval.Codes
}

// ParMACProblem implements core.Problem for the binary autoencoder.
type ParMACProblem struct {
	cfg    ParMACConfig
	d      int
	shards []*Shard
	encs   []*encoderSub
	decs   []*decoderSub
	mu     float64

	// zk caches the per-iteration Z-step kernel: the assembled model, its
	// decoder Gram matrix and the Cholesky factor of the relaxed system are
	// built once per (model, μ) and shared by every machine's ZStep call —
	// in the in-process engine all P machines see value-identical models, so
	// without the cache each of them would redo the same factorisation.
	zk struct {
		sync.Mutex
		kernel *ZKernel
	}
}

// NewParMACProblem builds the distributed BA problem over the given dataset
// and shard index lists (e.g. from dataset.ShardIndices). Codes are
// initialised with truncated PCA on a subsample unless cfg.InitZ is given
// (indexed like ds).
func NewParMACProblem(ds *dataset.Dataset, shardIdx [][]int, cfg ParMACConfig) *ParMACProblem {
	if cfg.L <= 0 {
		panic("binauto: ParMACConfig.L required")
	}
	if cfg.L > ds.D {
		panic("binauto: a binary autoencoder needs L <= D (paper §3.1: L < D bits)")
	}
	if cfg.Mu0 <= 0 {
		cfg.Mu0 = 1e-4
	}
	if cfg.MuFactor <= 1 {
		cfg.MuFactor = 2
	}
	if cfg.SVMLambda <= 0 {
		cfg.SVMLambda = 1e-5
	}
	if cfg.DecoderGroups <= 0 {
		cfg.DecoderGroups = cfg.L
	}
	if cfg.DecoderGroups > ds.D {
		cfg.DecoderGroups = ds.D
	}

	initZ := cfg.InitZ
	if initZ == nil {
		initZ, _ = initialCodesForParMAC(ds, cfg.L, cfg.Seed)
	}

	p := &ParMACProblem{cfg: cfg, d: ds.D, mu: cfg.Mu0}
	for _, idx := range shardIdx {
		z := retrieval.NewCodes(len(idx), cfg.L)
		for k, i := range idx {
			z.CopyCode(k, initZ, i)
		}
		p.shards = append(p.shards, &Shard{X: subsetPoints{ds, idx}, Z: z})
	}

	// Encoder submodels: IDs 0..L-1.
	for l := 0; l < cfg.L; l++ {
		p.encs = append(p.encs, &encoderSub{
			id: l, bit: l, svm: svm.NewLinear(ds.D, cfg.SVMLambda),
		})
	}
	// Decoder group submodels: IDs L..L+G-1, dimensions dealt round-robin so
	// groups are equal-sized.
	groups := make([][]int, cfg.DecoderGroups)
	for d := 0; d < ds.D; d++ {
		g := d % cfg.DecoderGroups
		groups[g] = append(groups[g], d)
	}
	for g, dims := range groups {
		p.decs = append(p.decs, newDecoderSub(cfg.L+g, cfg.L, dims, cfg.DecLambda))
	}
	return p
}

// AddShard appends a shard (for streaming: a newly added machine's data). The
// new points get codes from the current model's hash when a model is
// available, otherwise zero codes — matching §4.3 ("creating within that
// machine coordinate values, e.g. by applying the nested model to x").
func (p *ParMACProblem) AddShard(pts sgd.Points) int {
	z := retrieval.NewCodes(pts.NumPoints(), p.cfg.L)
	m := p.AssembleModel()
	buf := make([]float64, p.d)
	for i := 0; i < pts.NumPoints(); i++ {
		z.SetWord64(i, m.EncodePointWord(pts.Point(i, buf)))
	}
	p.shards = append(p.shards, &Shard{X: pts, Z: z})
	return len(p.shards) - 1
}

// Submodels implements core.Problem.
func (p *ParMACProblem) Submodels() []core.Submodel {
	out := make([]core.Submodel, 0, len(p.encs)+len(p.decs))
	for _, e := range p.encs {
		out = append(out, e)
	}
	for _, d := range p.decs {
		out = append(out, d)
	}
	return out
}

// NumShards implements core.Problem.
func (p *ParMACProblem) NumShards() int { return len(p.shards) }

// Shard implements core.Problem.
func (p *ParMACProblem) Shard(i int) core.Shard { return p.shards[i] }

// OnIterationStart advances the μ schedule (μ_i = μ0·aⁱ), re-arms the
// per-iteration SGD step-size auto-tuning (§8.1) and drops the cached Z-step
// kernel (the W step is about to change the model it was built from).
func (p *ParMACProblem) OnIterationStart(iter int) {
	p.mu = p.cfg.Mu0
	for i := 0; i < iter; i++ {
		p.mu *= p.cfg.MuFactor
	}
	for _, e := range p.encs {
		e.tuned = false
	}
	for _, d := range p.decs {
		d.tuned = false
	}
	p.zk.Lock()
	p.zk.kernel = nil
	p.zk.Unlock()
}

// Mu returns the current penalty parameter.
func (p *ParMACProblem) Mu() float64 { return p.mu }

// OnModelSync refreshes the problem's submodel references after the engine
// may have replaced one during fault recovery (core.ModelSyncHook).
func (p *ParMACProblem) OnModelSync(model []core.Submodel) {
	for _, sm := range model {
		switch s := sm.(type) {
		case *encoderSub:
			p.encs[s.bit] = s
		case *decoderSub:
			p.decs[s.id-p.cfg.L] = s
		}
	}
}

// ZStep implements core.Problem: solve the binary proximal operator for
// every shard point, with cfg.Parallel goroutines over the shard. The solver
// construction — decoder Gram matrix, Cholesky factorisation, encoder
// gathering — is hoisted into a kernel shared across machines: at the Z step
// every machine holds a value-identical model (the coordinator repairs stale
// copies when the W step drains), so the first caller builds the kernel and
// the rest reuse it.
func (p *ParMACProblem) ZStep(shard int, model []core.Submodel) int {
	k := p.zKernel(model)
	sh := p.shards[shard]
	return k.Run(sh.X, sh.Z, core.Cores(p.cfg.Parallel))
}

// zKernel returns the shared Z kernel for this machine's model, building it
// when none is cached. The value-identical-models assumption is checked, not
// trusted: the O(L·D) weight comparison is noise next to the O(L²·D)
// factorisation it saves, and a caller passing a genuinely different model
// (a custom driver outside the engine's repair protocol) gets a correct
// fresh kernel instead of silently stale codes.
func (p *ParMACProblem) zKernel(model []core.Submodel) *ZKernel {
	m := assembleModel(p.cfg.L, p.d, model)
	p.zk.Lock()
	defer p.zk.Unlock()
	if k := p.zk.kernel; k != nil && k.Mu == p.mu && modelsEqual(k.Model, m) {
		return k
	}
	p.zk.kernel = NewZKernel(m, p.mu, p.cfg.ZMethod)
	return p.zk.kernel
}

// modelsEqual reports whether two assembled BAs have identical parameters.
// The cached side is always NewZKernel's private snapshot, never a view of
// the live submodels, so in-place weight mutation shows up as a mismatch
// here rather than comparing aliased slices against themselves.
func modelsEqual(a, b *Model) bool {
	if a.L() != b.L() || a.D() != b.D() {
		return false
	}
	for l := range a.Enc {
		if a.Enc[l].B != b.Enc[l].B || !slices.Equal(a.Enc[l].W, b.Enc[l].W) {
			return false
		}
	}
	return slices.Equal(a.Dec.C, b.Dec.C) && slices.Equal(a.Dec.W.Data, b.Dec.W.Data)
}

// AssembleModel builds a *Model from the problem's authoritative submodels
// (valid between engine iterations), for evaluation.
func (p *ParMACProblem) AssembleModel() *Model {
	subs := p.Submodels()
	return assembleModel(p.cfg.L, p.d, subs)
}

// Stats computes the learning-curve quantities over all shards with the
// current model: E_Q with the current μ, E_BA, and total points.
func (p *ParMACProblem) Stats() (eq, eba float64) {
	m := p.AssembleModel()
	for _, sh := range p.shards {
		eq += m.EQ(sh.X, sh.Z, p.mu)
		eba += m.EBA(sh.X)
	}
	return eq, eba
}

// assembleModel reconstructs a full BA from submodels indexed by ID.
func assembleModel(l, d int, model []core.Submodel) *Model {
	m := &Model{Dec: NewDecoder(l, d)}
	m.Enc = make([]*svm.Linear, l)
	for _, sm := range model {
		switch s := sm.(type) {
		case *encoderSub:
			m.Enc[s.bit] = s.svm
		case *decoderSub:
			for j, dim := range s.dims {
				for row := 0; row < l; row++ {
					m.Dec.W.Set(row, dim, s.w.At(row, j))
				}
				m.Dec.C[dim] = s.c[j]
			}
		default:
			panic("binauto: foreign submodel in model")
		}
	}
	for _, e := range m.Enc {
		if e == nil {
			panic("binauto: incomplete encoder in model")
		}
	}
	return m
}

// initialCodesForParMAC mirrors the serial initialisation.
func initialCodesForParMAC(ds *dataset.Dataset, l int, seed int64) (*retrieval.Codes, struct{}) {
	return initCodesTPCA(ds, l, seed), struct{}{}
}

// ---------------------------------------------------------------------------
// encoder submodel: one per-bit linear SVM (hash function h_l)
// ---------------------------------------------------------------------------

type encoderSub struct {
	id    int
	bit   int
	svm   *svm.Linear
	tuned bool
	buf   []float64
}

// ID implements core.Submodel.
func (e *encoderSub) ID() int { return e.id }

// TrainOn runs one SGD pass over the shard, predicting bit `bit` of the
// shard's codes from the features (the "fit SVM to (X, Z_l)" of Fig. 1,
// executed stochastically as the submodel circulates).
func (e *encoderSub) TrainOn(shard core.Shard, order []int) {
	sh := shard.(*Shard)
	label := bitLabel(sh.Z, e.bit)
	if !e.tuned {
		e.svm.AutoTune(sh.X, label)
		e.tuned = true
	}
	if cap(e.buf) < len(e.svm.W) {
		e.buf = make([]float64, len(e.svm.W))
	}
	// Fused step: bit-for-bit TrainPass with one fewer walk over the weights.
	e.svm.TrainPassFused(sh.X, label, order, e.buf[:len(e.svm.W)])
}

// Clone implements core.Submodel.
func (e *encoderSub) Clone() core.Submodel {
	return &encoderSub{id: e.id, bit: e.bit, svm: e.svm.Clone(), tuned: e.tuned}
}

// Bytes implements core.Submodel.
func (e *encoderSub) Bytes() int { return e.svm.Bytes() }

// ---------------------------------------------------------------------------
// decoder submodel: a group of single-dimension linear regressors (§5.4)
// ---------------------------------------------------------------------------

type decoderSub struct {
	id     int
	dims   []int       // global output dimensions owned by this group
	w      *vec.Matrix // L×len(dims): column j = weights of dimension dims[j]
	c      []float64
	lambda float64
	sched  *sgd.Schedule
	tuned  bool
	zbuf   []float64
}

func newDecoderSub(id, l int, dims []int, lambda float64) *decoderSub {
	if lambda < 0 {
		lambda = 0
	}
	return &decoderSub{
		id: id, dims: dims,
		w: vec.NewMatrix(l, len(dims)), c: make([]float64, len(dims)),
		lambda: lambda,
		sched:  sgd.NewSchedule(1e-2, lambda),
	}
}

// ID implements core.Submodel.
func (d *decoderSub) ID() int { return d.id }

// TrainOn runs one SGD pass fitting x_dim ≈ Σ_l z_l·w_l + c for each owned
// dimension (the decoder half of the W step, trained stochastically).
func (d *decoderSub) TrainOn(shard core.Shard, order []int) {
	sh := shard.(*Shard)
	l := d.w.Rows
	if cap(d.zbuf) < l {
		d.zbuf = make([]float64, l)
	}
	z := d.zbuf[:l]
	xbuf := make([]float64, dimOf(sh.X))
	if !d.tuned {
		d.autoTune(sh, order)
		d.tuned = true
	}
	for _, i := range order {
		CodesPoints{sh.Z}.Point(i, z)
		x := sh.X.Point(i, xbuf)
		eta := d.sched.Next()
		d.step(z, x, eta)
	}
}

// step performs one SGD update on every owned dimension.
func (d *decoderSub) step(z, x []float64, eta float64) {
	l := d.w.Rows
	for j, dim := range d.dims {
		pred := d.c[j]
		for row := 0; row < l; row++ {
			pred += z[row] * d.w.At(row, j)
		}
		err := pred - x[dim]
		shrink := 1 - eta*d.lambda
		for row := 0; row < l; row++ {
			d.w.Set(row, j, d.w.At(row, j)*shrink-eta*err*z[row])
		}
		d.c[j] -= eta * err
	}
}

// loss is the mean squared error over the given sample.
func (d *decoderSub) loss(sh *Shard, idx []int) float64 {
	l := d.w.Rows
	z := make([]float64, l)
	xbuf := make([]float64, dimOf(sh.X))
	var total float64
	for _, i := range idx {
		CodesPoints{sh.Z}.Point(i, z)
		x := sh.X.Point(i, xbuf)
		for j, dim := range d.dims {
			pred := d.c[j]
			for row := 0; row < l; row++ {
				pred += z[row] * d.w.At(row, j)
			}
			e := pred - x[dim]
			total += 0.5 * e * e
		}
	}
	if len(idx) == 0 {
		return 0
	}
	return total / float64(len(idx))
}

// autoTune calibrates η0 on the leading sample (§8.1).
func (d *decoderSub) autoTune(sh *Shard, order []int) {
	n := sgd.TuningSampleSize(sh.NumPoints())
	if n == 0 {
		return
	}
	sample := make([]int, n)
	copy(sample, order[:min(n, len(order))])
	best := sgd.TuneEta0(1e-5, 4, 4, func(eta0 float64) float64 {
		trial := d.Clone().(*decoderSub)
		trial.sched = sgd.NewSchedule(eta0, d.lambda)
		l := trial.w.Rows
		z := make([]float64, l)
		xbuf := make([]float64, dimOf(sh.X))
		for _, i := range sample {
			CodesPoints{sh.Z}.Point(i, z)
			x := sh.X.Point(i, xbuf)
			trial.step(z, x, trial.sched.Next())
		}
		return trial.loss(sh, sample)
	})
	d.sched.Eta0 = best
	d.sched.Lambda = d.lambda
	d.sched.SetSteps(0)
}

// Clone implements core.Submodel.
func (d *decoderSub) Clone() core.Submodel {
	s := *d.sched
	return &decoderSub{
		id: d.id, dims: append([]int(nil), d.dims...),
		w: d.w.Clone(), c: vec.Clone(d.c),
		lambda: d.lambda, sched: &s, tuned: d.tuned,
	}
}

// Bytes implements core.Submodel.
func (d *decoderSub) Bytes() int { return 8 * (len(d.w.Data) + len(d.c)) }

func dimOf(p sgd.Points) int {
	if p.NumPoints() == 0 {
		return 0
	}
	return len(p.Point(0, nil))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// GatherCodes concatenates all shard codes back into one set, ordered shard
// by shard (for evaluation).
func (p *ParMACProblem) GatherCodes() *retrieval.Codes {
	total := 0
	for _, sh := range p.shards {
		total += sh.Z.N
	}
	out := retrieval.NewCodes(total, p.cfg.L)
	at := 0
	for _, sh := range p.shards {
		for i := 0; i < sh.Z.N; i++ {
			out.CopyCode(at, sh.Z, i)
			at++
		}
	}
	return out
}

// NewShardPoints builds the sgd.Points view a caller needs to hand extra
// shards to AddShard from a dataset and explicit indices.
func NewShardPoints(ds *dataset.Dataset, idx []int) sgd.Points {
	return subsetPoints{ds, idx}
}

var _ core.Problem = (*ParMACProblem)(nil)
var _ core.IterationHook = (*ParMACProblem)(nil)
var _ core.ModelSyncHook = (*ParMACProblem)(nil)
