package binauto

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/pca"
	"repro/internal/retrieval"
	"repro/internal/sgd"
)

// MACConfig parameterises the serial MAC algorithm of Fig. 1.
type MACConfig struct {
	L int // bits

	// μ schedule: μ_i = Mu0·MuFactorⁱ for Iters iterations (§8.1 uses
	// multiplicative schedules, e.g. μ0=1e-6, a=2 for SIFT).
	Mu0      float64
	MuFactor float64
	Iters    int

	// W step: per-bit SVM regularisation and the number of SGD passes used
	// to "fit" each SVM in the serial W step. The decoder is fit exactly by
	// least squares (Fig. 1) with DecLambda ridge.
	SVMLambda float64
	SVMEpochs int
	DecLambda float64

	ZMethod ZMethod
	Seed    int64
	Shuffle bool // shuffle sample order in the SVM SGD passes

	// Parallel is the number of goroutines each step of RunMAC uses: the
	// fused W step fans bit groups and the decoder normal equations over it,
	// the Z step chunks the shard scan, and validation scoring pools its
	// encode and retrieval scans (unless Validation.Parallel overrides). 0
	// or 1 runs serially, < 0 uses every core. With Shuffle false the
	// trained model is bit-identical for any value.
	Parallel int

	// Optional validation-based early stopping (§3.1: "we stop iterating for
	// a μ value ... when the precision of the hash function in a validation
	// set decreases").
	Validation *Validation

	// Optional initial codes; when nil they come from truncated PCA on a
	// subsample (§8.1).
	InitZ *retrieval.Codes
}

func (c *MACConfig) fillDefaults() {
	if c.Mu0 <= 0 {
		c.Mu0 = 1e-4
	}
	if c.MuFactor <= 1 {
		c.MuFactor = 2
	}
	if c.Iters <= 0 {
		c.Iters = 10
	}
	if c.SVMEpochs <= 0 {
		c.SVMEpochs = 3
	}
	if c.SVMLambda <= 0 {
		c.SVMLambda = 1e-5
	}
}

// IterStats records the per-iteration learning-curve quantities plotted in
// Figs. 7–9 and 11.
type IterStats struct {
	Iter      int
	Mu        float64
	EQ        float64
	EBA       float64
	Precision float64 // NaN when no validation set is configured
	ZChanged  int     // codes changed in the Z step
	Stopped   bool    // stopping criterion fired at this iteration
}

// Validation bundles what is needed to measure retrieval precision (or
// recall) during training.
type Validation struct {
	Base    sgd.Points // points to index (their codes form the database)
	Queries sgd.Points
	Truth   [][]int // exact Euclidean neighbours per query
	K       int     // retrieved set size k

	// UseRecall switches the score to recall@K with Truth[q][0] as the true
	// nearest neighbour (the SIFT-1B protocol, §8.4).
	UseRecall bool

	// Parallel is the goroutine pool for scoring — base/query encoding and
	// the Hamming scans. 0 inherits the MACConfig.Parallel of the RunMAC
	// call (or runs serially when used standalone); otherwise core.Cores
	// semantics. Scores are identical for any value.
	Parallel int
}

// Score computes the configured retrieval quality of the model's hash.
func (v *Validation) Score(m *Model) float64 {
	return v.score(m, core.Cores(v.Parallel))
}

// score is Score with an explicit resolved worker count.
func (v *Validation) score(m *Model, workers int) float64 {
	base := m.EncodeParallel(v.Base, workers)
	qc := m.EncodeParallel(v.Queries, workers)
	if v.UseRecall {
		trueNN := make([]int, len(v.Truth))
		for q := range v.Truth {
			trueNN[q] = v.Truth[q][0]
		}
		return retrieval.RecallAtRParallel(base, qc, trueNN, []int{v.K}, workers)[0]
	}
	return retrieval.Precision(v.Truth, retrieval.AllTopKHamming(base, qc, v.K, workers))
}

// TrainWStepSerial performs the serial W step of Fig. 1 on (pts, z): each of
// the L per-bit SVMs is auto-tuned and trained for cfg.SVMEpochs SGD passes,
// and the decoder is replaced by the exact least-squares fit. This is the
// reference implementation — L+1 full passes over the data per epoch round,
// dense decoder normal equations — kept bit-for-bit as the oracle and
// baseline for TrainWStepFused, which RunMAC uses.
func TrainWStepSerial(m *Model, pts sgd.Points, z *retrieval.Codes, cfg *MACConfig, rng *rand.Rand) error {
	n := pts.NumPoints()
	buf := make([]float64, m.D())
	for l := 0; l < m.L(); l++ {
		label := bitLabel(z, l)
		e := m.Enc[l]
		e.AutoTune(pts, label)
		for ep := 0; ep < cfg.SVMEpochs; ep++ {
			e.TrainPass(pts, label, sgd.Order(n, cfg.Shuffle, rng), buf)
		}
	}
	return m.FitDecoderExactDense(pts, z, cfg.DecLambda)
}

// bitLabel returns the ±1 label view of bit l of z.
func bitLabel(z *retrieval.Codes, l int) func(i int) float64 {
	return func(i int) float64 {
		if z.Bit(i, l) {
			return 1
		}
		return -1
	}
}

// RunMAC trains a binary autoencoder with the serial MAC algorithm of Fig. 1
// and returns the model, the final codes and the learning curve. Stopping
// follows the paper: stop early when the Z step changes nothing and
// Z = h(X) (the constraints are satisfied, so the finite-μ fixed point has
// been reached), or when validation precision drops below its best value.
//
// The W step runs fused (TrainWStepFused) and the Z step reports the
// Z = h(X) check it computes anyway (ZKernel.RunStats), so one iteration
// makes SVMEpochs+calibration passes over the data instead of per-bit ones
// and never re-encodes the dataset just for the stopping test. With
// cfg.Shuffle false the encoders are bit-for-bit the historical serial loop
// and the decoder fit matches it to summation rounding (bitwise when N fits
// one accumulation chunk — see crossChunk); with Shuffle set, the fused W
// step shares one permutation per epoch across bits (see TrainWStepFused).
func RunMAC(pts sgd.Points, cfg MACConfig) (*Model, *retrieval.Codes, []IterStats) {
	cfg.fillDefaults()
	d := len(pts.Point(0, nil))
	rng := rand.New(rand.NewSource(cfg.Seed))
	workers := core.Cores(cfg.Parallel)

	var z *retrieval.Codes
	if cfg.InitZ != nil {
		z = cfg.InitZ.Clone()
	} else {
		z = initCodesTPCA(pts, cfg.L, rng.Int63())
	}
	m := NewModel(d, cfg.L, cfg.SVMLambda)

	var stats []IterStats
	bestScore := -1.0
	mu := cfg.Mu0
	for it := 0; it < cfg.Iters; it++ {
		if err := TrainWStepFused(m, pts, z, &cfg, rng, workers); err != nil {
			panic("binauto: decoder fit failed: " + err.Error())
		}
		zres := NewZKernel(m, mu, cfg.ZMethod).RunStats(pts, z, workers)

		st := IterStats{Iter: it, Mu: mu, ZChanged: zres.Changed}
		st.EQ = m.EQ(pts, z, mu)
		st.EBA = m.EBA(pts)
		if cfg.Validation != nil {
			vw := workers
			if cfg.Validation.Parallel != 0 {
				vw = core.Cores(cfg.Validation.Parallel)
			}
			st.Precision = cfg.Validation.score(m, vw)
		}
		// Stop when Z is a fixed point and satisfies the constraints (the
		// Z step just verified z == h(X) point by point, so no re-encode).
		if zres.Changed == 0 && zres.HashEqual {
			st.Stopped = true
			stats = append(stats, st)
			break
		}
		// Validation early stopping.
		if cfg.Validation != nil {
			if st.Precision < bestScore {
				st.Stopped = true
				stats = append(stats, st)
				break
			}
			if st.Precision > bestScore {
				bestScore = st.Precision
			}
		}
		stats = append(stats, st)
		mu *= cfg.MuFactor
	}
	return m, z, stats
}

// codesEqualHash reports whether z equals h(X) everywhere — one packed-word
// compare per point (L <= 64 is guaranteed by the Z step that ran before).
// RunMAC no longer calls it (ZStepResult.HashEqual folds the check into the
// Z step); it remains the independent oracle the fold is tested against.
func codesEqualHash(m *Model, pts sgd.Points, z *retrieval.Codes) bool {
	buf := make([]float64, m.D())
	for i := 0; i < pts.NumPoints(); i++ {
		if z.Word64(i) != m.EncodePointWord(pts.Point(i, buf)) {
			return false
		}
	}
	return true
}

// initCodesTPCA builds the paper's initial codes: truncated PCA fit on a
// subsample and binarised (§8.1).
func initCodesTPCA(pts sgd.Points, l int, seed int64) *retrieval.Codes {
	n := pts.NumPoints()
	sample := pts
	const maxSample = 2000
	if n > maxSample {
		idx := rand.New(rand.NewSource(seed)).Perm(n)[:maxSample]
		sample = subsetPoints{pts, idx}
	}
	h := pca.FitTPCA(sample, l)
	return h.Encode(pts)
}

type subsetPoints struct {
	p   sgd.Points
	idx []int
}

func (s subsetPoints) NumPoints() int                       { return len(s.idx) }
func (s subsetPoints) Point(i int, dst []float64) []float64 { return s.p.Point(s.idx[i], dst) }
