package binauto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/pca"
	"repro/internal/retrieval"
	"repro/internal/vec"
)

// randomModel builds a BA with random encoder/decoder weights for Z-step
// oracle tests.
func randomModel(d, l int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(d, l, 1e-4)
	m.InitEncoderRandom(rng, 1)
	m.Dec.W.FillGaussian(rng, 1)
	for j := range m.Dec.C {
		m.Dec.C[j] = rng.NormFloat64()
	}
	return m
}

func TestDecoderReconstruct(t *testing.T) {
	m := NewModel(2, 2, 0)
	m.Dec.W.Set(0, 0, 1) // B_0 = (1,0)
	m.Dec.W.Set(1, 1, 2) // B_1 = (0,2)
	m.Dec.C = []float64{0.5, 0.5}
	z := retrieval.NewCodes(1, 2)
	z.SetBit(0, 0, true)
	z.SetBit(0, 1, true)
	rec := m.Dec.Reconstruct(z, 0, nil)
	if rec[0] != 1.5 || rec[1] != 2.5 {
		t.Fatalf("reconstruct = %v", rec)
	}
}

func TestEncodeMatchesEncodePoint(t *testing.T) {
	ds := dataset.GISTLike(30, 5, 3, 1)
	m := randomModel(5, 6, 2)
	codes := m.Encode(ds)
	bits := make([]bool, 6)
	for i := 0; i < ds.N; i++ {
		m.EncodePoint(ds.Point(i, nil), bits)
		for l := 0; l < 6; l++ {
			if codes.Bit(i, l) != bits[l] {
				t.Fatal("Encode disagrees with EncodePoint")
			}
		}
	}
}

func TestEQEqualsEBAWhenZIsHash(t *testing.T) {
	ds := dataset.GISTLike(40, 4, 3, 3)
	m := randomModel(4, 5, 4)
	z := m.Encode(ds)
	eq := m.EQ(ds, z, 7.5)
	eba := m.EBA(ds)
	if math.Abs(eq-eba) > 1e-9 {
		t.Fatalf("EQ(h(X)) = %v must equal EBA = %v", eq, eba)
	}
}

func TestEQPenaltyCountsHamming(t *testing.T) {
	ds := dataset.GISTLike(10, 3, 2, 5)
	m := randomModel(3, 4, 6)
	z := m.Encode(ds)
	base := m.EQ(ds, z, 2.0)
	z.SetBit(0, 1, !z.Bit(0, 1)) // one bit of disagreement
	withFlip := m.EQ(ds, z, 2.0)
	// The reconstruction term changes too; isolate the penalty by μ=0 diff.
	z2 := m.Encode(ds)
	z2.SetBit(0, 1, !z2.Bit(0, 1))
	recDelta := m.EQ(ds, z2, 0) - m.EQ(ds, m.Encode(ds), 0)
	if math.Abs((withFlip-base)-(recDelta+2.0)) > 1e-9 {
		t.Fatalf("penalty accounting wrong: %v vs %v", withFlip-base, recDelta+2.0)
	}
}

func TestCodesPointsView(t *testing.T) {
	z := retrieval.NewCodes(2, 3)
	z.SetBit(1, 2, true)
	cp := CodesPoints{z}
	if cp.NumPoints() != 2 {
		t.Fatal("NumPoints wrong")
	}
	v := cp.Point(1, nil)
	if v[0] != 0 || v[1] != 0 || v[2] != 1 {
		t.Fatalf("Point = %v", v)
	}
}

func TestZEnumerateMatchesBruteForce(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		m := randomModel(6, 6, 100+trial)
		ds := dataset.GISTLike(5, 6, 2, 200+trial)
		mu := []float64{0, 0.1, 1, 10}[trial%4]
		s := NewZSolver(m, mu, ZEnumerate)
		z := retrieval.NewCodes(ds.N, 6)
		for i := 0; i < ds.N; i++ {
			x := ds.Point(i, nil)
			s.Solve(x, z, i)
			wantCode, wantObj := BruteForceZ(m, x, mu)
			gotObj := PointObjective(m, x, z, i, mu)
			if math.Abs(gotObj-wantObj) > 1e-9 {
				t.Fatalf("trial %d point %d: enum obj %v, brute %v (codes %v)", trial, i, gotObj, wantObj, wantCode)
			}
		}
	}
}

func TestZAlternateNeverWorseThanHashCode(t *testing.T) {
	// The alternating solution must have objective <= the code z = h(x)
	// whenever it starts from the relaxed solution and only takes improving
	// flips... the relaxed init may differ, but local search guarantees a
	// local optimum; we check it is never worse than both the hash code's
	// neighbourhood-0 baseline and its own starting point by comparing with
	// exhaustive search tolerance on small L.
	for trial := int64(0); trial < 6; trial++ {
		m := randomModel(5, 8, 300+trial)
		ds := dataset.GISTLike(6, 5, 2, 400+trial)
		mu := 0.5
		alt := NewZSolver(m, mu, ZAlternate)
		z := retrieval.NewCodes(ds.N, 8)
		var sumGot, sumOpt float64
		for i := 0; i < ds.N; i++ {
			x := ds.Point(i, nil)
			alt.Solve(x, z, i)
			got := PointObjective(m, x, z, i, mu)
			_, opt := BruteForceZ(m, x, mu)
			if got < opt-1e-9 {
				t.Fatalf("alternating beat the optimum?! %v < %v", got, opt)
			}
			sumGot += got
			sumOpt += opt
		}
		// The local search may miss the global optimum per point (random
		// decoders are adversarial for it) but must stay in its ballpark on
		// average.
		if sumGot > 2*sumOpt+1 {
			t.Fatalf("alternating mean objective %v too far from optimum %v", sumGot, sumOpt)
		}
	}
}

func TestZAlternateIsLocalOptimum(t *testing.T) {
	// No single-bit flip of the alternating solution may decrease the
	// objective.
	m := randomModel(6, 10, 500)
	ds := dataset.GISTLike(8, 6, 3, 501)
	mu := 0.3
	s := NewZSolver(m, mu, ZAlternate)
	z := retrieval.NewCodes(ds.N, 10)
	for i := 0; i < ds.N; i++ {
		x := ds.Point(i, nil)
		s.Solve(x, z, i)
		base := PointObjective(m, x, z, i, mu)
		for b := 0; b < 10; b++ {
			z.SetBit(i, b, !z.Bit(i, b))
			if PointObjective(m, x, z, i, mu) < base-1e-9 {
				t.Fatalf("point %d bit %d: flip improves, not a local optimum", i, b)
			}
			z.SetBit(i, b, !z.Bit(i, b))
		}
	}
}

func TestZAutoSelection(t *testing.T) {
	m := randomModel(4, 8, 1)
	if NewZSolver(m, 1, ZAuto).Method != ZEnumerate {
		t.Fatal("ZAuto should enumerate at L=8")
	}
	m32 := randomModel(4, 32, 2)
	if NewZSolver(m32, 1, ZAuto).Method != ZAlternate {
		t.Fatal("ZAuto should alternate at L=32")
	}
}

func TestRunZStepReportsChanges(t *testing.T) {
	m := randomModel(5, 6, 600)
	ds := dataset.GISTLike(20, 5, 2, 601)
	z := retrieval.NewCodes(ds.N, 6) // all zeros: certainly changes
	changed := RunZStep(m, ds, z, 0.5, ZEnumerate)
	if changed == 0 {
		t.Fatal("expected changes from all-zero init")
	}
	// Second run from the optimum must change nothing (enumeration is exact
	// and deterministic).
	if again := RunZStep(m, ds, z, 0.5, ZEnumerate); again != 0 {
		t.Fatalf("re-solve changed %d codes; enumeration must be idempotent", again)
	}
}

func TestZStepDecreasesEQ(t *testing.T) {
	// Property: the Z step can only decrease E_Q for the same model and μ.
	f := func(seed int64) bool {
		m := randomModel(4, 5, seed)
		ds := dataset.GISTLike(10, 4, 2, seed+1)
		z := m.Encode(ds) // start from h(X)
		before := m.EQ(ds, z, 0.7)
		RunZStep(m, ds, z, 0.7, ZEnumerate)
		after := m.EQ(ds, z, 0.7)
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFitDecoderExactMinimises(t *testing.T) {
	ds := dataset.GISTLike(60, 4, 3, 700)
	m := randomModel(4, 6, 701)
	z := m.Encode(ds)
	if err := m.FitDecoderExact(ds, z, 0); err != nil {
		t.Fatal(err)
	}
	opt := m.EQ(ds, z, 0)
	// Any perturbation of the decoder must not improve the reconstruction.
	m2 := m.Clone()
	m2.Dec.W.Add(0, 0, 0.05)
	if m2.EQ(ds, z, 0) < opt-1e-9 {
		t.Fatal("exact decoder fit is not optimal")
	}
	m3 := m.Clone()
	m3.Dec.C[1] += 0.05
	if m3.EQ(ds, z, 0) < opt-1e-9 {
		t.Fatal("exact decoder bias is not optimal")
	}
}

func TestRunMACImprovesEBAOverInit(t *testing.T) {
	ds := dataset.GISTLike(400, 8, 8, 800)
	cfg := MACConfig{L: 8, Mu0: 1e-3, MuFactor: 2, Iters: 8, SVMEpochs: 3, Seed: 801}
	m, z, stats := RunMAC(ds, cfg)
	if m == nil || z == nil || len(stats) == 0 {
		t.Fatal("missing outputs")
	}
	if stats[len(stats)-1].EBA > stats[0].EBA {
		t.Fatalf("EBA did not improve: %v -> %v", stats[0].EBA, stats[len(stats)-1].EBA)
	}
}

func TestRunMACDeterministic(t *testing.T) {
	ds := dataset.GISTLike(150, 6, 4, 900)
	cfg := MACConfig{L: 6, Mu0: 1e-3, MuFactor: 2, Iters: 4, SVMEpochs: 2, Seed: 901}
	m1, z1, s1 := RunMAC(ds, cfg)
	m2, z2, s2 := RunMAC(ds, cfg)
	if !z1.Equal(z2) {
		t.Fatal("codes differ between identical runs")
	}
	if len(s1) != len(s2) || s1[len(s1)-1].EQ != s2[len(s2)-1].EQ {
		t.Fatal("stats differ between identical runs")
	}
	if vec.MaxAbsDiff(m1.Dec.W, m2.Dec.W) != 0 {
		t.Fatal("decoders differ between identical runs")
	}
}

func TestRunMACStopsWhenConverged(t *testing.T) {
	// Tiny, well-clustered problem: MAC should hit the Z-fixed-point rule
	// before exhausting a long schedule.
	ds := dataset.GISTLike(80, 4, 2, 1000)
	cfg := MACConfig{L: 4, Mu0: 1, MuFactor: 4, Iters: 40, SVMEpochs: 4, Seed: 1001}
	_, _, stats := RunMAC(ds, cfg)
	if len(stats) == 40 {
		t.Log("warning: MAC used the full schedule (no convergence on this seed)")
	}
	last := stats[len(stats)-1]
	if last.Stopped && last.ZChanged != 0 {
		t.Fatal("Stopped set but Z still changing without validation")
	}
}

func TestRunMACValidationEarlyStop(t *testing.T) {
	ds := dataset.GISTLike(300, 8, 6, 1100)
	queries := dataset.GISTLike(30, 8, 6, 1100)
	truth := make([][]int, 30)
	for q := 0; q < 30; q++ {
		truth[q] = []int{0} // placeholder replaced below
	}
	truthFull := make([][]int, 30)
	for q := 0; q < 30; q++ {
		truthFull[q] = topEuclidean(ds, queries.Point(q, nil), 20)
	}
	val := &Validation{Base: ds, Queries: queries, Truth: truthFull, K: 20}
	cfg := MACConfig{L: 8, Mu0: 1e-3, MuFactor: 2, Iters: 10, SVMEpochs: 2, Seed: 1101, Validation: val}
	_, _, stats := RunMAC(ds, cfg)
	for _, st := range stats {
		if math.IsNaN(st.Precision) {
			t.Fatal("validation precision not recorded")
		}
	}
	_ = truth
}

func topEuclidean(ds *dataset.Dataset, q []float64, k int) []int {
	return retrieval.TopKEuclidean(ds, q, k)
}

func TestMACPrecisionBeatsInitTPCA(t *testing.T) {
	// The headline claim of the BA paper: MAC-trained hashes beat the tPCA
	// initialisation on retrieval precision.
	ds := dataset.GISTLike(500, 16, 10, 1200)
	queries := dataset.GISTLike(50, 16, 10, 1200)
	truth := make([][]int, queries.N)
	for q := 0; q < queries.N; q++ {
		truth[q] = retrieval.TopKEuclidean(ds, queries.Point(q, nil), 50)
	}
	val := &Validation{Base: ds, Queries: queries, Truth: truth, K: 50}

	cfg := MACConfig{L: 10, Mu0: 1e-4, MuFactor: 2, Iters: 12, SVMEpochs: 3, Seed: 1201}
	m, _, _ := RunMAC(ds, cfg)
	macScore := val.Score(m)

	// tPCA baseline score via an encoder-less comparison: build codes from
	// the same initialisation path.
	initZ := initCodesTPCA(ds, 10, 1202)
	// Retrieval with raw tPCA codes requires hashing queries with tPCA: use
	// pca directly through the initialiser's interface — recompute here.
	tp := fitTPCAForTest(ds, 10)
	baseCodes := tp.Encode(ds)
	qCodes := tp.Encode(queries)
	retr := make([][]int, queries.N)
	for q := 0; q < queries.N; q++ {
		retr[q] = retrieval.TopKHamming(baseCodes, qCodes.Code(q), 50)
	}
	tpcaScore := retrieval.Precision(truth, retr)
	t.Logf("MAC precision %.3f vs tPCA %.3f", macScore, tpcaScore)
	if macScore < tpcaScore-0.02 {
		t.Fatalf("MAC (%.3f) should not be clearly worse than tPCA (%.3f)", macScore, tpcaScore)
	}
	_ = initZ
}

// fitTPCAForTest fits the tPCA baseline hash used for comparison.
func fitTPCAForTest(ds *dataset.Dataset, l int) *pca.TPCA {
	return pca.FitTPCA(ds, l)
}
