// Package binauto implements the binary autoencoder (BA) of §3.1 and its MAC
// training algorithm (Fig. 1): an encoder h(x) = step(Ax) of L linear hash
// functions, a linear decoder f(z) = Wᵀz + c, the nested objective E_BA, the
// quadratic-penalty objective E_Q, the Z step (exact enumeration via Gray
// codes, or alternating optimisation initialised from the truncated relaxed
// solution), and the serial MAC loop with its μ schedule and stopping rules.
//
// The kernel (RBF) variant of §8.4 is obtained by pre-transforming the
// features with svm.KernelMap; the model itself is always linear over its
// input features, exactly as in the paper.
package binauto

import (
	"math/bits"
	"math/rand"

	"repro/internal/core"
	"repro/internal/linreg"
	"repro/internal/retrieval"
	"repro/internal/sgd"
	"repro/internal/svm"
	"repro/internal/vec"
)

// Decoder is the linear decoder f(z) = Wᵀz + c mapping L-bit codes to R^D.
// W is stored L×D so that row l is the contribution B_l of bit l, the vector
// the Z-step works with.
type Decoder struct {
	W *vec.Matrix // L×D; row l = B_l
	C []float64   // D
}

// NewDecoder allocates a zero decoder.
func NewDecoder(l, d int) *Decoder {
	return &Decoder{W: vec.NewMatrix(l, d), C: make([]float64, d)}
}

// Clone returns a deep copy.
func (d *Decoder) Clone() *Decoder {
	return &Decoder{W: d.W.Clone(), C: vec.Clone(d.C)}
}

// L returns the code length, D the output dimension.
func (d *Decoder) L() int { return d.W.Rows }

// D returns the output dimensionality.
func (d *Decoder) D() int { return d.W.Cols }

// Reconstruct writes f(z) for code i of codes into dst (allocated when nil).
// It walks the set bits of the packed words directly instead of testing all L
// bits one at a time.
func (d *Decoder) Reconstruct(codes *retrieval.Codes, i int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, d.D())
	}
	copy(dst, d.C)
	for wi, w := range codes.Code(i) {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			vec.Axpy(1, d.W.Row(base+b), dst)
		}
	}
	return dst
}

// Model is a binary autoencoder: L hash-function submodels (one linear SVM
// per bit, §3.1) and a linear decoder.
type Model struct {
	Enc []*svm.Linear // L hash functions h_l
	Dec *Decoder
}

// NewModel creates a zero-initialised BA for d-dimensional inputs and l bits.
// lambda is the SVM regularisation used by the per-bit encoders.
func NewModel(d, l int, lambda float64) *Model {
	enc := make([]*svm.Linear, l)
	for i := range enc {
		enc[i] = svm.NewLinear(d, lambda)
	}
	return &Model{Enc: enc, Dec: NewDecoder(l, d)}
}

// L returns the number of bits.
func (m *Model) L() int { return len(m.Enc) }

// D returns the input dimensionality.
func (m *Model) D() int { return len(m.Enc[0].W) }

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	enc := make([]*svm.Linear, len(m.Enc))
	for i, e := range m.Enc {
		enc[i] = e.Clone()
	}
	return &Model{Enc: enc, Dec: m.Dec.Clone()}
}

// EncodeBit returns h_l(x).
func (m *Model) EncodeBit(l int, x []float64) bool { return m.Enc[l].Predict(x) }

// EncodePoint writes h(x) into bits (allocated when nil).
func (m *Model) EncodePoint(x []float64, bits []bool) []bool {
	if bits == nil {
		bits = make([]bool, m.L())
	}
	for l := range m.Enc {
		bits[l] = m.Enc[l].Predict(x)
	}
	return bits
}

// EncodePointWord returns h(x) packed into one uint64, bit l = h_l(x).
// Valid for L <= 64, the packed-word regime every training path enforces.
func (m *Model) EncodePointWord(x []float64) uint64 {
	if len(m.Enc) > 64 {
		panic("binauto: EncodePointWord needs L <= 64")
	}
	var w uint64
	for l := range m.Enc {
		if m.Enc[l].Predict(x) {
			w |= 1 << uint(l)
		}
	}
	return w
}

// Encode hashes every point of pts into packed codes, one word store per
// point when L <= 64.
func (m *Model) Encode(pts sgd.Points) *retrieval.Codes {
	n := pts.NumPoints()
	codes := retrieval.NewCodes(n, m.L())
	buf := make([]float64, m.D())
	if m.L() <= 64 {
		for i := 0; i < n; i++ {
			codes.SetWord64(i, m.EncodePointWord(pts.Point(i, buf)))
		}
		return codes
	}
	for i := 0; i < n; i++ {
		x := pts.Point(i, buf)
		for l := range m.Enc {
			codes.SetBit(i, l, m.Enc[l].Predict(x))
		}
	}
	return codes
}

// EncodeParallel is Encode with the point loop chunked over workers
// goroutines (0/1 serial, < 0 every core). Points hash independently, so the
// codes are bit-identical to Encode for any worker count. This is the
// encoding path of Validation.Score, where hashing the base set is the
// largest single cost at large N.
func (m *Model) EncodeParallel(pts sgd.Points, workers int) *retrieval.Codes {
	n := pts.NumPoints()
	workers = core.ClampWorkers(n, core.Cores(workers))
	if workers <= 1 {
		return m.Encode(pts)
	}
	codes := retrieval.NewCodes(n, m.L())
	packed := m.L() <= 64
	core.ParallelChunks(n, workers, func(_, lo, hi int) {
		buf := make([]float64, m.D())
		for i := lo; i < hi; i++ {
			x := pts.Point(i, buf)
			if packed {
				codes.SetWord64(i, m.EncodePointWord(x))
				continue
			}
			for l := range m.Enc {
				codes.SetBit(i, l, m.Enc[l].Predict(x))
			}
		}
	})
	return codes
}

// EBA computes the nested binary-autoencoder error of eq. (1):
// Σ_n ‖x_n − f(h(x_n))‖².
func (m *Model) EBA(pts sgd.Points) float64 {
	n := pts.NumPoints()
	d := m.D()
	buf := make([]float64, d)
	rec := make([]float64, d)
	var total float64
	for i := 0; i < n; i++ {
		x := pts.Point(i, buf)
		copy(rec, m.Dec.C)
		if m.L() <= 64 {
			for w := m.EncodePointWord(x); w != 0; w &= w - 1 {
				vec.Axpy(1, m.Dec.W.Row(bits.TrailingZeros64(w)), rec)
			}
		} else {
			for l := range m.Enc {
				if m.Enc[l].Predict(x) {
					vec.Axpy(1, m.Dec.W.Row(l), rec)
				}
			}
		}
		total += vec.SqDist(x, rec)
	}
	return total
}

// EQ computes the quadratic-penalty objective of eq. (3):
// Σ_n ‖x_n − f(z_n)‖² + μ‖z_n − h(x_n)‖². Since z and h(x) are binary, the
// penalty term is μ times the Hamming distance, a popcount over packed words
// when L <= 64.
func (m *Model) EQ(pts sgd.Points, z *retrieval.Codes, mu float64) float64 {
	n := pts.NumPoints()
	if z.N != n {
		panic("binauto: EQ needs one code per point")
	}
	d := m.D()
	buf := make([]float64, d)
	rec := make([]float64, d)
	var total float64
	for i := 0; i < n; i++ {
		x := pts.Point(i, buf)
		m.Dec.Reconstruct(z, i, rec)
		total += vec.SqDist(x, rec)
		if m.L() <= 64 {
			total += mu * float64(bits.OnesCount64(z.Word64(i)^m.EncodePointWord(x)))
		} else {
			for l := range m.Enc {
				if z.Bit(i, l) != m.Enc[l].Predict(x) {
					total += mu
				}
			}
		}
	}
	return total
}

// CodesPoints adapts packed codes to the sgd.Points interface with 0/1 float
// features, which is how the decoder submodels consume the auxiliary
// coordinates during the W step.
type CodesPoints struct{ Z *retrieval.Codes }

// NumPoints returns the number of codes.
func (c CodesPoints) NumPoints() int { return c.Z.N }

// Point writes code i as a 0/1 float vector into dst: clear, then set only
// the positions of the set bits read word by word.
func (c CodesPoints) Point(i int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, c.Z.L)
	}
	for l := 0; l < c.Z.L; l++ {
		dst[l] = 0
	}
	for wi, w := range c.Z.Code(i) {
		base := wi * 64
		for w != 0 {
			dst[base+bits.TrailingZeros64(w)] = 1
			w &= w - 1
		}
	}
	return dst
}

// FitDecoderExact replaces the decoder with the exact least-squares fit of
// (Z, X), the serial W step of Fig. 1 ("f ← least-squares fit to (Z,X)"). It
// runs the popcount-Gram WKernel serially; see FitDecoderExactParallel for
// the pooled version and FitDecoderExactDense for the dense reference.
func (m *Model) FitDecoderExact(pts sgd.Points, z *retrieval.Codes, lambda float64) error {
	return m.FitDecoderExactParallel(pts, z, lambda, 1)
}

// FitDecoderExactParallel is FitDecoderExact through the popcount-Gram
// WKernel, with up to workers goroutines (0/1 serial, < 0 every core) for
// the cross-product accumulation. The accumulation granule is fixed (see
// crossChunk), so the fitted decoder is bit-for-bit identical for every
// worker count; against the dense reference it is bitwise equal for
// N ≤ crossChunk and within summation rounding (≪ 1e-9 at benchmark
// scales) beyond.
func (m *Model) FitDecoderExactParallel(pts sgd.Points, z *retrieval.Codes, lambda float64, workers int) error {
	dec, err := NewWKernel(z).FitDecoder(pts, m.D(), lambda, workers)
	if err != nil {
		return err
	}
	m.Dec = dec
	return nil
}

// FitDecoderExactDense is the pre-WKernel reference implementation of the
// exact decoder fit: materialise Z as a 0/1 float matrix and X as a dense
// matrix, then solve via linreg.FitExact. Kept as the parity oracle for the
// popcount-Gram kernel and as the baseline the perf harness measures the
// kernel against.
func (m *Model) FitDecoderExactDense(pts sgd.Points, z *retrieval.Codes, lambda float64) error {
	n := pts.NumPoints()
	zm := vec.NewMatrix(n, m.L())
	cp := CodesPoints{z}
	for i := 0; i < n; i++ {
		cp.Point(i, zm.Row(i))
	}
	xm := vec.NewMatrix(n, m.D())
	for i := 0; i < n; i++ {
		pts.Point(i, xm.Row(i))
	}
	fit, err := linreg.FitExact(zm, xm, lambda)
	if err != nil {
		return err
	}
	m.Dec.W = fit.W
	m.Dec.C = fit.C
	return nil
}

// InitEncoderRandom gives the encoder small random weights; useful for tests
// and as a fallback before the first W step.
func (m *Model) InitEncoderRandom(rng *rand.Rand, sigma float64) {
	for _, e := range m.Enc {
		for j := range e.W {
			e.W[j] = rng.NormFloat64() * sigma
		}
		e.B = rng.NormFloat64() * sigma
	}
}
