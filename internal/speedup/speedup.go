// Package speedup implements the paper's theoretical model of ParMAC's
// parallel speedup (§5 and appendix A): the per-iteration runtime T(P) of
// eqs. (9)–(10), the speedup S(P) of eq. (12), the per-interval maxima P*_k
// and S*_k of eq. (17), the globally maximum speedup of appendix A.2, and the
// large-dataset approximation of eq. (20). It regenerates Figs. 4 and 5 and
// the theory rows of Fig. 10.
package speedup

import "math"

// Params are the model inputs of §5.1.
type Params struct {
	N int // training points
	M int // independent equal-size submodels in the W step
	E int // epochs e in the W step

	TWr float64 // computation time per submodel and data point, W step
	TWc float64 // communication time per submodel, W step
	TZr float64 // computation time per data point, Z step
}

// Rho1 is ρ1 = t_r^Z / ((e+1)·t_c^W) (eq. 13).
func (p Params) Rho1() float64 { return p.TZr / (float64(p.E+1) * p.TWc) }

// Rho2 is ρ2 = e·t_r^W / ((e+1)·t_c^W) (eq. 13).
func (p Params) Rho2() float64 {
	return float64(p.E) * p.TWr / (float64(p.E+1) * p.TWc)
}

// Rho is ρ = ρ1 + ρ2.
func (p Params) Rho() float64 { return p.Rho1() + p.Rho2() }

// T returns the modelled runtime of one ParMAC iteration on P machines:
// eq. (9) for P > 1 and eq. (10) for P = 1 (no communication).
func (p Params) T(P int) float64 {
	n, m, e := float64(p.N), float64(p.M), float64(p.E)
	if P <= 1 {
		return m*n*p.TZr + m*n*e*p.TWr
	}
	pf := float64(P)
	ceil := math.Ceil(m / pf)
	return m*n/pf*p.TZr + pf*ceil*(e*(p.TWr*n/pf+p.TWc)+p.TWc)
}

// Speedup returns S(P) = T(1)/T(P), treating P as a real variable as in
// appendix A (only integer P occur in practice).
func (p Params) Speedup(P float64) float64 {
	if P <= 1 {
		return 1
	}
	n, m, e := float64(p.N), float64(p.M), float64(p.E)
	ceil := math.Ceil(m / P)
	tp := m*n/P*p.TZr + P*ceil*(e*(p.TWr*n/P+p.TWc)+p.TWc)
	return p.T(1) / tp
}

// Curve evaluates S(P) at every requested machine count.
func (p Params) Curve(ps []int) []float64 {
	out := make([]float64, len(ps))
	for i, pp := range ps {
		out[i] = p.Speedup(float64(pp))
	}
	return out
}

// PStarK is P*_k = sqrt(ρ1·M·N/k), the candidate maximiser inside the
// interval [M/k, M/(k−1)) (eq. 17).
func (p Params) PStarK(k int) float64 {
	return math.Sqrt(p.Rho1() * float64(p.M) * float64(p.N) / float64(k))
}

// SStarK is S*_k = S(P*_k) from eq. (17).
func (p Params) SStarK(k int) float64 {
	m, n := float64(p.M), float64(p.N)
	return p.Rho() * m / float64(k) /
		(p.Rho2() + 2*math.Sqrt(p.Rho1()*m/(n*float64(k))))
}

// GlobalMax returns the maximising machine count P* and the globally maximum
// speedup S* (appendix A.2):
//
//	M ≥ ρ1·N: S* = M/(1 + M/(ρN)) at P = M
//	M < ρ1·N: S* = S*_1 > M       at P = P*_1 = sqrt(ρ1·M·N) > M
func (p Params) GlobalMax() (pStar, sStar float64) {
	m, n := float64(p.M), float64(p.N)
	if m >= p.Rho1()*n {
		return m, m / (1 + m/(p.Rho()*n))
	}
	return p.PStarK(1), p.SStarK(1)
}

// LargeDataset returns the P ≪ ρ2·N approximation of eq. (20):
// S(P) ≈ P when M is divisible by P, and the weighted harmonic mean
// ρ/(ρ1/P + ρ2/M) when M > P.
func (p Params) LargeDataset(P int) float64 {
	m := float64(p.M)
	pf := float64(P)
	if P <= p.M && p.M%P == 0 {
		return pf
	}
	return p.Rho() / (p.Rho1()/pf + p.Rho2()/m)
}

// DivisibleSpeedup is eq. (14): S(P) = P/(1 + P/(ρN)), valid when M is
// divisible by P.
func (p Params) DivisibleSpeedup(P int) float64 {
	pf := float64(P)
	return pf / (1 + pf/(p.Rho()*float64(p.N)))
}

// PerfectSpeedupBound is the condition of eq. (15): S ≈ P requires P ≪ ρN.
// It returns ρN, the machine-count scale beyond which the speedup departs
// from perfect.
func (p Params) PerfectSpeedupBound() float64 { return p.Rho() * float64(p.N) }

// Intervals returns the continuity breakpoints M/k (k = M..1) of S(P) from
// appendix A: S is continuous on [M/k, M/(k−1)).
func (p Params) Intervals() []float64 {
	out := make([]float64, 0, p.M)
	for k := p.M; k >= 1; k-- {
		out = append(out, float64(p.M)/float64(k))
	}
	return out
}

// EffectiveSubmodels implements the §5.4 grouping rule for the BA: L encoder
// submodels of input dimension d, and d decoders of input dimension L,
// grouped into L groups so all M = 2L units have comparable size.
func EffectiveSubmodels(L int) int { return 2 * L }

// ScaleInvariant reports whether two parameter settings produce identical
// speedup curves, using the invariance transformations of §5.2: S depends on
// the inputs only through ρ'1 = ρ1·N and ρ'2 = ρ2·N (eq. 21–22) and M.
func ScaleInvariant(a, b Params, tol float64) bool {
	if a.M != b.M {
		return false
	}
	r1a, r1b := a.Rho1()*float64(a.N), b.Rho1()*float64(b.N)
	r2a, r2b := a.Rho2()*float64(a.N), b.Rho2()*float64(b.N)
	close := func(x, y float64) bool {
		return math.Abs(x-y) <= tol*(1+math.Abs(x)+math.Abs(y))
	}
	return close(r1a, r1b) && close(r2a, r2b)
}
