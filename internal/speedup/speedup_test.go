package speedup

import (
	"math"
	"testing"
	"testing/quick"
)

// fig4Params are the realistic settings of Fig. 4.
func fig4Params() Params {
	return Params{N: 1e6, M: 512, E: 1, TWr: 1, TZr: 5, TWc: 1e3}
}

func TestRhoValuesMatchFig4Caption(t *testing.T) {
	p := fig4Params()
	// Fig. 4 caption: ρ1 = 0.0025, ρ2 = 0.0005, ρ = 0.003.
	if math.Abs(p.Rho1()-0.0025) > 1e-12 {
		t.Fatalf("rho1 = %v", p.Rho1())
	}
	if math.Abs(p.Rho2()-0.0005) > 1e-12 {
		t.Fatalf("rho2 = %v", p.Rho2())
	}
	if math.Abs(p.Rho()-0.003) > 1e-12 {
		t.Fatalf("rho = %v", p.Rho())
	}
}

func TestSpeedupAtOneIsOne(t *testing.T) {
	if s := fig4Params().Speedup(1); s != 1 {
		t.Fatalf("S(1) = %v", s)
	}
}

func TestDivisibleCaseMatchesClosedForm(t *testing.T) {
	p := fig4Params()
	for _, P := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512} {
		got := p.Speedup(float64(P))
		want := p.DivisibleSpeedup(P)
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("P=%d: S=%v, closed form %v", P, got, want)
		}
		if got > float64(P) {
			t.Fatalf("P=%d: S=%v exceeds perfect speedup", P, got)
		}
	}
}

func TestNearPerfectSpeedupForSmallP(t *testing.T) {
	// Eq. (15): S ≈ P when P ≪ ρN = 3000 here.
	p := fig4Params()
	if p.PerfectSpeedupBound() != 3000 {
		t.Fatalf("rhoN = %v", p.PerfectSpeedupBound())
	}
	s := p.Speedup(64)
	if s < 62 {
		t.Fatalf("S(64) = %v, want ≈64", s)
	}
}

func TestTheoremA1BreakpointDominance(t *testing.T) {
	// Theorem A.1 part 3: S(M/k) > S(P) for all P < M/k.
	p := Params{N: 50000, M: 64, E: 1, TWr: 1, TZr: 10, TWc: 100}
	for _, k := range []int{1, 2, 4, 8, 16} {
		breakpoint := float64(p.M) / float64(k)
		sb := p.Speedup(breakpoint)
		for q := 1.0; q < breakpoint-1e-9; q += breakpoint / 37 {
			if s := p.Speedup(q); s >= sb {
				t.Fatalf("k=%d: S(%v)=%v >= S(M/k=%v)=%v", k, q, s, breakpoint, sb)
			}
		}
	}
}

func TestGlobalMaxDominatesGrid(t *testing.T) {
	// The closed-form global maximum must match a dense numeric search.
	cases := []Params{
		{N: 50000, M: 32, E: 1, TWr: 1, TZr: 100, TWc: 100},
		{N: 1e6, M: 512, E: 1, TWr: 1, TZr: 5, TWc: 1e3},
		{N: 50000, M: 8, E: 8, TWr: 1, TZr: 1, TWc: 1000},
	}
	for ci, p := range cases {
		pStar, sStar := p.GlobalMax()
		// Numeric grid search over [1, 4·P*].
		var sBest, pBest float64
		hi := 4 * pStar
		if hi < float64(p.M)*2 {
			hi = float64(p.M) * 2
		}
		for q := 1.0; q <= hi; q += hi / 200000 {
			if s := p.Speedup(q); s > sBest {
				sBest, pBest = s, q
			}
		}
		if math.Abs(sBest-sStar) > 1e-3*sStar {
			t.Fatalf("case %d: closed-form S*=%v at P=%v, grid found %v at %v", ci, sStar, pStar, sBest, pBest)
		}
	}
}

func TestMaxBiggerThanMWhenMLessThanRho1N(t *testing.T) {
	// Appendix A.2: if M < ρ1·N the maximum exceeds M and occurs past M.
	p := fig4Params() // M=512 < ρ1·N = 2500
	pStar, sStar := p.GlobalMax()
	if pStar <= float64(p.M) || sStar <= float64(p.M) {
		t.Fatalf("P*=%v S*=%v should both exceed M=%d", pStar, sStar, p.M)
	}
}

func TestMaxAtMWhenMGreaterThanRho1N(t *testing.T) {
	// Small dataset, many submodels: M ≥ ρ1·N → S* ≤ M at P = M.
	p := Params{N: 1000, M: 512, E: 1, TWr: 1, TZr: 1, TWc: 100}
	if float64(p.M) < p.Rho1()*float64(p.N) {
		t.Skip("parameters do not satisfy the case")
	}
	pStar, sStar := p.GlobalMax()
	if pStar != float64(p.M) {
		t.Fatalf("P* = %v, want M", pStar)
	}
	if sStar > float64(p.M) {
		t.Fatalf("S* = %v should be ≤ M", sStar)
	}
}

func TestSpeedupDecaysForHugeP(t *testing.T) {
	// Past the maximum, communication dominates and S(P) → 0 (§5.2).
	p := Params{N: 50000, M: 16, E: 1, TWr: 1, TZr: 1, TWc: 1000}
	_, sStar := p.GlobalMax()
	far := p.Speedup(1e6)
	if far > sStar/10 {
		t.Fatalf("S at huge P = %v, should collapse below %v", far, sStar/10)
	}
}

func TestLargeDatasetApproximation(t *testing.T) {
	p := Params{N: 1e8, M: 128, E: 1, TWr: 1, TZr: 40, TWc: 1e4}
	// Divisible P: approximation P, exact close to it.
	for _, P := range []int{2, 8, 32, 128} {
		if got := p.LargeDataset(P); got != float64(P) {
			t.Fatalf("LargeDataset(%d) = %v", P, got)
		}
		exact := p.Speedup(float64(P))
		if math.Abs(exact-float64(P)) > 0.05*float64(P) {
			t.Fatalf("exact S(%d)=%v deviates from approx", P, exact)
		}
	}
	// P > M: harmonic-mean form lies between M and P.
	s := p.LargeDataset(512)
	if s < float64(p.M) || s > 512 {
		t.Fatalf("harmonic-mean speedup %v outside [M, P]", s)
	}
}

func TestIntervalsStructure(t *testing.T) {
	p := Params{N: 1000, M: 8, E: 1, TWr: 1, TZr: 1, TWc: 1}
	iv := p.Intervals()
	if len(iv) != 8 {
		t.Fatalf("intervals = %v", iv)
	}
	if iv[0] != 1 || iv[len(iv)-1] != 8 {
		t.Fatalf("interval endpoints wrong: %v", iv)
	}
	for i := 1; i < len(iv); i++ {
		if iv[i] <= iv[i-1] {
			t.Fatalf("intervals not increasing: %v", iv)
		}
	}
}

func TestEffectiveSubmodels(t *testing.T) {
	// §5.4: BA with L bits has M = 2L effective submodels.
	if EffectiveSubmodels(16) != 32 || EffectiveSubmodels(64) != 128 {
		t.Fatal("effective submodel count wrong")
	}
}

func TestScaleInvarianceTransforms(t *testing.T) {
	// §5.2: the three transformations that keep ρ'1, ρ'2 fixed leave S
	// unchanged.
	base := Params{N: 50000, M: 32, E: 2, TWr: 1, TZr: 10, TWc: 100}
	alpha := 4.0
	cases := []Params{
		// larger dataset, faster computation
		{N: int(float64(base.N) * alpha), M: 32, E: 2, TWr: base.TWr / alpha, TZr: base.TZr / alpha, TWc: base.TWc},
		// larger dataset, slower communication
		{N: int(float64(base.N) * alpha), M: 32, E: 2, TWr: base.TWr, TZr: base.TZr, TWc: base.TWc * alpha},
		// faster computation, faster communication
		{N: base.N, M: 32, E: 2, TWr: base.TWr * alpha, TZr: base.TZr * alpha, TWc: base.TWc * alpha},
	}
	for ci, c := range cases {
		if !ScaleInvariant(base, c, 1e-9) {
			t.Fatalf("case %d: should be scale invariant", ci)
		}
		for _, P := range []float64{2, 7, 16, 33, 100} {
			a, b := base.Speedup(P), c.Speedup(P)
			if math.Abs(a-b) > 1e-6*(1+a) {
				t.Fatalf("case %d P=%v: S %v vs %v", ci, P, a, b)
			}
		}
	}
	// A genuinely different setting is not invariant.
	diff := Params{N: base.N, M: 32, E: 2, TWr: 5, TZr: 10, TWc: 100}
	if ScaleInvariant(base, diff, 1e-9) {
		t.Fatal("different TWr should break invariance")
	}
}

func TestQuickSpeedupBounds(t *testing.T) {
	// Property: 0 < S(P) ≤ P for all valid parameters (no superlinear
	// speedup in the model).
	f := func(nRaw uint32, mRaw, eRaw uint8, twr, tzr, twc uint16, pRaw uint16) bool {
		p := Params{
			N:   int(nRaw)%1000000 + 100,
			M:   int(mRaw)%256 + 1,
			E:   int(eRaw)%8 + 1,
			TWr: float64(twr%100) + 0.1,
			TZr: float64(tzr%100) + 0.1,
			TWc: float64(twc%1000) + 0.1,
		}
		P := float64(pRaw%2000) + 1
		s := p.Speedup(P)
		return s > 0 && s <= P+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTMonotoneInN(t *testing.T) {
	// Property: more data never makes an iteration faster.
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw)%10000 + 10
		P := int(pRaw)%64 + 1
		a := Params{N: n, M: 32, E: 1, TWr: 1, TZr: 5, TWc: 100}
		b := a
		b.N = n * 2
		return b.T(P) >= a.T(P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
