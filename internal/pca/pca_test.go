package pca

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/retrieval"
	"repro/internal/vec"
)

// anisotropic builds data stretched strongly along a known direction.
func anisotropic(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := vec.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64()*10+5)
		x.Set(i, 1, rng.NormFloat64()*1)
		x.Set(i, 2, rng.NormFloat64()*0.1)
	}
	return dataset.FromMatrix(x)
}

func TestFitFindsDominantDirection(t *testing.T) {
	ds := anisotropic(2000, 1)
	p := Fit(ds, 2)
	if math.Abs(p.Mean[0]-5) > 0.5 {
		t.Fatalf("mean[0]=%v want ≈5", p.Mean[0])
	}
	// First component should align with axis 0.
	if math.Abs(math.Abs(p.Components.At(0, 0))-1) > 0.05 {
		t.Fatalf("first component %v not aligned with axis 0", p.Components.Col(0, nil))
	}
	if p.EigVals[0] < p.EigVals[1] {
		t.Fatal("eigenvalues not descending")
	}
	if math.Abs(p.EigVals[0]-100) > 15 {
		t.Fatalf("top eigenvalue %v want ≈100", p.EigVals[0])
	}
}

func TestProjectionIsCentred(t *testing.T) {
	ds := anisotropic(500, 2)
	p := Fit(ds, 2)
	proj := p.ProjectAll(ds)
	for j := 0; j < 2; j++ {
		var mean float64
		for i := 0; i < proj.Rows; i++ {
			mean += proj.At(i, j)
		}
		mean /= float64(proj.Rows)
		if math.Abs(mean) > 1e-8 {
			t.Fatalf("projection dim %d mean %v, want 0", j, mean)
		}
	}
}

func TestProjectionPreservesVarianceOrdering(t *testing.T) {
	ds := anisotropic(1000, 3)
	p := Fit(ds, 3)
	proj := p.ProjectAll(ds)
	vars := make([]float64, 3)
	for j := 0; j < 3; j++ {
		for i := 0; i < proj.Rows; i++ {
			vars[j] += proj.At(i, j) * proj.At(i, j)
		}
	}
	if !(vars[0] > vars[1] && vars[1] > vars[2]) {
		t.Fatalf("projected variances not descending: %v", vars)
	}
}

func TestTPCAEncodeSplitsOnDominantAxis(t *testing.T) {
	ds := anisotropic(400, 4)
	h := FitTPCA(ds, 1)
	codes := h.Encode(ds)
	// Bit 0 must equal the sign of (x0 - mean0) up to global flip.
	agree := 0
	for i := 0; i < ds.N; i++ {
		want := ds.Point(i, nil)[0]-h.P.Mean[0] >= 0
		if codes.Bit(i, 0) == want {
			agree++
		}
	}
	frac := float64(agree) / float64(ds.N)
	if frac < 0.99 && frac > 0.01 {
		t.Fatalf("tPCA bit agreement %v, want ≈0 or ≈1", frac)
	}
}

func TestITQRotationOrthogonal(t *testing.T) {
	ds := dataset.GISTLike(300, 8, 4, 5)
	h := FitITQ(ds, 4, 10, 6)
	if vec.MaxAbsDiff(h.R.Gram(), vec.Identity(4)) > 1e-8 {
		t.Fatal("ITQ rotation not orthogonal")
	}
}

func TestITQImprovesQuantisationErrorOverIdentity(t *testing.T) {
	ds := dataset.GISTLike(500, 10, 5, 7)
	trained := FitITQ(ds, 6, 20, 8)
	identity := &ITQ{P: trained.P, R: vec.Identity(6)}
	if trained.QuantisationError(ds) > identity.QuantisationError(ds)+1e-9 {
		t.Fatalf("ITQ (%v) should not be worse than identity rotation (%v)",
			trained.QuantisationError(ds), identity.QuantisationError(ds))
	}
}

func TestITQMonotoneInIterations(t *testing.T) {
	ds := dataset.GISTLike(400, 8, 4, 9)
	e1 := FitITQ(ds, 4, 1, 10).QuantisationError(ds)
	e20 := FitITQ(ds, 4, 20, 10).QuantisationError(ds)
	if e20 > e1+1e-9 {
		t.Fatalf("more ITQ iterations should not hurt: %v -> %v", e1, e20)
	}
}

func TestInitialCodesShapeAndSubsample(t *testing.T) {
	ds := dataset.GISTLike(1000, 12, 4, 11)
	codes, h := InitialCodes(ds, 8, 200, 12)
	if codes.N != 1000 || codes.L != 8 {
		t.Fatalf("codes shape %dx%d", codes.N, codes.L)
	}
	if h == nil || h.P.Components.Cols != 8 {
		t.Fatal("hash missing")
	}
}

func TestTPCARetrievalBeatsRandomCodes(t *testing.T) {
	// tPCA codes must retrieve true neighbours far better than random codes.
	ds := dataset.GISTLike(600, 16, 8, 13)
	queries := dataset.GISTLike(40, 16, 8, 13) // same mixture
	h := FitTPCA(ds, 8)
	baseCodes := h.Encode(ds)
	qCodes := h.Encode(queries)
	truth := retrieval.GroundTruth(ds, queries, 20)
	retr := make([][]int, queries.N)
	for q := 0; q < queries.N; q++ {
		retr[q] = retrieval.TopKHamming(baseCodes, qCodes.Code(q), 20)
	}
	pTPCA := retrieval.Precision(truth, retr)

	rng := rand.New(rand.NewSource(14))
	randBase := retrieval.NewCodes(600, 8)
	randQ := retrieval.NewCodes(40, 8)
	for i := range randBase.Data {
		randBase.Data[i] = rng.Uint64()
	}
	for i := range randQ.Data {
		randQ.Data[i] = rng.Uint64()
	}
	// Mask to 8 bits per code.
	for i := 0; i < 600; i++ {
		randBase.Code(i)[0] &= 0xFF
	}
	for q := 0; q < 40; q++ {
		randQ.Code(q)[0] &= 0xFF
	}
	retrRand := make([][]int, queries.N)
	for q := 0; q < queries.N; q++ {
		retrRand[q] = retrieval.TopKHamming(randBase, randQ.Code(q), 20)
	}
	pRand := retrieval.Precision(truth, retrRand)
	if pTPCA <= pRand {
		t.Fatalf("tPCA precision %v should beat random %v", pTPCA, pRand)
	}
}
