// Package pca implements principal component analysis and the two
// PCA-derived binary hashing baselines the paper uses: truncated PCA (tPCA),
// which initialises the binary autoencoder's codes (§8.1) and serves as the
// retrieval baseline in Fig. 12, and iterative quantisation (ITQ, Gong et
// al. 2013), the established method the BA is reported to improve on (§3.1).
package pca

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/retrieval"
	"repro/internal/sgd"
	"repro/internal/vec"
)

// PCA holds a fitted principal subspace: the data mean and the top-L
// components as the columns of a D×L matrix.
type PCA struct {
	Mean       []float64
	Components *vec.Matrix // D×L, orthonormal columns
	EigVals    []float64   // top-L eigenvalues, descending
}

// Fit computes the top-l principal components of the points via the
// eigendecomposition of the sample covariance. The paper runs PCA "on a
// subset of the training set (small enough that it fits in one machine)";
// pass such a subset here.
func Fit(pts sgd.Points, l int) *PCA {
	n := pts.NumPoints()
	if n == 0 {
		panic("pca: empty sample")
	}
	d := len(pts.Point(0, nil))
	if l > d {
		panic("pca: more components than dimensions")
	}
	mean := make([]float64, d)
	buf := make([]float64, d)
	for i := 0; i < n; i++ {
		vec.Axpy(1, pts.Point(i, buf), mean)
	}
	vec.Scale(1/float64(n), mean)

	cov := vec.NewMatrix(d, d)
	centred := make([]float64, d)
	for i := 0; i < n; i++ {
		x := pts.Point(i, buf)
		for j := 0; j < d; j++ {
			centred[j] = x[j] - mean[j]
		}
		for a := 0; a < d; a++ {
			vec.Axpy(centred[a], centred, cov.Row(a))
		}
	}
	vec.Scale(1/float64(n), cov.Data)

	vals, vecs := vec.EigSym(cov)
	comp := vec.NewMatrix(d, l)
	for j := 0; j < l; j++ {
		for i := 0; i < d; i++ {
			comp.Set(i, j, vecs.At(i, j))
		}
	}
	return &PCA{Mean: mean, Components: comp, EigVals: vals[:l]}
}

// Project writes the l-dimensional projection of x into dst (allocated when
// nil): dst = Cᵀ(x - mean).
func (p *PCA) Project(x, dst []float64) []float64 {
	l := p.Components.Cols
	if dst == nil {
		dst = make([]float64, l)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, m := range p.Mean {
		vec.Axpy(x[i]-m, p.Components.Row(i), dst)
	}
	return dst
}

// ProjectAll projects every point of pts into an N×L matrix.
func (p *PCA) ProjectAll(pts sgd.Points) *vec.Matrix {
	n := pts.NumPoints()
	out := vec.NewMatrix(n, p.Components.Cols)
	buf := make([]float64, len(p.Mean))
	for i := 0; i < n; i++ {
		p.Project(pts.Point(i, buf), out.Row(i))
	}
	return out
}

// TPCA is the truncated-PCA binary hash: bit j of x is [cⱼᵀ(x-mean) ≥ 0].
type TPCA struct{ P *PCA }

// FitTPCA fits PCA and wraps it as a hash.
func FitTPCA(pts sgd.Points, l int) *TPCA { return &TPCA{P: Fit(pts, l)} }

// Encode hashes every point of pts into packed binary codes.
func (h *TPCA) Encode(pts sgd.Points) *retrieval.Codes {
	n := pts.NumPoints()
	l := h.P.Components.Cols
	codes := retrieval.NewCodes(n, l)
	buf := make([]float64, len(h.P.Mean))
	proj := make([]float64, l)
	for i := 0; i < n; i++ {
		h.P.Project(pts.Point(i, buf), proj)
		for b := 0; b < l; b++ {
			codes.SetBit(i, b, proj[b] >= 0)
		}
	}
	return codes
}

// ITQ is the iterative-quantisation hash: a learned orthogonal rotation R of
// the PCA projection followed by sign thresholding.
type ITQ struct {
	P *PCA
	R *vec.Matrix // L×L orthogonal
}

// FitITQ fits PCA on the sample, then alternates B = sign(V·R) and the
// orthogonal Procrustes update of R for iters rounds (Gong et al. 2013).
func FitITQ(pts sgd.Points, l, iters int, seed int64) *ITQ {
	p := Fit(pts, l)
	v := p.ProjectAll(pts) // N×L
	rng := rand.New(rand.NewSource(seed))
	g := vec.NewMatrix(l+2, l)
	g.FillGaussian(rng, 1)
	_, _, r := vec.SVDThin(g) // random orthogonal init
	b := vec.NewMatrix(v.Rows, l)
	for it := 0; it < iters; it++ {
		vr := vec.Mul(v, r)
		for i := range vr.Data {
			if vr.Data[i] >= 0 {
				b.Data[i] = 1
			} else {
				b.Data[i] = -1
			}
		}
		// R ← argmin ‖B - V·R‖_F over orthogonal R.
		r = vec.Procrustes(b, v)
	}
	return &ITQ{P: p, R: r}
}

// Encode hashes every point of pts into packed binary codes.
func (h *ITQ) Encode(pts sgd.Points) *retrieval.Codes {
	n := pts.NumPoints()
	l := h.P.Components.Cols
	codes := retrieval.NewCodes(n, l)
	buf := make([]float64, len(h.P.Mean))
	proj := make([]float64, l)
	rot := make([]float64, l)
	for i := 0; i < n; i++ {
		h.P.Project(pts.Point(i, buf), proj)
		h.R.TMulVec(proj, rot)
		for b := 0; b < l; b++ {
			codes.SetBit(i, b, rot[b] >= 0)
		}
	}
	return codes
}

// QuantisationError returns the mean ITQ objective ‖sign(VR) − VR‖²/N on the
// sample, the quantity ITQ's alternation decreases.
func (h *ITQ) QuantisationError(pts sgd.Points) float64 {
	v := h.P.ProjectAll(pts)
	vr := vec.Mul(v, h.R)
	var e float64
	for _, val := range vr.Data {
		s := 1.0
		if val < 0 {
			s = -1
		}
		d := s - val
		e += d * d
	}
	return e / float64(v.Rows)
}

// InitialCodes produces the BA's code initialisation: truncated PCA fitted on
// a subsample of at most maxSample points, applied to the full set (§8.1).
func InitialCodes(ds *dataset.Dataset, l, maxSample int, seed int64) (*retrieval.Codes, *TPCA) {
	sample := ds
	if ds.N > maxSample {
		idx := rand.New(rand.NewSource(seed)).Perm(ds.N)[:maxSample]
		sample = ds.Subset(idx)
	}
	h := FitTPCA(sample, l)
	return h.Encode(ds), h
}
