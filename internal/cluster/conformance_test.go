// Cross-backend conformance suite: one scenario table, executed against
// every transport in the registry. A new backend inherits the whole suite by
// calling cluster.RegisterTransport in its init — nothing here names a
// backend. The scenarios pin down the delivery contract the ParMAC engine
// relies on: per-sender FIFO, tag filtering with AnySource/AnyTag wildcards,
// cyclic barriers, Bcast/AllGather/Reduce collectives, byte accounting, full
// ring circulation, and bounded-inbox backpressure.
package cluster_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	_ "repro/internal/cluster/chaos" // register the chaos wrapper (zero faults)
	_ "repro/internal/cluster/tcp"   // register the TCP backend
)

// scenario is one conformance case, run once per registered transport.
type scenario struct {
	name string
	p    int
	opts []cluster.Option
	run  func(t *testing.T, fab cluster.Fabric)
}

var scenarios = []scenario{
	{"SendRecvEnvelope", 2, nil, scenarioSendRecvEnvelope},
	{"FIFOPerSender", 2, nil, scenarioFIFOPerSender},
	{"TagFiltering", 2, nil, scenarioTagFiltering},
	{"AnySourceAnyTag", 3, nil, scenarioAnySourceAnyTag},
	{"RecvFromBuffers", 3, nil, scenarioRecvFromBuffers},
	{"TryRecv", 2, nil, scenarioTryRecv},
	{"BarrierCycles", 6, nil, scenarioBarrierCycles},
	{"Bcast", 4, nil, scenarioBcast},
	{"AllGather", 5, nil, scenarioAllGather},
	{"ReduceAllReduce", 4, nil, scenarioReduceAllReduce},
	{"ByteAccounting", 3, nil, scenarioByteAccounting},
	{"RingCirculation", 5, nil, scenarioRingCirculation},
	{"SlowRankBackpressure", 4, []cluster.Option{cluster.WithInboxCapacity(2)}, scenarioSlowRank},
	{"RecvEventTimeout", 2, nil, scenarioRecvEventTimeout},
	{"KillPeerDownFIFO", 3, nil, scenarioKillPeerDownFIFO},
	{"SendToDeadRankDrops", 3, nil, scenarioSendToDeadRankDrops},
}

func TestConformance(t *testing.T) {
	names := cluster.TransportNames()
	if len(names) < 2 {
		t.Fatalf("expected at least two registered transports, have %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			for _, sc := range scenarios {
				t.Run(sc.name, func(t *testing.T) {
					fab, err := cluster.NewFabric(name, sc.p, sc.opts...)
					if err != nil {
						t.Fatalf("building %s fabric: %v", name, err)
					}
					defer fab.Close()
					done := make(chan struct{})
					go func() {
						defer close(done)
						sc.run(t, fab)
					}()
					select {
					case <-done:
					case <-time.After(60 * time.Second):
						t.Fatalf("scenario deadlocked on transport %s", name)
					}
				})
			}
		})
	}
}

// eachRank runs body concurrently on every rank and waits — the SPMD pattern
// of every MPI program.
func eachRank(fab cluster.Fabric, body func(c *cluster.Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < fab.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			body(fab.Comm(r))
		}(r)
	}
	wg.Wait()
}

func scenarioSendRecvEnvelope(t *testing.T, fab cluster.Fabric) {
	eachRank(fab, func(c *cluster.Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 7, "hello", 5)
		case 1:
			m := c.Recv(7)
			if m.From != 0 || m.Tag != 7 || m.Payload.(string) != "hello" || m.Bytes != 5 {
				t.Errorf("message envelope = %+v", m)
			}
		}
	})
}

func scenarioFIFOPerSender(t *testing.T, fab cluster.Fabric) {
	const n = 200
	eachRank(fab, func(c *cluster.Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				c.Send(1, 1, i, 8)
			}
		case 1:
			for i := 0; i < n; i++ {
				if m := c.Recv(1); m.Payload.(int) != i {
					t.Errorf("out of order: got %v want %d", m.Payload, i)
					return
				}
			}
		}
	})
}

func scenarioTagFiltering(t *testing.T, fab cluster.Fabric) {
	eachRank(fab, func(c *cluster.Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, "a", 1)
			c.Send(1, 2, "b", 1)
			c.Send(1, 1, "c", 1)
		case 1:
			if m := c.Recv(2); m.Payload.(string) != "b" {
				t.Errorf("tag filter broken: %v", m.Payload)
			}
			if m := c.Recv(1); m.Payload.(string) != "a" {
				t.Error("pending message lost or reordered")
			}
			if m := c.Recv(cluster.AnyTag); m.Payload.(string) != "c" {
				t.Error("AnyTag should drain the remaining message")
			}
		}
	})
}

func scenarioAnySourceAnyTag(t *testing.T, fab cluster.Fabric) {
	eachRank(fab, func(c *cluster.Comm) {
		switch c.Rank() {
		case 0, 1:
			c.Send(2, 10+c.Rank(), c.Rank(), 8)
		case 2:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				m := c.Recv(cluster.AnyTag)
				if m.Tag != 10+m.From {
					t.Errorf("mismatched envelope %+v", m)
				}
				seen[m.From] = true
			}
			if !seen[0] || !seen[1] {
				t.Errorf("wildcard recv missed a sender: %v", seen)
			}
		}
	})
}

func scenarioRecvFromBuffers(t *testing.T, fab cluster.Fabric) {
	eachRank(fab, func(c *cluster.Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 1, "from0", 1)
		case 1:
			c.Send(2, 1, "from1", 1)
		case 2:
			if m := c.RecvFrom(1, 1); m.Payload.(string) != "from1" {
				t.Error("RecvFrom wrong sender")
			}
			if m := c.RecvFrom(0, 1); m.Payload.(string) != "from0" {
				t.Error("buffered message from rank 0 lost")
			}
		}
	})
}

func scenarioTryRecv(t *testing.T, fab cluster.Fabric) {
	eachRank(fab, func(c *cluster.Comm) {
		switch c.Rank() {
		case 0:
			if _, ok := c.TryRecv(cluster.AnyTag); ok {
				t.Error("TryRecv on empty inbox should fail")
			}
			c.Send(1, 3, 42, 8)
			// Handshake so rank 1 polls only after delivery is certain.
			c.Send(1, 4, nil, 0)
		case 1:
			c.Recv(4)
			m, ok := c.TryRecv(3)
			if !ok || m.Payload.(int) != 42 {
				t.Error("TryRecv should find the delivered message")
			}
		}
	})
}

func scenarioBarrierCycles(t *testing.T, fab cluster.Fabric) {
	p := fab.Size()
	phase := make([]int64, p)
	var mu sync.Mutex
	eachRank(fab, func(c *cluster.Comm) {
		for round := 0; round < 5; round++ {
			mu.Lock()
			phase[c.Rank()] = int64(round)
			mu.Unlock()
			c.Barrier()
			mu.Lock()
			for other := 0; other < p; other++ {
				if phase[other] < int64(round) {
					t.Errorf("rank %d saw rank %d at phase %d < %d", c.Rank(), other, phase[other], round)
				}
			}
			mu.Unlock()
			c.Barrier()
		}
	})
}

func scenarioBcast(t *testing.T, fab cluster.Fabric) {
	p := fab.Size()
	results := make([]any, p)
	eachRank(fab, func(c *cluster.Comm) {
		var val any
		if c.Rank() == 2 {
			val = c.Bcast(2, 9, "root-value", 10)
		} else {
			val = c.Bcast(2, 9, nil, 0)
		}
		results[c.Rank()] = val
	})
	for r := 0; r < p; r++ {
		if results[r].(string) != "root-value" {
			t.Fatalf("rank %d got %v", r, results[r])
		}
	}
}

func scenarioAllGather(t *testing.T, fab cluster.Fabric) {
	p := fab.Size()
	out := make([][]any, p)
	eachRank(fab, func(c *cluster.Comm) {
		out[c.Rank()] = c.AllGather(4, c.Rank()*10, 8)
	})
	for r := 0; r < p; r++ {
		for s := 0; s < p; s++ {
			if out[r][s].(int) != s*10 {
				t.Fatalf("rank %d slot %d = %v", r, s, out[r][s])
			}
		}
	}
}

func scenarioReduceAllReduce(t *testing.T, fab cluster.Fabric) {
	p := fab.Size()
	sums := make([][]float64, p)
	maxes := make([][]float64, p)
	eachRank(fab, func(c *cluster.Comm) {
		r := c.Rank()
		sums[r] = c.Reduce(0, 5, []float64{float64(r), 1}, cluster.OpSum)
		maxes[r] = c.AllReduce(6, []float64{float64(r * r)}, cluster.OpMax)
	})
	wantSum := float64(p*(p-1)) / 2
	if sums[0][0] != wantSum || sums[0][1] != float64(p) {
		t.Fatalf("root reduce = %v", sums[0])
	}
	wantMax := float64((p - 1) * (p - 1))
	for r := 0; r < p; r++ {
		if r != 0 && sums[r] != nil {
			t.Fatalf("non-root rank %d got reduce result %v", r, sums[r])
		}
		if maxes[r][0] != wantMax {
			t.Fatalf("rank %d allreduce = %v, want %v", r, maxes[r], wantMax)
		}
	}
}

func scenarioByteAccounting(t *testing.T, fab cluster.Fabric) {
	eachRank(fab, func(c *cluster.Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 1, "x", 100)
			c.Send(2, 1, "y", 50)
		case 1:
			c.Send(2, 1, "z", 7)
		case 2:
			for i := 0; i < 3; i++ {
				c.Recv(1)
			}
		}
	})
	st := fab.Stats()
	if st.Messages != 3 || st.Bytes != 157 {
		t.Fatalf("fabric stats = %+v, want 3 messages / 157 bytes", st)
	}
	if s := fab.Comm(0).Stats(); s.Messages != 2 || s.Bytes != 150 {
		t.Fatalf("rank 0 stats = %+v", s)
	}
	if s := fab.Comm(2).Stats(); s.Messages != 0 {
		t.Fatalf("receiving must not count as sending: %+v", s)
	}
}

func scenarioRingCirculation(t *testing.T, fab cluster.Fabric) {
	// Tokens travel the full ring and return home — the heart of ParMAC's
	// W-step topology (§4.1). Several tokens circulate at once for several
	// laps, each accumulating its visit path.
	const tokens, laps = 3, 4
	p := fab.Size()
	finals := make([][]int, tokens)
	eachRank(fab, func(c *cluster.Comm) {
		rank := c.Rank()
		for tok := 0; tok < tokens; tok++ {
			if tok%p == rank {
				c.Send((rank+1)%p, tok, []int{rank}, 8)
			}
		}
		// Every rank receives each token exactly `laps` times; the home rank
		// collects its token on the final lap instead of forwarding it.
		for i := 0; i < tokens*laps; i++ {
			m := c.Recv(cluster.AnyTag)
			path := append(m.Payload.([]int), rank)
			if m.Tag%p == rank && len(path) == laps*p+1 {
				finals[m.Tag] = path
				continue
			}
			c.Send((rank+1)%p, m.Tag, path, 8)
		}
	})
	for tok, path := range finals {
		if len(path) != laps*p+1 {
			t.Fatalf("token %d path %v", tok, path)
		}
		home := tok % p
		for i, r := range path {
			if r != (home+i)%p {
				t.Fatalf("token %d left the ring: %v", tok, path)
			}
		}
	}
}

func scenarioSlowRank(t *testing.T, fab cluster.Fabric) {
	// Backpressure: the inbox holds only 2 messages and rank 2 is slow, so
	// upstream sends must block — yet the ring keeps making progress because
	// every rank keeps draining. A deadlock here trips the suite's timeout.
	const tokens, laps = 8, 3
	p := fab.Size()
	var arrived int64
	var mu sync.Mutex
	eachRank(fab, func(c *cluster.Comm) {
		rank := c.Rank()
		for tok := 0; tok < tokens; tok++ {
			if tok%p == rank {
				c.Send((rank+1)%p, tok, 1, 8)
			}
		}
		// Each token passes through every rank exactly `laps` times.
		for i := 0; i < tokens*laps; i++ {
			m := c.Recv(cluster.AnyTag)
			if rank == 2 {
				time.Sleep(2 * time.Millisecond)
			}
			hops := m.Payload.(int)
			if hops == laps*p {
				mu.Lock()
				arrived++
				mu.Unlock()
				continue
			}
			c.Send((rank+1)%p, m.Tag, hops+1, 8)
		}
	})
	if arrived != tokens {
		t.Fatalf("only %d/%d tokens completed", arrived, tokens)
	}
}

// scenarioRecvEventTimeout: a deadline-bounded receive must return
// ErrRecvTimeout instead of blocking forever, and the comm must keep working
// after the timeout.
func scenarioRecvEventTimeout(t *testing.T, fab cluster.Fabric) {
	if _, err := fab.Comm(0).RecvEvent(cluster.AnySource, cluster.AnyTag, 50*time.Millisecond); !errors.Is(err, cluster.ErrRecvTimeout) {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
	fab.Comm(1).Send(0, 9, "after-timeout", 0)
	m, err := fab.Comm(0).RecvEvent(1, 9, 10*time.Second)
	if err != nil || m.Payload != "after-timeout" {
		t.Fatalf("recv after timeout: %v %v", m, err)
	}
}

// scenarioKillPeerDownFIFO: killing a rank surfaces as a PeerDownError on
// every survivor's RecvEvent — after the dead rank's final sends, so nothing
// it managed to forward is lost or reordered.
func scenarioKillPeerDownFIFO(t *testing.T, fab cluster.Fabric) {
	killer, ok := fab.(cluster.Killer)
	if !ok {
		t.Skipf("transport %T does not support Kill", fab)
	}
	fab.Comm(0).Send(2, 7, "final-forward", 0)
	killer.Kill(0)

	var pd *cluster.PeerDownError
	// Rank 2 must see the final message before the death.
	m, err := fab.Comm(2).RecvEvent(cluster.AnySource, cluster.AnyTag, 10*time.Second)
	if err != nil || m.Payload != "final-forward" {
		t.Fatalf("rank 2 first event = %v %v, want the final message", m, err)
	}
	if _, err := fab.Comm(2).RecvEvent(cluster.AnySource, cluster.AnyTag, 10*time.Second); !errors.As(err, &pd) || pd.Rank != 0 {
		t.Fatalf("rank 2 second event = %v, want PeerDown(0)", err)
	}
	// Rank 1 got no message; it sees only the down event.
	if _, err := fab.Comm(1).RecvEvent(cluster.AnySource, cluster.AnyTag, 10*time.Second); !errors.As(err, &pd) || pd.Rank != 0 {
		t.Fatalf("rank 1 event = %v, want PeerDown(0)", err)
	}
	if !fab.Comm(1).Down(0) || !fab.Comm(2).Down(0) {
		t.Fatal("Down(0) = false on a survivor after observing the death")
	}
}

// scenarioSendToDeadRankDrops: sending to a dead rank must neither panic nor
// block — the frame is dropped and counted in the fabric's stats.
func scenarioSendToDeadRankDrops(t *testing.T, fab cluster.Fabric) {
	killer, ok := fab.(cluster.Killer)
	if !ok {
		t.Skipf("transport %T does not support Kill", fab)
	}
	killer.Kill(1)
	var pd *cluster.PeerDownError
	if _, err := fab.Comm(0).RecvEvent(cluster.AnySource, cluster.AnyTag, 10*time.Second); !errors.As(err, &pd) || pd.Rank != 1 {
		t.Fatalf("death not observed: %v", err)
	}
	before := fab.Stats().Dropped
	fab.Comm(0).Send(1, 4, "into the void", 0)
	deadline := time.Now().Add(10 * time.Second)
	for fab.Stats().Dropped <= before {
		if time.Now().After(deadline) {
			t.Fatalf("dropped frame never counted (dropped = %d)", fab.Stats().Dropped)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
