package chaos_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
)

func newChaos(t *testing.T, p int, o chaos.Options) *chaos.Fabric {
	t.Helper()
	fab, err := chaos.New(cluster.NewNetwork(p), o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fab.Close() })
	return fab
}

func TestRegisteredTransportIsTransparent(t *testing.T) {
	fab, err := cluster.NewFabric("chaos", 2)
	if err != nil {
		t.Fatalf("chaos transport not registered: %v", err)
	}
	defer fab.Close()
	fab.Comm(0).Send(1, 1, "through the wrapper", 0)
	if m := fab.Comm(1).Recv(1); m.Payload != "through the wrapper" {
		t.Fatalf("payload = %v", m.Payload)
	}
}

func TestDuplicateDeliveryPreservesFIFO(t *testing.T) {
	fab := newChaos(t, 2, chaos.Options{Seed: 1, DupProb: 1})
	fab.Comm(0).Send(1, 1, "a", 0)
	fab.Comm(0).Send(1, 1, "b", 0)
	// Every message is duplicated back-to-back: a a b b.
	want := []string{"a", "a", "b", "b"}
	for i, w := range want {
		m, err := fab.Comm(1).RecvEvent(0, 1, time.Second)
		if err != nil || m.Payload != w {
			t.Fatalf("delivery %d = %v %v, want %q", i, m, err, w)
		}
	}
}

func TestDelayedDeliveryStillArrivesInOrder(t *testing.T) {
	fab := newChaos(t, 2, chaos.Options{Seed: 3, DelayProb: 1, MaxDelay: 5 * time.Millisecond})
	for i := 0; i < 10; i++ {
		fab.Comm(0).Send(1, 1, i, 0)
	}
	for i := 0; i < 10; i++ {
		m, err := fab.Comm(1).RecvEvent(0, 1, 5*time.Second)
		if err != nil || m.Payload != i {
			t.Fatalf("delivery %d = %v %v", i, m, err)
		}
	}
}

// TestScheduledKill: the rank dies unannounced just before its matching
// send, the triggering message is lost with it, and survivors observe the
// death through the transport.
func TestScheduledKill(t *testing.T) {
	fab := newChaos(t, 2, chaos.Options{
		Seed:  5,
		Kills: []chaos.KillSpec{{Rank: 0, Tag: 5, AfterSends: 1}},
	})
	c0, c1 := fab.Comm(0), fab.Comm(1)
	c0.Send(1, 9, "other tag, not counted", 0)
	c0.Send(1, 5, "first tag-5 send, delivered", 0)
	c0.Send(1, 5, "second tag-5 send, lost with the process", 0)

	if m, err := c1.RecvEvent(0, 9, time.Second); err != nil || m.Payload != "other tag, not counted" {
		t.Fatalf("non-matching tag was affected: %v %v", m, err)
	}
	if m, err := c1.RecvEvent(0, 5, time.Second); err != nil || m.Payload != "first tag-5 send, delivered" {
		t.Fatalf("send before the kill point: %v %v", m, err)
	}
	var pd *cluster.PeerDownError
	if _, err := c1.RecvEvent(cluster.AnySource, cluster.AnyTag, time.Second); !errors.As(err, &pd) || pd.Rank != 0 {
		t.Fatalf("after the kill point: %v, want PeerDown(0) — the triggering message must be lost", err)
	}
}

// TestSeedDeterminism: the same (seed, schedule) must replay the exact same
// fault decisions — the property that makes chaos failures debuggable.
func TestSeedDeterminism(t *testing.T) {
	run := func() []int {
		fab := newChaos(t, 2, chaos.Options{Seed: 42, DupProb: 0.5})
		const n = 50
		for i := 0; i < n; i++ {
			fab.Comm(0).Send(1, 1, i, 0)
		}
		var seq []int
		for {
			m, err := fab.Comm(1).RecvEvent(0, 1, 100*time.Millisecond)
			if err != nil {
				break // drained
			}
			seq = append(seq, m.Payload.(int))
		}
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	dup := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] == a[i-1] {
			dup++
		}
	}
	if dup == 0 {
		t.Fatal("DupProb 0.5 over 50 sends injected no duplicates")
	}
}
