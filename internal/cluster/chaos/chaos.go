// Package chaos is a fault-injecting transport wrapper for internal/cluster.
// It interposes on another fabric's raw endpoints and injects seeded,
// reproducible faults — message delay, duplicate delivery (back-to-back, so
// per-sender FIFO order is preserved), and rank kills at configurable
// protocol points (the Nth send of a given tag) or on demand via Kill. With
// zero fault probabilities it is a transparent proxy, which is exactly how
// it registers in the transport registry ("chaos", over inproc): the
// cross-backend conformance suite then holds the wrapper to the same
// delivery contract as every real backend.
//
// Faults are deterministic: each endpoint draws from its own rand.Rand
// seeded from Options.Seed and the rank, so a given (seed, schedule) replays
// identically — the property that makes chaos failures debuggable.
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
)

// AnyTag makes a KillSpec count every send regardless of tag.
const AnyTag = cluster.AnyTag

// KillSpec kills a rank at a deterministic protocol point: the rank dies
// unannounced just before performing its (AfterSends+1)-th Deliver of a
// message matching Tag (AnyTag for all). The triggering message is lost with
// the process, like a SIGKILL between receiving and forwarding.
type KillSpec struct {
	Rank       int
	Tag        int // AnyTag or a specific application tag
	AfterSends int // die before send number AfterSends (0-based count)
}

// Options configures the injected faults. The zero value (plus a Seed)
// injects nothing.
type Options struct {
	// Seed drives every random draw; each rank derives its own stream.
	Seed int64
	// DelayProb is the per-message probability of an extra delivery delay,
	// uniform in (0, MaxDelay]. Delays happen in Deliver, so per-sender FIFO
	// order is preserved.
	DelayProb float64
	MaxDelay  time.Duration
	// DupProb is the per-message probability of an immediate duplicate
	// delivery (same payload, back-to-back, FIFO-compatible).
	DupProb float64
	// Kills schedules unannounced deaths at protocol points.
	Kills []KillSpec
}

// Fabric wraps an inner fabric's endpoints with fault injection. It
// implements cluster.Fabric, cluster.Killer and cluster.EndpointFabric.
type Fabric struct {
	inner cluster.Fabric
	eps   []*endpoint
	comms []*cluster.Comm
}

// New wraps inner (which must expose its raw endpoints via
// cluster.EndpointFabric) in a chaos fabric.
func New(inner cluster.Fabric, o Options) (*Fabric, error) {
	ef, ok := inner.(cluster.EndpointFabric)
	if !ok {
		return nil, fmt.Errorf("chaos: inner fabric %T does not expose endpoints", inner)
	}
	f := &Fabric{
		inner: inner,
		eps:   make([]*endpoint, inner.Size()),
		comms: make([]*cluster.Comm, inner.Size()),
	}
	for r := 0; r < inner.Size(); r++ {
		ep := &endpoint{
			inner: ef.Endpoint(r),
			opts:  o,
			rng:   rand.New(rand.NewSource(o.Seed ^ int64(r+1)*0x9e3779b97f4a7c)),
		}
		for i := range o.Kills {
			if o.Kills[i].Rank == r {
				ep.kills = append(ep.kills, &killState{spec: o.Kills[i]})
			}
		}
		f.eps[r] = ep
		f.comms[r] = cluster.NewComm(ep)
	}
	return f, nil
}

// Size implements cluster.Fabric.
func (f *Fabric) Size() int { return f.inner.Size() }

// Comm implements cluster.Fabric.
func (f *Fabric) Comm(rank int) *cluster.Comm { return f.comms[rank] }

// Endpoint implements cluster.EndpointFabric.
func (f *Fabric) Endpoint(rank int) cluster.Endpoint { return f.eps[rank] }

// Kill severs rank unannounced right now (cluster.Killer).
func (f *Fabric) Kill(rank int) {
	if k, ok := f.inner.(cluster.Killer); ok {
		k.Kill(rank)
		return
	}
	f.eps[rank].inner.Abort()
}

// Stats implements cluster.Fabric: traffic is counted at this fabric's Comms
// (the inner Comms are unused); drops come from the inner transport.
func (f *Fabric) Stats() cluster.Stats {
	var out cluster.Stats
	for _, c := range f.comms {
		s := c.Stats()
		out.Messages += s.Messages
		out.Bytes += s.Bytes
	}
	out.Dropped = f.inner.Stats().Dropped
	return out
}

// Close implements cluster.Fabric.
func (f *Fabric) Close() error { return f.inner.Close() }

type killState struct {
	spec KillSpec
	sent int
}

type endpoint struct {
	inner cluster.Endpoint
	opts  Options
	rng   *rand.Rand
	kills []*killState
}

func (e *endpoint) Rank() int { return e.inner.Rank() }
func (e *endpoint) Size() int { return e.inner.Size() }

// Deliver injects the configured faults around the inner delivery. Like the
// Comm above it, an endpoint is driven by a single goroutine, so the rng and
// kill counters need no locking.
func (e *endpoint) Deliver(to int, m cluster.Message) {
	for _, k := range e.kills {
		if k.spec.Tag != AnyTag && k.spec.Tag != m.Tag {
			continue
		}
		if k.sent == k.spec.AfterSends {
			k.sent++ // fire once
			// Die before the send: the message is lost with the process.
			e.inner.Abort()
			return
		}
		k.sent++
	}
	if e.opts.DelayProb > 0 && e.rng.Float64() < e.opts.DelayProb && e.opts.MaxDelay > 0 {
		time.Sleep(time.Duration(1 + e.rng.Int63n(int64(e.opts.MaxDelay))))
	}
	e.inner.Deliver(to, m)
	if e.opts.DupProb > 0 && e.rng.Float64() < e.opts.DupProb {
		e.inner.Deliver(to, m)
	}
}

func (e *endpoint) Next(timeout time.Duration) (cluster.Message, error) {
	return e.inner.Next(timeout)
}

func (e *endpoint) TryNext() (cluster.Message, bool) { return e.inner.TryNext() }

func (e *endpoint) Abort() { e.inner.Abort() }

func (e *endpoint) Close() error { return e.inner.Close() }

func init() {
	// Registered with zero faults: the conformance suite proves the wrapper
	// is a transparent proxy before any chaos is dialled in.
	cluster.RegisterTransport("chaos", func(p int, opts ...cluster.Option) (cluster.Fabric, error) {
		inner, err := cluster.NewFabric("inproc", p, opts...)
		if err != nil {
			return nil, err
		}
		return New(inner, Options{Seed: 1})
	})
}
