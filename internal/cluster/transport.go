package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Endpoint is one rank's raw attachment to a transport backend. It moves
// Messages between ranks with reliable, per-sender-FIFO delivery and bounded
// buffering; everything MPI-flavoured (tag matching, wildcards, collectives,
// traffic accounting) lives above it in Comm and is therefore identical
// across backends.
//
// An Endpoint is used by a single goroutine, like one MPI process.
type Endpoint interface {
	// Rank is this endpoint's rank in [0, Size).
	Rank() int
	// Size is the number of ranks in the fabric.
	Size() int
	// Deliver enqueues m at rank to. It may block when the destination's
	// inbox is full (bounded buffering, like MPI_Bsend with a full buffer).
	// Delivery to a rank that has left the fabric is a silent drop, counted
	// in the fabric's Stats.Dropped — never a panic.
	Deliver(to int, m Message)
	// Next returns the next arrived message. A timeout > 0 bounds the wait
	// and ErrRecvTimeout reports its expiry; timeout <= 0 blocks until a
	// message arrives. Any other error means this endpoint's own attachment
	// is dead (terminal; subsequent calls keep failing). Backends surface a
	// peer's unannounced death in-band as a PeerDownMessage.
	Next(timeout time.Duration) (Message, error)
	// TryNext returns an already-arrived message, if any, without blocking.
	TryNext() (Message, bool)
	// Abort severs the endpoint without the goodbye of Close: peers observe
	// an unannounced death (PeerDownMessage). Idempotent; used by failure
	// injection to simulate process death.
	Abort()
	// Close releases the endpoint. Calling Next/Deliver afterwards is a bug.
	Close() error
}

// Fabric is a connected set of ranks on one transport backend, as handed out
// by the transport registry. Production code usually builds backends
// directly (NewNetwork, tcp.NewHub + tcp.Connect); the registry exists so the
// conformance suite can run the identical scenario table against every
// backend.
type Fabric interface {
	// Size is the number of ranks.
	Size() int
	// Comm returns rank's communicator. Each Comm is single-goroutine.
	Comm(rank int) *Comm
	// Stats aggregates the send counters of every local Comm.
	Stats() Stats
	// Close tears the fabric down. Only call once every rank is quiescent.
	Close() error
}

// Option configures a fabric at construction time.
type Option func(*Options)

// Options holds the resolved fabric construction options.
type Options struct {
	// InboxCapacity bounds in-flight messages per rank.
	InboxCapacity int
}

// WithInboxCapacity bounds the number of in-flight messages per rank. Sends
// beyond the bound block until the receiver drains its inbox (backpressure).
func WithInboxCapacity(n int) Option {
	if n <= 0 {
		panic("cluster: inbox capacity must be positive")
	}
	return func(o *Options) { o.InboxCapacity = n }
}

// ResolveOptions applies opts over the defaults.
func ResolveOptions(opts ...Option) Options {
	o := Options{InboxCapacity: DefaultInboxCapacity}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// FabricFactory builds a connected fabric of p ranks.
type FabricFactory func(p int, opts ...Option) (Fabric, error)

var (
	transportsMu sync.Mutex
	transports   = map[string]FabricFactory{}
)

// RegisterTransport records a transport backend under name. Backends
// register themselves in init(); registering a duplicate name panics.
// Every registered backend is exercised by the conformance suite.
func RegisterTransport(name string, f FabricFactory) {
	transportsMu.Lock()
	defer transportsMu.Unlock()
	if _, dup := transports[name]; dup {
		panic(fmt.Sprintf("cluster: transport %q registered twice", name))
	}
	transports[name] = f
}

// TransportNames lists the registered backends, sorted.
func TransportNames() []string {
	transportsMu.Lock()
	defer transportsMu.Unlock()
	out := make([]string, 0, len(transports))
	for name := range transports {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewFabric builds a fabric of p ranks on the named transport.
func NewFabric(name string, p int, opts ...Option) (Fabric, error) {
	transportsMu.Lock()
	f, ok := transports[name]
	transportsMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: unknown transport %q (have %v)", name, TransportNames())
	}
	return f(p, opts...)
}
