package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The in-process transport backend: every rank is a goroutine in one
// process, inboxes are buffered Go channels. This is the zero-overhead
// fabric the paper's single-host experiments run on. It also implements
// Killer: Kill(rank) simulates unannounced process death for fault tests —
// the killed rank's receives fail, frames to it are dropped and counted,
// and every other rank observes a PeerDownMessage.

// DefaultInboxCapacity bounds in-flight messages per rank unless overridden
// with WithInboxCapacity. ParMAC keeps at most M submodels + P final-round
// copies in flight, so this is generous.
const DefaultInboxCapacity = 1 << 14

// Network is the in-process fabric connecting P ranks.
type Network struct {
	size    int
	inboxes []chan Message
	comms   []*Comm
	eps     []*inprocEndpoint

	killMu   sync.Mutex
	killed   []atomic.Bool
	killedCh []chan struct{}
	dropped  atomic.Int64
}

// NewNetwork creates an in-process fabric with p ranks.
func NewNetwork(p int, opts ...Option) *Network {
	if p <= 0 {
		panic("cluster: need at least one rank")
	}
	o := ResolveOptions(opts...)
	n := &Network{
		size:     p,
		inboxes:  make([]chan Message, p),
		comms:    make([]*Comm, p),
		eps:      make([]*inprocEndpoint, p),
		killed:   make([]atomic.Bool, p),
		killedCh: make([]chan struct{}, p),
	}
	for i := range n.inboxes {
		n.inboxes[i] = make(chan Message, o.InboxCapacity)
		n.killedCh[i] = make(chan struct{})
		n.eps[i] = &inprocEndpoint{net: n, rank: i}
		n.comms[i] = NewComm(n.eps[i])
	}
	return n
}

// Size returns the number of ranks.
func (n *Network) Size() int { return n.size }

// Comm returns the communicator endpoint for the given rank. Each endpoint
// must be used by a single goroutine (as one MPI process would). Repeated
// calls return the same Comm.
func (n *Network) Comm(rank int) *Comm {
	if rank < 0 || rank >= n.size {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, n.size))
	}
	return n.comms[rank]
}

// Endpoint returns rank's raw transport endpoint (EndpointFabric).
func (n *Network) Endpoint(rank int) Endpoint { return n.eps[rank] }

// Stats returns the fabric-wide message and byte totals so far.
func (n *Network) Stats() Stats {
	var out Stats
	for _, c := range n.comms {
		s := c.Stats()
		out.Messages += s.Messages
		out.Bytes += s.Bytes
	}
	out.Dropped = n.dropped.Load()
	return out
}

// SentBy returns how many messages the given rank has sent.
func (n *Network) SentBy(rank int) int64 { return n.comms[rank].Stats().Messages }

// Dropped returns how many messages were discarded because their destination
// rank had been killed.
func (n *Network) Dropped() int64 { return n.dropped.Load() }

// Kill severs rank's attachment unannounced (Killer): its receives fail with
// a LinkError, deliveries to it are dropped and counted, and every other
// live rank gets a PeerDownMessage in its inbox. Idempotent.
func (n *Network) Kill(rank int) {
	if rank < 0 || rank >= n.size {
		panic(fmt.Sprintf("cluster: Kill of invalid rank %d", rank))
	}
	if !n.killed[rank].CompareAndSwap(false, true) {
		return
	}
	// killMu serializes the close with concurrent Kill calls for other
	// ranks; the CAS above already makes each rank's close happen once.
	n.killMu.Lock()
	close(n.killedCh[rank])
	n.killMu.Unlock()
	down := PeerDownMessage(rank)
	for r := 0; r < n.size; r++ {
		if r == rank || n.killed[r].Load() {
			continue
		}
		select {
		case n.inboxes[r] <- down:
		case <-n.killedCh[r]:
		}
	}
}

// Close implements Fabric. The in-process fabric holds no external
// resources; goroutines blocked on Recv are the caller's to unblock.
func (n *Network) Close() error { return nil }

type inprocEndpoint struct {
	net  *Network
	rank int
}

func (e *inprocEndpoint) Rank() int { return e.rank }
func (e *inprocEndpoint) Size() int { return e.net.size }

func (e *inprocEndpoint) Deliver(to int, m Message) {
	if e.net.killed[to].Load() {
		e.net.dropped.Add(1)
		return
	}
	select {
	case e.net.inboxes[to] <- m:
	case <-e.net.killedCh[to]:
		e.net.dropped.Add(1)
	}
}

func (e *inprocEndpoint) Next(timeout time.Duration) (Message, error) {
	// A killed rank is dead memory: it reads nothing more, even if messages
	// are still queued.
	if e.net.killed[e.rank].Load() {
		return Message{}, e.linkErr()
	}
	select {
	case m := <-e.net.inboxes[e.rank]:
		return m, nil
	default:
	}
	var timerC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timerC = t.C
	}
	select {
	case m := <-e.net.inboxes[e.rank]:
		return m, nil
	case <-e.net.killedCh[e.rank]:
		return Message{}, e.linkErr()
	case <-timerC:
		return Message{}, ErrRecvTimeout
	}
}

func (e *inprocEndpoint) linkErr() error {
	return &LinkError{Cause: fmt.Errorf("rank %d was killed", e.rank)}
}

func (e *inprocEndpoint) TryNext() (Message, bool) {
	if e.net.killed[e.rank].Load() {
		return Message{}, false
	}
	select {
	case m := <-e.net.inboxes[e.rank]:
		return m, true
	default:
		return Message{}, false
	}
}

// Abort simulates this rank's own unannounced death: Kill(self).
func (e *inprocEndpoint) Abort() { e.net.Kill(e.rank) }

func (e *inprocEndpoint) Close() error { return nil }

func init() {
	RegisterTransport("inproc", func(p int, opts ...Option) (Fabric, error) {
		return NewNetwork(p, opts...), nil
	})
}
