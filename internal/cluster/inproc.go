package cluster

import "fmt"

// The in-process transport backend: every rank is a goroutine in one
// process, inboxes are buffered Go channels. This is the zero-overhead
// fabric the paper's single-host experiments run on.

// DefaultInboxCapacity bounds in-flight messages per rank unless overridden
// with WithInboxCapacity. ParMAC keeps at most M submodels + P final-round
// copies in flight, so this is generous.
const DefaultInboxCapacity = 1 << 14

// Network is the in-process fabric connecting P ranks.
type Network struct {
	size    int
	inboxes []chan Message
	comms   []*Comm
}

// NewNetwork creates an in-process fabric with p ranks.
func NewNetwork(p int, opts ...Option) *Network {
	if p <= 0 {
		panic("cluster: need at least one rank")
	}
	o := ResolveOptions(opts...)
	n := &Network{
		size:    p,
		inboxes: make([]chan Message, p),
		comms:   make([]*Comm, p),
	}
	for i := range n.inboxes {
		n.inboxes[i] = make(chan Message, o.InboxCapacity)
		n.comms[i] = NewComm(&inprocEndpoint{net: n, rank: i})
	}
	return n
}

// Size returns the number of ranks.
func (n *Network) Size() int { return n.size }

// Comm returns the communicator endpoint for the given rank. Each endpoint
// must be used by a single goroutine (as one MPI process would). Repeated
// calls return the same Comm.
func (n *Network) Comm(rank int) *Comm {
	if rank < 0 || rank >= n.size {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, n.size))
	}
	return n.comms[rank]
}

// Stats returns the fabric-wide message and byte totals so far.
func (n *Network) Stats() Stats {
	var out Stats
	for _, c := range n.comms {
		s := c.Stats()
		out.Messages += s.Messages
		out.Bytes += s.Bytes
	}
	return out
}

// SentBy returns how many messages the given rank has sent.
func (n *Network) SentBy(rank int) int64 { return n.comms[rank].Stats().Messages }

// Close implements Fabric. The in-process fabric holds no external
// resources; goroutines blocked on Recv are the caller's to unblock.
func (n *Network) Close() error { return nil }

type inprocEndpoint struct {
	net  *Network
	rank int
}

func (e *inprocEndpoint) Rank() int                 { return e.rank }
func (e *inprocEndpoint) Size() int                 { return e.net.size }
func (e *inprocEndpoint) Deliver(to int, m Message) { e.net.inboxes[to] <- m }
func (e *inprocEndpoint) Next() Message             { return <-e.net.inboxes[e.rank] }
func (e *inprocEndpoint) Close() error              { return nil }

func (e *inprocEndpoint) TryNext() (Message, bool) {
	select {
	case m := <-e.net.inboxes[e.rank]:
		return m, true
	default:
		return Message{}, false
	}
}

func init() {
	RegisterTransport("inproc", func(p int, opts ...Option) (Fabric, error) {
		return NewNetwork(p, opts...), nil
	})
}
