package cluster

// Collective computation operations from the paper's appendix B
// (MPI_Reduce / MPI_Allreduce), specialised to float64 vectors — the only
// reduction ParMAC-adjacent code needs (aggregating partial sums/gradients
// across machines, the exact-gradient W-step alternative of §6).

// ReduceOp combines two values elementwise in place: dst[i] = op(dst[i], src[i]).
type ReduceOp func(dst, src []float64)

// OpSum adds src into dst elementwise.
func OpSum(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// OpMax keeps the elementwise maximum in dst.
func OpMax(dst, src []float64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// Reduce combines every rank's contribution at root with op and returns the
// result there (nil elsewhere), mirroring MPI_Reduce. All ranks must call it
// with equal-length vectors.
func (c *Comm) Reduce(root, tag int, contrib []float64, op ReduceOp) []float64 {
	if c.Rank() != root {
		c.Send(root, tag, contrib, 8*len(contrib))
		return nil
	}
	acc := make([]float64, len(contrib))
	copy(acc, contrib)
	for i := 0; i < c.Size()-1; i++ {
		m := c.Recv(tag)
		src := m.Payload.([]float64)
		if len(src) != len(acc) {
			panic("cluster: Reduce length mismatch")
		}
		op(acc, src)
	}
	return acc
}

// AllReduce is Reduce followed by a broadcast of the result to every rank
// (MPI_Allreduce). Rank 0 acts as the implicit root.
func (c *Comm) AllReduce(tag int, contrib []float64, op ReduceOp) []float64 {
	res := c.Reduce(0, tag, contrib, op)
	out := c.Bcast(0, tag, res, 8*len(contrib))
	return out.([]float64)
}
