package cluster

import (
	"errors"
	"testing"
	"time"
)

// Failure-signaling semantics of the in-process transport: Kill severs a
// rank, survivors observe it as a PeerDownError from RecvEvent (after the
// dead rank's earlier sends, preserving per-sender FIFO), and frames
// addressed to the dead rank are dropped and counted, never delivered and
// never blocking.

func TestRecvEventTimeout(t *testing.T) {
	n := NewNetwork(2)
	start := time.Now()
	_, err := n.Comm(0).RecvEvent(AnySource, AnyTag, 30*time.Millisecond)
	if !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout wait far exceeded the deadline")
	}
	// The comm must still work after a timeout.
	n.Comm(1).Send(0, 3, "late", 0)
	m, err := n.Comm(0).RecvEvent(1, 3, time.Second)
	if err != nil || m.Payload != "late" {
		t.Fatalf("recv after timeout: %v %v", m, err)
	}
}

func TestKillSurfacesPeerDownAfterFinalSends(t *testing.T) {
	n := NewNetwork(3)
	// Rank 0 sends its last words, then dies.
	n.Comm(0).Send(1, 7, "last", 0)
	n.Kill(0)

	c1 := n.Comm(1)
	// FIFO: the message outruns the death event.
	m, err := c1.RecvEvent(AnySource, AnyTag, time.Second)
	if err != nil || m.Payload != "last" {
		t.Fatalf("first event = %v %v, want the final message", m, err)
	}
	_, err = c1.RecvEvent(AnySource, AnyTag, time.Second)
	var pd *PeerDownError
	if !errors.As(err, &pd) || pd.Rank != 0 {
		t.Fatalf("second event = %v, want PeerDown(0)", err)
	}
	if !c1.Down(0) {
		t.Fatal("Down(0) = false after observing the peer-down event")
	}
	// Rank 2 got no message; it sees only the down event.
	_, err = n.Comm(2).RecvEvent(AnySource, AnyTag, time.Second)
	if !errors.As(err, &pd) || pd.Rank != 0 {
		t.Fatalf("rank 2 event = %v, want PeerDown(0)", err)
	}
}

func TestPeerDownReportedOncePerPeer(t *testing.T) {
	n := NewNetwork(2)
	n.Kill(1)
	c := n.Comm(0)
	var pd *PeerDownError
	if _, err := c.RecvEvent(AnySource, AnyTag, time.Second); !errors.As(err, &pd) {
		t.Fatalf("first wait: %v", err)
	}
	// Subsequent waits time out instead of replaying the down event.
	if _, err := c.RecvEvent(AnySource, AnyTag, 30*time.Millisecond); !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("second wait: %v, want ErrRecvTimeout", err)
	}
	if !c.Down(1) {
		t.Fatal("Down(1) lost the death")
	}
}

func TestPollDownDrainsPendingDeaths(t *testing.T) {
	n := NewNetwork(3)
	n.Kill(1)
	n.Kill(2)
	got := map[int]bool{}
	for _, r := range n.Comm(0).PollDown() {
		got[r] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("PollDown = %v, want ranks 1 and 2", got)
	}
	if len(n.Comm(0).PollDown()) != 0 {
		t.Fatal("PollDown replayed already-drained deaths")
	}
	if !n.Comm(0).Down(1) || !n.Comm(0).Down(2) {
		t.Fatal("Down map lost the deaths")
	}
}

func TestDeliverToKilledRankDropsAndCounts(t *testing.T) {
	n := NewNetwork(2)
	n.Kill(1)
	before := n.Dropped()
	// Must neither panic nor block, even repeated.
	for i := 0; i < 3; i++ {
		n.Comm(0).Send(1, 5, i, 0)
	}
	if got := n.Dropped() - before; got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if n.Stats().Dropped != n.Dropped() {
		t.Fatal("Stats().Dropped disagrees with Dropped()")
	}
}

func TestKilledRankNextReturnsLinkError(t *testing.T) {
	n := NewNetwork(2)
	n.Kill(0)
	_, err := n.Comm(0).RecvEvent(AnySource, AnyTag, time.Second)
	if err == nil || errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("dead rank's own wait = %v, want a link error", err)
	}
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("err = %T %v, want *LinkError", err, err)
	}
}

func TestAbortIsKill(t *testing.T) {
	n := NewNetwork(2)
	n.Comm(1).Abort()
	var pd *PeerDownError
	if _, err := n.Comm(0).RecvEvent(AnySource, AnyTag, time.Second); !errors.As(err, &pd) || pd.Rank != 1 {
		t.Fatalf("after Abort: %v, want PeerDown(1)", err)
	}
}

func TestKillDuringBlockedDeliverUnblocksSender(t *testing.T) {
	n := NewNetwork(2, WithInboxCapacity(1))
	c0 := n.Comm(0)
	c0.Send(1, 1, "fills the inbox", 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c0.Send(1, 1, "blocked until the kill", 0)
	}()
	time.Sleep(20 * time.Millisecond) // let the send block on the full inbox
	n.Kill(1)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sender stayed blocked on a dead rank's full inbox")
	}
	if n.Dropped() == 0 {
		t.Fatal("the unblocked send was not counted as dropped")
	}
}
