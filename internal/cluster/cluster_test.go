package cluster

import (
	"sync"
	"testing"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	n := NewNetwork(2)
	c0, c1 := n.Comm(0), n.Comm(1)
	done := make(chan Message, 1)
	go func() { done <- c1.Recv(7) }()
	c0.Send(1, 7, "hello", 5)
	m := <-done
	if m.From != 0 || m.Tag != 7 || m.Payload.(string) != "hello" || m.Bytes != 5 {
		t.Fatalf("message = %+v", m)
	}
	st := n.Stats()
	if st.Messages != 1 || st.Bytes != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if n.SentBy(0) != 1 || n.SentBy(1) != 0 {
		t.Fatal("per-rank counters wrong")
	}
}

func TestFIFOPerSender(t *testing.T) {
	n := NewNetwork(2)
	c0, c1 := n.Comm(0), n.Comm(1)
	for i := 0; i < 100; i++ {
		c0.Send(1, 1, i, 8)
	}
	for i := 0; i < 100; i++ {
		m := c1.Recv(1)
		if m.Payload.(int) != i {
			t.Fatalf("out of order: got %v want %d", m.Payload, i)
		}
	}
}

func TestTagFiltering(t *testing.T) {
	n := NewNetwork(2)
	c0, c1 := n.Comm(0), n.Comm(1)
	c0.Send(1, 1, "a", 1)
	c0.Send(1, 2, "b", 1)
	c0.Send(1, 1, "c", 1)
	if m := c1.Recv(2); m.Payload.(string) != "b" {
		t.Fatalf("tag filter broken: %v", m.Payload)
	}
	// The skipped tag-1 messages must still arrive, in order.
	if m := c1.Recv(1); m.Payload.(string) != "a" {
		t.Fatal("pending message lost or reordered")
	}
	if m := c1.Recv(AnyTag); m.Payload.(string) != "c" {
		t.Fatal("AnyTag should drain remaining message")
	}
}

func TestRecvFromSpecificSender(t *testing.T) {
	n := NewNetwork(3)
	c0, c1, c2 := n.Comm(0), n.Comm(1), n.Comm(2)
	c0.Send(2, 1, "from0", 1)
	c1.Send(2, 1, "from1", 1)
	if m := c2.RecvFrom(1, 1); m.Payload.(string) != "from1" {
		t.Fatal("RecvFrom wrong sender")
	}
	if m := c2.RecvFrom(0, 1); m.Payload.(string) != "from0" {
		t.Fatal("buffered message from rank 0 lost")
	}
}

func TestTryRecv(t *testing.T) {
	n := NewNetwork(2)
	c0, c1 := n.Comm(0), n.Comm(1)
	if _, ok := c1.TryRecv(AnyTag); ok {
		t.Fatal("TryRecv on empty inbox should fail")
	}
	c0.Send(1, 3, 42, 8)
	// Give the buffered channel the value synchronously (it is already there).
	m, ok := c1.TryRecv(3)
	if !ok || m.Payload.(int) != 42 {
		t.Fatal("TryRecv should find the message")
	}
}

func TestBarrierSynchronises(t *testing.T) {
	const p = 8
	n := NewNetwork(p)
	var phase [p]int
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := n.Comm(rank)
			for round := 0; round < 5; round++ {
				phase[rank] = round
				c.Barrier()
				// After the barrier, everyone must be at this round.
				for other := 0; other < p; other++ {
					if phase[other] < round {
						t.Errorf("rank %d saw rank %d at phase %d < %d", rank, other, phase[other], round)
					}
				}
				c.Barrier()
			}
		}(r)
	}
	wg.Wait()
}

func TestBcast(t *testing.T) {
	const p = 4
	n := NewNetwork(p)
	results := make([]any, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := n.Comm(rank)
			var val any
			if rank == 2 {
				val = c.Bcast(2, 9, "root-value", 10)
			} else {
				val = c.Bcast(2, 9, nil, 0)
			}
			results[rank] = val
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if results[r].(string) != "root-value" {
			t.Fatalf("rank %d got %v", r, results[r])
		}
	}
}

func TestAllGather(t *testing.T) {
	const p = 5
	n := NewNetwork(p)
	var wg sync.WaitGroup
	out := make([][]any, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := n.Comm(rank)
			out[rank] = c.AllGather(4, rank*10, 8)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		for s := 0; s < p; s++ {
			if out[r][s].(int) != s*10 {
				t.Fatalf("rank %d slot %d = %v", r, s, out[r][s])
			}
		}
	}
}

func TestRingCirculation(t *testing.T) {
	// A token must travel the full ring and return — the heart of ParMAC's
	// W step topology (§4.1).
	const p = 6
	n := NewNetwork(p)
	var wg sync.WaitGroup
	var final []int
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := n.Comm(rank)
			if rank == 0 {
				c.Send(1, 1, []int{0}, 8)
				m := c.Recv(1) // the token returns after a full lap
				final = append(m.Payload.([]int), rank)
				return
			}
			m := c.Recv(1)
			path := append(m.Payload.([]int), rank)
			c.Send((rank+1)%p, 1, path, 8)
		}(r)
	}
	wg.Wait()
	// The token visited 0,1,...,p-1 and returned to 0.
	if len(final) != p+1 {
		t.Fatalf("token path %v", final)
	}
	for i := 0; i < p; i++ {
		if final[i] != i {
			t.Fatalf("token path out of order: %v", final)
		}
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	n := NewNetwork(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Comm(0).Send(5, 0, nil, 0)
}

func TestRecvBlocksUntilSend(t *testing.T) {
	n := NewNetwork(2)
	c0, c1 := n.Comm(0), n.Comm(1)
	got := make(chan struct{})
	go func() {
		c1.Recv(0)
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("Recv returned before Send")
	case <-time.After(10 * time.Millisecond):
	}
	c0.Send(1, 0, nil, 0)
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("Recv never returned")
	}
}

func TestReduceSum(t *testing.T) {
	const p = 4
	n := NewNetwork(p)
	out := make([][]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := n.Comm(rank)
			contrib := []float64{float64(rank), 1}
			out[rank] = c.Reduce(2, 5, contrib, OpSum)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if r == 2 {
			if out[r][0] != 0+1+2+3 || out[r][1] != 4 {
				t.Fatalf("root reduce = %v", out[r])
			}
		} else if out[r] != nil {
			t.Fatalf("non-root rank %d got %v", r, out[r])
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	const p = 5
	n := NewNetwork(p)
	out := make([][]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := n.Comm(rank)
			out[rank] = c.AllReduce(6, []float64{float64(rank * rank)}, OpMax)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if out[r][0] != 16 {
			t.Fatalf("rank %d allreduce = %v, want 16", r, out[r])
		}
	}
}
