package tcp

import (
	"bytes"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// Failure signaling over real sockets: a peer's connection dropping without
// a bye frame must become a frameDown broadcast to the survivors — never a
// panic in a survivor's receive path — and hub frames addressed to the
// departed rank are dropped and counted.

func TestConnectionLossBecomesPeerDown(t *testing.T) {
	fab, err := NewLoopbackFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	// Rank 0 forwards a message, then its process "dies": the connection is
	// severed with no bye frame.
	fab.Comm(0).Send(2, 7, "forwarded", 0)
	fab.(cluster.Killer).Kill(0)

	// Per-sender FIFO: rank 2 sees the forward before the death.
	m, err := fab.Comm(2).RecvEvent(cluster.AnySource, cluster.AnyTag, 10*time.Second)
	if err != nil || m.Payload != "forwarded" {
		t.Fatalf("first event = %v %v", m, err)
	}
	var pd *cluster.PeerDownError
	if _, err := fab.Comm(2).RecvEvent(cluster.AnySource, cluster.AnyTag, 10*time.Second); !errors.As(err, &pd) || pd.Rank != 0 {
		t.Fatalf("second event = %v, want PeerDown(0)", err)
	}
	if _, err := fab.Comm(1).RecvEvent(cluster.AnySource, cluster.AnyTag, 10*time.Second); !errors.As(err, &pd) || pd.Rank != 0 {
		t.Fatalf("rank 1 event = %v, want PeerDown(0)", err)
	}
}

// TestSendToDepartedPeerNeverPanics pins the satellite fixes: a survivor
// sending to a dead rank must not crash (the old receive path panicked on
// connection loss) and the hub must count the frames it had to drop.
func TestSendToDepartedPeerNeverPanics(t *testing.T) {
	fab, err := NewLoopbackFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	f := fab.(interface {
		cluster.Killer
		Stats() cluster.Stats
	})
	f.Kill(1)
	var pd *cluster.PeerDownError
	if _, err := fab.Comm(0).RecvEvent(cluster.AnySource, cluster.AnyTag, 10*time.Second); !errors.As(err, &pd) || pd.Rank != 1 {
		t.Fatalf("death not observed: %v", err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		fab.Comm(0).Send(1, 3, i, 8) // must neither panic nor block
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Stats().Dropped < n {
		if time.Now().After(deadline) {
			t.Fatalf("hub counted %d dropped frames, want %d", f.Stats().Dropped, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The survivor must remain fully usable.
	fab.Comm(0).Send(0, 9, "self", 0)
	if m, err := fab.Comm(0).RecvEvent(0, 9, 10*time.Second); err != nil || m.Payload != "self" {
		t.Fatalf("survivor unusable after peer loss: %v %v", m, err)
	}
}

func TestHubDroppedFramesAccessor(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if hub.DroppedFrames() != 0 {
		t.Fatalf("fresh hub reports %d dropped frames", hub.DroppedFrames())
	}
}

// TestFrameDownRoundTrip extends the frame codec coverage to the failure
// kind introduced for unannounced death signaling.
func TestFrameDownRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := &frame{Kind: frameDown, Rank: 4}
	if err := writeFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != frameDown || got.Rank != 4 {
		t.Fatalf("frameDown round trip: %+v", got)
	}
}

// TestFrameDownGolden pins the wire encoding of the new frame kind, the same
// back-compat contract as TestFrameGolden: committed bytes must keep
// decoding, or mixed-version clusters stop talking.
func TestFrameDownGolden(t *testing.T) {
	path := filepath.Join("testdata", "down_frame.golden.hex")
	if *update {
		raw, err := encodeFrame(&frame{Kind: frameDown, Rank: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(raw)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	hexBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run TestFrameDownGolden -update): %v", err)
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(hexBytes)))
	if err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("committed frameDown no longer decodes: %v", err)
	}
	if f.Kind != frameDown || f.Rank != 2 {
		t.Fatalf("committed frameDown decodes to %+v", f)
	}
}
