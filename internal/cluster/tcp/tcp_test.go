package tcp

import (
	"bytes"
	"encoding/hex"
	"flag"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

var update = flag.Bool("update", false, "rewrite golden files")

// ---------------------------------------------------------------------------
// frame codec
// ---------------------------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	payload, err := encodePayload([]float64{1.5, -2, 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []*frame{
		{Kind: frameHello, Rank: 3},
		{Kind: frameStart, Rank: 3, Size: 8},
		{Kind: frameData, From: 1, To: 2, Tag: 7, Bytes: 24, Payload: payload},
		{Kind: frameBye, From: 5},
	}
	var buf bytes.Buffer
	for _, f := range cases {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range cases {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.From != want.From || got.To != want.To ||
			got.Tag != want.Tag || got.Bytes != want.Bytes || got.Rank != want.Rank ||
			got.Size != want.Size || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame round trip: got %+v want %+v", got, want)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after frames", buf.Len())
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	for _, v := range []any{nil, 42, "hello", []int{1, 2, 3}, []float64{0.5}, true} {
		b, err := encodePayload(v)
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		back, err := decodePayload(b)
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		switch want := v.(type) {
		case []int:
			got := back.([]int)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("slice payload corrupted: %v vs %v", got, want)
				}
			}
		case []float64:
			if back.([]float64)[0] != want[0] {
				t.Fatalf("payload corrupted: %v", back)
			}
		default:
			if back != v {
				t.Fatalf("payload %T round trip: got %v want %v", v, back, v)
			}
		}
	}
}

// TestFrameGolden decodes a data frame captured when the wire format was
// defined. Gob descriptor IDs are assigned in process-global first-use
// order, so encoded bytes are not byte-stable across runs — what must hold
// is that today's binary still decodes the committed frame: that is what
// keeps mixed-version clusters talking. -update re-captures the frame.
func TestFrameGolden(t *testing.T) {
	path := filepath.Join("testdata", "data_frame.golden.hex")
	if *update {
		payload, err := encodePayload("token")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := encodeFrame(&frame{Kind: frameData, From: 1, To: 2, Tag: 9, Bytes: 40, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(raw)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	hexBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run TestFrameGolden -update): %v", err)
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(hexBytes)))
	if err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("committed frame no longer decodes — the wire format drifted incompatibly: %v", err)
	}
	if f.Kind != frameData || f.From != 1 || f.To != 2 || f.Tag != 9 || f.Bytes != 40 {
		t.Fatalf("committed frame decodes to different envelope: %+v", f)
	}
	v, err := decodePayload(f.Payload)
	if err != nil {
		t.Fatalf("committed payload no longer decodes: %v", err)
	}
	if v != "token" {
		t.Fatalf("committed payload decodes to %v", v)
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("oversized frame length must be rejected")
	}
}

// ---------------------------------------------------------------------------
// rendezvous & shutdown
// ---------------------------------------------------------------------------

func TestRendezvousRejectsBadRank(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if _, err := Dial(hub.Addr(), 7); err == nil {
		t.Fatal("out-of-range rank must be rejected at rendezvous")
	}
}

func TestRendezvousRejectsDuplicateRank(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	// Rank 0 joins (rendezvous incomplete, so Dial would block; drive the
	// hello by hand).
	first := make(chan error, 1)
	go func() {
		_, err := Dial(hub.Addr(), 0)
		first <- err
	}()
	time.Sleep(50 * time.Millisecond)
	dupDone := make(chan error, 1)
	go func() {
		_, err := Dial(hub.Addr(), 0)
		dupDone <- err
	}()
	select {
	case err := <-dupDone:
		if err == nil {
			t.Fatal("duplicate rank must be rejected")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate dial neither rejected nor timed out")
	}
	hub.Close() // unblocks the legitimate rank-0 dial
	<-first
}

func TestRendezvousRecoversFromEarlyDisconnect(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	// A process claims rank 0, then dies before the cluster assembles. The
	// hub must unclaim the rank or the cluster can never start.
	conn, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, &frame{Kind: frameHello, Rank: 0}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the hub register the claim
	conn.Close()
	time.Sleep(100 * time.Millisecond) // let the hub notice the death

	// A restarted rank 0 plus rank 1 must now rendezvous successfully.
	errs := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			ep, err := Dial(hub.Addr(), r)
			if err == nil {
				defer ep.Close()
			}
			errs <- err
		}(r)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("rendezvous after early disconnect: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("cluster wedged: dead rendezvous claim was never released")
		}
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	fab, err := NewLoopbackFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	c0, c1 := fab.Comm(0), fab.Comm(1)
	done := make(chan cluster.Message, 1)
	go func() { done <- c1.Recv(1) }()
	c0.Send(1, 1, "last words", 10)
	m := <-done
	if m.Payload.(string) != "last words" {
		t.Fatalf("message lost: %+v", m)
	}
	// Rank 0 says bye; rank 1 must remain usable with rank 0 gone.
	c0.Close()
	c1.Send(1, 2, "self", 4) // self-route through the hub still works
	if m := c1.Recv(2); m.Payload.(string) != "self" {
		t.Fatalf("fabric unusable after a peer departed: %+v", m)
	}
}
