// Package tcp is the multi-process transport backend for internal/cluster:
// each rank runs in its own OS process and exchanges length-prefixed gob
// frames over TCP. A Hub plays the role of the cluster's rendezvous point
// and message router: every rank dials the hub, claims its rank with a hello
// frame, and blocks until all ranks have joined (the rendezvous phase); the
// hub then releases everyone and routes data frames between ranks with
// per-sender FIFO ordering, exactly the delivery contract the in-process
// backend provides — the conformance suite in internal/cluster holds both to
// it.
//
// Backpressure is physical: a rank that stops draining its inbox stops
// reading its socket, TCP flow control stalls the hub's writes to it, and
// senders eventually block in Deliver — the same bounded-buffering semantics
// as the in-process channel fabric.
package tcp

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// rendezvousTimeout bounds how long a dialling rank waits for the cluster to
// assemble before giving up.
const rendezvousTimeout = 60 * time.Second

// ---------------------------------------------------------------------------
// hub: rendezvous + router
// ---------------------------------------------------------------------------

// Hub is the rendezvous server and frame router for one cluster. Typically
// the coordinator process runs the Hub and dials its own rank over loopback,
// while worker processes dial from outside.
type Hub struct {
	ln   net.Listener
	size int

	mu      sync.Mutex
	peers   []*hubPeer // by rank; all non-nil once started
	joined  int
	gone    int
	allGone chan struct{} // closed once every rank has departed
	started bool
	closed  bool

	dropped atomic.Int64 // frames discarded because their destination left
}

type hubPeer struct {
	hub  *Hub
	rank int
	conn net.Conn
	br   *bufio.Reader

	wmu  sync.Mutex
	bw   *bufio.Writer
	gone bool
}

// send routes one frame to this peer, preserving the caller's order. Frames
// to a departed peer are dropped and counted (the rank said bye or its
// connection died). It returns false when the frame was not delivered.
func (p *hubPeer) send(f *frame) bool {
	p.wmu.Lock()
	if p.gone {
		p.wmu.Unlock()
		p.hub.noteDrop(f)
		return false
	}
	err := writeFrame(p.bw, f)
	if err == nil {
		err = p.bw.Flush()
	}
	if err != nil {
		p.gone = true
		p.wmu.Unlock()
		p.conn.Close()
		p.hub.noteDrop(f)
		// A write failure means the connection died under us — unannounced.
		p.hub.peerGone(p, false)
		return false
	}
	p.wmu.Unlock()
	return true
}

// noteDrop counts an undeliverable application frame. Control frames (down
// notifications racing a second departure) are not traffic and stay out of
// the counter.
func (h *Hub) noteDrop(f *frame) {
	if f.Kind == frameData {
		h.dropped.Add(1)
	}
}

// markGone retires this peer. graceful distinguishes a bye frame from a
// connection that died under us; only the latter is broadcast to the
// survivors as a peer-down event (unannounced death, paper §4.3).
func (p *hubPeer) markGone(graceful bool) {
	p.wmu.Lock()
	first := !p.gone
	p.gone = true
	p.wmu.Unlock()
	p.conn.Close()
	if first {
		p.hub.peerGone(p, graceful)
	}
}

// peerGone records a departure and, for unannounced ones after the cluster
// started, broadcasts frameDown to the surviving ranks. Called at most once
// per peer (guarded by p.gone).
func (h *Hub) peerGone(p *hubPeer, graceful bool) {
	h.mu.Lock()
	h.gone++
	if h.gone == h.size && h.allGone != nil {
		close(h.allGone)
		h.allGone = nil
	}
	broadcast := !graceful && h.started && !h.closed
	var survivors []*hubPeer
	if broadcast {
		for _, q := range h.peers {
			if q != nil && q != p {
				survivors = append(survivors, q)
			}
		}
	}
	h.mu.Unlock()
	for _, q := range survivors {
		q.send(&frame{Kind: frameDown, Rank: p.rank})
	}
}

// DroppedFrames returns how many frames the hub discarded because their
// destination rank had already departed.
func (h *Hub) DroppedFrames() int64 { return h.dropped.Load() }

// NewHub listens on addr (e.g. "127.0.0.1:0") for a cluster of size ranks
// and serves the rendezvous and routing protocol in the background.
func NewHub(addr string, size int) (*Hub, error) {
	if size <= 0 {
		return nil, fmt.Errorf("tcp: need at least one rank, got %d", size)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: hub listen: %w", err)
	}
	h := &Hub{ln: ln, size: size, peers: make([]*hubPeer, size), allGone: make(chan struct{})}
	go h.acceptLoop()
	return h, nil
}

// Wait blocks until every rank has departed (bye frame or connection loss),
// or the timeout elapses. A coordinator calls this between the protocol's
// end and Close, so shutdown messages still in the hub are routed before the
// fabric dies.
func (h *Hub) Wait(timeout time.Duration) error {
	h.mu.Lock()
	ch := h.allGone
	h.mu.Unlock()
	if ch == nil {
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("tcp: %d of %d ranks still attached after %v", h.size-h.goneCount(), h.size, timeout)
	}
}

func (h *Hub) goneCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gone
}

// Addr returns the hub's listen address, to hand to Dial/Connect.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Close tears the hub down: the listener and every peer connection are
// closed. In-flight frames may be lost; close the hub only after the ranks
// have finished their protocol.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	peers := append([]*hubPeer(nil), h.peers...)
	h.mu.Unlock()
	err := h.ln.Close()
	for _, p := range peers {
		if p != nil {
			p.markGone(true)
		}
	}
	return err
}

func (h *Hub) acceptLoop() {
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go h.admit(conn)
	}
}

// admit performs the hub side of the rendezvous for one connection: read the
// hello, claim the rank, and — once the cluster is complete — release every
// rank with a start frame and begin routing.
func (h *Hub) admit(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(rendezvousTimeout))
	p := &hubPeer{hub: h, conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	hello, err := readFrame(p.br)
	if err != nil || hello.Kind != frameHello {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})

	h.mu.Lock()
	rank := hello.Rank
	if h.closed || rank < 0 || rank >= h.size || h.peers[rank] != nil {
		h.mu.Unlock()
		conn.Close()
		return
	}
	p.rank = rank
	h.peers[rank] = p
	h.joined++
	complete := h.joined == h.size && !h.started
	if complete {
		h.started = true
	}
	h.mu.Unlock()

	if complete {
		for r, peer := range h.peers {
			peer.send(&frame{Kind: frameStart, Rank: r, Size: h.size})
		}
	}
	h.servePeer(p, rank)
}

// servePeer is a peer's dedicated reader for its whole lifetime. Healthy
// ranks send nothing until the frameStart release, so a first-read failure
// before the cluster started means the rank died mid-rendezvous: unclaim it,
// so a restarted process can take the rank instead of the cluster wedging on
// a permanently-claimed slot. Once bytes flow, route frames until bye/EOF.
func (h *Hub) servePeer(p *hubPeer, rank int) {
	if _, err := p.br.Peek(1); err != nil {
		h.mu.Lock()
		if !h.started && h.peers[rank] == p {
			h.peers[rank] = nil
			h.joined--
			h.mu.Unlock()
			p.conn.Close()
			return
		}
		h.mu.Unlock()
		p.markGone(false)
		return
	}
	h.route(p)
}

// route forwards one peer's outgoing frames to their destinations, in order.
func (h *Hub) route(p *hubPeer) {
	for {
		f, err := readFrame(p.br)
		if err != nil {
			p.markGone(false)
			return
		}
		switch f.Kind {
		case frameData:
			if f.To < 0 || f.To >= h.size {
				continue
			}
			h.mu.Lock()
			dst := h.peers[f.To]
			started := h.started
			h.mu.Unlock()
			if dst == nil || !started {
				h.noteDrop(f) // unclaimed rank, or data jumped the rendezvous
				continue
			}
			dst.send(f)
		case frameBye:
			p.markGone(true)
			return
		}
	}
}

// ---------------------------------------------------------------------------
// endpoint: one rank's side of the connection
// ---------------------------------------------------------------------------

// Endpoint is a rank's TCP attachment, implementing cluster.Endpoint.
type Endpoint struct {
	rank, size int
	conn       net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer

	inbox  chan cluster.Message
	failed chan struct{} // closed when the read loop dies
	done   chan struct{} // closed by Close

	closeOnce sync.Once
	readErr   error
}

// Dial connects rank to the hub at addr and blocks until every rank has
// joined (the rendezvous phase), then returns the live endpoint.
func Dial(addr string, rank int, opts ...cluster.Option) (*Endpoint, error) {
	o := cluster.ResolveOptions(opts...)
	conn, err := net.DialTimeout("tcp", addr, rendezvousTimeout)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial hub %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(rendezvousTimeout))
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, &frame{Kind: frameHello, Rank: rank}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcp: hello: %w", err)
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcp: hello: %w", err)
	}
	br := bufio.NewReader(conn)
	start, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcp: rendezvous (is the hub up and every rank joining?): %w", err)
	}
	if start.Kind != frameStart || start.Rank != rank {
		conn.Close()
		return nil, fmt.Errorf("tcp: bad rendezvous release %+v for rank %d", start, rank)
	}
	conn.SetDeadline(time.Time{})
	ep := &Endpoint{
		rank: rank, size: start.Size, conn: conn, bw: bw,
		inbox:  make(chan cluster.Message, o.InboxCapacity),
		failed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go ep.readLoop(br)
	return ep, nil
}

// Connect is Dial wrapped in a communicator — the one-call entry point for a
// worker process.
func Connect(addr string, rank int, opts ...cluster.Option) (*cluster.Comm, error) {
	ep, err := Dial(addr, rank, opts...)
	if err != nil {
		return nil, err
	}
	return cluster.NewComm(ep), nil
}

func (ep *Endpoint) readLoop(br *bufio.Reader) {
	defer close(ep.failed)
	for {
		f, err := readFrame(br)
		if err != nil {
			ep.readErr = err
			return
		}
		var m cluster.Message
		switch f.Kind {
		case frameData:
			payload, err := decodePayload(f.Payload)
			if err != nil {
				ep.readErr = err
				return
			}
			m = cluster.Message{From: f.From, Tag: f.Tag, Payload: payload, Bytes: f.Bytes}
		case frameDown:
			// The hub saw f.Rank's connection drop unannounced. Surface it
			// in-band so FIFO order with the peer's final frames holds.
			m = cluster.PeerDownMessage(f.Rank)
		default:
			continue
		}
		select {
		case ep.inbox <- m:
		case <-ep.done:
			return
		}
	}
}

// Rank implements cluster.Endpoint.
func (ep *Endpoint) Rank() int { return ep.rank }

// Size implements cluster.Endpoint.
func (ep *Endpoint) Size() int { return ep.size }

// Deliver implements cluster.Endpoint: the message is gob-encoded and framed
// to the hub, which routes it to rank `to`. A write failure is NOT fatal: the
// connection is closed and the loss surfaces as a LinkError from Next, so a
// surviving worker never crashes because the hub (or its own link) died
// mid-send. Encoding failures are still programmer errors and panic.
func (ep *Endpoint) Deliver(to int, m cluster.Message) {
	payload, err := encodePayload(m.Payload)
	if err != nil {
		panic(err.Error())
	}
	f := &frame{Kind: frameData, From: m.From, To: to, Tag: m.Tag, Bytes: m.Bytes, Payload: payload}
	ep.wmu.Lock()
	err = writeFrame(ep.bw, f)
	if err == nil {
		err = ep.bw.Flush()
	}
	ep.wmu.Unlock()
	if err != nil {
		// Kill the socket; the read loop notices and closes ep.failed.
		ep.conn.Close()
	}
}

// Next implements cluster.Endpoint. Messages already delivered are drained
// before a dead connection is reported as a LinkError.
func (ep *Endpoint) Next(timeout time.Duration) (cluster.Message, error) {
	select {
	case m := <-ep.inbox:
		return m, nil
	default:
	}
	var timerC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timerC = t.C
	}
	select {
	case m := <-ep.inbox:
		return m, nil
	case <-timerC:
		return cluster.Message{}, cluster.ErrRecvTimeout
	case <-ep.failed:
		// One last drain: the read loop may have buffered messages before
		// dying.
		select {
		case m := <-ep.inbox:
			return m, nil
		default:
		}
		return cluster.Message{}, &cluster.LinkError{
			Cause: fmt.Errorf("tcp: rank %d: connection lost while receiving: %v", ep.rank, ep.readErr),
		}
	}
}

// Abort implements cluster.Endpoint: the connection is closed with no bye
// frame, so the hub treats this rank as unannounced death and broadcasts a
// peer-down event to the survivors.
func (ep *Endpoint) Abort() {
	ep.closeOnce.Do(func() {
		close(ep.done)
		ep.conn.Close()
	})
}

// TryNext implements cluster.Endpoint.
func (ep *Endpoint) TryNext() (cluster.Message, bool) {
	select {
	case m := <-ep.inbox:
		return m, true
	default:
		return cluster.Message{}, false
	}
}

// Close implements cluster.Endpoint: a bye frame tells the hub this rank is
// done (graceful shutdown), then the connection is closed.
func (ep *Endpoint) Close() error {
	ep.closeOnce.Do(func() {
		close(ep.done)
		ep.wmu.Lock()
		if writeFrame(ep.bw, &frame{Kind: frameBye, From: ep.rank}) == nil {
			ep.bw.Flush()
		}
		ep.wmu.Unlock()
		ep.conn.Close()
	})
	return nil
}

var _ cluster.Endpoint = (*Endpoint)(nil)

// ---------------------------------------------------------------------------
// registered fabric (conformance entry point)
// ---------------------------------------------------------------------------

type fabric struct {
	hub   *Hub
	eps   []*Endpoint
	comms []*cluster.Comm
}

// NewLoopbackFabric assembles a complete p-rank cluster over loopback TCP in
// one process: a hub plus one dialled endpoint per rank. Every message still
// crosses real sockets and the full gob wire format; only process isolation
// is elided. It backs the "tcp" entry in the transport registry so the
// conformance suite exercises the wire path.
func NewLoopbackFabric(p int, opts ...cluster.Option) (cluster.Fabric, error) {
	hub, err := NewHub("127.0.0.1:0", p)
	if err != nil {
		return nil, err
	}
	eps := make([]*Endpoint, p)
	comms := make([]*cluster.Comm, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eps[r], errs[r] = Dial(hub.Addr(), r, opts...)
			if errs[r] == nil {
				comms[r] = cluster.NewComm(eps[r])
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			hub.Close()
			return nil, err
		}
	}
	return &fabric{hub: hub, eps: eps, comms: comms}, nil
}

func (f *fabric) Size() int { return len(f.comms) }

func (f *fabric) Comm(rank int) *cluster.Comm { return f.comms[rank] }

// Endpoint exposes rank's raw endpoint (cluster.EndpointFabric).
func (f *fabric) Endpoint(rank int) cluster.Endpoint { return f.eps[rank] }

// Kill severs rank's connection without a bye (cluster.Killer): the hub
// broadcasts the death to the survivors.
func (f *fabric) Kill(rank int) { f.eps[rank].Abort() }

func (f *fabric) Stats() cluster.Stats {
	var out cluster.Stats
	for _, c := range f.comms {
		s := c.Stats()
		out.Messages += s.Messages
		out.Bytes += s.Bytes
	}
	out.Dropped = f.hub.DroppedFrames()
	return out
}

func (f *fabric) Close() error {
	for _, c := range f.comms {
		c.Close()
	}
	return f.hub.Close()
}

func init() {
	cluster.RegisterTransport("tcp", NewLoopbackFabric)
}
