package tcp

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// Wire format: every frame is a 4-byte big-endian length followed by a
// standalone gob stream encoding one frame struct. Each frame gets a fresh
// gob encoder so frames are self-contained — the hub can route them without
// holding per-connection codec state, and a reconnecting reader can resume
// at any frame boundary. Data payloads are in turn a nested standalone gob
// blob (payloadBox), so the hub never needs the application's gob type
// registrations to route.

// maxFrameBytes caps a single frame (64 MiB) so a corrupted length prefix
// cannot make a reader allocate unboundedly.
const maxFrameBytes = 64 << 20

type frameKind uint8

const (
	// frameHello is the first frame on a dialled connection: it claims a rank.
	frameHello frameKind = iota + 1
	// frameStart is the hub's rendezvous release once every rank has joined.
	frameStart
	// frameData carries one cluster.Message between ranks.
	frameData
	// frameBye announces a graceful endpoint shutdown.
	frameBye
	// frameDown is broadcast by the hub to surviving ranks when a peer's
	// connection drops without a bye (unannounced death). Rank carries the
	// dead rank.
	frameDown
)

type frame struct {
	Kind frameKind

	// frameData envelope.
	From, To, Tag, Bytes int
	Payload              []byte

	// frameHello / frameStart.
	Rank, Size int
}

func encodeFrame(f *frame) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(f); err != nil {
		return nil, fmt.Errorf("tcp: encode frame: %w", err)
	}
	if body.Len() > maxFrameBytes {
		return nil, fmt.Errorf("tcp: frame of %d bytes exceeds limit", body.Len())
	}
	out := make([]byte, 4+body.Len())
	binary.BigEndian.PutUint32(out[:4], uint32(body.Len()))
	copy(out[4:], body.Bytes())
	return out, nil
}

func writeFrame(w io.Writer, f *frame) error {
	raw, err := encodeFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

func readFrame(r io.Reader) (*frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("tcp: frame length %d exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	f := &frame{}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(f); err != nil {
		return nil, fmt.Errorf("tcp: decode frame: %w", err)
	}
	return f, nil
}

// payloadBox wraps an arbitrary payload so gob can encode the interface
// value. Concrete payload types must be gob-registered by both ends (the
// common builtins below are pre-registered; application packages register
// their own message structs in init).
type payloadBox struct{ V any }

func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&payloadBox{V: v}); err != nil {
		return nil, fmt.Errorf("tcp: encode payload %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

func decodePayload(b []byte) (any, error) {
	var box payloadBox
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&box); err != nil {
		return nil, fmt.Errorf("tcp: decode payload: %w", err)
	}
	return box.V, nil
}

func init() {
	// Builtins commonly sent as bare payloads. Named struct payloads are
	// registered by the packages that define them.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register(false)
	gob.Register("")
	gob.Register([]int(nil))
	gob.Register([]float64(nil))
	gob.Register([]byte(nil))
	gob.Register([]string(nil))
	gob.Register([]any(nil))
	gob.Register(map[string]any(nil))
}
