package cluster

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Failure signaling (paper §4.3): ParMAC tolerates machine death because a
// dead machine loses only the submodels it held. For that to work against
// *unannounced* death (SIGKILL, partition), the fabric itself must turn
// "this rank's connection dropped" into an event the survivors can observe,
// instead of a panic or an eternally blocked Recv. Backends synthesize a
// peer-down message on the reserved tagPeerDown tag and deliver it through
// the normal inbox, so per-sender FIFO guarantees a peer's final real
// messages are drained before its death is reported.

// tagPeerDown is the reserved internal tag backends use to signal that a
// rank left the fabric unannounced. It is invisible to AnyTag wildcards.
const tagPeerDown = math.MinInt + 2

// PeerDownMessage is the event a backend injects into surviving inboxes when
// rank's attachment drops without a goodbye. From identifies the dead rank.
func PeerDownMessage(rank int) Message {
	return Message{From: rank, Tag: tagPeerDown}
}

// ErrRecvTimeout is returned by RecvEvent when the deadline passes before a
// matching message (or failure event) arrives.
var ErrRecvTimeout = errors.New("cluster: receive deadline exceeded")

// PeerDownError reports that a peer dropped off the fabric unannounced. Each
// peer's death is reported at most once per Comm; use Down to re-query.
type PeerDownError struct{ Rank int }

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("cluster: rank %d is down", e.Rank)
}

// LinkError reports that this endpoint's own attachment to the fabric is
// gone (its connection broke, or the rank was killed). It is terminal: every
// subsequent receive fails the same way.
type LinkError struct{ Cause error }

func (e *LinkError) Error() string {
	return fmt.Sprintf("cluster: local fabric link lost: %v", e.Cause)
}

func (e *LinkError) Unwrap() error { return e.Cause }

// Killer is implemented by fabrics that can sever one rank's attachment
// unannounced, simulating process death: the killed rank's receives fail
// with a LinkError, frames addressed to it are dropped (and counted in
// Stats.Dropped), and every surviving rank observes a PeerDownError.
type Killer interface {
	Kill(rank int)
}

// EndpointFabric is implemented by fabrics that expose their raw transport
// endpoints, so wrappers (the chaos fabric) can interpose on delivery.
type EndpointFabric interface {
	Endpoint(rank int) Endpoint
}

// Down reports whether rank's death has been observed by this Comm. It only
// reflects peer-down events already drained from the transport; it does not
// poll the network.
func (c *Comm) Down(rank int) bool { return c.down[rank] }

// PollDown drains any immediately available messages and returns the ranks
// whose deaths became known since the last call (each rank is reported
// exactly once across PollDown and RecvEvent). Non-matching application
// messages are queued as usual.
func (c *Comm) PollDown() []int {
	for {
		m, ok := c.ep.TryNext()
		if !ok {
			break
		}
		if !c.notePeerDown(m) {
			c.pending = append(c.pending, m)
		}
	}
	out := c.downQueue
	c.downQueue = nil
	return out
}

// Abort severs this rank's attachment without the goodbye of Close: peers
// observe an unannounced death. Used by failure injection; idempotent.
func (c *Comm) Abort() { c.ep.Abort() }

// RecvEvent is the failure-aware receive. It waits up to timeout (forever if
// timeout <= 0) for a message matching (from, tag) and returns one of:
//
//   - the matching message with a nil error;
//   - a *PeerDownError when a peer's unannounced death is observed
//     (each peer's death is reported at most once per Comm);
//   - ErrRecvTimeout when the deadline passes;
//   - a *LinkError when this endpoint's own attachment is gone.
//
// Non-matching application messages arriving meanwhile are queued for later
// receives, exactly as in RecvFrom.
func (c *Comm) RecvEvent(from, tag int, timeout time.Duration) (Message, error) {
	if m, ok := c.takePending(from, tag); ok {
		return m, nil
	}
	if len(c.downQueue) > 0 {
		return Message{}, c.popDown()
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		wait := time.Duration(-1)
		if timeout > 0 {
			wait = time.Until(deadline)
			if wait <= 0 {
				return Message{}, ErrRecvTimeout
			}
		}
		m, err := c.ep.Next(wait)
		if err != nil {
			if errors.Is(err, ErrRecvTimeout) {
				return Message{}, ErrRecvTimeout
			}
			var le *LinkError
			if !errors.As(err, &le) {
				err = &LinkError{Cause: err}
			}
			return Message{}, err
		}
		if c.notePeerDown(m) {
			return Message{}, c.popDown()
		}
		if matches(m, from, tag) {
			return m, nil
		}
		c.pending = append(c.pending, m)
	}
}

// notePeerDown records m if it is a peer-down event, returning true when the
// message was consumed (whether newly recorded or a duplicate).
func (c *Comm) notePeerDown(m Message) bool {
	if m.Tag != tagPeerDown {
		return false
	}
	if c.down == nil {
		c.down = make(map[int]bool)
	}
	if !c.down[m.From] {
		c.down[m.From] = true
		c.downQueue = append(c.downQueue, m.From)
	}
	return true
}

func (c *Comm) popDown() *PeerDownError {
	r := c.downQueue[0]
	c.downQueue = c.downQueue[1:]
	return &PeerDownError{Rank: r}
}
