// Package cluster is the message-passing fabric that replaces MPI in this
// reproduction (paper §7 and appendix B). Each "machine" is a rank with an
// inbox; sends are buffered and non-blocking like MPI_Bsend, receives block
// like MPI_Recv and support tag filtering and MPI_ANY_SOURCE/ANY_TAG
// wildcards. A cyclic barrier mirrors MPI_Barrier, and Bcast/AllGather mirror
// the collectives listed in the paper's appendix B.
//
// The fabric is pluggable: a Comm implements all of the above generically on
// top of a raw transport Endpoint, so every backend — the in-process channel
// Network here, the multi-process TCP backend in cluster/tcp — shares one
// semantics, enforced by the cross-backend conformance suite
// (conformance_test.go).
//
// Message and byte counters make the communication volume observable, which
// is what the speedup analysis of §5 is about: ParMAC sends the entire model
// only e+1 times per iteration and never sends data or coordinates.
package cluster

import (
	"fmt"
	"math"
	"sync/atomic"
)

// AnyTag matches any non-internal message tag in Recv (MPI_ANY_TAG).
const AnyTag = -1

// AnySource matches any sender in RecvFrom (MPI_ANY_SOURCE).
const AnySource = -1

// Internal tags used by Comm itself (barrier protocol). They live at the
// bottom of the tag space and are invisible to AnyTag wildcards, so they can
// never be confused with application traffic.
const (
	internalTagCeil   = math.MinInt + 16
	tagBarrierArrive  = math.MinInt
	tagBarrierRelease = math.MinInt + 1
)

func isInternalTag(tag int) bool { return tag < internalTagCeil }

// Message is a delivered payload with its envelope.
type Message struct {
	From    int
	Tag     int
	Payload any
	Bytes   int // accounted size of the payload
}

// Stats is a snapshot of communication counters.
type Stats struct {
	Messages int64
	Bytes    int64
	// Dropped counts frames the fabric discarded because their destination
	// had already left (dead rank, departed peer). Filled at fabric level;
	// a single Comm's snapshot reports 0.
	Dropped int64
}

// Comm is one rank's communicator: the transport endpoint plus a local queue
// of messages that were received but did not match the requested tag (MPI
// implementations do the same internally to honour tag matching). Each Comm
// must be used by a single goroutine (as one MPI process would).
type Comm struct {
	ep      Endpoint
	pending []Message

	// Peer-down bookkeeping (see failure.go): ranks whose unannounced death
	// this Comm has observed, and the not-yet-reported subset.
	down      map[int]bool
	downQueue []int

	sentMsgs  atomic.Int64
	sentBytes atomic.Int64
}

// NewComm wraps a transport endpoint in a communicator. Backends call this;
// application code obtains Comms from a Network, a Fabric or tcp.Connect.
func NewComm(ep Endpoint) *Comm { return &Comm{ep: ep} }

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.ep.Rank() }

// Size returns the fabric size.
func (c *Comm) Size() int { return c.ep.Size() }

// Close releases the underlying endpoint. Only call once the rank is done
// communicating; messages still in flight to this rank may be dropped.
func (c *Comm) Close() error { return c.ep.Close() }

// Stats returns how many messages and payload bytes this rank has sent.
func (c *Comm) Stats() Stats {
	return Stats{Messages: c.sentMsgs.Load(), Bytes: c.sentBytes.Load()}
}

// Send delivers payload to rank `to` with the given tag, accounting `bytes`
// toward the communication counters. Like MPI_Bsend it does not wait for the
// receiver; it only blocks if the destination inbox is full (bounded
// buffering).
func (c *Comm) Send(to, tag int, payload any, bytes int) {
	if to < 0 || to >= c.ep.Size() {
		panic(fmt.Sprintf("cluster: Send to invalid rank %d", to))
	}
	if isInternalTag(tag) {
		panic(fmt.Sprintf("cluster: tag %d is reserved", tag))
	}
	c.sentMsgs.Add(1)
	c.sentBytes.Add(int64(bytes))
	c.ep.Deliver(to, Message{From: c.ep.Rank(), Tag: tag, Payload: payload, Bytes: bytes})
}

// Recv blocks until a message with the given tag (or any, with AnyTag)
// arrives and returns it. Messages with other tags are queued for later
// Recv calls, preserving arrival order per tag.
func (c *Comm) Recv(tag int) Message { return c.RecvFrom(AnySource, tag) }

// RecvFrom is Recv restricted to a particular sender (AnySource for any).
//
// RecvFrom keeps the classic MPI blocking contract: it waits forever and
// panics if this rank's own fabric link dies. Peer-down events observed
// while waiting are recorded (see Down/PollDown) and skipped. Failure-aware
// code — anything that must survive a dead peer — uses RecvEvent instead.
func (c *Comm) RecvFrom(from, tag int) Message {
	if m, ok := c.takePending(from, tag); ok {
		return m
	}
	for {
		m := c.nextBlocking()
		if c.notePeerDown(m) {
			continue
		}
		if matches(m, from, tag) {
			return m
		}
		c.pending = append(c.pending, m)
	}
}

// nextBlocking pulls the next transport message with no deadline, panicking
// on link loss (the legacy Recv contract; RecvEvent surfaces it as an error).
func (c *Comm) nextBlocking() Message {
	m, err := c.ep.Next(-1)
	if err != nil {
		panic(fmt.Sprintf("cluster: rank %d: %v", c.ep.Rank(), err))
	}
	return m
}

// TryRecv returns a matching message if one is immediately available.
func (c *Comm) TryRecv(tag int) (Message, bool) {
	if m, ok := c.takePending(AnySource, tag); ok {
		return m, true
	}
	for {
		m, ok := c.ep.TryNext()
		if !ok {
			return Message{}, false
		}
		if c.notePeerDown(m) {
			continue
		}
		if matches(m, AnySource, tag) {
			return m, true
		}
		c.pending = append(c.pending, m)
	}
}

func (c *Comm) takePending(from, tag int) (Message, bool) {
	for i, m := range c.pending {
		if matches(m, from, tag) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

func matches(m Message, from, tag int) bool {
	if tag == AnyTag {
		if isInternalTag(m.Tag) {
			return false
		}
	} else if m.Tag != tag {
		return false
	}
	return from == AnySource || m.From == from
}

// Barrier blocks until every rank has called it (MPI_Barrier). It is cyclic:
// it can be reused any number of times. The protocol is a counting barrier
// over the transport itself — rank 0 gathers one arrival per rank, then
// releases everyone — so it works identically on every backend. Barrier
// traffic uses reserved tags and is not counted in Stats.
func (c *Comm) Barrier() {
	size := c.ep.Size()
	if size == 1 {
		return
	}
	rank := c.ep.Rank()
	if rank == 0 {
		for i := 0; i < size-1; i++ {
			c.recvInternal(AnySource, tagBarrierArrive)
		}
		for r := 1; r < size; r++ {
			c.ep.Deliver(r, Message{From: rank, Tag: tagBarrierRelease})
		}
		return
	}
	c.ep.Deliver(0, Message{From: rank, Tag: tagBarrierArrive})
	c.recvInternal(0, tagBarrierRelease)
}

// recvInternal is RecvFrom for reserved tags (exact match only).
func (c *Comm) recvInternal(from, tag int) Message {
	for i, m := range c.pending {
		if m.Tag == tag && (from == AnySource || m.From == from) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return m
		}
	}
	for {
		m := c.nextBlocking()
		if c.notePeerDown(m) {
			continue
		}
		if m.Tag == tag && (from == AnySource || m.From == from) {
			return m
		}
		c.pending = append(c.pending, m)
	}
}

// Bcast sends payload from root to every other rank under the given tag and
// returns the (possibly received) value at every rank, mirroring MPI_Bcast.
func (c *Comm) Bcast(root, tag int, payload any, bytes int) any {
	if c.ep.Rank() == root {
		for r := 0; r < c.ep.Size(); r++ {
			if r != root {
				c.Send(r, tag, payload, bytes)
			}
		}
		return payload
	}
	return c.RecvFrom(root, tag).Payload
}

// AllGather collects one payload from every rank at every rank, mirroring
// MPI_Allgather. The result is indexed by rank.
func (c *Comm) AllGather(tag int, payload any, bytes int) []any {
	for r := 0; r < c.ep.Size(); r++ {
		if r != c.ep.Rank() {
			c.Send(r, tag, payload, bytes)
		}
	}
	out := make([]any, c.ep.Size())
	out[c.ep.Rank()] = payload
	for i := 0; i < c.ep.Size()-1; i++ {
		m := c.Recv(tag)
		out[m.From] = m.Payload
	}
	return out
}
