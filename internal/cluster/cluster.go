// Package cluster is the in-process message-passing fabric that replaces MPI
// in this reproduction (paper §7 and appendix B). Each "machine" is a rank
// with an inbox; sends are buffered and non-blocking like MPI_Bsend, receives
// block like MPI_Recv and support tag filtering and MPI_ANY_SOURCE/ANY_TAG
// wildcards. A cyclic barrier mirrors MPI_Barrier, and Bcast/AllGather mirror
// the collectives listed in the paper's appendix B.
//
// Message and byte counters make the communication volume observable, which
// is what the speedup analysis of §5 is about: ParMAC sends the entire model
// only e+1 times per iteration and never sends data or coordinates.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// AnyTag matches any message tag in Recv (MPI_ANY_TAG).
const AnyTag = -1

// AnySource matches any sender in RecvFrom (MPI_ANY_SOURCE).
const AnySource = -1

// Message is a delivered payload with its envelope.
type Message struct {
	From    int
	Tag     int
	Payload any
	Bytes   int // accounted size of the payload
}

// Network is the shared fabric connecting P ranks.
type Network struct {
	size    int
	inboxes []chan Message
	bar     *barrier

	messages atomic.Int64
	bytes    atomic.Int64
	sentBy   []atomic.Int64
}

// DefaultInboxCapacity bounds in-flight messages per rank. ParMAC keeps at
// most M submodels + P final-round copies in flight, so this is generous.
const DefaultInboxCapacity = 1 << 14

// NewNetwork creates a fabric with p ranks.
func NewNetwork(p int) *Network {
	if p <= 0 {
		panic("cluster: need at least one rank")
	}
	n := &Network{
		size:    p,
		inboxes: make([]chan Message, p),
		bar:     newBarrier(p),
		sentBy:  make([]atomic.Int64, p),
	}
	for i := range n.inboxes {
		n.inboxes[i] = make(chan Message, DefaultInboxCapacity)
	}
	return n
}

// Size returns the number of ranks.
func (n *Network) Size() int { return n.size }

// Comm returns the communicator endpoint for the given rank. Each endpoint
// must be used by a single goroutine (as one MPI process would).
func (n *Network) Comm(rank int) *Comm {
	if rank < 0 || rank >= n.size {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, n.size))
	}
	return &Comm{net: n, rank: rank}
}

// Stats is a snapshot of fabric-wide communication counters.
type Stats struct {
	Messages int64
	Bytes    int64
}

// Stats returns the message and byte totals so far.
func (n *Network) Stats() Stats {
	return Stats{Messages: n.messages.Load(), Bytes: n.bytes.Load()}
}

// SentBy returns how many messages the given rank has sent.
func (n *Network) SentBy(rank int) int64 { return n.sentBy[rank].Load() }

// Comm is one rank's endpoint: its inbox plus a local queue of messages that
// were received but did not match the requested tag (MPI implementations do
// the same internally to honour tag matching).
type Comm struct {
	net     *Network
	rank    int
	pending []Message
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the fabric size.
func (c *Comm) Size() int { return c.net.size }

// Send delivers payload to rank `to` with the given tag, accounting `bytes`
// toward the communication counters. Like MPI_Bsend it does not wait for the
// receiver; it only blocks if the destination inbox is full (bounded
// buffering).
func (c *Comm) Send(to, tag int, payload any, bytes int) {
	if to < 0 || to >= c.net.size {
		panic(fmt.Sprintf("cluster: Send to invalid rank %d", to))
	}
	c.net.messages.Add(1)
	c.net.bytes.Add(int64(bytes))
	c.net.sentBy[c.rank].Add(1)
	c.net.inboxes[to] <- Message{From: c.rank, Tag: tag, Payload: payload, Bytes: bytes}
}

// Recv blocks until a message with the given tag (or any, with AnyTag)
// arrives and returns it. Messages with other tags are queued for later
// Recv calls, preserving arrival order per tag.
func (c *Comm) Recv(tag int) Message { return c.RecvFrom(AnySource, tag) }

// RecvFrom is Recv restricted to a particular sender (AnySource for any).
func (c *Comm) RecvFrom(from, tag int) Message {
	if m, ok := c.takePending(from, tag); ok {
		return m
	}
	for {
		m := <-c.net.inboxes[c.rank]
		if matches(m, from, tag) {
			return m
		}
		c.pending = append(c.pending, m)
	}
}

// TryRecv returns a matching message if one is immediately available.
func (c *Comm) TryRecv(tag int) (Message, bool) {
	if m, ok := c.takePending(AnySource, tag); ok {
		return m, true
	}
	for {
		select {
		case m := <-c.net.inboxes[c.rank]:
			if matches(m, AnySource, tag) {
				return m, true
			}
			c.pending = append(c.pending, m)
		default:
			return Message{}, false
		}
	}
}

func (c *Comm) takePending(from, tag int) (Message, bool) {
	for i, m := range c.pending {
		if matches(m, from, tag) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

func matches(m Message, from, tag int) bool {
	return (tag == AnyTag || m.Tag == tag) && (from == AnySource || m.From == from)
}

// Barrier blocks until every rank has called it (MPI_Barrier). It is cyclic:
// it can be reused any number of times.
func (c *Comm) Barrier() { c.net.bar.await() }

// Bcast sends payload from root to every other rank under the given tag and
// returns the (possibly received) value at every rank, mirroring MPI_Bcast.
func (c *Comm) Bcast(root, tag int, payload any, bytes int) any {
	if c.rank == root {
		for r := 0; r < c.net.size; r++ {
			if r != root {
				c.Send(r, tag, payload, bytes)
			}
		}
		return payload
	}
	return c.RecvFrom(root, tag).Payload
}

// AllGather collects one payload from every rank at every rank, mirroring
// MPI_Allgather. The result is indexed by rank.
func (c *Comm) AllGather(tag int, payload any, bytes int) []any {
	for r := 0; r < c.net.size; r++ {
		if r != c.rank {
			c.Send(r, tag, payload, bytes)
		}
	}
	out := make([]any, c.net.size)
	out[c.rank] = payload
	for i := 0; i < c.net.size-1; i++ {
		m := c.Recv(tag)
		out[m.From] = m.Payload
	}
	return out
}

// barrier is a reusable (cyclic) barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
