package retrieval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Multi-index hashing (Norouzi, Punjani & Fleet): split every L-bit code into
// m substrings and bucket the base by each substring value. A query probes the
// m tables in increasing substring-Hamming radius; by pigeonhole, a code whose
// full distance is at most m·(r+1)−1 matches at least one query substring
// within radius r, so once the current k-th best distance drops below m·(r+1)
// every unseen code is strictly farther and the scan stops. Candidates are
// re-ranked with the exact packed-word popcount and kept in a (Dist, Index)
// lexicographic buffer, so the result is bit- and tie-exact identical to the
// linear TopKHammingDist oracle — sublinear work, same answer.

// MaxMIHBlockBits caps a substring width: each table is a dense 1<<width
// bucket array, so the width doubles table memory per bit. 16 bits (65536
// buckets) keeps a table's headers around a megabyte and the radius
// enumeration cheap; block counts are clamped so no block exceeds it.
const MaxMIHBlockBits = 16

// mihBlock is one substring table: bits [off, off+width) of every code,
// bucketed by value. Posting lists hold point ids in increasing order (the
// build walks ids forward), packed as int32 to halve index memory.
type mihBlock struct {
	off, width int
	table      [][]int32
}

// MIHIndex is an immutable multi-index over a packed code set. Build once,
// search from any number of goroutines; mutation means building a new index
// (WithAppended shares untouched posting lists with its parent, so snapshot
// chains stay cheap).
type MIHIndex struct {
	codes  *Codes
	blocks []mihBlock
}

// AutoMIHBlocks picks the block count for an N-point, L-bit index: substring
// width ≈ log2(N) (the MIH paper's rule — buckets then hold O(1) points), so
// m = ⌈L / log2 N⌉, clamped to [1, L] and to widths within MaxMIHBlockBits.
func AutoMIHBlocks(n, l int) int {
	w := 1
	for (1<<uint(w)) < n && w < MaxMIHBlockBits {
		w++
	}
	m := (l + w - 1) / w
	return clampMIHBlocks(m, l)
}

// clampMIHBlocks forces a block count into the representable range: at least
// ⌈L/MaxMIHBlockBits⌉ so every dense table fits the width cap, at most L so
// every block holds at least one bit.
func clampMIHBlocks(m, l int) int {
	if minBlocks := (l + MaxMIHBlockBits - 1) / MaxMIHBlockBits; m < minBlocks {
		m = minBlocks
	}
	if m > l {
		m = l
	}
	if m < 1 {
		m = 1
	}
	return m
}

// NewMIHIndex builds an m-block multi-index over codes. blocks ≤ 0 picks the
// width automatically from N and L; any value is clamped so substring widths
// stay in [1, MaxMIHBlockBits]. Ids are stored as int32, so N must fit.
func NewMIHIndex(codes *Codes, blocks int) (*MIHIndex, error) {
	if codes.N > math.MaxInt32 {
		return nil, fmt.Errorf("retrieval: MIH index over %d points exceeds the int32 id space", codes.N)
	}
	m := blocks
	if m <= 0 {
		m = AutoMIHBlocks(codes.N, codes.L)
	}
	m = clampMIHBlocks(m, codes.L)
	ix := &MIHIndex{codes: codes, blocks: make([]mihBlock, m)}
	base, rem := codes.L/m, codes.L%m
	off := 0
	for b := range ix.blocks {
		width := base
		if b < rem {
			width++
		}
		// The width bound is what makes the dense 1<<width allocation safe
		// even when L arrives from a decoded index header.
		if width < 1 || width > MaxMIHBlockBits {
			return nil, fmt.Errorf("retrieval: MIH block width %d outside [1, %d]", width, MaxMIHBlockBits)
		}
		ix.blocks[b] = mihBlock{off: off, width: width, table: make([][]int32, 1<<uint(width))}
		off += width
	}
	for i := 0; i < codes.N; i++ {
		code := codes.Code(i)
		for b := range ix.blocks {
			blk := &ix.blocks[b]
			v := substrBits(code, blk.off, blk.width)
			blk.table[v] = append(blk.table[v], int32(i))
		}
	}
	return ix, nil
}

// N reports the number of indexed codes.
func (ix *MIHIndex) N() int { return ix.codes.N }

// L reports the code length in bits.
func (ix *MIHIndex) L() int { return ix.codes.L }

// Words reports the packed words per code.
func (ix *MIHIndex) Words() int { return ix.codes.Words }

// Blocks reports the number of substring tables.
func (ix *MIHIndex) Blocks() int { return len(ix.blocks) }

// Codes returns the indexed code set (shared, do not mutate).
func (ix *MIHIndex) Codes() *Codes { return ix.codes }

// substrBits extracts bits [off, off+width) of a packed code as a value.
// width ≤ MaxMIHBlockBits ≤ 64−0, so a substring spans at most two words.
func substrBits(code []uint64, off, width int) uint64 {
	word, sh := off/64, uint(off%64)
	v := code[word] >> sh
	if int(sh)+width > 64 {
		v |= code[word+1] << (64 - sh)
	}
	return v & (1<<uint(width) - 1)
}

// WithAppended returns a new index over the old codes plus extra, sharing
// untouched posting lists with the receiver. The receiver stays valid and
// immutable — this is the copy-on-write snapshot step a streaming ingest
// path publishes through an atomic pointer.
func (ix *MIHIndex) WithAppended(extra *Codes) (*MIHIndex, error) {
	if extra.L != ix.codes.L {
		return nil, fmt.Errorf("retrieval: appending %d-bit codes to a %d-bit MIH index", extra.L, ix.codes.L)
	}
	oldN := ix.codes.N
	if int64(oldN)+int64(extra.N) > math.MaxInt32 {
		return nil, fmt.Errorf("retrieval: MIH index of %d points exceeds the int32 id space", oldN+extra.N)
	}
	codes := NewCodes(oldN+extra.N, ix.codes.L)
	copy(codes.Data, ix.codes.Data)
	copy(codes.Data[oldN*codes.Words:], extra.Data)
	out := &MIHIndex{codes: codes, blocks: make([]mihBlock, len(ix.blocks))}
	for b := range ix.blocks {
		blk := &ix.blocks[b]
		nb := mihBlock{off: blk.off, width: blk.width, table: make([][]int32, len(blk.table))}
		copy(nb.table, blk.table)
		// Buckets that receive new ids are copied before extension, so the
		// parent snapshot's lists are never written through shared backing.
		copied := make([]bool, len(nb.table))
		for j := 0; j < extra.N; j++ {
			v := substrBits(extra.Code(j), blk.off, blk.width)
			if !copied[v] {
				old := nb.table[v]
				nb.table[v] = append(make([]int32, 0, len(old)+1), old...)
				copied[v] = true
			}
			nb.table[v] = append(nb.table[v], int32(oldN+j))
		}
		out.blocks[b] = nb
	}
	return out, nil
}

// MIHOccupancy summarises posting-list skew: pruning degrades when a few
// buckets hold most of the points (every probe that hits them re-ranks the
// bulk of the base), so operators watch max/mean list lengths.
type MIHOccupancy struct {
	Blocks      int     `json:"blocks"`
	Buckets     int     `json:"buckets"`      // table slots across all blocks
	UsedBuckets int     `json:"used_buckets"` // non-empty slots
	MaxList     int     `json:"max_list"`     // longest posting list
	MeanList    float64 `json:"mean_list"`    // mean length over non-empty slots
}

// Occupancy walks the tables and reports the bucket statistics.
func (ix *MIHIndex) Occupancy() MIHOccupancy {
	occ := MIHOccupancy{Blocks: len(ix.blocks)}
	total := 0
	for b := range ix.blocks {
		for _, list := range ix.blocks[b].table {
			occ.Buckets++
			if len(list) == 0 {
				continue
			}
			occ.UsedBuckets++
			total += len(list)
			if len(list) > occ.MaxList {
				occ.MaxList = len(list)
			}
		}
	}
	if occ.UsedBuckets > 0 {
		occ.MeanList = float64(total) / float64(occ.UsedBuckets)
	}
	return occ
}

// MIHSearcher holds the per-goroutine probe state (visited stamps, substring
// scratch) for one index. Not safe for concurrent use; create one per worker.
// The generation-stamped visited array makes dedup across the m tables O(1)
// per candidate with an O(1) reset between queries.
type MIHSearcher struct {
	ix      *MIHIndex
	visited []uint32
	gen     uint32
}

// NewSearcher returns a searcher bound to the index.
func (ix *MIHIndex) NewSearcher() *MIHSearcher {
	return &MIHSearcher{ix: ix, visited: make([]uint32, ix.codes.N)}
}

// Search returns the same top-k as TopKHammingDist(codes, query, k) — exact
// distances, exact (Dist, Index) tie order — by probing the substring tables
// in increasing radius and re-ranking candidates with the full popcount.
// k ≤ 0 returns an empty slice.
func (s *MIHSearcher) Search(query []uint64, k int) []Neighbor {
	ix := s.ix
	k = clampK(k, ix.codes.N)
	out := make([]Neighbor, 0, k)
	if k == 0 {
		return out
	}
	s.gen++
	if s.gen == 0 { // stamp wrap: one O(N) clear every 2^32 queries
		clear(s.visited)
		s.gen = 1
	}
	m := len(ix.blocks)
	maxWidth := 0
	for b := range ix.blocks {
		if w := ix.blocks[b].width; w > maxWidth {
			maxWidth = w
		}
	}
	for r := 0; r <= maxWidth; r++ {
		for b := range ix.blocks {
			blk := &ix.blocks[b]
			if r > blk.width {
				continue
			}
			q := substrBits(query, blk.off, blk.width)
			out = s.probe(blk, q, r, k, query, out)
		}
		// All codes at full distance ≤ m·(r+1)−1 have been seen: a code
		// missed by every table through radius r has every substring distance
		// ≥ r+1, hence full distance ≥ m·(r+1). Once the k-th best beats that
		// bound no unseen code can enter the result, ties included (a tie at
		// the k-th distance would already have been seen).
		if len(out) == k && out[k-1].Dist < (r+1)*m {
			break
		}
	}
	return out
}

// probe visits every bucket of blk whose value lies at substring-Hamming
// distance exactly r from q, re-ranking unseen candidates into out.
func (s *MIHSearcher) probe(blk *mihBlock, q uint64, r, k int, query []uint64, out []Neighbor) []Neighbor {
	if r == 0 {
		return s.rank(blk.table[q], k, query, out)
	}
	// Gosper's hack enumerates the C(width, r) bit masks of popcount r in
	// increasing value order; XOR with the query substring walks the radius-r
	// shell of the table.
	limit := uint64(1) << uint(blk.width)
	for mask := uint64(1)<<uint(r) - 1; mask < limit; {
		out = s.rank(blk.table[q^mask], k, query, out)
		c := mask & -mask
		rr := mask + c
		mask = (rr^mask)>>2/c | rr
	}
	return out
}

// rank folds a posting list into the top-k buffer: skip already-visited ids,
// compute the exact full-code distance for the rest, and insert in
// (Dist, Index) lexicographic order — the linear oracle's tie rule.
func (s *MIHSearcher) rank(list []int32, k int, query []uint64, out []Neighbor) []Neighbor {
	for _, id32 := range list {
		id := int(id32)
		if s.visited[id] == s.gen {
			continue
		}
		s.visited[id] = s.gen
		n := Neighbor{Index: id, Dist: HammingWords(s.ix.codes.Code(id), query)}
		if len(out) == k {
			last := out[k-1]
			if n.Dist > last.Dist || (n.Dist == last.Dist && n.Index > last.Index) {
				continue
			}
		}
		pos := sort.Search(len(out), func(j int) bool {
			return out[j].Dist > n.Dist || (out[j].Dist == n.Dist && out[j].Index > n.Index)
		})
		if len(out) < k {
			out = append(out, Neighbor{})
		}
		copy(out[pos+1:], out[pos:len(out)-1])
		out[pos] = n
	}
	return out
}

// Search is the convenience single-shot form: it allocates a searcher per
// call. Batch or repeated callers should hold a MIHSearcher (or use
// SearchBatch, which pools one per worker).
func (ix *MIHIndex) Search(query []uint64, k int) []Neighbor {
	return ix.NewSearcher().Search(query, k)
}

// SearchBatch answers every query row, fanned out over workers goroutines
// (0/1 serial, < 0 every core) with one searcher per worker. Queries are
// independent, so output row q equals Search(queries.Code(q), k) for any
// worker count.
func (ix *MIHIndex) SearchBatch(queries *Codes, k, workers int) [][]Neighbor {
	out := make([][]Neighbor, queries.N)
	workers = core.ClampWorkers(queries.N, core.Cores(workers))
	core.ParallelChunks(queries.N, workers, func(_, lo, hi int) {
		s := ix.NewSearcher()
		for q := lo; q < hi; q++ {
			out[q] = s.Search(queries.Code(q), k)
		}
	})
	return out
}
