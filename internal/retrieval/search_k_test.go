package retrieval

import (
	"math/rand"
	"testing"
)

// These tests pin the k ≤ 0 contract across every search entry point: k is a
// request parameter once a server exists, so a negative or zero k must yield
// an empty result — never a panic from make([]T, 0, k).

func randomCodes(n, l int, seed int64) *Codes {
	rng := rand.New(rand.NewSource(seed))
	c := NewCodes(n, l)
	for i := range c.Data {
		c.Data[i] = rng.Uint64()
	}
	if l%64 != 0 {
		for i := 0; i < n; i++ {
			code := c.Code(i)
			code[len(code)-1] &= (1 << uint(l%64)) - 1
		}
	}
	return c
}

func TestTopKNonPositiveK(t *testing.T) {
	base := randomCodes(200, 64, 1)
	queries := randomCodes(4, 64, 2)
	q := queries.Code(0)
	for _, k := range []int{0, -1, -1000} {
		if got := TopKHamming(base, q, k); len(got) != 0 {
			t.Fatalf("TopKHamming k=%d: got %d results", k, len(got))
		}
		if got := TopKHammingDist(base, q, k); len(got) != 0 {
			t.Fatalf("TopKHammingDist k=%d: got %d results", k, len(got))
		}
		for _, workers := range []int{1, 4, -1} {
			if got := TopKHammingParallel(base, q, k, workers); len(got) != 0 {
				t.Fatalf("TopKHammingParallel k=%d workers=%d: got %d results", k, workers, len(got))
			}
		}
		for _, rows := range AllTopKHamming(base, queries, k, 2) {
			if len(rows) != 0 {
				t.Fatalf("AllTopKHamming k=%d: non-empty row", k)
			}
		}
		for _, rows := range AllTopKHammingDist(base, queries, k, 2) {
			if len(rows) != 0 {
				t.Fatalf("AllTopKHammingDist k=%d: non-empty row", k)
			}
		}
	}
}

// TestTopKCapsAtN pins the other half of the clampK contract: a k larger
// than the base returns exactly N results, identically across the serial,
// parallel, and Euclidean entry points.
func TestTopKCapsAtN(t *testing.T) {
	base := randomCodes(30, 32, 7)
	q := randomCodes(1, 32, 8).Code(0)
	for _, k := range []int{30, 31, 1000} {
		serial := TopKHamming(base, q, k)
		if len(serial) != base.N {
			t.Fatalf("TopKHamming k=%d: got %d results, want %d", k, len(serial), base.N)
		}
		for _, workers := range []int{1, 4, -1} {
			par := TopKHammingParallel(base, q, k, workers)
			if len(par) != base.N {
				t.Fatalf("TopKHammingParallel k=%d workers=%d: got %d results", k, workers, len(par))
			}
			for i := range serial {
				if par[i] != serial[i] {
					t.Fatalf("k=%d workers=%d rank %d: parallel %d, serial %d", k, workers, i, par[i], serial[i])
				}
			}
		}
	}
	pts := pointsFromRows([][]float64{{0, 0}, {1, 1}, {2, 2}})
	if got := TopKEuclidean(pts, []float64{0.1, 0.1}, 99); len(got) != 3 {
		t.Fatalf("TopKEuclidean k>n: got %d results, want 3", len(got))
	}
}

func TestTopKEuclideanNonPositiveK(t *testing.T) {
	base := pointsFromRows([][]float64{{0, 0}, {1, 1}, {2, 2}})
	for _, k := range []int{0, -1, -7} {
		if got := TopKEuclidean(base, []float64{0.5, 0.5}, k); len(got) != 0 {
			t.Fatalf("TopKEuclidean k=%d: got %d results", k, len(got))
		}
	}
	queries := pointsFromRows([][]float64{{0, 0}})
	for _, rows := range GroundTruth(base, queries, -1) {
		if len(rows) != 0 {
			t.Fatal("GroundTruth k=-1: non-empty row")
		}
	}
}

// rowPoints adapts a [][]float64 to sgd.Points for the Euclidean tests.
type rowPoints [][]float64

func (r rowPoints) NumPoints() int { return len(r) }
func (r rowPoints) Point(i int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(r[i]))
	}
	copy(dst, r[i])
	return dst
}

func pointsFromRows(rows [][]float64) rowPoints { return rowPoints(rows) }

func TestPrecisionToleratesEmptyRetrieved(t *testing.T) {
	truth := [][]int{{0, 1}, {2, 3}}
	// First query retrieved nothing (a k = 0 request), second hit fully:
	// empty rows contribute zero precision, so the mean is 0.5.
	retrieved := [][]int{{}, {2, 3}}
	if got := Precision(truth, retrieved); got != 0.5 {
		t.Fatalf("Precision = %v, want 0.5", got)
	}
	allEmpty := [][]int{{}, {}}
	if got := Precision(truth, allEmpty); got != 0 {
		t.Fatalf("Precision over empty rows = %v, want 0", got)
	}
}

func TestRecallAtRToleratesNonPositiveR(t *testing.T) {
	base := randomCodes(50, 32, 3)
	queries := randomCodes(5, 32, 4)
	trueNN := []int{0, 1, 2, 3, 4}
	got := RecallAtR(base, queries, trueNN, []int{-1, 0, 50})
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("recall at R<=0 should be 0, got %v", got[:2])
	}
	if got[2] != 1 {
		t.Fatalf("recall at R=N should be 1, got %v", got[2])
	}
}

func TestMergeTopKMatchesSerialScan(t *testing.T) {
	// Shard the base, search shards independently, offset and merge: must
	// equal the unsharded scan exactly, including tie order (L=16 over 300
	// codes guarantees many distance ties).
	base := randomCodes(300, 16, 5)
	queries := randomCodes(20, 16, 6)
	const k, shards = 25, 4
	per := (base.N + shards - 1) / shards
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Code(qi)
		want := TopKHammingDist(base, q, k)
		parts := make([][]Neighbor, 0, shards)
		for lo := 0; lo < base.N; lo += per {
			hi := min(lo+per, base.N)
			shard := &Codes{N: hi - lo, L: base.L, Words: base.Words,
				Data: base.Data[lo*base.Words : hi*base.Words]}
			parts = append(parts, OffsetNeighbors(TopKHammingDist(shard, q, k), lo))
		}
		got := MergeTopK(parts, k)
		if len(got) != len(want) {
			t.Fatalf("query %d: merged %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: merged %+v, serial %+v", qi, i, got[i], want[i])
			}
		}
	}
}

func TestMergeTopKTieOrderAcrossShards(t *testing.T) {
	// Hand-built candidate lists where every interesting distance is
	// duplicated across shard offsets: the merge must order ties strictly by
	// global index, interleaving the shards, and truncate at k mid-tie. The
	// MIH re-rank relies on exactly this (Dist, Index) rule to stay tie-exact
	// with the linear oracle.
	shard0 := []Neighbor{{Index: 0, Dist: 1}, {Index: 2, Dist: 3}, {Index: 5, Dist: 3}}
	shard1 := OffsetNeighbors([]Neighbor{{Index: 1, Dist: 1}, {Index: 3, Dist: 3}}, 10)
	shard2 := OffsetNeighbors([]Neighbor{{Index: 0, Dist: 1}, {Index: 1, Dist: 3}, {Index: 2, Dist: 7}}, 20)

	want := []Neighbor{
		{Index: 0, Dist: 1}, {Index: 11, Dist: 1}, {Index: 20, Dist: 1},
		{Index: 2, Dist: 3}, {Index: 5, Dist: 3}, {Index: 13, Dist: 3},
		{Index: 21, Dist: 3},
		{Index: 22, Dist: 7},
	}
	got := MergeTopK([][]Neighbor{shard0, shard1, shard2}, -1)
	if len(got) != len(want) {
		t.Fatalf("merged %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}

	// k=5 cuts inside the Dist=3 tie group: the survivors must be the
	// lowest-indexed members, not whichever shard came first.
	got = MergeTopK([][]Neighbor{shard0, shard1, shard2}, 5)
	if len(got) != 5 {
		t.Fatalf("k=5 merged %d results", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("k=5 rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}

	// k=0 and empty parts stay well-defined.
	if got := MergeTopK([][]Neighbor{shard0, nil, {}}, 0); len(got) != 0 {
		t.Fatalf("k=0 merged %d results", len(got))
	}
}
