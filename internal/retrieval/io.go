package retrieval

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary persistence for packed code sets — the "index" a retrieval service
// would keep in RAM (the paper's 8 GB-for-a-billion-points argument). Format:
// magic, version, N, L as little-endian uint32/uint64, then the raw words.

var codesMagic = [4]byte{'P', 'M', 'A', 'C'}

const codesVersion = 1

// Save writes the codes in the binary index format.
func (c *Codes) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(codesMagic[:]); err != nil {
		return err
	}
	hdr := []uint64{codesVersion, uint64(c.N), uint64(c.L)}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, c.Data); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCodes reads a code set written by Save.
func LoadCodes(r io.Reader) (*Codes, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("retrieval: read magic: %w", err)
	}
	if magic != codesMagic {
		return nil, fmt.Errorf("retrieval: bad magic %q", magic)
	}
	var version, n, l uint64
	for _, p := range []*uint64{&version, &n, &l} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("retrieval: read header: %w", err)
		}
	}
	if version != codesVersion {
		return nil, fmt.Errorf("retrieval: unsupported version %d", version)
	}
	if l == 0 || l > 1<<20 || n > 1<<40 {
		return nil, fmt.Errorf("retrieval: implausible header N=%d L=%d", n, l)
	}
	c := NewCodes(int(n), int(l))
	if err := binary.Read(br, binary.LittleEndian, c.Data); err != nil {
		return nil, fmt.Errorf("retrieval: read words: %w", err)
	}
	return c, nil
}
