package retrieval

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary persistence for packed code sets — the "index" a retrieval service
// would keep in RAM (the paper's 8 GB-for-a-billion-points argument). Format:
// magic, version, N, L as little-endian uint32/uint64, then the raw words.
//
// Loading is written for untrusted input: a service reloads indexes from
// disk or an admin endpoint, so a malformed header must produce an error,
// never an allocation sized by the attacker. The header is validated against
// a byte budget before any payload storage exists, and the payload is
// streamed in fixed-size chunks so storage only grows as bytes actually
// arrive.

var codesMagic = [4]byte{'P', 'M', 'A', 'C'}

const codesVersion = 1

// DefaultMaxIndexBytes is the payload budget LoadCodes enforces: 1 GiB of
// packed words, i.e. ~134M 64-bit codes. Services that keep larger indexes
// in RAM pass their own budget to LoadCodesLimit.
const DefaultMaxIndexBytes = 1 << 30

// loadChunkWords is the streaming granule of LoadCodesLimit: 64Ki words
// (512 KiB) per read, small enough that a truncated payload fails before any
// large allocation and large enough that the copy loop is not the bottleneck.
const loadChunkWords = 64 << 10

// Save writes the codes in the binary index format.
func (c *Codes) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(codesMagic[:]); err != nil {
		return err
	}
	hdr := []uint64{codesVersion, uint64(c.N), uint64(c.L)}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, c.Data); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCodes reads a code set written by Save, enforcing the
// DefaultMaxIndexBytes payload budget.
func LoadCodes(r io.Reader) (*Codes, error) {
	return LoadCodesLimit(r, DefaultMaxIndexBytes)
}

// LoadCodesLimit reads a code set written by Save, rejecting any input whose
// header declares more than maxBytes of payload (maxBytes <= 0 means
// DefaultMaxIndexBytes). The header is fully validated — shape bounds, the
// byte budget, and int overflow of N·words on 32-bit platforms — before any
// payload storage is allocated; the payload itself is streamed in
// loadChunkWords chunks, so storage grows only as fast as real bytes arrive
// and a lying header costs at most one chunk. Trailing bytes after the
// declared payload are an error: an index file is exactly header + payload.
func LoadCodesLimit(r io.Reader, maxBytes int64) (*Codes, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxIndexBytes
	}
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("retrieval: read magic: %w", err)
	}
	if magic != codesMagic {
		return nil, fmt.Errorf("retrieval: bad magic %q", magic)
	}
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("retrieval: read header: %w", err)
	}
	version := binary.LittleEndian.Uint64(hdr[0:8])
	n := binary.LittleEndian.Uint64(hdr[8:16])
	l := binary.LittleEndian.Uint64(hdr[16:24])
	if version != codesVersion {
		return nil, fmt.Errorf("retrieval: unsupported version %d", version)
	}
	if l == 0 || l > 1<<20 || n > 1<<40 {
		return nil, fmt.Errorf("retrieval: implausible header N=%d L=%d", n, l)
	}
	words := (l + 63) / 64
	// n ≤ 2^40 and words ≤ 2^15, so the product cannot wrap uint64.
	totalWords := n * words
	if totalWords > uint64(maxBytes)/8 {
		return nil, fmt.Errorf("retrieval: declared payload %d bytes (N=%d L=%d) exceeds budget %d",
			totalWords*8, n, l, maxBytes)
	}
	if totalWords > uint64(math.MaxInt)/8 {
		return nil, fmt.Errorf("retrieval: index N=%d L=%d too large for this platform", n, l)
	}
	total := int(totalWords)
	data := make([]uint64, 0, min(total, loadChunkWords))
	buf := make([]byte, 8*min(total, loadChunkWords))
	for len(data) < total {
		want := min(total-len(data), loadChunkWords)
		b := buf[:8*want]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("retrieval: read words (%d of %d): %w", len(data), total, err)
		}
		for i := 0; i < want; i++ {
			data = append(data, binary.LittleEndian.Uint64(b[8*i:]))
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("retrieval: trailing bytes after %d-word payload", total)
		}
		return nil, fmt.Errorf("retrieval: after payload: %w", err)
	}
	return &Codes{N: int(n), L: int(l), Words: int(words), Data: data}, nil
}
