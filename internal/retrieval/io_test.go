package retrieval

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

func TestCodesSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCodes(137, 48)
	for i := range c.Data {
		c.Data[i] = rng.Uint64()
	}
	// Mask unused high bits so Equal compares canonical content.
	for i := 0; i < c.N; i++ {
		c.Code(i)[0] &= (1 << 48) - 1
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCodes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(back) {
		t.Fatal("codes differ after round trip")
	}
}

func TestLoadCodesRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"nope",
		"PMACgarbage-that-is-not-a-header",
	}
	for i, c := range cases {
		if _, err := LoadCodes(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestLoadCodesRejectsWrongVersion(t *testing.T) {
	c := NewCodes(2, 8)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // corrupt the version field
	if _, err := LoadCodes(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestLoadCodesTruncatedPayload(t *testing.T) {
	c := NewCodes(10, 64)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-8]
	if _, err := LoadCodes(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestRankOfTrueNNAgainstSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(40)
		base := NewCodes(n, 24)
		for i := range base.Data {
			base.Data[i] = rng.Uint64() & ((1 << 24) - 1)
		}
		q := NewCodes(1, 24)
		q.Data[0] = rng.Uint64() & ((1 << 24) - 1)
		target := rng.Intn(n)
		got := RankOfTrueNN(base, q.Code(0), target)
		// Oracle: 1 + number of strictly closer points.
		d := HammingWords(base.Code(target), q.Code(0))
		want := 1
		for i := 0; i < n; i++ {
			if i != target && HammingWords(base.Code(i), q.Code(0)) < d {
				want++
			}
		}
		if got != want {
			t.Fatalf("trial %d: rank %d, oracle %d", trial, got, want)
		}
	}
}

// craftHeader builds magic + (version, n, l) — the 28-byte prefix of the
// index format — for malformed-input tests.
func craftHeader(version, n, l uint64) []byte {
	buf := make([]byte, 0, 28)
	buf = append(buf, 'P', 'M', 'A', 'C')
	for _, v := range []uint64{version, n, l} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	return buf
}

func TestLoadCodesHugeHeaderRejectedWithoutAllocation(t *testing.T) {
	// The attack from the serving tier's point of view: a 28-byte file whose
	// header declares N·L ≈ 2^54 words. Pre-hardening this allocated the full
	// slice before reading a single payload word; now it must error against
	// the byte budget without allocating payload storage.
	raw := craftHeader(1, 1<<40, 1<<20)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := LoadCodes(bytes.NewReader(raw)); err == nil {
			t.Fatal("expected budget error")
		}
	})
	// Reader + error plumbing allocate a handful of objects; payload storage
	// for 2^54 words would be impossible, and even one streaming chunk would
	// push this over 20.
	if allocs > 20 {
		t.Fatalf("huge-header rejection allocated %v objects", allocs)
	}
	_, err := LoadCodes(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestLoadCodesLimitCustomBudget(t *testing.T) {
	c := NewCodes(64, 64) // 512-byte payload
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCodesLimit(bytes.NewReader(buf.Bytes()), 256); err == nil {
		t.Fatal("expected error under 256-byte budget")
	}
	back, err := LoadCodesLimit(bytes.NewReader(buf.Bytes()), 512)
	if err != nil {
		t.Fatalf("512-byte budget should fit exactly: %v", err)
	}
	if !c.Equal(back) {
		t.Fatal("codes differ after round trip")
	}
	// maxBytes <= 0 falls back to the default budget.
	if _, err := LoadCodesLimit(bytes.NewReader(buf.Bytes()), 0); err != nil {
		t.Fatalf("zero budget should mean default: %v", err)
	}
}

func TestLoadCodesRejectsTrailingBytes(t *testing.T) {
	c := NewCodes(3, 32)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0xFF)
	_, err := LoadCodes(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

func TestLoadCodesHeaderOnlyTruncation(t *testing.T) {
	// A header that passes validation but has no payload at all must fail on
	// the first streamed chunk, not allocate N·words up front.
	raw := craftHeader(1, 1000, 64)
	if _, err := LoadCodes(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestLoadCodesEmptyIndexRoundTrip(t *testing.T) {
	c := NewCodes(0, 16)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCodes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != 0 || back.L != 16 {
		t.Fatalf("got N=%d L=%d", back.N, back.L)
	}
}

func TestLoadCodesMultiChunkPayload(t *testing.T) {
	// More words than one streaming chunk, so the chunk loop runs > once.
	n := loadChunkWords + 513
	rng := rand.New(rand.NewSource(5))
	c := NewCodes(n, 64)
	for i := range c.Data {
		c.Data[i] = rng.Uint64()
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCodes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(back) {
		t.Fatal("codes differ after multi-chunk round trip")
	}
}
