package retrieval

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCodesSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCodes(137, 48)
	for i := range c.Data {
		c.Data[i] = rng.Uint64()
	}
	// Mask unused high bits so Equal compares canonical content.
	for i := 0; i < c.N; i++ {
		c.Code(i)[0] &= (1 << 48) - 1
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCodes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(back) {
		t.Fatal("codes differ after round trip")
	}
}

func TestLoadCodesRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"nope",
		"PMACgarbage-that-is-not-a-header",
	}
	for i, c := range cases {
		if _, err := LoadCodes(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestLoadCodesRejectsWrongVersion(t *testing.T) {
	c := NewCodes(2, 8)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // corrupt the version field
	if _, err := LoadCodes(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestLoadCodesTruncatedPayload(t *testing.T) {
	c := NewCodes(10, 64)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-8]
	if _, err := LoadCodes(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestRankOfTrueNNAgainstSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(40)
		base := NewCodes(n, 24)
		for i := range base.Data {
			base.Data[i] = rng.Uint64() & ((1 << 24) - 1)
		}
		q := NewCodes(1, 24)
		q.Data[0] = rng.Uint64() & ((1 << 24) - 1)
		target := rng.Intn(n)
		got := RankOfTrueNN(base, q.Code(0), target)
		// Oracle: 1 + number of strictly closer points.
		d := HammingWords(base.Code(target), q.Code(0))
		want := 1
		for i := 0; i < n; i++ {
			if i != target && HammingWords(base.Code(i), q.Code(0)) < d {
				want++
			}
		}
		if got != want {
			t.Fatalf("trial %d: rank %d, oracle %d", trial, got, want)
		}
	}
}
