package retrieval

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzLoadCodes throws arbitrary bytes at the index loader. The loader faces
// exactly this input once a serving tier reloads indexes from disk or an
// admin endpoint, so the contract under fuzzing is strict: never panic,
// never allocate payload storage for bytes that do not exist, and accept an
// input iff it is byte-for-byte a canonical Save output — which the fuzz
// body verifies by re-saving every accepted parse and comparing raw bytes.
func FuzzLoadCodes(f *testing.F) {
	save := func(c *Codes) []byte {
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	rng := rand.New(rand.NewSource(42))
	for _, shape := range []struct{ n, l int }{{1, 1}, {7, 8}, {3, 64}, {5, 65}, {0, 16}, {129, 48}} {
		c := NewCodes(shape.n, shape.l)
		for i := range c.Data {
			c.Data[i] = rng.Uint64()
		}
		if shape.l%64 != 0 {
			for i := 0; i < c.N; i++ {
				code := c.Code(i)
				code[len(code)-1] &= (1 << uint(shape.l%64)) - 1
			}
		}
		valid := save(c)
		f.Add(valid)
		f.Add(valid[:len(valid)/2]) // truncated payload
		f.Add(append(valid, 0x00))  // trailing byte
		f.Add(valid[:28])           // header only
	}
	f.Add(craftHeader(1, 1<<40, 1<<20)) // huge-header allocation attack
	f.Add(craftHeader(1, 1<<40+1, 1))   // implausible N
	f.Add(craftHeader(2, 1, 1))         // wrong version
	f.Add(craftHeader(1, 1, 0))         // zero L
	f.Add([]byte("PMAC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// A small budget keeps the fuzzer from ever legitimately building a
		// big index; headers over budget must be rejected up front.
		c, err := LoadCodesLimit(bytes.NewReader(data), 1<<20)
		if err != nil {
			return
		}
		if c.L <= 0 || c.N < 0 || c.Words != (c.L+63)/64 || len(c.Data) != c.N*c.Words {
			t.Fatalf("accepted inconsistent codes: N=%d L=%d Words=%d len=%d",
				c.N, c.L, c.Words, len(c.Data))
		}
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatalf("re-save of accepted input failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted input is not canonical: %d bytes in, %d bytes re-saved",
				len(data), buf.Len())
		}
	})
}
