package retrieval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/vec"
)

func TestCodesBitRoundTrip(t *testing.T) {
	c := NewCodes(3, 70) // spans two words
	c.SetBit(1, 0, true)
	c.SetBit(1, 69, true)
	c.SetBit(2, 64, true)
	if !c.Bit(1, 0) || !c.Bit(1, 69) || !c.Bit(2, 64) {
		t.Fatal("bits not set")
	}
	if c.Bit(0, 0) || c.Bit(1, 68) {
		t.Fatal("unexpected bits set")
	}
	c.SetBit(1, 69, false)
	if c.Bit(1, 69) {
		t.Fatal("clear failed")
	}
}

func TestHammingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := 1 + r.Intn(130)
		c := NewCodes(2, l)
		naive := 0
		for b := 0; b < l; b++ {
			v0, v1 := r.Intn(2) == 1, r.Intn(2) == 1
			c.SetBit(0, b, v0)
			c.SetBit(1, b, v1)
			if v0 != v1 {
				naive++
			}
		}
		return c.Hamming(0, c, 1) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingIsMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCodes(3, 40)
		for i := 0; i < 3; i++ {
			for b := 0; b < 40; b++ {
				c.SetBit(i, b, r.Intn(2) == 1)
			}
		}
		dab := c.Hamming(0, c, 1)
		dba := c.Hamming(1, c, 0)
		daa := c.Hamming(0, c, 0)
		dac := c.Hamming(0, c, 2)
		dcb := c.Hamming(2, c, 1)
		return dab == dba && daa == 0 && dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFromBitsAndEqualClone(t *testing.T) {
	rows := [][]bool{{true, false, true}, {false, false, true}}
	c := FromBits(rows)
	if c.N != 2 || c.L != 3 {
		t.Fatal("shape wrong")
	}
	if !c.Bit(0, 0) || c.Bit(1, 0) || !c.Bit(1, 2) {
		t.Fatal("content wrong")
	}
	cl := c.Clone()
	if !c.Equal(cl) {
		t.Fatal("clone should be equal")
	}
	cl.SetBit(0, 1, true)
	if c.Equal(cl) {
		t.Fatal("clone should be independent")
	}
}

func TestMemoryBytes(t *testing.T) {
	c := NewCodes(1000, 64)
	if c.MemoryBytes() != 8000 {
		t.Fatalf("packed bytes = %d", c.MemoryBytes())
	}
}

func TestTopKHammingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := NewCodes(100, 48)
	for i := 0; i < 100; i++ {
		for b := 0; b < 48; b++ {
			base.SetBit(i, b, rng.Intn(2) == 1)
		}
	}
	q := NewCodes(1, 48)
	for b := 0; b < 48; b++ {
		q.SetBit(0, b, rng.Intn(2) == 1)
	}
	got := TopKHamming(base, q.Code(0), 10)
	if len(got) != 10 {
		t.Fatalf("got %d results", len(got))
	}
	// Verify ordering and optimality by brute force.
	dist := func(i int) int { return HammingWords(base.Code(i), q.Code(0)) }
	for i := 1; i < len(got); i++ {
		if dist(got[i-1]) > dist(got[i]) {
			t.Fatal("results not sorted by distance")
		}
		if dist(got[i-1]) == dist(got[i]) && got[i-1] > got[i] {
			t.Fatal("ties not broken by index")
		}
	}
	worst := dist(got[9])
	inSet := map[int]bool{}
	for _, i := range got {
		inSet[i] = true
	}
	for i := 0; i < 100; i++ {
		if !inSet[i] && dist(i) < worst {
			t.Fatalf("point %d (d=%d) closer than worst retrieved (%d) but missing", i, dist(i), worst)
		}
	}
}

func TestTopKEuclideanExact(t *testing.T) {
	x := vec.NewMatrix(5, 1)
	for i := 0; i < 5; i++ {
		x.Set(i, 0, float64(i))
	}
	ds := dataset.FromMatrix(x)
	got := TopKEuclidean(ds, []float64{2.2}, 3)
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestTopKClampsToN(t *testing.T) {
	base := NewCodes(3, 8)
	if len(TopKHamming(base, base.Code(0), 10)) != 3 {
		t.Fatal("k must clamp to N")
	}
}

func TestGroundTruthSelfNeighbour(t *testing.T) {
	ds := dataset.GISTLike(50, 4, 3, 3)
	gt := GroundTruth(ds, ds, 1)
	for q := range gt {
		if gt[q][0] != q {
			t.Fatalf("query %d: self must be its own nearest neighbour, got %d", q, gt[q][0])
		}
	}
}

func TestPrecisionBounds(t *testing.T) {
	truth := [][]int{{1, 2, 3}, {4, 5, 6}}
	perfect := [][]int{{3, 2, 1}, {6, 5, 4}}
	if p := Precision(truth, perfect); p != 1 {
		t.Fatalf("perfect precision = %v", p)
	}
	miss := [][]int{{7, 8, 9}, {10, 11, 12}}
	if p := Precision(truth, miss); p != 0 {
		t.Fatalf("zero precision = %v", p)
	}
	half := [][]int{{1, 8}, {4, 12}}
	if p := Precision(truth, half); p != 0.5 {
		t.Fatalf("half precision = %v", p)
	}
}

func TestRankOfTrueNNTieIsTopRank(t *testing.T) {
	base := NewCodes(3, 8)
	// All base codes identical → all distances tie → rank must be 1.
	q := NewCodes(1, 8)
	q.SetBit(0, 3, true)
	if r := RankOfTrueNN(base, q.Code(0), 2); r != 1 {
		t.Fatalf("tied rank = %d, want 1 (paper's tie rule)", r)
	}
}

func TestRecallAtRMonotoneInR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := NewCodes(60, 32)
	queries := NewCodes(20, 32)
	for i := 0; i < 60; i++ {
		for b := 0; b < 32; b++ {
			base.SetBit(i, b, rng.Intn(2) == 1)
		}
	}
	trueNN := make([]int, 20)
	for q := 0; q < 20; q++ {
		for b := 0; b < 32; b++ {
			queries.SetBit(q, b, rng.Intn(2) == 1)
		}
		trueNN[q] = rng.Intn(60)
	}
	rs := []int{1, 5, 10, 30, 60}
	rec := RecallAtR(base, queries, trueNN, rs)
	for i := 1; i < len(rec); i++ {
		if rec[i] < rec[i-1] {
			t.Fatalf("recall not monotone: %v", rec)
		}
	}
	if rec[len(rec)-1] != 1 {
		t.Fatalf("recall@N must be 1, got %v", rec[len(rec)-1])
	}
}

func TestRecallPerfectCodesGivePerfectRecall(t *testing.T) {
	// Queries identical to their true NN codes → rank 1 always.
	rng := rand.New(rand.NewSource(5))
	base := NewCodes(30, 16)
	for i := 0; i < 30; i++ {
		for b := 0; b < 16; b++ {
			base.SetBit(i, b, rng.Intn(2) == 1)
		}
	}
	queries := NewCodes(10, 16)
	trueNN := make([]int, 10)
	for q := 0; q < 10; q++ {
		trueNN[q] = q * 3
		copy(queries.Code(q), base.Code(q*3))
	}
	rec := RecallAtR(base, queries, trueNN, []int{1})
	if rec[0] != 1 {
		t.Fatalf("recall@1 = %v, want 1", rec[0])
	}
}

func BenchmarkHamming64(b *testing.B) {
	c := NewCodes(2, 64)
	c.Data[0] = 0xDEADBEEF
	c.Data[1] = 0x12345678
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HammingWords(c.Code(0), c.Code(1))
	}
}

func BenchmarkTopKHamming(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := NewCodes(10000, 64)
	for i := range base.Data {
		base.Data[i] = rng.Uint64()
	}
	q := []uint64{rng.Uint64()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKHamming(base, q, 100)
	}
}

func TestWord64MatchesBits(t *testing.T) {
	c := NewCodes(3, 40)
	c.SetBit(0, 0, true)
	c.SetBit(0, 39, true)
	c.SetBit(2, 17, true)
	for i := 0; i < 3; i++ {
		var want uint64
		for b := 0; b < 40; b++ {
			if c.Bit(i, b) {
				want |= 1 << uint(b)
			}
		}
		if c.Word64(i) != want {
			t.Fatalf("code %d: Word64 %x, bits say %x", i, c.Word64(i), want)
		}
	}
	c.SetWord64(1, 0b1011)
	for b, want := range []bool{true, true, false, true} {
		if c.Bit(1, b) != want {
			t.Fatalf("SetWord64 bit %d = %v, want %v", b, c.Bit(1, b), want)
		}
	}
}

func TestCopyCode(t *testing.T) {
	src := NewCodes(2, 100) // two words per code
	src.SetBit(1, 3, true)
	src.SetBit(1, 99, true)
	dst := NewCodes(4, 100)
	dst.CopyCode(2, src, 1)
	for b := 0; b < 100; b++ {
		if dst.Bit(2, b) != src.Bit(1, b) {
			t.Fatalf("bit %d not copied", b)
		}
	}
}
