package retrieval

import (
	"math/rand"
	"testing"
)

// assertNeighborsEqual pins bit- and tie-exact equality against the oracle.
func assertNeighborsEqual(t *testing.T, ctx string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: got %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestMIHMatchesLinearOracle is the contract table: every configuration —
// degenerate k, adversarially tied codes, L not divisible by the block count,
// multi-word codes, auto-picked blocks — must reproduce TopKHammingDist
// exactly, tie order included.
func TestMIHMatchesLinearOracle(t *testing.T) {
	cases := []struct {
		name       string
		n, l       int
		blocks     int
		ks         []int
		seed       int64
		allEqual   bool
		numQueries int
	}{
		{name: "random64", n: 2000, l: 64, blocks: 4, ks: []int{1, 10, 50}, seed: 1, numQueries: 20},
		{name: "auto blocks", n: 1500, l: 64, blocks: 0, ks: []int{10}, seed: 2, numQueries: 10},
		{name: "one block", n: 300, l: 12, blocks: 1, ks: []int{5}, seed: 3, numQueries: 10},
		{name: "L not divisible by blocks", n: 800, l: 20, blocks: 3, ks: []int{7, 20}, seed: 4, numQueries: 15},
		{name: "multi-word codes", n: 600, l: 96, blocks: 7, ks: []int{9}, seed: 5, numQueries: 10},
		{name: "multi-word unaligned", n: 400, l: 65, blocks: 5, ks: []int{11}, seed: 6, numQueries: 10},
		{name: "adversarial ties (L=8)", n: 500, l: 8, blocks: 2, ks: []int{1, 25, 100}, seed: 7, numQueries: 20},
		{name: "all-equal codes", n: 200, l: 16, blocks: 2, ks: []int{1, 50}, seed: 8, allEqual: true, numQueries: 5},
		{name: "k > n", n: 60, l: 32, blocks: 4, ks: []int{60, 61, 1000}, seed: 9, numQueries: 5},
		{name: "k <= 0", n: 100, l: 32, blocks: 4, ks: []int{0, -1, -100}, seed: 10, numQueries: 3},
		{name: "blocks > L clamps", n: 150, l: 6, blocks: 99, ks: []int{5}, seed: 11, numQueries: 5},
		{name: "tiny n", n: 1, l: 16, blocks: 2, ks: []int{1, 3}, seed: 12, numQueries: 3},
		{name: "empty base", n: 0, l: 16, blocks: 2, ks: []int{0, 5}, seed: 13, numQueries: 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base := randomCodes(c.n, c.l, c.seed)
			if c.allEqual {
				for i := 1; i < base.N; i++ {
					base.CopyCode(i, base, 0)
				}
			}
			queries := randomCodes(c.numQueries, c.l, c.seed+1000)
			ix, err := NewMIHIndex(base, c.blocks)
			if err != nil {
				t.Fatal(err)
			}
			s := ix.NewSearcher()
			for qi := 0; qi < queries.N; qi++ {
				q := queries.Code(qi)
				for _, k := range c.ks {
					want := TopKHammingDist(base, q, k)
					assertNeighborsEqual(t, "searcher", s.Search(q, k), want)
					assertNeighborsEqual(t, "one-shot", ix.Search(q, k), want)
				}
			}
		})
	}
}

// TestMIHPropertyRandomShapes hammers random (n, l, blocks, k) shapes; the
// searcher is reused across queries so the generation-stamp dedup is
// exercised too.
func TestMIHPropertyRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(700)
		l := 1 + rng.Intn(80)
		blocks := rng.Intn(10) // 0 = auto
		k := rng.Intn(n + 10)
		base := randomCodes(n, l, int64(trial))
		ix, err := NewMIHIndex(base, blocks)
		if err != nil {
			t.Fatal(err)
		}
		s := ix.NewSearcher()
		queries := randomCodes(5, l, int64(trial)+500)
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Code(qi)
			got := s.Search(q, k)
			want := TopKHammingDist(base, q, k)
			assertNeighborsEqual(t, "property", got, want)
		}
	}
}

// TestMIHSearchBatchMatchesSearch pins worker-count invariance: one searcher
// per worker, identical rows for any pool size.
func TestMIHSearchBatchMatchesSearch(t *testing.T) {
	base := randomCodes(1200, 32, 21)
	queries := randomCodes(40, 32, 22)
	ix, err := NewMIHIndex(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, -1} {
		rows := ix.SearchBatch(queries, 15, workers)
		for qi := range rows {
			want := TopKHammingDist(base, queries.Code(qi), 15)
			assertNeighborsEqual(t, "batch", rows[qi], want)
		}
	}
}

// TestMIHWithAppended checks the copy-on-write snapshot step: the child index
// equals a fresh build over the concatenated codes, and the parent snapshot
// keeps answering for exactly its own points — the immutability the serving
// tier's atomic-pointer hot path relies on.
func TestMIHWithAppended(t *testing.T) {
	base := randomCodes(500, 24, 31)
	extra := randomCodes(300, 24, 32)
	parent, err := NewMIHIndex(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	child, err := parent.WithAppended(extra)
	if err != nil {
		t.Fatal(err)
	}
	if child.N() != 800 || parent.N() != 500 {
		t.Fatalf("N: child %d parent %d", child.N(), parent.N())
	}

	combined := NewCodes(800, 24)
	copy(combined.Data, base.Data)
	copy(combined.Data[500*base.Words:], extra.Data)

	queries := randomCodes(25, 24, 33)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Code(qi)
		assertNeighborsEqual(t, "child", child.Search(q, 20), TopKHammingDist(combined, q, 20))
		assertNeighborsEqual(t, "parent after append", parent.Search(q, 20), TopKHammingDist(base, q, 20))
	}

	// A second append chains snapshots; the middle snapshot must survive.
	more := randomCodes(100, 24, 34)
	grand, err := child.WithAppended(more)
	if err != nil {
		t.Fatal(err)
	}
	all := NewCodes(900, 24)
	copy(all.Data, combined.Data)
	copy(all.Data[800*all.Words:], more.Data)
	q := queries.Code(0)
	assertNeighborsEqual(t, "grandchild", grand.Search(q, 30), TopKHammingDist(all, q, 30))
	assertNeighborsEqual(t, "child after second append", child.Search(q, 30), TopKHammingDist(combined, q, 30))

	// Appending mismatched code lengths must fail loudly.
	if _, err := parent.WithAppended(randomCodes(5, 16, 35)); err == nil {
		t.Fatal("appending 16-bit codes to a 24-bit index should error")
	}
}

// TestMIHAppendToEmpty covers streaming ingest from a cold start.
func TestMIHAppendToEmpty(t *testing.T) {
	empty, err := NewMIHIndex(NewCodes(0, 32), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.Search([]uint64{7}, 5); len(got) != 0 {
		t.Fatalf("empty index returned %d results", len(got))
	}
	extra := randomCodes(200, 32, 41)
	ix, err := empty.WithAppended(extra)
	if err != nil {
		t.Fatal(err)
	}
	q := randomCodes(1, 32, 42).Code(0)
	assertNeighborsEqual(t, "appended-to-empty", ix.Search(q, 10), TopKHammingDist(extra, q, 10))
}

func TestMIHOccupancy(t *testing.T) {
	base := randomCodes(400, 32, 51)
	ix, err := NewMIHIndex(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	occ := ix.Occupancy()
	if occ.Blocks != 4 {
		t.Fatalf("blocks = %d, want 4", occ.Blocks)
	}
	if occ.Buckets != 4*(1<<8) {
		t.Fatalf("buckets = %d, want %d", occ.Buckets, 4*(1<<8))
	}
	if occ.UsedBuckets == 0 || occ.UsedBuckets > occ.Buckets {
		t.Fatalf("used buckets = %d out of %d", occ.UsedBuckets, occ.Buckets)
	}
	if occ.MaxList < 1 || occ.MeanList <= 0 || float64(occ.MaxList) < occ.MeanList {
		t.Fatalf("list stats: max %d mean %f", occ.MaxList, occ.MeanList)
	}
	// Every point lands in exactly one bucket per block.
	if got := occ.MeanList * float64(occ.UsedBuckets); int(got+0.5) != 4*400 {
		t.Fatalf("total posting entries = %v, want %d", got, 4*400)
	}
}

func TestAutoMIHBlocksBounds(t *testing.T) {
	for _, c := range []struct{ n, l int }{
		{0, 1}, {1, 1}, {10, 64}, {50000, 64}, {1 << 20, 64}, {100, 128}, {1 << 30, 8},
	} {
		m := AutoMIHBlocks(c.n, c.l)
		if m < 1 || m > c.l {
			t.Fatalf("AutoMIHBlocks(%d, %d) = %d outside [1, %d]", c.n, c.l, m, c.l)
		}
		if width := (c.l + m - 1) / m; width > MaxMIHBlockBits {
			t.Fatalf("AutoMIHBlocks(%d, %d) = %d gives width %d > %d", c.n, c.l, m, width, MaxMIHBlockBits)
		}
	}
}

// FuzzMIHOracle derives a code set, block count and query from arbitrary
// bytes and asserts MIH search equals the linear oracle exactly. This is the
// index the serving tier trusts for hot traffic, so the equivalence must hold
// for every reachable shape, not just the seeded ones.
func FuzzMIHOracle(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(16), uint8(2), uint8(10))
	f.Add(int64(2), uint16(1), uint8(1), uint8(0), uint8(1))
	f.Add(int64(3), uint16(500), uint8(8), uint8(3), uint8(200))
	f.Add(int64(4), uint16(50), uint8(65), uint8(7), uint8(5))
	f.Add(int64(5), uint16(0), uint8(32), uint8(4), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, l, blocks, k uint8) {
		nn := int(n) % 600
		ll := 1 + int(l)%96
		base := randomCodes(nn, ll, seed)
		ix, err := NewMIHIndex(base, int(blocks))
		if err != nil {
			t.Fatalf("NewMIHIndex(n=%d l=%d blocks=%d): %v", nn, ll, blocks, err)
		}
		queries := randomCodes(3, ll, seed+1)
		s := ix.NewSearcher()
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Code(qi)
			got := s.Search(q, int(k))
			want := TopKHammingDist(base, q, int(k))
			assertNeighborsEqual(t, "fuzz", got, want)
		}
	})
}

// Benchmarks: the MIH path must appear in the CI -benchtime=1x smoke next to
// the linear scan it replaces.

func benchCodes(n, l int, seed int64) *Codes {
	return randomCodes(n, l, seed)
}

func BenchmarkMIHSearch(b *testing.B) {
	base := benchCodes(100000, 64, 61)
	ix, err := NewMIHIndex(base, 0)
	if err != nil {
		b.Fatal(err)
	}
	s := ix.NewSearcher()
	query := benchCodes(1, 64, 62).Code(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(query, 50)
	}
}

func BenchmarkMIHBuild(b *testing.B) {
	base := benchCodes(100000, 64, 63)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewMIHIndex(base, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinearVsMIH(b *testing.B) {
	base := benchCodes(100000, 64, 64)
	ix, err := NewMIHIndex(base, 0)
	if err != nil {
		b.Fatal(err)
	}
	query := benchCodes(1, 64, 65).Code(0)
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			TopKHammingDist(base, query, 10)
		}
	})
	b.Run("mih", func(b *testing.B) {
		s := ix.NewSearcher()
		for i := 0; i < b.N; i++ {
			s.Search(query, 10)
		}
	})
}
