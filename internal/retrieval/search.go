package retrieval

import (
	"sort"

	"repro/internal/sgd"
	"repro/internal/vec"
)

// TopKHamming returns the indices of the k base codes nearest to query in
// Hamming distance, ties broken by lower index (deterministic). The linear
// scan over packed words is exactly the search the paper motivates: Hamming
// distances "at a vastly faster speed and smaller memory" than Euclidean.
func TopKHamming(base *Codes, query []uint64, k int) []int {
	if k > base.N {
		k = base.N
	}
	type cand struct {
		idx, dist int
	}
	// Bounded insertion into a sorted buffer: k is small (≤ 10⁴ in the
	// paper's protocols) relative to N, so this beats a heap in practice
	// and keeps ordering fully deterministic.
	buf := make([]cand, 0, k)
	worst := -1
	for i := 0; i < base.N; i++ {
		d := HammingWords(base.Code(i), query)
		if len(buf) == k && d >= worst {
			continue
		}
		pos := sort.Search(len(buf), func(j int) bool {
			return buf[j].dist > d
		})
		if len(buf) < k {
			buf = append(buf, cand{})
		}
		copy(buf[pos+1:], buf[pos:len(buf)-1])
		buf[pos] = cand{i, d}
		worst = buf[len(buf)-1].dist
	}
	out := make([]int, len(buf))
	for i, c := range buf {
		out[i] = c.idx
	}
	return out
}

// TopKEuclidean returns the indices of the k base points nearest to query in
// Euclidean distance (the exact ground truth of §8.1), ties broken by lower
// index.
func TopKEuclidean(base sgd.Points, query []float64, k int) []int {
	n := base.NumPoints()
	if k > n {
		k = n
	}
	type cand struct {
		idx  int
		dist float64
	}
	buf := make([]cand, 0, k)
	worst := -1.0
	tmp := make([]float64, len(query))
	for i := 0; i < n; i++ {
		d := vec.SqDist(base.Point(i, tmp), query)
		if len(buf) == k && d >= worst {
			continue
		}
		pos := sort.Search(len(buf), func(j int) bool {
			return buf[j].dist > d
		})
		if len(buf) < k {
			buf = append(buf, cand{})
		}
		copy(buf[pos+1:], buf[pos:len(buf)-1])
		buf[pos] = cand{i, d}
		worst = buf[len(buf)-1].dist
	}
	out := make([]int, len(buf))
	for i, c := range buf {
		out[i] = c.idx
	}
	return out
}

// GroundTruth computes, for every query row, the K exact Euclidean nearest
// base points. It is O(Q·N·D); the experiment drivers scale Q and N so this
// stays affordable.
func GroundTruth(base sgd.Points, queries sgd.Points, k int) [][]int {
	out := make([][]int, queries.NumPoints())
	buf := make([]float64, pointsDim(queries))
	for q := range out {
		out[q] = TopKEuclidean(base, queries.Point(q, buf), k)
	}
	return out
}

func pointsDim(p sgd.Points) int {
	if p.NumPoints() == 0 {
		return 0
	}
	return len(p.Point(0, nil))
}

// Precision computes the paper's retrieval precision: for each query, the
// fraction of the k Hamming-retrieved points that are among the K true
// Euclidean neighbours, averaged over queries.
func Precision(truth [][]int, retrieved [][]int) float64 {
	if len(truth) != len(retrieved) {
		panic("retrieval: Precision length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	var total float64
	for q := range truth {
		if len(retrieved[q]) == 0 {
			continue
		}
		set := make(map[int]struct{}, len(truth[q]))
		for _, i := range truth[q] {
			set[i] = struct{}{}
		}
		hit := 0
		for _, i := range retrieved[q] {
			if _, ok := set[i]; ok {
				hit++
			}
		}
		total += float64(hit) / float64(len(retrieved[q]))
	}
	return total / float64(len(truth))
}

// RankOfTrueNN returns the Hamming rank of base code trueIdx for the given
// query code, following the paper's tie rule for recall@R: "in case of tied
// distances, we place the query as top rank", i.e. rank = 1 + #(points
// strictly closer).
func RankOfTrueNN(base *Codes, query []uint64, trueIdx int) int {
	d := HammingWords(base.Code(trueIdx), query)
	rank := 1
	for i := 0; i < base.N; i++ {
		if i == trueIdx {
			continue
		}
		if HammingWords(base.Code(i), query) < d {
			rank++
		}
	}
	return rank
}

// RecallAtR computes recall@R for each requested R: the fraction of queries
// whose true nearest neighbour (trueNN[q], an index into base) is ranked
// within the top R positions by Hamming distance.
func RecallAtR(base *Codes, queries *Codes, trueNN []int, rs []int) []float64 {
	if queries.N != len(trueNN) {
		panic("retrieval: RecallAtR needs one true NN per query")
	}
	ranks := make([]int, queries.N)
	for q := 0; q < queries.N; q++ {
		ranks[q] = RankOfTrueNN(base, queries.Code(q), trueNN[q])
	}
	out := make([]float64, len(rs))
	for ri, r := range rs {
		hit := 0
		for _, rank := range ranks {
			if rank <= r {
				hit++
			}
		}
		if queries.N > 0 {
			out[ri] = float64(hit) / float64(queries.N)
		}
	}
	return out
}
