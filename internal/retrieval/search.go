package retrieval

import (
	"sort"

	"repro/internal/core"
	"repro/internal/sgd"
	"repro/internal/vec"
)

// Neighbor is one result of a top-k Hamming scan: a base index and its
// distance. Scans and merges keep neighbors sorted by (Dist, Index) — the
// deterministic total order every search entry point in this package obeys.
type Neighbor struct {
	Index int `json:"index"`
	Dist  int `json:"dist"`
}

// clampK resolves a requested result count against a base size: negative or
// zero k means an empty result (k is a request parameter once a server
// exists, so it must never panic), and k is capped at n.
func clampK(k, n int) int {
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// scanHamming appends to buf the top-k candidates of base rows [lo, hi),
// sorted by (distance, index). Bounded insertion into a sorted buffer: k is
// small (≤ 10⁴ in the paper's protocols) relative to N, so this beats a heap
// in practice and keeps ordering fully deterministic — the buffer always
// holds the lexicographically smallest (dist, idx) pairs seen so far.
func scanHamming(base *Codes, query []uint64, k, lo, hi int, buf []Neighbor) []Neighbor {
	if k <= 0 {
		return buf
	}
	worst := -1
	if len(buf) > 0 {
		worst = buf[len(buf)-1].Dist
	}
	for i := lo; i < hi; i++ {
		d := HammingWords(base.Code(i), query)
		if len(buf) == k && d >= worst {
			continue
		}
		pos := sort.Search(len(buf), func(j int) bool {
			return buf[j].Dist > d
		})
		if len(buf) < k {
			buf = append(buf, Neighbor{})
		}
		copy(buf[pos+1:], buf[pos:len(buf)-1])
		buf[pos] = Neighbor{Index: i, Dist: d}
		worst = buf[len(buf)-1].Dist
	}
	return buf
}

// candIndices extracts the index column of a candidate buffer.
func candIndices(buf []Neighbor) []int {
	out := make([]int, len(buf))
	for i, c := range buf {
		out[i] = c.Index
	}
	return out
}

// MergeTopK merges per-part top-k candidate lists (each sorted by
// (Dist, Index)) into one global top-k in the same order. This is the exact
// tie rule the serial scan maintains, so chunked scans — and multi-shard
// fan-out in a serving tier, with each part's indices already offset into the
// global id space — merge without changing any result. k < 0 keeps
// everything.
func MergeTopK(parts [][]Neighbor, k int) []Neighbor {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	all := make([]Neighbor, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Index < all[j].Index
	})
	if k >= 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// OffsetNeighbors shifts every index by off, mapping shard-local results into
// a global id space before MergeTopK.
func OffsetNeighbors(ns []Neighbor, off int) []Neighbor {
	for i := range ns {
		ns[i].Index += off
	}
	return ns
}

// TopKHammingDist returns the k base codes nearest to query in Hamming
// distance with their distances, sorted by (distance, index). k ≤ 0 returns
// an empty slice. The linear scan over packed words is exactly the search
// the paper motivates: Hamming distances "at a vastly faster speed and
// smaller memory" than Euclidean.
func TopKHammingDist(base *Codes, query []uint64, k int) []Neighbor {
	k = clampK(k, base.N)
	return scanHamming(base, query, k, 0, base.N, make([]Neighbor, 0, k))
}

// TopKHamming returns the indices of the k base codes nearest to query in
// Hamming distance, ties broken by lower index (deterministic). k ≤ 0
// returns an empty slice.
func TopKHamming(base *Codes, query []uint64, k int) []int {
	return candIndices(TopKHammingDist(base, query, k))
}

// TopKHammingParallel is TopKHamming with the base scan chunked over workers
// goroutines (0/1 serial, < 0 every core): each chunk keeps its own top-k
// buffer, and the per-chunk results are merged by (distance, index) — the
// same total order the serial insertion maintains — so the output is
// identical to TopKHamming for any worker count.
func TopKHammingParallel(base *Codes, query []uint64, k, workers int) []int {
	k = clampK(k, base.N)
	if k == 0 {
		return []int{}
	}
	workers = core.ClampWorkers(base.N, core.Cores(workers))
	if workers <= 1 {
		return TopKHamming(base, query, k)
	}
	parts := make([][]Neighbor, workers)
	core.ParallelChunks(base.N, workers, func(w, lo, hi int) {
		parts[w] = scanHamming(base, query, k, lo, hi, make([]Neighbor, 0, k))
	})
	return candIndices(MergeTopK(parts, k))
}

// AllTopKHamming runs TopKHamming for every query code, fanned out over
// workers goroutines (0/1 serial, < 0 every core). Queries are independent,
// so the result equals the serial per-query loop for any worker count. This
// is the batch shape Validation.Score and the retrieval drivers use; each
// query's base scan stays serial because the query fan-out already saturates
// the pool.
func AllTopKHamming(base, queries *Codes, k, workers int) [][]int {
	out := make([][]int, queries.N)
	core.ParallelChunks(queries.N, core.Cores(workers), func(_, lo, hi int) {
		for q := lo; q < hi; q++ {
			out[q] = TopKHamming(base, queries.Code(q), k)
		}
	})
	return out
}

// AllTopKHammingDist is AllTopKHamming keeping distances: one batched pass
// over all queries, each row sorted by (distance, index). This is the shape
// a serving tier's micro-batcher coalesces concurrent requests into.
func AllTopKHammingDist(base, queries *Codes, k, workers int) [][]Neighbor {
	out := make([][]Neighbor, queries.N)
	core.ParallelChunks(queries.N, core.Cores(workers), func(_, lo, hi int) {
		for q := lo; q < hi; q++ {
			out[q] = TopKHammingDist(base, queries.Code(q), k)
		}
	})
	return out
}

// TopKEuclidean returns the indices of the k base points nearest to query in
// Euclidean distance (the exact ground truth of §8.1), ties broken by lower
// index. k ≤ 0 returns an empty slice.
func TopKEuclidean(base sgd.Points, query []float64, k int) []int {
	n := base.NumPoints()
	k = clampK(k, n)
	if k == 0 {
		return []int{}
	}
	type cand struct {
		idx  int
		dist float64
	}
	buf := make([]cand, 0, k)
	worst := -1.0
	tmp := make([]float64, len(query))
	for i := 0; i < n; i++ {
		d := vec.SqDist(base.Point(i, tmp), query)
		if len(buf) == k && d >= worst {
			continue
		}
		pos := sort.Search(len(buf), func(j int) bool {
			return buf[j].dist > d
		})
		if len(buf) < k {
			buf = append(buf, cand{})
		}
		copy(buf[pos+1:], buf[pos:len(buf)-1])
		buf[pos] = cand{i, d}
		worst = buf[len(buf)-1].dist
	}
	out := make([]int, len(buf))
	for i, c := range buf {
		out[i] = c.idx
	}
	return out
}

// GroundTruth computes, for every query row, the K exact Euclidean nearest
// base points. It is O(Q·N·D); the experiment drivers scale Q and N so this
// stays affordable — or hand GroundTruthParallel a worker pool.
func GroundTruth(base sgd.Points, queries sgd.Points, k int) [][]int {
	return GroundTruthParallel(base, queries, k, 1)
}

// GroundTruthParallel is GroundTruth fanned out over workers goroutines
// (0/1 serial, < 0 every core); queries are independent, so the result is
// identical for any worker count.
func GroundTruthParallel(base sgd.Points, queries sgd.Points, k, workers int) [][]int {
	nq := queries.NumPoints()
	out := make([][]int, nq)
	d := pointsDim(queries)
	core.ParallelChunks(nq, core.Cores(workers), func(_, lo, hi int) {
		buf := make([]float64, d)
		for q := lo; q < hi; q++ {
			out[q] = TopKEuclidean(base, queries.Point(q, buf), k)
		}
	})
	return out
}

func pointsDim(p sgd.Points) int {
	if p.NumPoints() == 0 {
		return 0
	}
	return len(p.Point(0, nil))
}

// Precision computes the paper's retrieval precision: for each query, the
// fraction of the k Hamming-retrieved points that are among the K true
// Euclidean neighbours, averaged over queries. A query with an empty
// retrieved list (k = 0 requests are legal) contributes zero precision.
// Membership is tested against a sorted copy of the truth list kept in one
// buffer reused across queries, so the inner loop allocates nothing (the
// per-query map this replaces was the scoring hot spot at large Q).
func Precision(truth [][]int, retrieved [][]int) float64 {
	if len(truth) != len(retrieved) {
		panic("retrieval: Precision length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	var member []int
	var total float64
	for q := range truth {
		if len(retrieved[q]) == 0 {
			continue
		}
		member = append(member[:0], truth[q]...)
		sort.Ints(member)
		hit := 0
		for _, i := range retrieved[q] {
			if p := sort.SearchInts(member, i); p < len(member) && member[p] == i {
				hit++
			}
		}
		total += float64(hit) / float64(len(retrieved[q]))
	}
	return total / float64(len(truth))
}

// RankOfTrueNN returns the Hamming rank of base code trueIdx for the given
// query code, following the paper's tie rule for recall@R: "in case of tied
// distances, we place the query as top rank", i.e. rank = 1 + #(points
// strictly closer).
func RankOfTrueNN(base *Codes, query []uint64, trueIdx int) int {
	return RankOfTrueNNParallel(base, query, trueIdx, 1)
}

// RankOfTrueNNParallel is RankOfTrueNN with the base scan chunked over
// workers goroutines (0/1 serial, < 0 every core). The rank is a count of
// strictly-closer points — order-independent — so the result is identical
// for any worker count.
func RankOfTrueNNParallel(base *Codes, query []uint64, trueIdx, workers int) int {
	d := HammingWords(base.Code(trueIdx), query)
	workers = core.ClampWorkers(base.N, core.Cores(workers))
	counts := make([]int, workers)
	core.ParallelChunks(base.N, workers, func(w, lo, hi int) {
		closer := 0
		for i := lo; i < hi; i++ {
			if i == trueIdx {
				continue
			}
			if HammingWords(base.Code(i), query) < d {
				closer++
			}
		}
		counts[w] = closer
	})
	rank := 1
	for _, c := range counts {
		rank += c
	}
	return rank
}

// RecallAtR computes recall@R for each requested R: the fraction of queries
// whose true nearest neighbour (trueNN[q], an index into base) is ranked
// within the top R positions by Hamming distance. R ≤ 0 entries yield 0
// (every rank is ≥ 1), so callers forwarding request parameters need no
// special casing.
func RecallAtR(base *Codes, queries *Codes, trueNN []int, rs []int) []float64 {
	return RecallAtRParallel(base, queries, trueNN, rs, 1)
}

// RecallAtRParallel is RecallAtR with the per-query rank scans fanned out
// over workers goroutines (0/1 serial, < 0 every core); identical output for
// any worker count.
func RecallAtRParallel(base *Codes, queries *Codes, trueNN []int, rs []int, workers int) []float64 {
	if queries.N != len(trueNN) {
		panic("retrieval: RecallAtR needs one true NN per query")
	}
	ranks := make([]int, queries.N)
	core.ParallelChunks(queries.N, core.Cores(workers), func(_, lo, hi int) {
		for q := lo; q < hi; q++ {
			ranks[q] = RankOfTrueNN(base, queries.Code(q), trueNN[q])
		}
	})
	out := make([]float64, len(rs))
	for ri, r := range rs {
		hit := 0
		for _, rank := range ranks {
			if rank <= r {
				hit++
			}
		}
		if queries.N > 0 {
			out[ri] = float64(hit) / float64(queries.N)
		}
	}
	return out
}
