package retrieval

import (
	"sort"

	"repro/internal/core"
	"repro/internal/sgd"
	"repro/internal/vec"
)

// hamCand is one candidate of a bounded top-k Hamming scan.
type hamCand struct {
	idx, dist int
}

// scanHamming appends to buf the top-k candidates of base rows [lo, hi),
// sorted by (distance, index). Bounded insertion into a sorted buffer: k is
// small (≤ 10⁴ in the paper's protocols) relative to N, so this beats a heap
// in practice and keeps ordering fully deterministic — the buffer always
// holds the lexicographically smallest (dist, idx) pairs seen so far.
func scanHamming(base *Codes, query []uint64, k, lo, hi int, buf []hamCand) []hamCand {
	worst := -1
	if len(buf) > 0 {
		worst = buf[len(buf)-1].dist
	}
	for i := lo; i < hi; i++ {
		d := HammingWords(base.Code(i), query)
		if len(buf) == k && d >= worst {
			continue
		}
		pos := sort.Search(len(buf), func(j int) bool {
			return buf[j].dist > d
		})
		if len(buf) < k {
			buf = append(buf, hamCand{})
		}
		copy(buf[pos+1:], buf[pos:len(buf)-1])
		buf[pos] = hamCand{i, d}
		worst = buf[len(buf)-1].dist
	}
	return buf
}

// candIndices extracts the index column of a candidate buffer.
func candIndices(buf []hamCand) []int {
	out := make([]int, len(buf))
	for i, c := range buf {
		out[i] = c.idx
	}
	return out
}

// TopKHamming returns the indices of the k base codes nearest to query in
// Hamming distance, ties broken by lower index (deterministic). The linear
// scan over packed words is exactly the search the paper motivates: Hamming
// distances "at a vastly faster speed and smaller memory" than Euclidean.
func TopKHamming(base *Codes, query []uint64, k int) []int {
	if k > base.N {
		k = base.N
	}
	return candIndices(scanHamming(base, query, k, 0, base.N, make([]hamCand, 0, k)))
}

// TopKHammingParallel is TopKHamming with the base scan chunked over workers
// goroutines (0/1 serial, < 0 every core): each chunk keeps its own top-k
// buffer, and the per-chunk results are merged by (distance, index) — the
// same total order the serial insertion maintains — so the output is
// identical to TopKHamming for any worker count.
func TopKHammingParallel(base *Codes, query []uint64, k, workers int) []int {
	if k > base.N {
		k = base.N
	}
	workers = core.ClampWorkers(base.N, core.Cores(workers))
	if workers <= 1 {
		return TopKHamming(base, query, k)
	}
	parts := make([][]hamCand, workers)
	core.ParallelChunks(base.N, workers, func(w, lo, hi int) {
		parts[w] = scanHamming(base, query, k, lo, hi, make([]hamCand, 0, k))
	})
	var all []hamCand
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].idx < all[j].idx
	})
	if len(all) > k {
		all = all[:k]
	}
	return candIndices(all)
}

// AllTopKHamming runs TopKHamming for every query code, fanned out over
// workers goroutines (0/1 serial, < 0 every core). Queries are independent,
// so the result equals the serial per-query loop for any worker count. This
// is the batch shape Validation.Score and the retrieval drivers use; each
// query's base scan stays serial because the query fan-out already saturates
// the pool.
func AllTopKHamming(base, queries *Codes, k, workers int) [][]int {
	out := make([][]int, queries.N)
	core.ParallelChunks(queries.N, core.Cores(workers), func(_, lo, hi int) {
		for q := lo; q < hi; q++ {
			out[q] = TopKHamming(base, queries.Code(q), k)
		}
	})
	return out
}

// TopKEuclidean returns the indices of the k base points nearest to query in
// Euclidean distance (the exact ground truth of §8.1), ties broken by lower
// index.
func TopKEuclidean(base sgd.Points, query []float64, k int) []int {
	n := base.NumPoints()
	if k > n {
		k = n
	}
	type cand struct {
		idx  int
		dist float64
	}
	buf := make([]cand, 0, k)
	worst := -1.0
	tmp := make([]float64, len(query))
	for i := 0; i < n; i++ {
		d := vec.SqDist(base.Point(i, tmp), query)
		if len(buf) == k && d >= worst {
			continue
		}
		pos := sort.Search(len(buf), func(j int) bool {
			return buf[j].dist > d
		})
		if len(buf) < k {
			buf = append(buf, cand{})
		}
		copy(buf[pos+1:], buf[pos:len(buf)-1])
		buf[pos] = cand{i, d}
		worst = buf[len(buf)-1].dist
	}
	out := make([]int, len(buf))
	for i, c := range buf {
		out[i] = c.idx
	}
	return out
}

// GroundTruth computes, for every query row, the K exact Euclidean nearest
// base points. It is O(Q·N·D); the experiment drivers scale Q and N so this
// stays affordable — or hand GroundTruthParallel a worker pool.
func GroundTruth(base sgd.Points, queries sgd.Points, k int) [][]int {
	return GroundTruthParallel(base, queries, k, 1)
}

// GroundTruthParallel is GroundTruth fanned out over workers goroutines
// (0/1 serial, < 0 every core); queries are independent, so the result is
// identical for any worker count.
func GroundTruthParallel(base sgd.Points, queries sgd.Points, k, workers int) [][]int {
	nq := queries.NumPoints()
	out := make([][]int, nq)
	d := pointsDim(queries)
	core.ParallelChunks(nq, core.Cores(workers), func(_, lo, hi int) {
		buf := make([]float64, d)
		for q := lo; q < hi; q++ {
			out[q] = TopKEuclidean(base, queries.Point(q, buf), k)
		}
	})
	return out
}

func pointsDim(p sgd.Points) int {
	if p.NumPoints() == 0 {
		return 0
	}
	return len(p.Point(0, nil))
}

// Precision computes the paper's retrieval precision: for each query, the
// fraction of the k Hamming-retrieved points that are among the K true
// Euclidean neighbours, averaged over queries. Membership is tested against
// a sorted copy of the truth list kept in one buffer reused across queries,
// so the inner loop allocates nothing (the per-query map this replaces was
// the scoring hot spot at large Q).
func Precision(truth [][]int, retrieved [][]int) float64 {
	if len(truth) != len(retrieved) {
		panic("retrieval: Precision length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	var member []int
	var total float64
	for q := range truth {
		if len(retrieved[q]) == 0 {
			continue
		}
		member = append(member[:0], truth[q]...)
		sort.Ints(member)
		hit := 0
		for _, i := range retrieved[q] {
			if p := sort.SearchInts(member, i); p < len(member) && member[p] == i {
				hit++
			}
		}
		total += float64(hit) / float64(len(retrieved[q]))
	}
	return total / float64(len(truth))
}

// RankOfTrueNN returns the Hamming rank of base code trueIdx for the given
// query code, following the paper's tie rule for recall@R: "in case of tied
// distances, we place the query as top rank", i.e. rank = 1 + #(points
// strictly closer).
func RankOfTrueNN(base *Codes, query []uint64, trueIdx int) int {
	return RankOfTrueNNParallel(base, query, trueIdx, 1)
}

// RankOfTrueNNParallel is RankOfTrueNN with the base scan chunked over
// workers goroutines (0/1 serial, < 0 every core). The rank is a count of
// strictly-closer points — order-independent — so the result is identical
// for any worker count.
func RankOfTrueNNParallel(base *Codes, query []uint64, trueIdx, workers int) int {
	d := HammingWords(base.Code(trueIdx), query)
	workers = core.ClampWorkers(base.N, core.Cores(workers))
	counts := make([]int, workers)
	core.ParallelChunks(base.N, workers, func(w, lo, hi int) {
		closer := 0
		for i := lo; i < hi; i++ {
			if i == trueIdx {
				continue
			}
			if HammingWords(base.Code(i), query) < d {
				closer++
			}
		}
		counts[w] = closer
	})
	rank := 1
	for _, c := range counts {
		rank += c
	}
	return rank
}

// RecallAtR computes recall@R for each requested R: the fraction of queries
// whose true nearest neighbour (trueNN[q], an index into base) is ranked
// within the top R positions by Hamming distance.
func RecallAtR(base *Codes, queries *Codes, trueNN []int, rs []int) []float64 {
	return RecallAtRParallel(base, queries, trueNN, rs, 1)
}

// RecallAtRParallel is RecallAtR with the per-query rank scans fanned out
// over workers goroutines (0/1 serial, < 0 every core); identical output for
// any worker count.
func RecallAtRParallel(base *Codes, queries *Codes, trueNN []int, rs []int, workers int) []float64 {
	if queries.N != len(trueNN) {
		panic("retrieval: RecallAtR needs one true NN per query")
	}
	ranks := make([]int, queries.N)
	core.ParallelChunks(queries.N, core.Cores(workers), func(_, lo, hi int) {
		for q := lo; q < hi; q++ {
			ranks[q] = RankOfTrueNN(base, queries.Code(q), trueNN[q])
		}
	})
	out := make([]float64, len(rs))
	for ri, r := range rs {
		hit := 0
		for _, rank := range ranks {
			if rank <= r {
				hit++
			}
		}
		if queries.N > 0 {
			out[ri] = float64(hit) / float64(queries.N)
		}
	}
	return out
}
