// Package retrieval implements the fast approximate image-retrieval
// evaluation pipeline of the paper (§3.1, §8.1): binary codes packed into
// 64-bit words (the paper's "10⁹ points with 64 bits fit in 8 GB" argument),
// Hamming-distance search via popcount, exact Euclidean ground truth, the
// precision measure used for CIFAR/SIFT-10K/SIFT-1M and the recall@R measure
// used for SIFT-1B.
package retrieval

import (
	"fmt"
	"math/bits"
)

// Codes stores N binary codes of L bits each, packed into ⌈L/64⌉ uint64
// words per code.
type Codes struct {
	N, L  int
	Words int // words per code
	Data  []uint64
}

// NewCodes allocates zeroed codes.
func NewCodes(n, l int) *Codes {
	if l <= 0 {
		panic("retrieval: code length must be positive")
	}
	w := (l + 63) / 64
	return &Codes{N: n, L: l, Words: w, Data: make([]uint64, n*w)}
}

// Code returns code i as an aliasing word slice.
func (c *Codes) Code(i int) []uint64 { return c.Data[i*c.Words : (i+1)*c.Words] }

// Bit reports bit b of code i.
func (c *Codes) Bit(i, b int) bool {
	return c.Data[i*c.Words+b/64]&(1<<(uint(b)%64)) != 0
}

// SetBit sets bit b of code i to v.
func (c *Codes) SetBit(i, b int, v bool) {
	idx := i*c.Words + b/64
	mask := uint64(1) << (uint(b) % 64)
	if v {
		c.Data[idx] |= mask
	} else {
		c.Data[idx] &^= mask
	}
}

// Word64 returns the first packed word of code i — the whole code when
// L <= 64, which is every code this reproduction trains (the Z solver packs
// a code into one uint64). Hot paths read it instead of L Bit calls.
func (c *Codes) Word64(i int) uint64 { return c.Data[i*c.Words] }

// SetWord64 replaces the first packed word of code i. The caller must not set
// bits at or above L; for L <= 64 this writes the whole code in one store.
func (c *Codes) SetWord64(i int, w uint64) { c.Data[i*c.Words] = w }

// CopyCode copies code j of src into code i of c word by word. The code
// lengths must match.
func (c *Codes) CopyCode(i int, src *Codes, j int) {
	if c.L != src.L {
		panic(fmt.Sprintf("retrieval: CopyCode length mismatch %d vs %d", c.L, src.L))
	}
	copy(c.Code(i), src.Code(j))
}

// Clone returns a deep copy.
func (c *Codes) Clone() *Codes {
	out := NewCodes(c.N, c.L)
	copy(out.Data, c.Data)
	return out
}

// Equal reports whether two code sets are identical.
func (c *Codes) Equal(o *Codes) bool {
	if c.N != o.N || c.L != o.L {
		return false
	}
	for i, w := range c.Data {
		if w != o.Data[i] {
			return false
		}
	}
	return true
}

// Hamming returns the Hamming distance between code i of c and code j of o.
func (c *Codes) Hamming(i int, o *Codes, j int) int {
	return HammingWords(c.Code(i), o.Code(j))
}

// HammingWords returns the Hamming distance between two packed codes.
func HammingWords(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("retrieval: code width mismatch %d vs %d", len(a), len(b)))
	}
	d := 0
	for i, w := range a {
		d += bits.OnesCount64(w ^ b[i])
	}
	return d
}

// Columns returns the column-major transpose of the codes: slice l is an
// N-bit bitset (⌈N/64⌉ words) whose bit i equals Bit(i, l). This is the
// layout the popcount-Gram W kernel works in — a column dot product over ±1
// or 0/1 codes becomes a handful of word popcounts instead of N float
// multiplies. Built by walking each code's set bits, O(Σ popcount) word ops.
func (c *Codes) Columns() [][]uint64 {
	words := (c.N + 63) / 64
	backing := make([]uint64, c.L*words)
	cols := make([][]uint64, c.L)
	for l := range cols {
		cols[l] = backing[l*words : (l+1)*words]
	}
	for i := 0; i < c.N; i++ {
		mask := uint64(1) << (uint(i) % 64)
		word := i / 64
		for wi, w := range c.Code(i) {
			base := wi * 64
			for w != 0 {
				cols[base+bits.TrailingZeros64(w)][word] |= mask
				w &= w - 1
			}
		}
	}
	return cols
}

// PopcountWords returns the number of set bits in a packed bitset.
func PopcountWords(a []uint64) int {
	n := 0
	for _, w := range a {
		n += bits.OnesCount64(w)
	}
	return n
}

// PopcountAndWords returns |a ∧ b|, the inner product of two 0/1 columns in
// packed form (for ±1 codes the same quantity gives the dot product as
// N − 2·popcount(a ⊕ b); over 0/1 features it is the Gram entry directly).
func PopcountAndWords(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("retrieval: bitset width mismatch %d vs %d", len(a), len(b)))
	}
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// MemoryBytes reports the packed storage footprint (8 bytes per word), the
// quantity behind the paper's "auxiliary coordinates take only 6.25% of the
// data" accounting (§8.4).
func (c *Codes) MemoryBytes() int { return 8 * len(c.Data) }

// FromBits builds codes from a row-major bool matrix (n rows of l bits).
func FromBits(rows [][]bool) *Codes {
	n := len(rows)
	if n == 0 {
		panic("retrieval: FromBits on empty input")
	}
	l := len(rows[0])
	c := NewCodes(n, l)
	for i, r := range rows {
		if len(r) != l {
			panic("retrieval: ragged bit rows")
		}
		for b, v := range r {
			c.SetBit(i, b, v)
		}
	}
	return c
}
