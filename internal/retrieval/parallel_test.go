package retrieval

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

// tieHeavyCodes builds codes drawn from a tiny alphabet so Hamming ties are
// everywhere — the regime where a sloppy parallel merge would diverge from
// the serial lower-index tie rule.
func tieHeavyCodes(n, l int, seed int64) *Codes {
	rng := rand.New(rand.NewSource(seed))
	alphabet := make([]uint64, 4)
	for i := range alphabet {
		alphabet[i] = rng.Uint64() & ((1 << uint(l)) - 1)
	}
	c := NewCodes(n, l)
	for i := 0; i < n; i++ {
		c.SetWord64(i, alphabet[rng.Intn(len(alphabet))])
	}
	return c
}

// TestTopKHammingParallelMatchesSerial: chunked scans with per-chunk top-k
// merge must reproduce the serial scan exactly, including deterministic
// tie-breaking by lower index, for every worker count and k regime.
func TestTopKHammingParallelMatchesSerial(t *testing.T) {
	base := tieHeavyCodes(700, 16, 1)
	queries := tieHeavyCodes(20, 16, 2)
	for _, k := range []int{1, 5, 50, 699, 700, 10000} {
		for q := 0; q < queries.N; q++ {
			want := TopKHamming(base, queries.Code(q), k)
			for _, workers := range []int{2, 3, 8, -1} {
				got := TopKHammingParallel(base, queries.Code(q), k, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("k=%d q=%d workers=%d: parallel top-k differs from serial", k, q, workers)
				}
			}
		}
	}
}

// TestAllTopKHammingMatchesLoop: the batch fan-out must equal the per-query
// serial loop for any worker count.
func TestAllTopKHammingMatchesLoop(t *testing.T) {
	base := tieHeavyCodes(400, 24, 3)
	queries := tieHeavyCodes(17, 24, 4)
	want := make([][]int, queries.N)
	for q := 0; q < queries.N; q++ {
		want[q] = TopKHamming(base, queries.Code(q), 25)
	}
	for _, workers := range []int{0, 1, 2, 5, -1} {
		got := AllTopKHamming(base, queries, 25, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batch retrieval differs from serial loop", workers)
		}
	}
}

// TestGroundTruthParallelMatchesSerial: query-parallel exact ground truth
// must equal the serial computation.
func TestGroundTruthParallelMatchesSerial(t *testing.T) {
	base := dataset.GISTLike(300, 8, 3, 5)
	queries := dataset.GISTLike(23, 8, 3, 6)
	want := GroundTruth(base, queries, 10)
	for _, workers := range []int{2, 4, -1} {
		got := GroundTruthParallel(base, queries, 10, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel ground truth differs", workers)
		}
	}
}

// TestRankAndRecallParallelMatchSerial: the chunked rank count and the
// query-parallel recall must equal their serial versions, ties included.
func TestRankAndRecallParallelMatchSerial(t *testing.T) {
	base := tieHeavyCodes(500, 12, 7)
	queries := tieHeavyCodes(31, 12, 8)
	trueNN := make([]int, queries.N)
	rng := rand.New(rand.NewSource(9))
	for q := range trueNN {
		trueNN[q] = rng.Intn(base.N)
	}
	for q := 0; q < queries.N; q++ {
		want := RankOfTrueNN(base, queries.Code(q), trueNN[q])
		for _, workers := range []int{2, 6, -1} {
			if got := RankOfTrueNNParallel(base, queries.Code(q), trueNN[q], workers); got != want {
				t.Fatalf("q=%d workers=%d: rank %d != serial %d", q, workers, got, want)
			}
		}
	}
	rs := []int{1, 5, 100}
	want := RecallAtR(base, queries, trueNN, rs)
	for _, workers := range []int{2, 6, -1} {
		if got := RecallAtRParallel(base, queries, trueNN, rs, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: recall@R differs from serial", workers)
		}
	}
}

// precisionMapOracle is the map-membership implementation Precision replaced;
// kept here as the behavioural oracle for the sorted-buffer rewrite.
func precisionMapOracle(truth, retrieved [][]int) float64 {
	if len(truth) == 0 {
		return 0
	}
	var total float64
	for q := range truth {
		if len(retrieved[q]) == 0 {
			continue
		}
		set := make(map[int]struct{}, len(truth[q]))
		for _, i := range truth[q] {
			set[i] = struct{}{}
		}
		hit := 0
		for _, i := range retrieved[q] {
			if _, ok := set[i]; ok {
				hit++
			}
		}
		total += float64(hit) / float64(len(retrieved[q]))
	}
	return total / float64(len(truth))
}

// TestPrecisionMatchesMapOracle: the alloc-free sorted-membership Precision
// must equal the map version on messy inputs — duplicates in the truth
// lists, empty retrieved sets, unsorted indices.
func TestPrecisionMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		nq := 1 + rng.Intn(8)
		truth := make([][]int, nq)
		retrieved := make([][]int, nq)
		for q := 0; q < nq; q++ {
			for j := 0; j < rng.Intn(12); j++ {
				truth[q] = append(truth[q], rng.Intn(20))
			}
			for j := 0; j < rng.Intn(12); j++ {
				retrieved[q] = append(retrieved[q], rng.Intn(20))
			}
		}
		got := Precision(truth, retrieved)
		want := precisionMapOracle(truth, retrieved)
		if got != want {
			t.Fatalf("trial %d: Precision %v != map oracle %v (truth=%v retrieved=%v)",
				trial, got, want, truth, retrieved)
		}
	}
}

// TestPopcountWordHelpers pins the packed-column helpers against per-bit
// counting.
func TestPopcountWordHelpers(t *testing.T) {
	z := tieHeavyCodes(200, 10, 11)
	cols := z.Columns()
	for a := 0; a < z.L; a++ {
		ones := 0
		for i := 0; i < z.N; i++ {
			if z.Bit(i, a) {
				ones++
			}
		}
		if got := PopcountWords(cols[a]); got != ones {
			t.Fatalf("col %d: popcount %d != %d", a, got, ones)
		}
		for b := 0; b < z.L; b++ {
			both := 0
			for i := 0; i < z.N; i++ {
				if z.Bit(i, a) && z.Bit(i, b) {
					both++
				}
			}
			if got := PopcountAndWords(cols[a], cols[b]); got != both {
				t.Fatalf("cols (%d,%d): and-popcount %d != %d", a, b, got, both)
			}
		}
	}
}
