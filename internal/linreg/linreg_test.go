package linreg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sgd"
	"repro/internal/vec"
)

// linearProblem builds targets t = w*·x + b* + noise.
func linearProblem(n, d int, noise float64, seed int64) (*dataset.Dataset, []float64, []float64, float64) {
	rng := rand.New(rand.NewSource(seed))
	x := vec.NewMatrix(n, d)
	x.FillGaussian(rng, 1)
	wStar := make([]float64, d)
	for j := range wStar {
		wStar[j] = rng.NormFloat64()
	}
	bStar := rng.NormFloat64()
	targets := make([]float64, n)
	for i := 0; i < n; i++ {
		targets[i] = vec.Dot(wStar, x.Row(i)) + bStar + rng.NormFloat64()*noise
	}
	return dataset.FromMatrix(x), targets, wStar, bStar
}

func TestSGDRecoversLinearMap(t *testing.T) {
	ds, targets, wStar, bStar := linearProblem(2000, 4, 0, 1)
	tgt := func(i int) float64 { return targets[i] }
	r := NewRegressor(4, 0)
	r.AutoTune(ds, tgt)
	rng := rand.New(rand.NewSource(2))
	buf := make([]float64, 4)
	for e := 0; e < 20; e++ {
		r.TrainPass(ds, tgt, sgd.Order(ds.N, true, rng), buf)
	}
	for j := range wStar {
		if math.Abs(r.W[j]-wStar[j]) > 0.05 {
			t.Fatalf("w[%d]=%v want %v", j, r.W[j], wStar[j])
		}
	}
	if math.Abs(r.B-bStar) > 0.05 {
		t.Fatalf("b=%v want %v", r.B, bStar)
	}
}

func TestStepMovesTowardTarget(t *testing.T) {
	r := NewRegressor(1, 0)
	before := r.AvgLossPoint([]float64{1}, 3)
	r.Step([]float64{1}, 3, 0.1)
	after := r.AvgLossPoint([]float64{1}, 3)
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
}

// AvgLossPoint is a tiny test helper via the public API.
func (r *Regressor) AvgLossPoint(x []float64, target float64) float64 {
	e := r.Predict(x) - target
	return 0.5 * e * e
}

func TestCloneIsDeep(t *testing.T) {
	r := NewRegressor(2, 0.1)
	r.W[0] = 1
	c := r.Clone()
	c.W[0] = 2
	c.Sched.Next()
	if r.W[0] != 1 || r.Sched.Steps() != 0 {
		t.Fatal("Clone must not share state")
	}
}

func TestAutoTunePreservesParameters(t *testing.T) {
	ds, targets, _, _ := linearProblem(300, 3, 0.1, 3)
	tgt := func(i int) float64 { return targets[i] }
	r := NewRegressor(3, 1e-4)
	r.W[1] = 0.25
	r.AutoTune(ds, tgt)
	if r.W[1] != 0.25 {
		t.Fatal("AutoTune changed parameters")
	}
	if r.Sched.Eta0 <= 0 {
		t.Fatal("bad eta0")
	}
}

func TestFitExactRecoversMap(t *testing.T) {
	ds, targets, wStar, bStar := linearProblem(500, 5, 0, 4)
	y := vec.NewMatrix(500, 1)
	for i := range targets {
		y.Set(i, 0, targets[i])
	}
	m, err := FitExact(ds.Matrix(), y, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range wStar {
		if math.Abs(m.W.At(j, 0)-wStar[j]) > 1e-8 {
			t.Fatalf("W[%d]=%v want %v", j, m.W.At(j, 0), wStar[j])
		}
	}
	if math.Abs(m.C[0]-bStar) > 1e-8 {
		t.Fatalf("C=%v want %v", m.C[0], bStar)
	}
}

func TestFitExactMultiOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, dIn, dOut := 200, 3, 4
	x := vec.NewMatrix(n, dIn)
	x.FillGaussian(rng, 1)
	wStar := vec.NewMatrix(dIn, dOut)
	wStar.FillGaussian(rng, 1)
	cStar := make([]float64, dOut)
	for j := range cStar {
		cStar[j] = rng.NormFloat64()
	}
	y := vec.NewMatrix(n, dOut)
	for i := 0; i < n; i++ {
		pred := make([]float64, dOut)
		copy(pred, cStar)
		for k := 0; k < dIn; k++ {
			vec.Axpy(x.At(i, k), wStar.Row(k), pred)
		}
		copy(y.Row(i), pred)
	}
	m, err := FitExact(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vec.MaxAbsDiff(m.W, wStar) > 1e-8 {
		t.Fatal("multi-output W not recovered")
	}
	// Predict must agree with targets.
	got := m.Predict(x.Row(7), nil)
	for j := range got {
		if math.Abs(got[j]-y.At(7, j)) > 1e-8 {
			t.Fatal("Predict wrong")
		}
	}
}

func TestFitExactRankDeficientFallsBackToJitter(t *testing.T) {
	// Duplicate column makes X̃ᵀX̃ singular with λ=0; jitter retry must save it.
	n := 50
	x := vec.NewMatrix(n, 2)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x.Set(i, 0, v)
		x.Set(i, 1, v)
	}
	y := vec.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		y.Set(i, 0, 2*x.At(i, 0))
	}
	m, err := FitExact(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(x.Row(0), nil)
	if math.Abs(pred[0]-y.At(0, 0)) > 1e-3 {
		t.Fatalf("prediction %v want %v", pred[0], y.At(0, 0))
	}
}

func TestRidgeShrinksWeights(t *testing.T) {
	ds, targets, _, _ := linearProblem(300, 4, 0.5, 7)
	y := vec.NewMatrix(300, 1)
	for i := range targets {
		y.Set(i, 0, targets[i])
	}
	m0, err := FitExact(ds.Matrix(), y, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := FitExact(ds.Matrix(), y, 1000)
	if err != nil {
		t.Fatal(err)
	}
	n0 := vec.SqNorm(m0.W.Data)
	n1 := vec.SqNorm(m1.W.Data)
	if n1 >= n0 {
		t.Fatalf("ridge did not shrink: %v vs %v", n1, n0)
	}
}

func TestSGDMatchesExactOnEasyProblem(t *testing.T) {
	ds, targets, _, _ := linearProblem(3000, 3, 0, 8)
	tgt := func(i int) float64 { return targets[i] }
	r := NewRegressor(3, 0)
	r.AutoTune(ds, tgt)
	rng := rand.New(rand.NewSource(9))
	buf := make([]float64, 3)
	for e := 0; e < 30; e++ {
		r.TrainPass(ds, tgt, sgd.Order(ds.N, true, rng), buf)
	}
	y := vec.NewMatrix(ds.N, 1)
	for i := range targets {
		y.Set(i, 0, targets[i])
	}
	m, err := FitExact(ds.Matrix(), y, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if math.Abs(r.W[j]-m.W.At(j, 0)) > 0.05 {
			t.Fatalf("SGD w[%d]=%v exact=%v", j, r.W[j], m.W.At(j, 0))
		}
	}
}
