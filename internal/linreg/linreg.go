// Package linreg implements the linear decoder submodels of the binary
// autoencoder (§3.1): D independent linear regressors f(z) = W·z + c mapping
// codes back to inputs. It provides both the exact least-squares fit used by
// serial MAC's W step (normal equations solved by Cholesky) and the SGD
// trainer used by ParMAC's circulating submodels, with the same step-size
// schedule and η0 auto-tuning as the SVM trainer.
package linreg

import (
	"repro/internal/sgd"
	"repro/internal/vec"
)

// Regressor is a single-output linear map y = w·x + b with optional ridge
// regularisation λ/2·‖w‖². It carries its SGD schedule like svm.Linear.
type Regressor struct {
	W      []float64
	B      float64
	Lambda float64
	Sched  *sgd.Schedule
}

// NewRegressor creates a zero-initialised regressor for d-dimensional inputs.
func NewRegressor(d int, lambda float64) *Regressor {
	return &Regressor{W: make([]float64, d), Lambda: lambda, Sched: sgd.NewSchedule(1e-2, lambda)}
}

// Predict returns w·x + b.
func (r *Regressor) Predict(x []float64) float64 { return vec.Dot(r.W, x) + r.B }

// Clone returns a deep copy including schedule state.
func (r *Regressor) Clone() *Regressor {
	c := &Regressor{W: vec.Clone(r.W), B: r.B, Lambda: r.Lambda}
	s := *r.Sched
	c.Sched = &s
	return c
}

// Bytes returns the serialised parameter size.
func (r *Regressor) Bytes() int { return 8 * (len(r.W) + 1) }

// Step performs one SGD update on (x, target) with learning rate eta for the
// squared loss ½(w·x+b−t)².
func (r *Regressor) Step(x []float64, target, eta float64) {
	err := r.Predict(x) - target
	vec.Scale(1-eta*r.Lambda, r.W)
	vec.Axpy(-eta*err, x, r.W)
	r.B -= eta * err
}

// TrainPass runs one stochastic pass over order, advancing the schedule.
func (r *Regressor) TrainPass(pts sgd.Points, target func(i int) float64, order []int, buf []float64) {
	for _, i := range order {
		x := pts.Point(i, buf)
		r.Step(x, target(i), r.Sched.Next())
	}
}

// AvgLoss returns the mean squared error (plus the ridge term) over idx
// (all points when nil).
func (r *Regressor) AvgLoss(pts sgd.Points, target func(i int) float64, idx []int) float64 {
	if idx == nil {
		idx = sgd.Order(pts.NumPoints(), false, nil)
	}
	if len(idx) == 0 {
		return 0
	}
	buf := make([]float64, len(r.W))
	var loss float64
	for _, i := range idx {
		x := pts.Point(i, buf)
		e := r.Predict(x) - target(i)
		loss += 0.5 * e * e
	}
	return loss/float64(len(idx)) + 0.5*r.Lambda*vec.SqNorm(r.W)
}

// AutoTune calibrates η0 on the leading sample (paper §8.1) without touching
// the parameters.
func (r *Regressor) AutoTune(pts sgd.Points, target func(i int) float64) {
	n := sgd.TuningSampleSize(pts.NumPoints())
	if n == 0 {
		return
	}
	sample := sgd.Order(n, false, nil)
	buf := make([]float64, len(r.W))
	best := sgd.TuneEta0(1e-5, 4, 4, func(eta0 float64) float64 {
		trial := r.Clone()
		trial.Sched = sgd.NewSchedule(eta0, r.Lambda)
		trial.TrainPass(pts, target, sample, buf)
		return trial.AvgLoss(pts, target, sample)
	})
	r.Sched.Eta0 = best
	r.Sched.Lambda = r.Lambda
	r.Sched.SetSteps(0)
}

// MultiOutput is a multi-target linear map y = Wᵀx + c fit in one shot by the
// exact least-squares solve of serial MAC's W step: W = (X̃ᵀX̃+λI)⁻¹ X̃ᵀY with
// a bias column folded in.
type MultiOutput struct {
	W *vec.Matrix // dIn×dOut
	C []float64   // dOut
}

// SolveNormal solves the ridge normal equations (G + λI)·W̃ = R for W̃, where
// G is the (dIn+1)×(dIn+1) bias-augmented Gram matrix X̃ᵀX̃ and R = X̃ᵀY.
// lambda is added to every diagonal entry (bias included, matching FitExact);
// a singular system is retried once with a 1e-8·n jitter, n being the row
// count G was accumulated over. G is clobbered by the factorisation.
//
// It is factored out of FitExact so callers that assemble G and R by other
// means — the popcount-Gram W kernel of internal/binauto, the AllReduce-
// aggregated statistics of the distributed fit — go through the exact same
// solve path, rounding for rounding.
func SolveNormal(gram, rhs *vec.Matrix, lambda float64, n int) (*vec.Matrix, error) {
	gram.AddScaledIdentity(lambda)
	ch, err := vec.NewCholesky(gram)
	if err != nil {
		gram.AddScaledIdentity(1e-8 * float64(n))
		ch, err = vec.NewCholesky(gram)
		if err != nil {
			return nil, err
		}
	}
	return ch.SolveMatrix(rhs), nil
}

// FitExact solves the (ridge) least-squares problem mapping the rows of x to
// the rows of y. lambda > 0 guards against rank deficiency; lambda == 0 uses
// a tiny jitter retry if the Gram matrix is singular.
func FitExact(x, y *vec.Matrix, lambda float64) (*MultiOutput, error) {
	if x.Rows != y.Rows {
		panic("linreg: FitExact row mismatch")
	}
	n, dIn, dOut := x.Rows, x.Cols, y.Cols
	// Augment with a bias column: X̃ = [X 1].
	xt := vec.NewMatrix(n, dIn+1)
	for i := 0; i < n; i++ {
		copy(xt.Row(i), x.Row(i))
		xt.Set(i, dIn, 1)
	}
	gram := xt.Gram()
	xty := vec.TMul(xt, y) // (dIn+1)×dOut
	sol, err := SolveNormal(gram, xty, lambda, n)
	if err != nil {
		return nil, err
	}
	w := vec.NewMatrix(dIn, dOut)
	for i := 0; i < dIn; i++ {
		copy(w.Row(i), sol.Row(i))
	}
	return &MultiOutput{W: w, C: vec.Clone(sol.Row(dIn))}, nil
}

// Predict writes Wᵀx + c into dst (allocated when nil).
func (m *MultiOutput) Predict(x, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(m.C))
	}
	copy(dst, m.C)
	for i, xi := range x {
		vec.Axpy(xi, m.W.Row(i), dst)
	}
	return dst
}
