// examples/multiprocess demonstrates ParMAC's deployment claim end to end:
// the same binary autoencoder trains once with machines as goroutines
// (in-process transport) and once with machines as separate OS processes
// exchanging gob frames over TCP — and, with a fixed seed and no ring
// shuffling, reaches the identical nested error, because the engine and both
// transports honour the same conformance contract.
//
// Run it from the repo root:
//
//	go run ./examples/multiprocess
//
// The parent process acts as the coordinator and re-executes itself once per
// machine; each worker process rebuilds its shard of the problem from the
// shared seed, dials the coordinator's rendezvous hub, and serves the W/Z
// protocol until shutdown.
package main

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/binauto"
	"repro/internal/cluster/tcp"
	"repro/internal/core"
	"repro/internal/dataset"
)

const (
	nPoints  = 900
	dim      = 12
	bits     = 6
	machines = 3
	iters    = 4
	seed     = 5
)

func buildProblem() (*dataset.Dataset, *binauto.ParMACProblem) {
	ds := dataset.GISTLike(nPoints, dim, 4, seed)
	shards := dataset.ShuffledShardIndices(ds.N, machines, nil, seed)
	prob := binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
		L: bits, Mu0: 1e-4, MuFactor: 2, ZMethod: binauto.ZAlternate, Seed: seed,
	})
	return ds, prob
}

func engineConfig() core.Config {
	// Shuffle off: machine-visit order is then deterministic, so the two
	// transports must agree bit for bit, not just statistically.
	return core.Config{P: machines, Epochs: 1, Shuffle: false, Seed: seed}
}

func main() {
	if len(os.Args) == 4 && os.Args[1] == "worker" {
		workerMain(os.Args[2], os.Args[3])
		return
	}

	// Reference run: the classic single-process engine.
	ds, prob := buildProblem()
	eng := core.New(prob, engineConfig())
	eng.Run(iters)
	eng.Shutdown()
	inprocEBA := prob.AssembleModel().EBA(ds)
	fmt.Printf("in-process transport: E_BA = %.4f (1 process, %d goroutine machines)\n",
		inprocEBA, machines)

	// Distributed run: same problem, one OS process per machine.
	hub, err := tcp.NewHub("127.0.0.1:0", machines+1)
	fatalIf(err)
	defer hub.Close()

	self, err := os.Executable()
	fatalIf(err)
	children := make([]*exec.Cmd, machines)
	for r := 0; r < machines; r++ {
		children[r] = exec.Command(self, "worker", hub.Addr(), strconv.Itoa(r))
		children[r].Stderr = os.Stderr
		fatalIf(children[r].Start())
	}
	pids := make([]int, machines)
	for r, c := range children {
		pids[r] = c.Process.Pid
	}

	comm, err := tcp.Connect(hub.Addr(), machines)
	fatalIf(err)
	dsTCP, probTCP := buildProblem()
	engTCP := core.NewDistributed(probTCP, engineConfig(), comm)
	results := engTCP.Run(iters)
	tcpEBA := probTCP.AssembleModel().EBA(dsTCP)
	engTCP.Shutdown()
	comm.Close()
	fatalIf(hub.Wait(30 * time.Second))
	for _, c := range children {
		fatalIf(c.Wait())
	}
	fmt.Printf("tcp transport:        E_BA = %.4f (%d worker processes %v + coordinator)\n",
		tcpEBA, machines, pids)
	fmt.Printf("model traffic over the wire: %d bytes in the final iteration\n",
		results[len(results)-1].ModelBytes)

	if math.Abs(inprocEBA-tcpEBA) > 1e-9 {
		fmt.Fprintf(os.Stderr, "TRANSPORTS DIVERGED: %.9f vs %.9f\n", inprocEBA, tcpEBA)
		os.Exit(1)
	}
	fmt.Println("transports agree: same model from goroutines and OS processes")
}

// workerMain is one ParMAC machine in its own OS process.
func workerMain(addr, rankStr string) {
	rank, err := strconv.Atoi(rankStr)
	fatalIf(err)
	_, prob := buildProblem() // same seed ⇒ same shards everywhere
	comm, err := tcp.Connect(addr, rank)
	fatalIf(err)
	core.RunWorker(comm, prob, rank, core.WorkerOptions{Seed: core.WorkerSeed(seed, rank)})
	comm.Close()
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "multiprocess example:", err)
		os.Exit(1)
	}
}
