// Streaming: ParMAC's §4.3 extension — machines and data can join and leave
// the ring between iterations while training continues.
package main

import (
	"fmt"

	parmac "repro"
	"repro/internal/binauto"
	"repro/internal/dataset"
)

func main() {
	// The full corpus arrives over time; only the first 3000 points exist
	// when training starts, spread over 3 machines.
	ds, _ := parmac.SyntheticBenchmark(5000, 1, 32, 12, 3)
	shards := dataset.ShardIndices(3000, 3, nil)
	prob := binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
		L: 12, Mu0: 1e-4, MuFactor: 2, Seed: 3,
	})
	eng := parmac.New(prob, parmac.Config{P: 3, Epochs: 1, Seed: 3, MaxMachines: 5})
	defer eng.Shutdown()

	report := func(tag string, r parmac.IterationResult) {
		_, eba := prob.Stats()
		fmt.Printf("%-28s iter=%d machines=%d codesChanged=%d E_BA=%.1f\n",
			tag, r.Iter, r.AliveMachines, r.ZChanged, eba)
	}

	for i := 0; i < 3; i++ {
		report("warm-up", eng.Iterate())
	}

	// 2000 new points arrive: bring up a new machine holding them. Its codes
	// are initialised by applying the current model ("applying the nested
	// model to x", §4.3).
	extra := make([]int, 2000)
	for i := range extra {
		extra[i] = 3000 + i
	}
	shard := prob.AddShard(binauto.NewShardPoints(ds, extra))
	rank := eng.AddMachine(shard)
	fmt.Printf("\n+ streamed in 2000 points on new machine rank %d\n\n", rank)

	for i := 0; i < 3; i++ {
		report("after machine added", eng.Iterate())
	}

	// Machine 1 is returned to the cluster; its data stop being visited.
	eng.Retire(1)
	fmt.Printf("\n- retired machine 1 (ring reconnected around it)\n\n")

	for i := 0; i < 2; i++ {
		report("after machine retired", eng.Iterate())
	}
	fmt.Printf("\nfinal codes cover %d points\n", prob.GatherCodes().N)
}
