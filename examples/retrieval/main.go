// Retrieval: the paper's flagship application end to end — learn binary hash
// functions with a distributed binary autoencoder and compare retrieval
// quality against the truncated-PCA and ITQ baselines.
package main

import (
	"fmt"

	parmac "repro"
	"repro/internal/pca"
	"repro/internal/retrieval"
	"repro/internal/sgd"
)

func main() {
	const (
		nBase  = 5000
		nQuery = 100
		dim    = 32
		bits   = 16
		kTrue  = 50 // true Euclidean neighbours per query
		kRet   = 50 // Hamming neighbours retrieved
	)
	// Manifold-structured features: like real image descriptors, the data
	// concentrate near a smooth low-dimensional manifold, the regime where
	// learned hashes are competitive with PCA-based ones.
	base, queries := parmac.ManifoldBenchmark(nBase, nQuery, dim, 7)
	truth := retrieval.GroundTruth(base, queries, kTrue)

	precisionOf := func(baseCodes, queryCodes *retrieval.Codes) float64 {
		retr := make([][]int, queries.N)
		for q := 0; q < queries.N; q++ {
			retr[q] = retrieval.TopKHamming(baseCodes, queryCodes.Code(q), kRet)
		}
		return retrieval.Precision(truth, retr)
	}
	encodeWith := func(h interface {
		Encode(pts sgd.Points) *retrieval.Codes
	}) float64 {
		return precisionOf(h.Encode(base), h.Encode(queries))
	}

	// Baseline 1: truncated PCA (also the BA's initialisation).
	tp := pca.FitTPCA(base, bits)
	fmt.Printf("tPCA precision:      %.3f\n", encodeWith(tp))

	// Baseline 2: iterative quantisation (ITQ).
	itq := pca.FitITQ(base, bits, 30, 7)
	fmt.Printf("ITQ precision:       %.3f\n", encodeWith(itq))

	// The binary autoencoder trained with ParMAC on 8 machines.
	res := parmac.TrainBinaryAutoencoder(base, parmac.BAOptions{
		Bits: bits, Machines: 8, Epochs: 2, Iterations: 12, Shuffle: true, Seed: 7,
		ApproxZ: true,
	})
	fmt.Printf("ParMAC BA precision: %.3f\n", encodeWith(res.Model))

	var bytes int64
	for _, h := range res.History {
		bytes += h.ModelBytes
	}
	fmt.Printf("\ntotal model traffic over %d iterations: %d bytes "+
		"(no data or coordinates ever moved)\n", len(res.History), bytes)
	fmt.Printf("search memory: %d bytes for %d points (%d-bit codes)\n",
		res.Model.Encode(base).MemoryBytes(), base.N, bits)
}
