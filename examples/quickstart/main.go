// Quickstart: train a binary autoencoder with ParMAC in one call and use it
// for approximate nearest-neighbour retrieval.
package main

import (
	"fmt"

	parmac "repro"
	"repro/internal/retrieval"
)

func main() {
	// A synthetic SIFT-like benchmark: 4000 clustered 32-d descriptors
	// stored one byte per feature, exactly like the paper's SIFT sets.
	ds, queries := parmac.SyntheticBenchmark(4000, 100, 32, 12, 1)

	// Train a 16-bit binary autoencoder on 4 (simulated) machines: tPCA
	// code initialisation, L per-bit SVMs + decoder groups circulating in a
	// ring, 1 SGD epoch per W step, 10 μ stages.
	res := parmac.TrainBinaryAutoencoder(ds, parmac.BAOptions{
		Bits: 16, Machines: 4, Epochs: 1, Iterations: 10, Shuffle: true, Seed: 1,
		ApproxZ: true, // alternating Z step: exact L=16 enumeration is cluster-scale work
	})
	fmt.Printf("trained %d-bit autoencoder over %d iterations\n",
		res.Model.L(), len(res.History))
	last := res.History[len(res.History)-1]
	fmt.Printf("last iteration: %d codes changed, %d model bytes moved\n",
		last.ZChanged, last.ModelBytes)

	// Index the dataset: 16-bit codes, 8 bytes per point → N×8 bytes total.
	base := res.Model.Encode(ds)
	fmt.Printf("index size: %d bytes packed (raw floats would be %d)\n",
		base.MemoryBytes(), ds.N*ds.D*8)

	// Retrieve with Hamming distance and score against exact Euclidean
	// ground truth.
	truth := retrieval.GroundTruth(ds, queries, 50)
	qc := res.Model.Encode(queries)
	retr := make([][]int, queries.N)
	for q := 0; q < queries.N; q++ {
		retr[q] = retrieval.TopKHamming(base, qc.Code(q), 50)
	}
	fmt.Printf("retrieval precision (K=k=50): %.3f\n", retrieval.Precision(truth, retr))
}
