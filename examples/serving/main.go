// Serving: the paper's retrieval pitch as an online service. Train a binary
// autoencoder, export its (model, index) pair, stand up parmac-serve's HTTP
// stack on a local port, query it, shadow a candidate model against live
// traffic, and promote the candidate — the full lifecycle a production
// rollout walks through, end to end in one process.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"

	parmac "repro"
	"repro/internal/serve"
)

func main() {
	const (
		nBase  = 4000
		nQuery = 50
		dim    = 32
		bits   = 16
	)
	base, queries := parmac.ManifoldBenchmark(nBase, nQuery, dim, 7)

	// Train two models: v1 goes live, v2 is the candidate for shadow rollout.
	train := func(iters int, seed int64) *parmac.BAResult {
		return parmac.TrainBinaryAutoencoder(base, parmac.BAOptions{
			Bits: bits, Machines: 4, Epochs: 1, Iterations: iters,
			Shuffle: true, Seed: seed, ApproxZ: true,
		})
	}
	fmt.Println("training v1 (live) and v2 (candidate)...")
	v1, v2 := train(6, 1), train(12, 2)

	// Export (model, index) pairs the way a training pipeline would.
	dir, err := os.MkdirTemp("", "parmac-serve")
	check(err)
	defer os.RemoveAll(dir)
	export := func(name string, res *parmac.BAResult) (indexPath, modelPath string) {
		indexPath = filepath.Join(dir, name+".pmac")
		modelPath = filepath.Join(dir, name+".json")
		f, err := os.Create(indexPath)
		check(err)
		check(res.Model.Encode(base).Save(f))
		check(f.Close())
		f, err = os.Create(modelPath)
		check(err)
		check(res.Model.Save(f))
		check(f.Close())
		return
	}
	idx1, mdl1 := export("v1", v1)
	idx2, mdl2 := export("v2", v2)

	// Stand up the serving stack: MIH index (what -index-kind=mih gives the
	// parmac-serve binary), micro-batcher, HTTP API. Swap Kind to "linear" to
	// compare against the brute-force sharded scan — results are identical.
	cfg := serve.IndexConfig{Kind: "mih"}
	dep, err := serve.LoadDeployment("v1", idx1, mdl1, cfg, 0)
	check(err)
	srv := serve.New(dep, serve.Options{IndexKind: "mih", ShadowRate: 1})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("serving kind=%s N=%d L=%d on %s\n", dep.Index.Kind(), dep.Index.N(), dep.Index.L(), url)

	post := func(path string, body any) map[string]any {
		data, err := json.Marshal(body)
		check(err)
		resp, err := http.Post(url+path, "application/json", bytes.NewReader(data))
		check(err)
		defer resp.Body.Close()
		out := map[string]any{}
		check(json.NewDecoder(resp.Body).Decode(&out))
		if resp.StatusCode != 200 {
			check(fmt.Errorf("%s: %v", path, out["error"]))
		}
		return out
	}

	// An encode-and-search query, exactly what a curl would send.
	q := queries.Point(0, nil)
	out := post("/v1/search", map[string]any{"vector": q, "k": 5})
	fmt.Printf("query 0 served by %v, top-5: %v\n", out["model"], out["neighbors"])

	// Shadow the candidate, mirror live traffic, inspect agreement.
	post("/v1/shadow", map[string]any{"version": "v2", "index": idx2, "model": mdl2})
	for i := 0; i < nQuery; i++ {
		post("/v1/search", map[string]any{"vector": queries.Point(i, nil), "k": 10})
	}
	srv.WaitShadow()
	st := srv.Stats()
	fmt.Printf("shadow %q observed %d queries, agreement with live: %.3f\n",
		st.ShadowVersion, st.ShadowQueries, st.ShadowAgreement)

	// The candidate held up — promote it atomically; in-flight requests keep
	// the deployment they started with, new ones see v2.
	out = post("/v1/promote", map[string]any{})
	fmt.Printf("promoted: live is now %v\n", out["live"])
	out = post("/v1/search", map[string]any{"vector": q, "k": 5})
	fmt.Printf("query 0 served by %v, top-5: %v\n", out["model"], out["neighbors"])

	st = srv.Stats()
	fmt.Printf("served %d queries in %d batches (mean batch %.1f)\n",
		st.Queries, st.Batches, st.MeanBatch)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
