// Deepnet: MAC and ParMAC are not BA-specific — here a K=2-hidden-layer
// sigmoid net is trained by circulating its hidden units through the ring
// (§3.2: the W step splits into independent single-unit regressions; the Z
// step is a per-point generalised proximal operator).
package main

import (
	"fmt"
	"math/rand"

	parmac "repro"
	"repro/internal/dataset"
	"repro/internal/macnet"
	"repro/internal/vec"
)

func main() {
	// Regression task: y = σ(2a − b + ab) with 2-d inputs, targets in (0,1).
	const n = 1200
	rng := rand.New(rand.NewSource(9))
	xs := vec.NewMatrix(n, 2)
	ys := vec.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		xs.Set(i, 0, a)
		xs.Set(i, 1, b)
		ys.Set(i, 0, macnet.Sigmoid(2*a-b+a*b))
	}

	// A 2-6-4-1 net: 10 hidden units + 1 output unit = 11 circulating
	// submodels.
	start := macnet.NewNet([]int{2, 6, 4, 1})
	start.InitRandom(rng, 0.3)
	fmt.Printf("initial nested error: %.2f\n", start.NestedError(xs, ys))

	// Serial MAC reference.
	serial := start.Clone()
	stats := macnet.RunMAC(serial, xs, ys, macnet.MACConfig{
		Mu0: 1, MuFactor: 2, Iters: 10, Eta: 1, WEpochs: 3, ZIters: 10, Seed: 9,
	})
	fmt.Printf("serial MAC final:     %.2f (E_Q %.2f)\n",
		stats[len(stats)-1].Nested, stats[len(stats)-1].EQ)

	// The same training distributed over 4 machines with ParMAC.
	shards := dataset.ShardIndices(n, 4, nil)
	prob := macnet.NewParMACProblem(start, xs, ys, shards, macnet.ParMACConfig{
		Mu0: 1, MuFactor: 2, Eta: 1, ZIters: 10,
	})
	fmt.Printf("circulating submodels: %d (one per unit)\n", len(prob.Submodels()))
	eng := parmac.New(prob, parmac.Config{P: 4, Epochs: 3, Seed: 9})
	defer eng.Shutdown()
	for it := 0; it < 10; it++ {
		eng.Iterate()
	}
	_, nested := prob.PenaltyAndNested()
	fmt.Printf("ParMAC (P=4) final:   %.2f\n", nested)
}
