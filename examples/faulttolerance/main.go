// Fault tolerance: a machine dies in the middle of a W step. The submodel it
// was training is recovered from the redundant copy held by its ring
// predecessor, routes are repaired to skip the dead machine, and training
// finishes on the survivors (§4.3).
package main

import (
	"fmt"

	parmac "repro"
	"repro/internal/binauto"
	"repro/internal/dataset"
)

func main() {
	ds, queries := parmac.SyntheticBenchmark(3000, 80, 32, 12, 5)
	shards := dataset.ShardIndices(ds.N, 4, nil)
	prob := binauto.NewParMACProblem(ds, shards, binauto.ParMACConfig{
		L: 12, Mu0: 1e-4, MuFactor: 2, Seed: 5,
	})
	eng := parmac.New(prob, parmac.Config{
		P: 4, Epochs: 2, Seed: 5,
		Replicas: true, // the in-built redundance fault tolerance relies on
		Fail: parmac.FailureInjection{
			Mode:      parmac.FailDropToken,
			Rank:      2, // this machine will die...
			Iteration: 3, // ...during the W step of iteration 3...
			AfterTok:  7, // ...while about to process its 8th submodel
		},
	})
	defer eng.Shutdown()

	for it := 0; it < 8; it++ {
		res := eng.Iterate()
		_, eba := prob.Stats()
		fmt.Printf("iter=%d machines=%d E_BA=%.1f", res.Iter, res.AliveMachines, eba)
		for _, f := range res.Failures {
			fmt.Printf("  [machine %d DIED; submodel %d recovered from machine %d: %v]",
				f.Rank, f.LostToken, f.FromRank, f.Recovered)
		}
		fmt.Println()
	}

	// The model is complete and usable despite losing a quarter of the data.
	model := prob.AssembleModel()
	base := model.Encode(ds)
	qc := model.Encode(queries)
	fmt.Printf("\nmodel intact after failure: L=%d, index=%d bytes, %d queries encoded\n",
		model.L(), base.MemoryBytes(), qc.N)
}
